"""Blocking-socket secure-link transports (no event loop required).

The deployment shape HHEML-style edge devices want: plain ``socket``
calls driving the same sans-IO :class:`~repro.link.LinkProtocol` the
asyncio peers use, so the wire bytes are identical and an edge client
can talk to an asyncio server (and vice versa) without either side
knowing.

:class:`SyncLinkClient` is single-threaded and lockstep — each payload
is sent and its reply collected before the next is written, so the TCP
window can never deadlock against a slow peer.  :class:`SyncLinkServer`
runs one accept thread plus one thread per connection; cipher work runs
inline on those threads (``parallel_workers`` is rejected — use the
asyncio transport for pool offload).
"""

from __future__ import annotations

import socket
import threading

from repro.core.errors import ReproError, SessionError
from repro.link.events import (
    LinkClosed,
    PayloadReceived,
    ProtocolError,
)
from repro.link.memory import _check_inline, _echo
from repro.link.protocol import LinkProtocol, _resolve_root
from repro.net.metrics import MetricsRegistry, SessionMetrics
from repro.net.session import SessionConfig

__all__ = ["SyncLinkClient", "SyncLinkServer"]

_READ_CHUNK = 1 << 16

#: Accept-loop poll interval; bounds how long close() waits on accept.
_ACCEPT_POLL = 0.2


class SyncLinkClient:
    """One secure-link connection over a blocking TCP socket.

    Usage::

        with SyncLinkClient(root_key, port=server.port) as client:
            reply = client.request(b"payload")

    ``timeout`` bounds every socket operation (``None`` blocks forever);
    a timeout surfaces as :class:`socket.timeout` (an ``OSError``).
    """

    def __init__(self, root, host: str = "127.0.0.1", port: int = 0,
                 config: SessionConfig | None = None,
                 session_id: bytes | None = None,
                 timeout: float | None = 10.0, *,
                 kex=None):
        if root is not None:
            root, config = _resolve_root(root, config)
        self._root = root
        self._host = host
        self._port = port
        self._config = config or SessionConfig()
        width = root.params.width if root is not None else (
            kex.params.width if kex is not None else None)
        if width is not None:
            self._config.validate(width)
        _check_inline(self._config, "sync")
        self._kex = kex
        self._session_id = session_id
        self._timeout = timeout
        self._sock: socket.socket | None = None
        self._proto: LinkProtocol | None = None
        self._pending: list = []
        self.session = None

    @property
    def metrics(self) -> SessionMetrics:
        """This connection's session counters (valid once connected)."""
        if self.session is None:
            raise SessionError("client not connected")
        return self.session.metrics

    @property
    def kex_mode(self) -> str | None:
        """The negotiated handshake mode (``None`` before connect)."""
        return self._proto.kex_mode if self._proto is not None else None

    @property
    def issued_ticket(self):
        """The resumption ticket the server issued, if any."""
        return self._proto.issued_ticket if self._proto is not None else None

    @property
    def fingerprint(self) -> bytes | None:
        """The session root key's fingerprint (kex: post-handshake)."""
        return self._proto.fingerprint if self._proto is not None else None

    def connect(self) -> None:
        """Open the TCP connection and run the hello exchange."""
        if self.session is not None:
            raise SessionError("client already connected")
        self._sock = socket.create_connection((self._host, self._port),
                                              timeout=self._timeout)
        try:
            self._proto = LinkProtocol(self._root, "initiator",
                                       config=self._config,
                                       session_id=self._session_id,
                                       kex=self._kex)
            self._sock.sendall(self._proto.data_to_send())
            while self._proto.handshaking:
                chunk = self._sock.recv(_READ_CHUNK)
                events = (self._proto.receive_eof() if not chunk
                          else self._proto.receive_data(chunk))
                for event in events:
                    if isinstance(event, ProtocolError):
                        raise event.error
                    if not isinstance(event, LinkClosed):
                        self._pending.append(event)
                # Multi-round exchanges (the kex phase) queue replies
                # mid-handshake; flush them before reading on.
                if self._proto.bytes_to_send:
                    self._sock.sendall(self._proto.data_to_send())
            self.session = self._proto.session
        except BaseException:
            # A failed handshake must not leak the open socket.
            self.close()
            raise

    def request(self, payload: bytes) -> bytes:
        """Send one payload and wait for its reply."""
        return self.send_all([payload])[0]

    def send_all(self, payloads: list[bytes]) -> list[bytes]:
        """Send payloads in lockstep, one reply collected per send.

        Lockstep (not pipelined) on purpose: a single blocking thread
        that wrote everything first could deadlock against a stalled
        peer once both TCP windows fill.  Protocol failures close the
        transport before re-raising, so a broken link never leaks its
        socket.
        """
        if self.session is None or self._sock is None:
            raise SessionError("client not connected")
        replies: list[bytes] = []
        try:
            for payload in payloads:
                self._proto.send_payload(payload)
                self._sock.sendall(self._proto.data_to_send())
                replies.append(self._read_reply(len(replies), len(payloads)))
        except (ReproError, OSError):
            self.close()
            raise
        return replies

    def _read_reply(self, have: int, want: int) -> bytes:
        while True:
            while self._pending:
                event = self._pending.pop(0)
                if isinstance(event, ProtocolError):
                    raise event.error
                if isinstance(event, PayloadReceived):
                    return event.payload
            chunk = self._sock.recv(_READ_CHUNK)
            if not chunk:
                events = self._proto.receive_eof()
                for event in events:
                    if isinstance(event, ProtocolError):
                        raise event.error
                raise SessionError(
                    f"peer closed the link after {have} of {want} replies"
                )
            self._pending.extend(self._proto.receive_data(chunk))

    def close(self) -> None:
        """Close the socket (idempotent; the session stays readable)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - teardown race
                pass
            self._sock = None
        if self._proto is not None:
            self._proto.close()

    def __enter__(self) -> "SyncLinkClient":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SyncLinkServer:
    """Threaded blocking-socket secure-link server.

    One daemon thread accepts, one daemon thread per connection drives a
    responder :class:`~repro.link.LinkProtocol` with the ``handler``
    (a sync ``bytes -> bytes`` callable; default echoes).  Protocol
    errors on one connection close that connection and are recorded in
    :attr:`errors`; they never take the listener down.

    Usage::

        with SyncLinkServer(root_key, port=0) as server:
            ...  # server.port is the bound port
    """

    def __init__(self, root, host: str = "127.0.0.1", port: int = 0,
                 config: SessionConfig | None = None, handler=None, *,
                 kex=None):
        root, config = _resolve_root(root, config)
        self._kex = kex
        self._root = root
        self._host = host
        self._requested_port = port
        self._config = config or SessionConfig()
        self._config.validate(root.params.width)
        _check_inline(self._config, "sync")
        self._handler = handler if handler is not None else _echo
        self._sock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._threads: list[threading.Thread] = []
        self._connections: set[socket.socket] = set()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._next_peer = 0
        self.metrics = MetricsRegistry()
        self.errors: list[str] = []

    def start(self) -> None:
        """Bind the listening socket and start the accept thread."""
        if self._sock is not None:
            raise RuntimeError("server already started")
        self._stop.clear()
        self._sock = socket.create_server((self._host, self._requested_port))
        self._sock.settimeout(_ACCEPT_POLL)
        self._accept_thread = threading.Thread(target=self._accept_loop,
                                               daemon=True)
        self._accept_thread.start()

    @property
    def port(self) -> int:
        """The bound TCP port (valid after :meth:`start`)."""
        if self._sock is None:
            raise RuntimeError("server not started")
        return self._sock.getsockname()[1]

    def close(self) -> None:
        """Stop accepting, close live connections, join the threads."""
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        with self._lock:
            live = list(self._connections)
            threads = list(self._threads)
        for conn in live:
            try:
                conn.close()
            except OSError:  # pragma: no cover - teardown race
                pass
        for thread in threads:
            thread.join(timeout=5)
        with self._lock:
            self._threads.clear()

    def __enter__(self) -> "SyncLinkServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:  # pragma: no cover - closed under our feet
                break
            name = f"peer-{self._next_peer}"
            self._next_peer += 1
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn, name), daemon=True)
            with self._lock:
                self._connections.add(conn)
                # Prune finished connection threads so a long-lived
                # server under churn never accumulates dead Thread
                # objects (and close() never joins a graveyard).
                self._threads = [t for t in self._threads if t.is_alive()]
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket, name: str) -> None:
        proto = LinkProtocol(
            self._root, "responder", config=self._config,
            metrics=lambda: self.metrics.session(name),
            kex=self._kex,
        )
        try:
            self._drive_connection(conn, proto)
        except ReproError as exc:
            self.errors.append(f"{name}: {exc}")
        except OSError as exc:
            self.errors.append(f"{name}: connection lost ({exc})")
        finally:
            # The transport is always released, handshake failed or not.
            try:
                conn.close()
            except OSError:  # pragma: no cover - teardown race
                pass
            with self._lock:
                self._connections.discard(conn)

    def _drive_connection(self, conn: socket.socket,
                          proto: LinkProtocol) -> None:
        while not self._stop.is_set():
            chunk = conn.recv(_READ_CHUNK)
            events = (proto.receive_eof() if not chunk
                      else proto.receive_data(chunk))
            closed = False
            for event in events:
                if isinstance(event, ProtocolError):
                    raise event.error
                if isinstance(event, LinkClosed):
                    closed = True
                elif isinstance(event, PayloadReceived):
                    proto.send_payload(self._handler(event.payload))
            # One coalesced write per received chunk: the hello reply and
            # every reply of a batched drain share a single sendall (one
            # syscall per burst instead of one per frame).
            if proto.bytes_to_send:
                conn.sendall(proto.data_to_send())
            if closed or not chunk:
                return
