"""In-memory secure-link transports: deterministic, no sockets, no loop.

:class:`LinkPair` wires an initiator and a responder
:class:`~repro.link.LinkProtocol` back-to-back through plain byte
buffers — the transport the old asyncio-welded design made impossible,
and the one tests want: every byte movement happens inside
:meth:`LinkPair.pump`, synchronously, in a deterministic order, with no
event loop, thread or port involved.

:class:`MemoryLinkServer` / :class:`MemoryLinkClient` dress a
:class:`LinkPair` up in the same server/client shape as the other
transports (``handler`` on the server, ``request``/``send_all`` on the
client), which is what ``repro.serve(codec, transport="memory")``
returns.
"""

from __future__ import annotations

from repro.core.errors import SessionError
from repro.link.events import LinkEvent, PayloadReceived, ProtocolError
from repro.link.protocol import OPEN, LinkProtocol, _resolve_root
from repro.net.metrics import MetricsRegistry, SessionMetrics
from repro.net.session import SessionConfig

__all__ = ["LinkPair", "MemoryLinkServer", "MemoryLinkClient"]


def _echo(payload: bytes) -> bytes:
    """The default handler: send every payload straight back."""
    return payload


def _check_inline(config: SessionConfig, transport: str) -> None:
    """Reject pool offload on transports that run cipher work inline."""
    if config.parallel_workers > 0:
        raise SessionError(
            f"the {transport} transport runs cipher work inline; "
            f"parallel_workers is not supported "
            f"(got {config.parallel_workers})"
        )


class LinkPair:
    """Two :class:`~repro.link.LinkProtocol` ends joined by memory.

    Usage::

        pair = LinkPair(root_key, session_id=b"MEMSID01")
        pair.handshake()
        pair.initiator.send_payload(b"ping")
        _, responder_events = pair.pump()

    Both ends default to sharing ``root`` and ``config`` (so the
    handshake always agrees); pass ``responder_root`` /
    ``responder_config`` to give the responder its own material — the
    handshake then really negotiates, exactly as it would over a
    socket, and a key or policy mismatch raises from
    :meth:`handshake` instead of passing silently.  ``session_id``
    pins the connection namespace for deterministic tests and defaults
    to a random one.

    ``i2r_filter`` / ``r2i_filter`` are per-direction byte filters
    applied to each chunk as it crosses the pair in :meth:`pump`:
    ``filter(chunk) -> bytes``.  Return the chunk unchanged to tap the
    wire (the scenario harness captures bytes this way), return
    modified bytes to inject deliberate stream damage, or ``b""`` to
    swallow the chunk.  ``None`` (the default) moves bytes untouched.

    ``kex`` / ``responder_kex`` are :class:`repro.kex.KexConfig`
    objects enabling the hello-v2 exchange; with only ``kex`` given
    (and no ``responder_root``) both ends share it, mirroring the
    shared-root default.
    """

    def __init__(self, root, config: SessionConfig | None = None,
                 session_id: bytes | None = None, *,
                 responder_root=None,
                 responder_config: SessionConfig | None = None,
                 initiator_metrics: SessionMetrics | None = None,
                 responder_metrics: SessionMetrics | None = None,
                 i2r_filter=None, r2i_filter=None,
                 kex=None, responder_kex=None):
        self.initiator = LinkProtocol(root, "initiator", config=config,
                                      session_id=session_id,
                                      metrics=initiator_metrics,
                                      kex=kex)
        if responder_root is None and responder_kex is None:
            responder_root, responder_config = root, config
            responder_kex = kex
        self.responder = LinkProtocol(responder_root, "responder",
                                      config=responder_config,
                                      metrics=responder_metrics,
                                      kex=responder_kex)
        self._i2r_filter = i2r_filter
        self._r2i_filter = r2i_filter

    def pump(self) -> tuple[list[LinkEvent], list[LinkEvent]]:
        """Shuttle queued bytes both ways until neither end has output.

        Returns ``(initiator_events, responder_events)`` gathered along
        the way.  Deterministic: initiator bytes move first each round.

        Each direction's entire queue moves as *one* chunk per round, so
        the receiving machine decrypts the whole burst through the
        batched path — this is the zero-transport-cost shape the
        link-layer benchmarks measure (docs/net.md, "Link-layer
        performance").
        """
        initiator_events: list[LinkEvent] = []
        responder_events: list[LinkEvent] = []
        while self.initiator.bytes_to_send or self.responder.bytes_to_send:
            data = self.initiator.data_to_send()
            if data and self._i2r_filter is not None:
                data = self._i2r_filter(data)
            if data:
                responder_events.extend(self.responder.receive_data(data))
            data = self.responder.data_to_send()
            if data and self._r2i_filter is not None:
                data = self._r2i_filter(data)
            if data:
                initiator_events.extend(self.initiator.receive_data(data))
        return initiator_events, responder_events

    def handshake(self) -> bytes:
        """Pump until both ends are ``OPEN``; returns the session id.

        Raises the underlying error if either end failed the handshake
        (which cannot happen when both ends were built from the same
        root and config, but can for deliberately mismatched tests).
        """
        initiator_events, responder_events = self.pump()
        for event in (*responder_events, *initiator_events):
            if isinstance(event, ProtocolError):
                raise event.error
        if self.initiator.state != OPEN or self.responder.state != OPEN:
            raise SessionError(
                f"handshake did not complete: initiator "
                f"{self.initiator.state}, responder {self.responder.state}"
            )
        return self.initiator.session_id


class MemoryLinkServer:
    """The responder side of in-process links (``transport="memory"``).

    Holds the root key, link policy and handler; every
    :meth:`connect` mints an independent :class:`LinkPair` session, so
    concurrent in-memory clients namespace their keys exactly like TCP
    connections do.
    """

    def __init__(self, root, config: SessionConfig | None = None,
                 handler=None, *, kex=None):
        root, config = _resolve_root(root, config)
        self._root = root
        self._config = config or SessionConfig()
        self._config.validate(root.params.width)
        _check_inline(self._config, "memory")
        self._kex = kex
        self._handler = handler if handler is not None else _echo
        self._next_peer = 0
        self.metrics = MetricsRegistry()
        self.errors: list[str] = []

    def connect(self, session_id: bytes | None = None,
                root=None,
                config: SessionConfig | None = None, *,
                kex=None) -> "MemoryLinkClient":
        """Open one in-memory connection; returns its client end.

        ``root``/``config`` are the *client's* key material and policy
        (defaulting to the server's own).  The handshake genuinely
        negotiates between the two sides, so a client holding a
        different key or rekey interval fails here with
        :class:`~repro.core.errors.HandshakeError` — exactly as it
        would over a socket transport, never silently.
        """
        if root is None:
            root = self._root
            if config is None:
                config = self._config
        root, config = _resolve_root(root, config)
        if config is not None:
            _check_inline(config, "memory")
        name = f"peer-{self._next_peer}"
        self._next_peer += 1
        metrics = self.metrics.session(name)
        try:
            pair = LinkPair(root, config=config, session_id=session_id,
                            responder_root=self._root,
                            responder_config=self._config,
                            responder_metrics=metrics,
                            kex=kex, responder_kex=self._kex)
            pair.handshake()
        except Exception as exc:
            self.errors.append(f"{name}: {exc}")
            self.metrics.sessions.pop(name, None)  # no slot for failures
            raise
        return MemoryLinkClient(pair, self._handler)

    def close(self) -> None:
        """Nothing to release; present for transport-shape parity."""

    def __enter__(self) -> "MemoryLinkServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MemoryLinkClient:
    """The initiator end of one :class:`MemoryLinkServer` connection.

    Mirrors the blocking-client surface (``request``, ``send_all``,
    ``session``, ``metrics``) but every call completes synchronously by
    pumping the underlying :class:`LinkPair`.
    """

    def __init__(self, pair: LinkPair, handler):
        self._pair = pair
        self._handler = handler
        self.session = pair.initiator.session

    @property
    def metrics(self):
        """This connection's client-side session counters."""
        return self.session.metrics

    @property
    def kex_mode(self) -> str | None:
        """The handshake mode this connection negotiated."""
        return self._pair.initiator.kex_mode

    @property
    def issued_ticket(self):
        """The resumption ticket the server issued, if any."""
        return self._pair.initiator.issued_ticket

    @property
    def fingerprint(self) -> bytes | None:
        """The session root key's fingerprint."""
        return self._pair.initiator.fingerprint

    def request(self, payload: bytes) -> bytes:
        """Send one payload and return its reply."""
        return self.send_all([payload])[0]

    def send_all(self, payloads: list[bytes]) -> list[bytes]:
        """Send every payload; returns the replies index-for-index."""
        initiator = self._pair.initiator
        responder = self._pair.responder
        for payload in payloads:
            initiator.send_payload(payload)
        replies: list[bytes] = []
        while len(replies) < len(payloads):
            initiator_events, responder_events = self._pair.pump()
            progressed = False
            for event in responder_events:
                if isinstance(event, ProtocolError):
                    raise event.error
                if isinstance(event, PayloadReceived):
                    responder.send_payload(self._handler(event.payload))
                    progressed = True
            for event in initiator_events:
                if isinstance(event, ProtocolError):
                    raise event.error
                if isinstance(event, PayloadReceived):
                    replies.append(event.payload)
                    progressed = True
            if not progressed:
                raise SessionError(
                    f"memory link made no progress with {len(replies)} of "
                    f"{len(payloads)} replies collected"
                )
        return replies

    def close(self) -> None:
        """Close both protocol ends (the session stays readable)."""
        self._pair.initiator.close()
        self._pair.responder.close()

    def __enter__(self) -> "MemoryLinkClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
