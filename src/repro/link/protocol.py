"""The sans-IO secure-link protocol state machine.

:class:`LinkProtocol` owns everything about the secure-link protocol
that is *not* I/O: hello handshake sequencing, incremental
:class:`~repro.net.framing.FrameDecoder` framing, the
:class:`~repro.net.session.Session` (per-direction derived keys, nonce
schedule, replay windows) and the close/error lifecycle.  It performs no
I/O itself — callers feed received bytes in (:meth:`receive_data`), pull
typed :mod:`~repro.link.events` out, and drain outbound bytes with
:meth:`data_to_send` — so the same machine drives every transport:
asyncio streams (:mod:`repro.net`), blocking sockets
(:mod:`repro.link.sync`), UDP datagrams (:mod:`repro.link.udp`) and
in-memory pairs (:mod:`repro.link.memory`).

This module imports **no asyncio, socket, selectors or ssl** — directly
or transitively — which ``tests/link/test_sans_io.py`` enforces in a
subprocess.  That is what lets the protocol run on an edge device with
no event loop, or be driven byte-by-byte by an accelerator frontend.

Flow control is the transport's job, but the machine gives it the
signals: :attr:`LinkProtocol.bytes_to_send` reports the queued outbound
bytes, and the contract is to drain :meth:`data_to_send` after every
``receive_*`` / ``send_*`` call before feeding more input, applying the
transport's own backpressure (``await writer.drain()``, bounded queues,
blocking ``sendall``) in between.

State machine (see docs/net.md for the event table)::

      KEX ──(hello-v2 complete: root key derived)──▶ HANDSHAKE
       │                                                │
       │ forged/tampered kex frame,                     │ receive_data(hello ok)
       │ downgrade attempt, EOF                         ▼
       └──────────────▶ FAILED ◀── bad hello ── OPEN ── close() ─▶ CLOSED
                          ▲                      │  ╲
                          │                      │   ╲ receive_eof() → LinkClosed
                          └── framing / replay / CRC damage

The ``KEX`` phase exists only when a :class:`repro.kex.KexConfig` is
passed: it runs the authenticated hello-v2 exchange
(:class:`repro.kex.Handshake`) *ahead* of the classic hello, derives
the MHHEA root key for this session, and only then falls through to
the unchanged ``HANDSHAKE`` → ``OPEN`` path (the classic hello doubles
as key confirmation under the freshly derived root).  Without a kex
config the machine is byte-identical to the pre-kex protocol — the
pre-shared path stays wire-pinned.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.core.errors import (
    CipherFormatError,
    HandshakeError,
    KexError,
    ReplayError,
    ReproError,
    SessionError,
)
from repro.core.key import Key
from repro.kex.handshake import Handshake as KexHandshake, KexConfig
from repro.link.events import (
    HandshakeComplete,
    LinkClosed,
    LinkEvent,
    PacketReceived,
    PayloadReceived,
    ProtocolError,
)
from repro.net.framing import FrameDecoder, Hello
from repro.net.metrics import SessionMetrics
from repro.net.session import Session, SessionConfig, key_fingerprint
from repro.obs import core as _obs
from repro.obs.logs import log_event

__all__ = [
    "KEX",
    "HANDSHAKE",
    "OPEN",
    "CLOSED",
    "FAILED",
    "LinkProtocol",
]

def _resolve_root(root, config: SessionConfig | None):
    """Normalise a ``Key``-or-``Codec`` argument to ``(key, config)``.

    The one duck-typed unwrap every link-layer constructor shares: a
    :class:`repro.api.Codec` (anything with ``.key`` and
    ``.session_config()``) supplies both the root key and — unless the
    caller overrides it — the link policy.  Duck-typed because importing
    :mod:`repro.api` here would be circular.
    """
    if not isinstance(root, Key):
        codec, root = root, root.key
        if config is None:
            config = codec.session_config()
    return root, config


#: Running the negotiated hello-v2 key exchange (kex links only).
KEX = "KEX"
#: Waiting for (initiator: the reply to) the hello frame.
HANDSHAKE = "HANDSHAKE"
#: Handshake done; payload packets flow both ways.
OPEN = "OPEN"
#: Locally closed via :meth:`LinkProtocol.close`; the machine is inert.
CLOSED = "CLOSED"
#: Broken by a protocol violation; the machine refuses further traffic.
FAILED = "FAILED"


class LinkProtocol:
    """One endpoint of the secure link as a pure state machine.

    Parameters
    ----------
    root:
        The shared root :class:`~repro.core.key.Key`, or a
        :class:`repro.api.Codec` (whose key and
        :meth:`~repro.api.Codec.session_config` are used).
    role:
        ``"initiator"`` (emits the first hello, normally the client) or
        ``"responder"`` (answers it, normally the server).
    config:
        The :class:`~repro.net.session.SessionConfig` link policy;
        defaults to the codec's, else to ``SessionConfig()``.
    session_id:
        Initiator only: the 8-byte connection namespace (minted from
        :func:`os.urandom` when omitted).  The responder learns it from
        the peer's hello and must pass ``None``.
    metrics:
        A :class:`~repro.net.session.SessionMetrics` for the session, or
        a zero-argument callable returning one — called only once the
        handshake succeeds, so failed handshakes never register a
        metrics slot.
    datagram:
        ``False`` (stream mode): bytes arrive via :meth:`receive_data`
        and any damage is fatal.  ``True`` (datagram mode): whole frames
        arrive via :meth:`receive_datagram`, and damaged, replayed or
        stale datagrams are *dropped* (counted in
        :attr:`datagrams_dropped`) — the replay window does the
        reordering work, which is what makes best-effort UDP usable.
    decrypt_payloads:
        With ``False``, OPEN-state packet frames are emitted as
        :class:`~repro.link.events.PacketReceived` (undecrypted) so the
        caller can run ``session.decrypt_async`` on a worker pool; the
        default decrypts inline and emits
        :class:`~repro.link.events.PayloadReceived`.
    kex:
        A :class:`repro.kex.KexConfig` to run the authenticated
        hello-v2 exchange ahead of the classic hello.  ``None`` (the
        default) keeps the pre-shared path byte-identical.  With a kex
        config, ``root`` may be ``None`` — the root key is derived by
        the handshake; pass a root as well to let a responder whose
        config allows ``"psk"`` also accept classic pre-shared peers.
        An initiator whose config offers only ``"psk"`` (or offers
        ``"resume"`` without holding a ticket and no ``"ecdh"``)
        simply speaks the classic hello.
    """

    def __init__(self, root, role: str,
                 config: SessionConfig | None = None,
                 session_id: bytes | None = None, *,
                 metrics: "SessionMetrics | Callable[[], SessionMetrics] | None" = None,
                 datagram: bool = False,
                 decrypt_payloads: bool = True,
                 kex: "KexConfig | None" = None):
        if root is not None:
            root, config = _resolve_root(root, config)
        if role not in Session.ROLES:
            raise SessionError(
                f"role must be one of {Session.ROLES}, got {role!r}"
            )
        self._kex_config = kex
        self._kex: "KexHandshake | None" = None
        self.kex_mode: "str | None" = None
        self.issued_ticket = None
        if kex is not None:
            kex.validate()
            if role == "initiator":
                run_v2 = ("ecdh" in kex.modes
                          or ("resume" in kex.modes
                              and kex.ticket is not None))
            else:
                run_v2 = "ecdh" in kex.modes or "resume" in kex.modes
            if not run_v2 and "psk" not in kex.modes:
                raise KexError(
                    "kex config offers neither a usable hello-v2 mode "
                    "nor the pre-shared fallback"
                )
            if run_v2:
                self._kex = KexHandshake(kex, role)
            if root is not None and root.params.width != kex.params.width:
                raise SessionError(
                    f"pre-shared root is {root.params.width}-bit but the "
                    f"kex config derives {kex.params.width}-bit keys"
                )
        if root is None:
            if self._kex is None:
                raise SessionError(
                    "a root key is required unless a kex config with a "
                    "hello-v2 mode is given"
                )
            if "psk" in kex.modes and role == "responder":
                raise SessionError(
                    "a responder allowing 'psk' needs the pre-shared "
                    "root key as well"
                )
            width = kex.params.width
        else:
            width = root.params.width
        self._root = root
        self._config = config or SessionConfig()
        self._config.validate(width)
        self.role = role
        self._metrics = metrics
        self._datagram = datagram
        self._decrypt_payloads = decrypt_payloads
        self._fingerprint = key_fingerprint(root) if root is not None else None
        self._decoder = FrameDecoder(
            self._config.max_wire_payload(width)
        )
        self._out: list[bytes] = []
        self._out_size = 0
        self._session: Session | None = None
        self._state = HANDSHAKE
        self._peer_closed = False
        #: Datagram-mode only: damaged/replayed/stale datagrams dropped.
        self.datagrams_dropped = 0
        #: Stream-mode only: bytes received (and dropped) after the peer's
        #: clean half-close — a conforming peer sends nothing after EOF.
        self.bytes_after_close = 0
        # Observability: instruments are bound once at construction from
        # the then-current registry — when obs is disabled these are the
        # shared no-op singletons, so the hot path pays one empty call.
        registry = _obs.get_registry()
        self._obs = registry
        self._handshake_start = registry.clock() if registry.enabled else 0.0
        self._obs_frames_rx = registry.counter(
            "repro_link_frames_total", direction="rx")
        self._obs_bytes_rx = registry.counter(
            "repro_link_bytes_total", direction="rx")
        self._obs_bytes_tx = registry.counter(
            "repro_link_bytes_total", direction="tx")
        self._obs_handshake = registry.histogram(
            "repro_link_handshake_seconds",
            help="Construction-to-OPEN handshake latency.")
        self._obs_datagram_drops = registry.counter(
            "repro_link_drops_total", reason="datagram")
        self._obs_after_close_drops = registry.counter(
            "repro_link_drops_total", reason="after-close")
        if role == "initiator":
            if session_id is None:
                session_id = os.urandom(8)
            if len(session_id) != 8:
                raise SessionError(
                    f"session id must be 8 bytes, got {len(session_id)}"
                )
            self._session_id: bytes | None = session_id
            if self._kex is not None:
                self._state = KEX
                self._queue(self._kex.first_message())
            else:
                self._queue(self._hello().pack())
        else:
            if session_id is not None:
                raise SessionError(
                    "the responder learns the session id from the peer's "
                    "hello; do not pass one"
                )
            self._session_id = None
            if self._kex is not None:
                self._state = KEX

    # -- introspection ----------------------------------------------------

    @property
    def state(self) -> str:
        """One of ``KEX`` / ``HANDSHAKE`` / ``OPEN`` / ``CLOSED`` /
        ``FAILED``."""
        return self._state

    @property
    def handshaking(self) -> bool:
        """True while the link is still negotiating (``KEX`` or
        ``HANDSHAKE``) — the condition every transport's connect loop
        waits on."""
        return self._state in (KEX, HANDSHAKE)

    @property
    def session(self) -> Session | None:
        """The live :class:`~repro.net.session.Session` (post-handshake)."""
        return self._session

    @property
    def session_id(self) -> bytes | None:
        """This connection's 8-byte namespace (responder: post-hello)."""
        return self._session_id

    @property
    def config(self) -> SessionConfig:
        """The (validated) link policy this machine runs under."""
        return self._config

    @property
    def fingerprint(self) -> bytes | None:
        """The session root key's fingerprint.

        For pre-shared links this is fixed at construction; with a kex
        it is ``None`` until the exchange derives the session root, so
        two values differing across connections is the observable proof
        that each exchange minted fresh keys."""
        return self._fingerprint

    @property
    def tenant_id(self) -> bytes | None:
        """The 16-byte tenant identifier of this link's key exchange.

        On an initiator this is the configured tenant from construction;
        on a responder it is learned from the peer's ClientHello (and is
        therefore only trustworthy once the handshake *completes* — the
        confirm MACs prove the peer holds that tenant's auth secret).
        ``None`` on pre-shared links that never ran hello-v2.
        """
        return self._kex.tenant_id if self._kex is not None else None

    @property
    def peer_closed(self) -> bool:
        """True once :meth:`receive_eof` accepted a clean peer close."""
        return self._peer_closed

    @property
    def bytes_to_send(self) -> int:
        """Outbound bytes queued and not yet drained (flow signal)."""
        return self._out_size

    @property
    def bytes_skipped(self) -> int:
        """Inbound bytes the framing layer discarded (cumulative).

        In datagram mode these are the bytes of unframeable datagrams
        (truncated, corrupted beyond the magic, or junk); in stream mode
        with resync they are the junk scanned past.  The scenario
        harness reconciles this against its injected-fault ledger."""
        return self._decoder.bytes_skipped

    def _hello(self) -> Hello:
        return Hello(
            algorithm=self._config.algorithm,
            width=self._root.params.width,
            session_id=self._session_id,
            fingerprint=self._fingerprint,
            rekey_interval=self._config.rekey_interval,
        )

    # -- inbound ----------------------------------------------------------

    def receive_data(self, data: bytes) -> list[LinkEvent]:
        """Absorb a stream chunk; return the events it completes.

        Arbitrary chunk boundaries are fine (one byte at a time works);
        partial frames wait in the decoder.  Any protocol violation
        returns a single :class:`~repro.link.events.ProtocolError` and
        moves the machine to ``FAILED``.  After ``CLOSED``/``FAILED``
        input is ignored; after a clean peer close it is dropped *with
        accounting* (``repro_link_drops_total{reason="after-close"}``
        and :attr:`bytes_after_close`) — a conforming peer never sends
        past its own EOF, so silence here would hide a misbehaving one.

        This is the link hot path, and it is batched: every consecutive
        run of ciphertext frames in the chunk goes through
        :meth:`Session.decrypt_batch <repro.net.session.Session.decrypt_batch>`
        in one call (one header parse per packet, one observability
        update per run) and events are collected into a single list per
        call — no per-frame allocation beyond the events themselves.
        """
        if self._datagram:
            raise SessionError("datagram links use receive_datagram()")
        if self._state in (CLOSED, FAILED):
            return []
        if self._peer_closed:
            self._drop_after_close(len(data))
            return []
        self._obs_bytes_rx.inc(len(data))
        try:
            frames = self._decoder.feed(data)
        except CipherFormatError as exc:
            return self._fail(exc)
        if not frames:
            return []
        self._obs_frames_rx.inc(len(frames))
        events: list[LinkEvent] = []
        n = len(frames)
        i = 0
        while i < n:
            frame = frames[i]
            if (self._state == OPEN and frame.kind == "packet"
                    and self._decrypt_payloads):
                # Batch the whole consecutive ciphertext run.
                j = i + 1
                while j < n and frames[j].kind == "packet":
                    j += 1
                accepted: list[tuple[bytes, int]] = []
                try:
                    self._session.decrypt_batch(
                        [frames[k].raw for k in range(i, j)],
                        accepted=accepted)
                except ReproError as exc:
                    # Frames accepted before the damage keep their
                    # events, exactly as per-frame processing would.
                    events.extend(PayloadReceived(payload, seq)
                                  for payload, seq in accepted)
                    events.extend(self._fail(exc))
                    return events
                events.extend(PayloadReceived(payload, seq)
                              for payload, seq in accepted)
                i = j
                continue
            events.extend(self._handle_frame(frame))
            if self._state == FAILED:
                break
            i += 1
        return events

    def receive_datagram(self, datagram: bytes) -> list[LinkEvent]:
        """Absorb one datagram holding exactly one frame (datagram mode).

        Damage, replays and stale sequence numbers drop the datagram
        (counted in :attr:`datagrams_dropped`) instead of failing the
        link — datagram transports lose and reorder packets as a matter
        of course, and the session's replay window already rejects
        everything that is not strictly newer.  Handshake-policy
        mismatches remain fatal: a peer with the wrong key or config can
        never become valid by retransmission.

        With ``decrypt_payloads=False`` an OPEN-state datagram is
        emitted as :class:`~repro.link.events.PacketReceived` exactly
        like the stream path, so the worker-pool offload hatch works
        over datagram transports too — the caller then owns the
        ``session.decrypt`` call and its replay/drop policy.
        """
        if not self._datagram:
            raise SessionError("stream links use receive_data()")
        if self._state in (CLOSED, FAILED):
            return []
        self._obs_bytes_rx.inc(len(datagram))
        # One decoder per link, reset (with skip accounting) whenever a
        # datagram fails to frame — a fresh instance per datagram would
        # hide the skipped bytes and reallocate on the hot path.
        decoder = self._decoder
        try:
            frames = decoder.feed(datagram)
        except CipherFormatError:
            frames = []
        if len(frames) != 1 or decoder.pending:
            decoder.reset(count_skipped=True)
            self._drop_datagram("unframeable")
            return []
        frame = frames[0]
        self._obs_frames_rx.inc()
        if self._state in (KEX, HANDSHAKE):
            return self._handle_frame(frame)
        if frame.kind != "packet":
            # A duplicated hello (e.g. a retransmit): not fatal, just late.
            self._drop_datagram("late-hello")
            return []
        if not self._decrypt_payloads:
            return [PacketReceived(bytes(frame.raw))]
        try:
            payload = self._session.decrypt(frame.raw)
        except (ReplayError, CipherFormatError, SessionError) as exc:
            self._drop_datagram(type(exc).__name__)
            return []
        return [PayloadReceived(payload, self._session.last_recv_seq)]

    def receive_eof(self) -> list[LinkEvent]:
        """The transport hit end-of-stream; classify it.

        A clean close on a frame boundary after the handshake yields
        :class:`~repro.link.events.LinkClosed` — the *receive* side is
        done but the local end may keep sending (TCP half-close).  EOF
        during the handshake or mid-frame is a protocol error.
        """
        if self._state in (CLOSED, FAILED) or self._peer_closed:
            return []
        if self._state in (KEX, HANDSHAKE):
            return self._fail(HandshakeError(
                "peer closed the connection during the handshake "
                "(key or configuration mismatch?)"
            ))
        if self._decoder.pending:
            return self._fail(CipherFormatError(
                f"stream ended mid-frame with {self._decoder.pending} "
                f"bytes pending"
            ))
        self._peer_closed = True
        return [LinkClosed()]

    # -- outbound ---------------------------------------------------------

    def send_payload(self, payload: bytes) -> None:
        """Encrypt ``payload`` into the next packet and queue its bytes.

        Consumes one sequence number on the send direction.  Raises
        :class:`~repro.core.errors.SessionError` unless the link is
        ``OPEN`` (handshake done, not failed, not locally closed).
        """
        self._check_sendable()
        self._queue(self._session.encrypt(payload))

    def send_packet(self, packet: bytes) -> None:
        """Queue a packet already encrypted through :attr:`session`.

        The escape hatch for transports that run the cipher elsewhere
        (the asyncio adapters await ``session.encrypt_async`` on a
        worker pool): the session reserved the sequence number, so the
        caller's only duty is to hand packets over in that same order.
        """
        self._check_sendable()
        self._queue(packet)

    def data_to_send(self) -> bytes:
        """Drain and return every queued outbound byte (may be empty).

        Single-chunk drains (the lockstep request/reply shape) hand the
        queued packet back as-is — no join, no copy; multi-chunk drains
        pay one join for the whole burst.
        """
        out = self._out
        if not out:
            return b""
        data = out[0] if len(out) == 1 else b"".join(out)
        out.clear()
        self._out_size = 0
        self._obs_bytes_tx.inc(len(data))
        return data

    def datagrams_to_send(self) -> list[bytes]:
        """Drain the outbound queue as one-frame datagrams.

        Each element is exactly one wire frame (hello or packet), the
        unit a datagram transport must preserve.
        """
        out = list(self._out)
        self._out.clear()
        if out:
            self._obs_bytes_tx.inc(self._out_size)
            self._out_size = 0
        return out

    def close(self) -> None:
        """Close the machine locally; queued-but-undrained bytes drop.

        Our wire format has no goodbye frame — closing is a transport
        act — so this only moves the state to ``CLOSED`` and makes
        further sends raise.  Idempotent, also after ``FAILED``.
        """
        if self._state not in (FAILED, CLOSED):
            self._transition(CLOSED)
        self._out.clear()
        self._out_size = 0

    # -- internals --------------------------------------------------------

    def _queue(self, chunk: bytes) -> None:
        self._out.append(chunk)
        self._out_size += len(chunk)

    def _check_sendable(self) -> None:
        if self._state != OPEN:
            raise SessionError(f"cannot send on a {self._state} link")

    def _transition(self, state: str) -> None:
        """Move the machine to ``state``, counting the edge."""
        self._state = state
        self._obs.counter("repro_link_state_transitions_total",
                          to=state).inc()

    def _drop_datagram(self, reason: str) -> None:
        self.datagrams_dropped += 1
        self._obs_datagram_drops.inc()
        if self._obs.enabled:
            log_event("repro.link", "link.datagram_drop", level=30,
                      role=self.role, reason=reason)

    def _drop_after_close(self, n_bytes: int) -> None:
        """Account bytes a peer sent after its own clean half-close."""
        self.bytes_after_close += n_bytes
        self._obs_after_close_drops.inc()
        if self._obs.enabled:
            log_event("repro.link", "link.after_close_drop", level=30,
                      role=self.role, dropped_bytes=n_bytes,
                      total_bytes=self.bytes_after_close)

    def _fail(self, error: ReproError) -> list[LinkEvent]:
        """Break the machine: drop queued output, emit the error event."""
        previous, self._state = self._state, FAILED
        self._obs.counter("repro_link_state_transitions_total",
                          to=FAILED).inc()
        if self._obs.enabled:
            log_event("repro.link", "link.fail", level=30, role=self.role,
                      state=previous, error=type(error).__name__,
                      detail=str(error))
        self._out.clear()
        self._out_size = 0
        return [ProtocolError(error)]

    def _handle_frame(self, frame) -> list[LinkEvent]:
        if self._state == KEX:
            return self._handle_kex_frame(frame)
        if self._state == HANDSHAKE:
            if frame.kind != "hello":
                return self._fail(HandshakeError(
                    "received a non-hello frame before the handshake "
                    "completed"
                ))
            try:
                return self._complete_handshake(frame.hello())
            except ReproError as exc:
                return self._fail(exc)
        if frame.kind != "packet":
            return self._fail(HandshakeError(
                "unexpected hello frame mid-session"
            ))
        if not self._decrypt_payloads:
            # Copy out of the decoder's drain buffer: the event may
            # outlive this call and cross a process-pool pickle boundary,
            # neither of which a memoryview survives.
            return [PacketReceived(bytes(frame.raw))]
        try:
            payload = self._session.decrypt(frame.raw)
        except ReproError as exc:
            return self._fail(exc)
        return [PayloadReceived(payload, self._session.last_recv_seq)]

    def _handle_kex_frame(self, frame) -> list[LinkEvent]:
        """One frame while the hello-v2 exchange runs (``KEX`` state).

        The downgrade-protection policy lives here: what this machine
        accepts is fixed by its *local* configuration before any byte
        arrives, never by what the peer sends.  A classic hello-v1 is
        honoured only by a responder explicitly configured with
        ``"psk"`` in its modes (and holding the pre-shared root); every
        other combination — an initiator that sent a ClientHello being
        answered with a hello-v1, a responder that requires hello-v2
        receiving one — aborts the link.
        """
        if frame.kind == "hello":
            if (self.role == "responder"
                    and "psk" in self._kex_config.modes
                    and self._root is not None):
                # An old pre-shared peer: fall back by *local policy*.
                try:
                    return self._complete_handshake(frame.hello())
                except ReproError as exc:
                    return self._fail(exc)
            return self._fail(KexError(
                "peer sent a pre-shared hello on a link that requires "
                "the authenticated key exchange (downgrade attempt?)"
            ))
        if frame.kind != "kex":
            return self._fail(KexError(
                "received ciphertext before the key exchange completed"
            ))
        try:
            reply = self._kex.absorb(frame.raw)
        except KexError as exc:
            return self._fail(exc)
        if reply is not None:
            self._queue(reply)
        if self._kex.done:
            self._install_kex_root()
        return []

    def _install_kex_root(self) -> None:
        """Adopt the handshake-derived root and fall through to the
        classic hello exchange (which now doubles as key confirmation
        under the derived key)."""
        self._root = self._kex.root_key
        self._fingerprint = key_fingerprint(self._root)
        self.kex_mode = self._kex.mode
        self.issued_ticket = self._kex.issued_ticket
        self._transition(HANDSHAKE)
        if self._obs.enabled:
            self._obs.histogram(
                "repro_link_kex_seconds", mode=self._kex.mode,
                help="Construction-to-derived-root kex latency.",
            ).observe(self._obs.clock() - self._handshake_start)
        if self.role == "initiator":
            self._queue(self._hello().pack())

    def _complete_handshake(self, hello: Hello) -> list[LinkEvent]:
        config = self._config
        width = self._root.params.width
        if self.role == "initiator":
            if hello.fingerprint != self._fingerprint:
                raise HandshakeError(
                    "peer key fingerprint does not match ours"
                )
            if hello.session_id != self._session_id:
                raise HandshakeError("peer echoed a different session id")
            if (hello.algorithm != config.algorithm
                    or hello.width != width
                    or hello.rekey_interval != config.rekey_interval):
                raise HandshakeError(
                    f"peer countered with algorithm={hello.algorithm} "
                    f"width={hello.width} "
                    f"rekey_interval={hello.rekey_interval}"
                )
        else:
            if hello.fingerprint != self._fingerprint:
                raise HandshakeError(
                    "key fingerprint mismatch — peer holds a different "
                    "root key"
                )
            if hello.width != width:
                raise HandshakeError(
                    f"peer wants {hello.width}-bit vectors, "
                    f"this end runs {width}"
                )
            if hello.algorithm != config.algorithm:
                raise HandshakeError(
                    f"peer wants algorithm {hello.algorithm}, "
                    f"this end runs {config.algorithm}"
                )
            if hello.rekey_interval != config.rekey_interval:
                raise HandshakeError(
                    f"peer wants rekey interval {hello.rekey_interval}, "
                    f"this end runs {config.rekey_interval}"
                )
            self._session_id = hello.session_id
        metrics = self._metrics() if callable(self._metrics) else self._metrics
        self._session = Session(self._root, role=self.role,
                                session_id=self._session_id,
                                config=config, metrics=metrics)
        if self.role == "responder":
            self._queue(self._hello().pack())
        if self.kex_mode is None:
            self.kex_mode = "psk"
        self._transition(OPEN)
        if self._obs.enabled:
            self._obs.counter("repro_link_handshakes_total",
                              mode=self.kex_mode).inc()
            self._obs_handshake.observe(
                self._obs.clock() - self._handshake_start)
            log_event("repro.link", "link.open", role=self.role,
                      session_id=self._session_id.hex(),
                      kex_mode=self.kex_mode)
        return [HandshakeComplete(self._session_id, hello)]

    def __repr__(self) -> str:
        return (f"<LinkProtocol role={self.role!r} state={self._state} "
                f"datagram={self._datagram} "
                f"bytes_to_send={self.bytes_to_send}>")
