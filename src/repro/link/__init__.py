"""``repro.link`` — the sans-IO secure-link protocol core.

The protocol/transport split (h11/h2 style): one
:class:`LinkProtocol` state machine owns the Hello handshake, framing,
session crypto and replay windows, and every transport is a thin
adapter that moves its bytes —

* :mod:`repro.net` — the asyncio ``SecureLinkServer`` /
  ``SecureLinkClient`` (TCP, pool offload, backpressure);
* :mod:`repro.link.sync` — blocking-socket :class:`SyncLinkClient` /
  :class:`SyncLinkServer` for event-loop-free deployments;
* :mod:`repro.link.udp` — best-effort :class:`UdpLinkClient` /
  :class:`UdpLinkServer`, one frame per datagram, the replay window
  absorbing loss and reordering;
* :mod:`repro.link.memory` — :class:`LinkPair` and the in-process
  server/client, fully deterministic and socket-free for tests.

All four speak byte-identical wire, because the bytes come from the one
machine.  Importing this package (or the protocol/event/memory core
modules) pulls in **no asyncio and no socket** — the socket-backed
transports load lazily on first attribute access, and
``tests/link/test_sans_io.py`` enforces the clean import in a
subprocess.
"""

from repro.link.events import (
    HandshakeComplete,
    LinkClosed,
    LinkEvent,
    PacketReceived,
    PayloadReceived,
    ProtocolError,
)
from repro.link.memory import LinkPair, MemoryLinkClient, MemoryLinkServer
from repro.link.protocol import CLOSED, FAILED, HANDSHAKE, KEX, OPEN, LinkProtocol

__all__ = [
    "LinkProtocol",
    "LinkEvent",
    "HandshakeComplete",
    "PayloadReceived",
    "PacketReceived",
    "LinkClosed",
    "ProtocolError",
    "KEX",
    "HANDSHAKE",
    "OPEN",
    "CLOSED",
    "FAILED",
    "LinkPair",
    "MemoryLinkClient",
    "MemoryLinkServer",
    "SyncLinkClient",
    "SyncLinkServer",
    "UdpLinkClient",
    "UdpLinkServer",
]

#: Socket-backed transports, loaded on first use so the core package
#: import stays free of the socket module (the sans-IO guarantee).
_LAZY = {
    "SyncLinkClient": "repro.link.sync",
    "SyncLinkServer": "repro.link.sync",
    "UdpLinkClient": "repro.link.udp",
    "UdpLinkServer": "repro.link.udp",
}


def __getattr__(name: str):
    """PEP 562 lazy loader for the socket-backed transport classes."""
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    """Advertise lazy transport names alongside the eager exports."""
    return sorted(set(globals()) | set(__all__))
