"""Typed events emitted by the sans-IO :class:`~repro.link.LinkProtocol`.

The protocol core never calls the application; it *returns* events from
``receive_data`` / ``receive_datagram`` / ``receive_eof`` and the
transport adapter dispatches on their types (the h11/h2 convention).
Events are immutable value objects so adapters may queue, log or replay
them freely.

The event vocabulary is deliberately small:

* :class:`HandshakeComplete` — the hello exchange finished and a
  :class:`~repro.net.session.Session` now exists; payload traffic may
  start.
* :class:`PayloadReceived` — one packet arrived, passed the replay gate
  and decrypted cleanly.
* :class:`PacketReceived` — one *framed but undecrypted* packet arrived
  (only with ``decrypt_payloads=False``, the escape hatch the asyncio
  adapters use to offload cipher work to a worker pool).
* :class:`LinkClosed` — the peer closed its sending direction cleanly on
  a frame boundary.
* :class:`ProtocolError` — the link is broken (framing damage, handshake
  mismatch, replay, CRC failure); carries the underlying exception and
  the machine refuses further traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ReproError
from repro.net.framing import Hello

__all__ = [
    "LinkEvent",
    "HandshakeComplete",
    "PayloadReceived",
    "PacketReceived",
    "LinkClosed",
    "ProtocolError",
]


@dataclass(frozen=True)
class LinkEvent:
    """Base class of every event a :class:`~repro.link.LinkProtocol` emits."""


@dataclass(frozen=True)
class HandshakeComplete(LinkEvent):
    """The hello exchange succeeded; ``protocol.session`` is now live."""

    session_id: bytes
    hello: Hello = field(repr=False)


@dataclass(frozen=True)
class PayloadReceived(LinkEvent):
    """One inbound packet decrypted cleanly into ``payload``.

    ``seq`` is the packet's per-direction sequence number, already
    committed to the replay window.
    """

    payload: bytes
    seq: int


@dataclass(frozen=True)
class PacketReceived(LinkEvent):
    """One complete ciphertext packet, framed but *not* decrypted.

    Emitted instead of :class:`PayloadReceived` when the protocol was
    built with ``decrypt_payloads=False``: the caller decrypts through
    ``protocol.session`` itself (the asyncio adapters do this to await a
    worker pool).  The replay gate still runs inside that decrypt call.
    """

    packet: bytes


@dataclass(frozen=True)
class LinkClosed(LinkEvent):
    """The peer's byte stream ended cleanly on a frame boundary.

    Only the *receive* direction is finished; the local end may keep
    sending until it closes its transport (TCP half-close semantics).
    """


@dataclass(frozen=True)
class ProtocolError(LinkEvent):
    """The link is unrecoverably broken; ``error`` says why.

    After emitting this event the machine is in the ``FAILED`` state:
    further ``receive_*`` calls return no events and ``send_payload``
    raises.  Transport adapters should close the connection and surface
    ``error`` to the application.
    """

    error: ReproError
