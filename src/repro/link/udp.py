"""Best-effort UDP datagram transport for the secure link.

One wire frame per datagram, no retransmission, no ordering guarantee:
the session's replay window does the reordering work.  A datagram whose
sequence number is not strictly newer than the last accepted one is
dropped (counted, never fatal), so duplicated and late packets degrade
throughput instead of breaking the link — exactly the
:class:`~repro.link.LinkProtocol` datagram mode
(``receive_datagram`` / ``datagrams_to_send``).

Delivery is best-effort end to end: :meth:`UdpLinkClient.request` sends
one datagram and waits (with a timeout) for one reply, so a lost packet
surfaces as :class:`socket.timeout` for the caller to retry at the
application level.  Cipher work runs inline (``parallel_workers`` is
rejected, as on every non-asyncio transport).
"""

from __future__ import annotations

import socket
import threading
import time

from repro.core.errors import HandshakeError, SessionError
from repro.link.events import (
    HandshakeComplete,
    PayloadReceived,
    ProtocolError,
)
from repro.link.memory import _check_inline, _echo
from repro.link.protocol import HANDSHAKE, LinkProtocol, _resolve_root
from repro.net.framing import HELLO_MAGIC
from repro.net.metrics import MetricsRegistry, SessionMetrics
from repro.net.session import SessionConfig

__all__ = ["UdpLinkClient", "UdpLinkServer"]

#: Largest datagram we ever read; a frame never legally exceeds this.
_MAX_DATAGRAM = 65535

#: Receive poll interval on the server socket; bounds close() latency.
_RECV_POLL = 0.2

#: Concurrent peer sessions one server holds.  UDP has no close signal,
#: so at capacity a new hello evicts the least-recently-active session
#: instead of being dropped — memory stays bounded under spoofed-source
#: floods and a long-lived server keeps accepting new clients forever.
MAX_PEERS = 1024


class UdpLinkClient:
    """One secure-link peer over a connected UDP socket.

    Usage::

        with UdpLinkClient(root_key, port=server.port) as client:
            reply = client.request(b"payload")

    ``timeout`` bounds the wait for each reply datagram; expiry raises
    :class:`socket.timeout` (an ``OSError``) — the caller decides
    whether to retry, because on a best-effort transport only the
    application knows whether a payload is idempotent.
    """

    def __init__(self, root, host: str = "127.0.0.1", port: int = 0,
                 config: SessionConfig | None = None,
                 session_id: bytes | None = None,
                 timeout: float | None = 5.0):
        root, config = _resolve_root(root, config)
        self._root = root
        self._host = host
        self._port = port
        self._config = config or SessionConfig()
        self._config.validate(root.params.width)
        _check_inline(self._config, "udp")
        self._session_id = session_id
        self._timeout = timeout
        self._sock: socket.socket | None = None
        self._proto: LinkProtocol | None = None
        self.session = None

    @property
    def metrics(self) -> SessionMetrics:
        """This connection's session counters (valid once connected)."""
        if self.session is None:
            raise SessionError("client not connected")
        return self.session.metrics

    def connect(self) -> None:
        """Send the hello datagram and wait for the peer's reply."""
        if self.session is not None:
            raise SessionError("client already connected")
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            self._sock.settimeout(self._timeout)
            self._sock.connect((self._host, self._port))
            self._proto = LinkProtocol(self._root, "initiator",
                                       config=self._config,
                                       session_id=self._session_id,
                                       datagram=True)
            for datagram in self._proto.datagrams_to_send():
                self._sock.send(datagram)
            while self._proto.state == HANDSHAKE:
                try:
                    datagram = self._sock.recv(_MAX_DATAGRAM)
                except (socket.timeout, ConnectionRefusedError) as exc:
                    # Timeout: the datagram (or its reply) was lost.
                    # Refusal: ICMP port-unreachable bounced back on the
                    # connected socket — nothing listens on that port.
                    raise HandshakeError(
                        "no hello reply from the peer (server down, or "
                        "the datagram was lost)"
                    ) from exc
                for event in self._proto.receive_datagram(datagram):
                    if isinstance(event, ProtocolError):
                        raise event.error
                    assert isinstance(event, HandshakeComplete)
            self.session = self._proto.session
        except BaseException:
            # A failed handshake must not leak the open socket.
            self.close()
            raise

    def request(self, payload: bytes) -> bytes:
        """Send one payload datagram and wait for its reply datagram."""
        return self.send_all([payload])[0]

    def send_all(self, payloads: list[bytes]) -> list[bytes]:
        """Send payloads in lockstep, one reply awaited per datagram.

        Replayed, duplicated or damaged inbound datagrams are skipped
        (the protocol drops them silently); a reply that never arrives
        raises :class:`socket.timeout` after ``timeout`` seconds.
        """
        if self.session is None or self._sock is None:
            raise SessionError("client not connected")
        replies: list[bytes] = []
        for payload in payloads:
            self._proto.send_payload(payload)
            for datagram in self._proto.datagrams_to_send():
                self._sock.send(datagram)
            while True:
                datagram = self._sock.recv(_MAX_DATAGRAM)
                events = self._proto.receive_datagram(datagram)
                payload_events = [event for event in events
                                  if isinstance(event, PayloadReceived)]
                for event in events:
                    if isinstance(event, ProtocolError):
                        raise event.error
                if payload_events:
                    replies.append(payload_events[0].payload)
                    break
        return replies

    def close(self) -> None:
        """Close the socket (idempotent; the session stays readable)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - teardown race
                pass
            self._sock = None
        if self._proto is not None:
            self._proto.close()

    def __enter__(self) -> "UdpLinkClient":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class UdpLinkServer:
    """Datagram secure-link server: one socket, one thread, many peers.

    Each source address gets its own responder
    :class:`~repro.link.LinkProtocol` (datagram mode) and therefore its
    own derived keys and replay window, exactly like one TCP connection.
    A peer whose handshake fails is recorded in :attr:`errors` and
    forgotten; damaged or replayed data datagrams are silently dropped
    by its protocol.

    Usage::

        with UdpLinkServer(root_key, port=0) as server:
            ...  # server.port is the bound UDP port

    ``inbound_faults`` is the scenario-harness injection hook: a
    callable ``(datagram: bytes) -> list[bytes]`` applied to every
    inbound *data* datagram before the protocol sees it — return ``[]``
    to lose it, several elements to duplicate, modified bytes to
    corrupt (:meth:`repro.scenario.FaultSchedule.filter` has exactly
    this shape).  Hello datagrams bypass the hook so the handshake
    stays deterministic, mirroring the in-memory scenario harness where
    fault schedules start at the first data datagram.
    """

    def __init__(self, root, host: str = "127.0.0.1", port: int = 0,
                 config: SessionConfig | None = None, handler=None,
                 inbound_faults=None):
        root, config = _resolve_root(root, config)
        self._root = root
        self._host = host
        self._requested_port = port
        self._config = config or SessionConfig()
        self._config.validate(root.params.width)
        _check_inline(self._config, "udp")
        self._handler = handler if handler is not None else _echo
        self._inbound_faults = inbound_faults
        self._sock: socket.socket | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._peers: dict[tuple, LinkProtocol] = {}
        self._next_peer = 0
        self.metrics = MetricsRegistry()
        self.errors: list[str] = []

    def start(self) -> None:
        """Bind the UDP socket and start the datagram-serving thread."""
        if self._sock is not None:
            raise RuntimeError("server already started")
        self._stop.clear()
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind((self._host, self._requested_port))
        self._sock.settimeout(_RECV_POLL)
        self._thread = threading.Thread(target=self._serve_loop, daemon=True)
        self._thread.start()

    @property
    def port(self) -> int:
        """The bound UDP port (valid after :meth:`start`)."""
        if self._sock is None:
            raise RuntimeError("server not started")
        return self._sock.getsockname()[1]

    @property
    def peer_links(self) -> tuple:
        """The live per-peer protocol machines, in no particular order.

        Read-only introspection for harnesses and tests that reconcile
        per-peer drop counters (``datagrams_dropped``,
        ``bytes_skipped``) against an external ledger."""
        return tuple(self._peers.values())

    def serve_forever(self) -> None:
        """Block the calling thread until :meth:`close` (for CLI use)."""
        if self._sock is None:
            self.start()
        while self._thread is not None and self._thread.is_alive():
            self._thread.join(timeout=_RECV_POLL)

    def close(self) -> None:
        """Stop serving, close the socket, join the thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        self._peers.clear()

    def __enter__(self) -> "UdpLinkServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _protocol_for(self, addr: tuple,
                      datagram: bytes) -> LinkProtocol | None:
        """The peer's protocol, or ``None`` when the datagram is ignored.

        A *new* source address only earns per-peer state for something
        that at least looks like a hello — over UDP, source addresses
        are attacker-chosen, so junk from a spoofed flood must cost
        nothing but the recvfrom.  At :data:`MAX_PEERS` capacity the
        least-recently-active session is evicted to make room (its
        client, if still alive, sees its next packets dropped and can
        re-handshake).
        """
        proto = self._peers.get(addr)
        if proto is not None:
            proto.last_seen = time.monotonic()
            return proto
        if not datagram.startswith(HELLO_MAGIC):
            return None
        if len(self._peers) >= MAX_PEERS:
            stalest = min(self._peers, key=lambda a: self._peers[a].last_seen)
            self._peers.pop(stalest)
        name = f"peer-{self._next_peer}"
        self._next_peer += 1
        proto = LinkProtocol(
            self._root, "responder", config=self._config,
            metrics=lambda: self.metrics.session(name),
            datagram=True,
        )
        proto.peer_name = name
        proto.last_seen = time.monotonic()
        self._peers[addr] = proto
        return proto

    def _serve_loop(self) -> None:
        while not self._stop.is_set():
            try:
                datagram, addr = self._sock.recvfrom(_MAX_DATAGRAM)
            except socket.timeout:
                continue
            except OSError:  # pragma: no cover - closed under our feet
                break
            try:
                self._serve_datagram(datagram, addr)
            except Exception as exc:
                # A handler bug (or a sendto failure) on one peer's
                # datagram must never kill the serving thread for every
                # peer: record it, drop the offender, keep serving.
                name = getattr(self._peers.get(addr), "peer_name", addr)
                self.errors.append(f"{name}: {exc!r}")
                self._peers.pop(addr, None)

    def _serve_datagram(self, datagram: bytes, addr: tuple) -> None:
        if (self._inbound_faults is not None
                and not datagram.startswith(HELLO_MAGIC)):
            for mutated in self._inbound_faults(datagram):
                self._handle_datagram(bytes(mutated), addr)
            return
        self._handle_datagram(datagram, addr)

    def _handle_datagram(self, datagram: bytes, addr: tuple) -> None:
        proto = self._protocol_for(addr, datagram)
        if proto is None:
            return
        for event in proto.receive_datagram(datagram):
            if isinstance(event, ProtocolError):
                self.errors.append(f"{proto.peer_name}: {event.error}")
                self._peers.pop(addr, None)
                return  # _fail() dropped any queued output with the link
            if isinstance(event, PayloadReceived):
                proto.send_payload(self._handler(event.payload))
        # One outbound drain per inbound datagram: the hello reply and
        # any payload replies leave in a single queue sweep.
        for out in proto.datagrams_to_send():
            self._sock.sendto(out, addr)
