"""Wire format for the hello-v2 key-exchange frames (``MKX2``).

The kex phase runs *ahead* of the classic ``MHLO`` hello, on the same
byte stream, so its frames follow the link's framing conventions: a
4-byte magic, fixed little-endian prefix, explicit body length, and a
CRC-16/CCITT trailer over everything preceding it.  The CRC catches
accidental damage only; malicious tampering is caught by the
transcript-bound confirmation MACs in :mod:`repro.kex.handshake`
(every prefix byte, including the mode byte, is part of the MAC'd
transcript).

Frame layout (DESIGN.md section 11)::

    magic "MKX2" | version u8 | msg_type u8 | mode u8 | flags u8
    | body_len u16 | body | crc16 u16

``mode`` carries the offered-mode *bitmask* on a ClientHello
(:data:`OFFER_ECDH` | :data:`OFFER_RESUME`) and the *selected* mode id
on a ServerHello (:data:`MODE_ECDH` or :data:`MODE_RESUME`).

Three message types::

    CLIENT_HELLO  body = width u8 | n_pairs u8 | client_public 32
                  | client_random 16 | tenant_id 16
                  | ticket_len u16 | ticket
    SERVER_HELLO  body = server_public 32 | server_random 16
                  | ticket_len u16 | ticket | confirm 32
    FINISHED      body = confirm 32

This module is pure serialisation — no key material, no state.  It is
imported by :mod:`repro.net.framing` (to delimit kex frames on the
stream) and by :mod:`repro.kex.handshake` (to build and parse them),
and depends only on :mod:`repro.core.errors` and the CRC helper, so no
import cycle forms.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.errors import CipherFormatError, KexError
from repro.util.crc import crc16_ccitt

__all__ = [
    "KEX_MAGIC",
    "KEX_VERSION",
    "KEX_PREFIX_SIZE",
    "KEX_MAX_BODY",
    "MSG_CLIENT_HELLO",
    "MSG_SERVER_HELLO",
    "MSG_FINISHED",
    "MODE_ECDH",
    "MODE_RESUME",
    "OFFER_ECDH",
    "OFFER_RESUME",
    "KexRecord",
    "ClientHello",
    "ServerHello",
    "Finished",
    "pack_record",
    "unpack_record",
]

KEX_MAGIC = b"MKX2"
KEX_VERSION = 1

MSG_CLIENT_HELLO = 1
MSG_SERVER_HELLO = 2
MSG_FINISHED = 3

#: Selected-mode ids (ServerHello / Finished ``mode`` byte).
MODE_ECDH = 1
MODE_RESUME = 2

#: Offered-mode bits (ClientHello ``mode`` byte).
OFFER_ECDH = 0x01
OFFER_RESUME = 0x02

# magic, version, msg_type, mode, flags, body_len.
_PREFIX = struct.Struct("<4sBBBBH")
KEX_PREFIX_SIZE = _PREFIX.size

#: Ceiling on one kex frame's body — tickets are ~100 bytes, so this is
#: generous while still rejecting a corrupted length field outright.
KEX_MAX_BODY = 2048

_CRC_SIZE = 2

_PUBLIC_SIZE = 32
_RANDOM_SIZE = 16
_TENANT_SIZE = 16
_CONFIRM_SIZE = 32

_CLIENT_HEAD = struct.Struct(f"<BB{_PUBLIC_SIZE}s{_RANDOM_SIZE}s{_TENANT_SIZE}sH")
_SERVER_HEAD = struct.Struct(f"<{_PUBLIC_SIZE}s{_RANDOM_SIZE}sH")


@dataclass(frozen=True)
class KexRecord:
    """One validated kex frame: prefix fields plus the raw body."""

    msg_type: int
    mode: int
    body: bytes
    raw: bytes  # the full wire frame, CRC included

    @property
    def transcript_bytes(self) -> bytes:
        """The bytes bound into the handshake transcript: everything
        but the CRC trailer (the CRC is redundant with the MAC and
        would otherwise have to be recomputed when the confirm field
        is filled in)."""
        return self.raw[:-_CRC_SIZE]


def pack_record(msg_type: int, mode: int, body: bytes) -> bytes:
    """Serialise one kex frame, CRC trailer included."""
    if len(body) > KEX_MAX_BODY:
        raise KexError(f"kex body {len(body)} bytes exceeds {KEX_MAX_BODY}")
    head = _PREFIX.pack(KEX_MAGIC, KEX_VERSION, msg_type, mode, 0, len(body))
    frame = head + body
    return frame + crc16_ccitt(frame).to_bytes(2, "little")


def unpack_record(blob: bytes) -> KexRecord:
    """Parse and validate one complete kex wire frame.

    Raises :class:`CipherFormatError` so the framing layer's
    junk-handling (fatal on streams, resync on datagrams) applies to
    damaged kex frames exactly as it does to damaged hellos.
    """
    blob = bytes(blob)
    if len(blob) < KEX_PREFIX_SIZE + _CRC_SIZE:
        raise CipherFormatError(
            f"kex frame too short: {len(blob)} < {KEX_PREFIX_SIZE + _CRC_SIZE}"
        )
    magic, version, msg_type, mode, flags, body_len = _PREFIX.unpack_from(blob)
    if magic != KEX_MAGIC:
        raise CipherFormatError(f"bad kex magic {magic!r}")
    if version != KEX_VERSION:
        raise CipherFormatError(f"unsupported kex version {version}")
    if flags != 0:
        raise CipherFormatError(f"reserved kex flags set: {flags:#x}")
    if body_len > KEX_MAX_BODY:
        raise CipherFormatError(
            f"kex body length {body_len} exceeds {KEX_MAX_BODY}"
        )
    total = KEX_PREFIX_SIZE + body_len + _CRC_SIZE
    if len(blob) != total:
        raise CipherFormatError(
            f"kex frame length {len(blob)} != advertised {total}"
        )
    crc = int.from_bytes(blob[-_CRC_SIZE:], "little")
    actual = crc16_ccitt(blob[:-_CRC_SIZE])
    if actual != crc:
        raise CipherFormatError(
            f"kex CRC mismatch: frame {crc:#06x}, computed {actual:#06x}"
        )
    if msg_type not in (MSG_CLIENT_HELLO, MSG_SERVER_HELLO, MSG_FINISHED):
        raise CipherFormatError(f"unknown kex message type {msg_type}")
    return KexRecord(msg_type, mode,
                     blob[KEX_PREFIX_SIZE:KEX_PREFIX_SIZE + body_len], blob)


def kex_frame_size(blob: bytes) -> int | None:
    """Total frame size advertised by a (possibly partial) prefix.

    Returns ``None`` while fewer than :data:`KEX_PREFIX_SIZE` bytes are
    in hand; raises :class:`CipherFormatError` for an oversized body so
    a stream decoder can reject before buffering.  Used by
    :class:`repro.net.framing.FrameDecoder`.
    """
    if len(blob) < KEX_PREFIX_SIZE:
        return None
    body_len = int.from_bytes(blob[8:10], "little")
    if body_len > KEX_MAX_BODY:
        raise CipherFormatError(
            f"kex body length {body_len} exceeds {KEX_MAX_BODY}"
        )
    return KEX_PREFIX_SIZE + body_len + _CRC_SIZE


@dataclass(frozen=True)
class ClientHello:
    """Hello-v2 opening message: the client's contribution."""

    offers: int  # OFFER_* bitmask
    width: int
    n_pairs: int
    public: bytes
    random: bytes
    tenant_id: bytes
    ticket: bytes  # empty when no resumption is offered

    def pack(self) -> bytes:
        """Serialise to one complete kex wire frame."""
        body = _CLIENT_HEAD.pack(self.width, self.n_pairs, self.public,
                                 self.random, self.tenant_id,
                                 len(self.ticket)) + self.ticket
        return pack_record(MSG_CLIENT_HELLO, self.offers, body)

    @classmethod
    def unpack(cls, record: KexRecord) -> "ClientHello":
        """Parse from a validated record; raises :class:`KexError`."""
        if record.msg_type != MSG_CLIENT_HELLO:
            raise KexError(f"expected ClientHello, got type {record.msg_type}")
        body = record.body
        if len(body) < _CLIENT_HEAD.size:
            raise KexError(f"ClientHello body too short: {len(body)}")
        (width, n_pairs, public, random_, tenant_id,
         ticket_len) = _CLIENT_HEAD.unpack_from(body)
        ticket = body[_CLIENT_HEAD.size:]
        if len(ticket) != ticket_len:
            raise KexError(
                f"ClientHello ticket length {len(ticket)} != "
                f"advertised {ticket_len}"
            )
        return cls(record.mode, width, n_pairs, public, random_,
                   tenant_id, ticket)


@dataclass(frozen=True)
class ServerHello:
    """Hello-v2 reply: mode selection, server share, fresh ticket."""

    mode: int  # MODE_ECDH or MODE_RESUME
    public: bytes  # all zeros in resume mode (no ECDH share)
    random: bytes
    ticket: bytes  # newly issued resumption ticket (may be empty)
    confirm: bytes  # HMAC over the transcript; all zeros while deriving

    def pack(self) -> bytes:
        """Serialise to one complete kex wire frame."""
        body = (_SERVER_HEAD.pack(self.public, self.random, len(self.ticket))
                + self.ticket + self.confirm)
        return pack_record(MSG_SERVER_HELLO, self.mode, body)

    @classmethod
    def unpack(cls, record: KexRecord) -> "ServerHello":
        """Parse from a validated record; raises :class:`KexError`."""
        if record.msg_type != MSG_SERVER_HELLO:
            raise KexError(f"expected ServerHello, got type {record.msg_type}")
        body = record.body
        if len(body) < _SERVER_HEAD.size + _CONFIRM_SIZE:
            raise KexError(f"ServerHello body too short: {len(body)}")
        public, random_, ticket_len = _SERVER_HEAD.unpack_from(body)
        ticket = body[_SERVER_HEAD.size:-_CONFIRM_SIZE]
        if len(ticket) != ticket_len:
            raise KexError(
                f"ServerHello ticket length {len(ticket)} != "
                f"advertised {ticket_len}"
            )
        return cls(record.mode, public, random_, ticket,
                   body[-_CONFIRM_SIZE:])

    def with_confirm(self, confirm: bytes) -> "ServerHello":
        """A copy with the confirmation MAC filled in (or zeroed)."""
        return ServerHello(self.mode, self.public, self.random,
                           self.ticket, confirm)


@dataclass(frozen=True)
class Finished:
    """The client's closing confirmation MAC."""

    mode: int
    confirm: bytes

    def pack(self) -> bytes:
        """Serialise to one complete kex wire frame."""
        return pack_record(MSG_FINISHED, self.mode, self.confirm)

    @classmethod
    def unpack(cls, record: KexRecord) -> "Finished":
        """Parse from a validated record; raises :class:`KexError`."""
        if record.msg_type != MSG_FINISHED:
            raise KexError(f"expected Finished, got type {record.msg_type}")
        if len(record.body) != _CONFIRM_SIZE:
            raise KexError(f"Finished body must be {_CONFIRM_SIZE} bytes, "
                           f"got {len(record.body)}")
        return cls(record.mode, record.body)
