"""``repro.kex`` — authenticated key exchange for the secure link.

Reproduces the ECCDH→symmetric-cipher composition of the paper's
hardware lineage (SNIPPETS.md Snippets 1–2: a curve-agreement core
keying a block cipher) in software: an ephemeral X25519 handshake
derives the MHHEA root key per session, with session-resumption
tickets and a per-tenant key hierarchy layered on top.  Like
:mod:`repro.obs`, the subsystem is sans-IO and zero-dependency — pure
:mod:`hashlib`/:mod:`hmac`/:mod:`struct`, no sockets, no event loop —
so the link protocol can drive it anywhere it runs itself.

* :mod:`repro.kex.x25519` — RFC 7748 scalar multiplication;
* :mod:`repro.kex.hkdf` — RFC 5869 HKDF-SHA256;
* :mod:`repro.kex.wire` — the ``MKX2`` hello-v2 frame format;
* :mod:`repro.kex.handshake` — the two-round-trip state machine
  (:class:`Handshake`) with transcript-bound confirmation MACs and
  mode negotiation (downgrade attempts abort, never degrade);
* :mod:`repro.kex.tickets` — server-sealed single-use resumption
  tickets (:class:`TicketVault`);
* :mod:`repro.kex.keyring` — the fleet-root → per-tenant →
  per-session derivation tree (:class:`TenantKeyring`).

See docs/kex.md for the wire format, the full derivation tree, and
the downgrade-protection argument.
"""

from repro.core.errors import KexError
from repro.kex.handshake import (
    KEX_MODES,
    Handshake,
    KexConfig,
    ResumptionTicket,
    kex_auth_secret,
)
from repro.kex.hkdf import hkdf, hkdf_expand, hkdf_extract
from repro.kex.keyring import TENANT_ID_SIZE, TenantKeyring, normalize_tenant_id
from repro.kex.tickets import TicketVault
from repro.kex.x25519 import (
    X25519_BASEPOINT,
    public_key,
    shared_secret,
    x25519,
)

__all__ = [
    "KexError",
    "KEX_MODES",
    "Handshake",
    "KexConfig",
    "ResumptionTicket",
    "kex_auth_secret",
    "hkdf",
    "hkdf_extract",
    "hkdf_expand",
    "TENANT_ID_SIZE",
    "TenantKeyring",
    "normalize_tenant_id",
    "TicketVault",
    "X25519_BASEPOINT",
    "x25519",
    "public_key",
    "shared_secret",
]
