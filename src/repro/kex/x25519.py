"""Pure-Python X25519 Diffie-Hellman (RFC 7748).

The ECCDH→symmetric-cipher composition the paper's lineage built in
hardware (SNIPPETS.md Snippets 1–2: a curve core whose shared secret
keys a block cipher) needs an agreement primitive on the software side.
The container ships no crypto package, so this is the function from
RFC 7748 section 5 written directly against the reference pseudocode:
little-endian field elements over ``p = 2^255 - 19``, scalar clamping,
and the constant-time-shaped Montgomery ladder.  "Constant-time-shaped"
is deliberate phrasing — Python's big integers make true constant time
impossible, so the ladder avoids secret-dependent *branches* (the
conditional swap is arithmetic) but makes no timing guarantee beyond
that.  The test suite pins the RFC section 5.2 scalar-multiplication
vectors and the section 6.1 Diffie-Hellman vectors, plus the iterated
ladder KAT.

Contributory behaviour: RFC 7748 section 6.1 requires checking for the
all-zero shared secret that low-order public keys produce.
:func:`shared_secret` performs that check and raises
:class:`~repro.core.errors.KexError`, so a handshake with a malicious
"point" aborts instead of deriving keys every attacker can compute.
"""

from __future__ import annotations

from repro.core.errors import KexError

__all__ = [
    "KEY_SIZE",
    "X25519_BASEPOINT",
    "clamp_scalar",
    "x25519",
    "public_key",
    "shared_secret",
]

#: Byte length of scalars, coordinates, and shared secrets.
KEY_SIZE = 32

#: The curve25519 base point: u = 9, little-endian.
X25519_BASEPOINT = (9).to_bytes(KEY_SIZE, "little")

_P = 2**255 - 19
_A24 = 121665  # (486662 - 2) / 4


def clamp_scalar(scalar: bytes) -> int:
    """Decode and clamp a 32-byte scalar per RFC 7748 section 5."""
    if len(scalar) != KEY_SIZE:
        raise KexError(f"x25519 scalar must be {KEY_SIZE} bytes, "
                       f"got {len(scalar)}")
    k = bytearray(scalar)
    k[0] &= 248
    k[31] &= 127
    k[31] |= 64
    return int.from_bytes(k, "little")


def _decode_u(u: bytes) -> int:
    """Decode a u-coordinate, masking the unused top bit per the RFC."""
    if len(u) != KEY_SIZE:
        raise KexError(f"x25519 u-coordinate must be {KEY_SIZE} bytes, "
                       f"got {len(u)}")
    masked = bytearray(u)
    masked[31] &= 127
    return int.from_bytes(masked, "little")


def _cswap(swap: int, a: int, b: int) -> tuple[int, int]:
    """Branch-free conditional swap: ``swap`` is 0 or 1."""
    mask = -swap  # 0 or -1: all-zeros or all-ones in two's complement
    dummy = mask & (a ^ b)
    return a ^ dummy, b ^ dummy


def x25519(scalar: bytes, u: bytes) -> bytes:
    """Scalar multiplication: the X25519 function of RFC 7748 section 5."""
    k = clamp_scalar(scalar)
    x1 = _decode_u(u)
    x2, z2 = 1, 0
    x3, z3 = x1, 1
    swap = 0
    for t in range(254, -1, -1):
        k_t = (k >> t) & 1
        swap ^= k_t
        x2, x3 = _cswap(swap, x2, x3)
        z2, z3 = _cswap(swap, z2, z3)
        swap = k_t

        a = (x2 + z2) % _P
        aa = (a * a) % _P
        b = (x2 - z2) % _P
        bb = (b * b) % _P
        e = (aa - bb) % _P
        c = (x3 + z3) % _P
        d = (x3 - z3) % _P
        da = (d * a) % _P
        cb = (c * b) % _P
        x3 = (da + cb) % _P
        x3 = (x3 * x3) % _P
        z3 = (da - cb) % _P
        z3 = (z3 * z3) % _P
        z3 = (z3 * x1) % _P
        x2 = (aa * bb) % _P
        z2 = (e * ((aa + _A24 * e) % _P)) % _P

    x2, x3 = _cswap(swap, x2, x3)
    z2, z3 = _cswap(swap, z2, z3)
    result = (x2 * pow(z2, _P - 2, _P)) % _P
    return result.to_bytes(KEY_SIZE, "little")


def public_key(private: bytes) -> bytes:
    """The public key for a 32-byte private scalar."""
    return x25519(private, X25519_BASEPOINT)


def shared_secret(private: bytes, peer_public: bytes) -> bytes:
    """Diffie-Hellman agreement with contributory-behaviour check.

    Raises :class:`KexError` when the result is all zeros — the
    signature of a low-order peer public key (RFC 7748 section 6.1).
    """
    secret = x25519(private, peer_public)
    if secret == bytes(KEY_SIZE):
        raise KexError("x25519 produced an all-zero shared secret "
                       "(low-order peer public key)")
    return secret
