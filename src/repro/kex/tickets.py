"""Session-resumption tickets: server-sealed, bounded, single-use.

A full X25519 handshake costs two pure-Python scalar multiplications;
a returning client should not pay that on every reconnect.  The server
therefore seals the resumption master secret into an opaque *ticket*
(TLS-session-ticket style) and hands it to the client inside the
ServerHello.  On the next connect the client offers the ticket back;
the server unseals it, and both sides derive fresh session keys from
the recovered master secret plus both fresh randoms — no public-key
work at all.

Sealing construction (stdlib only; the vault secret never leaves the
server, so this is symmetric self-encryption, not a protocol peers
must agree on)::

    ticket   = nonce(16) | ciphertext | mac(16)
    stream   = SHA256(enc_key | nonce | counter_le64) blocks
    mac      = HMAC-SHA256(mac_key, nonce | ciphertext)[:16]
    plain    = master_secret(32) | tenant_id(16) | expiry_f64(8)

``enc_key``/``mac_key`` are HKDF-expanded from the vault secret under
distinct labels.  Verification is encrypt-then-MAC with a constant-time
compare; a tampered ticket is indistinguishable from an unknown one.

Single-use: every redeemed nonce enters a replay cache until the
ticket's own expiry passes, so the same ticket can never key two
sessions (a captured ticket replay forces the attacker into the full
handshake, where the confirmation MACs stop them).  The cache is
bounded; at capacity the vault stops *accepting* (never stops
rejecting) and counts the shed ticket, so memory stays bounded under a
flood of resumption attempts.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct
import time

from repro.core.errors import KexError
from repro.kex.hkdf import hkdf_expand

__all__ = ["TICKET_OVERHEAD", "TicketVault"]

_NONCE_SIZE = 16
_MAC_SIZE = 16
_MASTER_SIZE = 32
_TENANT_SIZE = 16
_EXPIRY = struct.Struct("<d")
_PLAIN_SIZE = _MASTER_SIZE + _TENANT_SIZE + _EXPIRY.size

#: Sealed-ticket size minus the plaintext: nonce plus MAC tag.
TICKET_OVERHEAD = _NONCE_SIZE + _MAC_SIZE


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        blocks.append(hashlib.sha256(
            key + nonce + counter.to_bytes(8, "little")).digest())
        counter += 1
    return b"".join(blocks)[:length]


def _xor(data: bytes, stream: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(data, stream))


class TicketVault:
    """Server-side sealer, redeemer, and replay cache for tickets.

    Parameters
    ----------
    secret:
        The sealing secret; rotate it to invalidate every outstanding
        ticket at once.  :meth:`repro.kex.keyring.TenantKeyring.ticket_secret`
        derives one from the fleet root.
    lifetime_s:
        Seconds a ticket stays redeemable after issue.
    clock:
        Injectable time source (defaults to :func:`time.time`) so tests
        can step expiry deterministically.
    max_pending:
        Replay-cache capacity; redemptions beyond it are rejected
        (counted under ``rejected_capacity``) rather than grow memory.
    """

    def __init__(self, secret: bytes, *, lifetime_s: float = 3600.0,
                 clock=None, rng=None, max_pending: int = 4096):
        if not secret:
            raise KexError("ticket vault secret must be non-empty")
        if lifetime_s <= 0:
            raise KexError(f"ticket lifetime must be positive, "
                           f"got {lifetime_s}")
        self._enc_key = hkdf_expand(secret, b"mhhea-kex ticket enc", 32)
        self._mac_key = hkdf_expand(secret, b"mhhea-kex ticket mac", 32)
        self.lifetime_s = float(lifetime_s)
        self._clock = clock if clock is not None else time.time
        self._rng = rng if rng is not None else os.urandom
        self.max_pending = max_pending
        #: nonce -> expiry of every ticket redeemed and still unexpired.
        self._redeemed: dict[bytes, float] = {}
        self.counters = {
            "issued": 0,
            "accepted": 0,
            "rejected_tampered": 0,
            "rejected_expired": 0,
            "rejected_replayed": 0,
            "rejected_capacity": 0,
        }

    def issue(self, master_secret: bytes, tenant_id: bytes) -> bytes:
        """Seal a resumption master secret into an opaque ticket."""
        if len(master_secret) != _MASTER_SIZE:
            raise KexError(f"master secret must be {_MASTER_SIZE} bytes")
        if len(tenant_id) != _TENANT_SIZE:
            raise KexError(f"tenant id must be {_TENANT_SIZE} bytes")
        expiry = self._clock() + self.lifetime_s
        plain = master_secret + tenant_id + _EXPIRY.pack(expiry)
        nonce = self._rng(_NONCE_SIZE)
        ciphertext = _xor(plain, _keystream(self._enc_key, nonce, len(plain)))
        mac = hmac.new(self._mac_key, nonce + ciphertext,
                       hashlib.sha256).digest()[:_MAC_SIZE]
        self.counters["issued"] += 1
        return nonce + ciphertext + mac

    def redeem(self, ticket: bytes) -> tuple[bytes, bytes] | None:
        """Unseal a ticket; ``(master_secret, tenant_id)`` or ``None``.

        Returning ``None`` (instead of raising) on a bad ticket lets
        the handshake fall back to the full exchange when the client
        also offered ECDH — a stale ticket should cost a round of
        public-key work, not the connection.
        """
        if len(ticket) < TICKET_OVERHEAD + _PLAIN_SIZE:
            self.counters["rejected_tampered"] += 1
            return None
        nonce = ticket[:_NONCE_SIZE]
        ciphertext = ticket[_NONCE_SIZE:-_MAC_SIZE]
        mac = ticket[-_MAC_SIZE:]
        expected = hmac.new(self._mac_key, nonce + ciphertext,
                            hashlib.sha256).digest()[:_MAC_SIZE]
        if not hmac.compare_digest(mac, expected):
            self.counters["rejected_tampered"] += 1
            return None
        plain = _xor(ciphertext, _keystream(self._enc_key, nonce,
                                            len(ciphertext)))
        if len(plain) != _PLAIN_SIZE:
            self.counters["rejected_tampered"] += 1
            return None
        master_secret = plain[:_MASTER_SIZE]
        tenant_id = plain[_MASTER_SIZE:_MASTER_SIZE + _TENANT_SIZE]
        (expiry,) = _EXPIRY.unpack(plain[-_EXPIRY.size:])
        now = self._clock()
        if now >= expiry:
            self.counters["rejected_expired"] += 1
            return None
        self._evict(now)
        if nonce in self._redeemed:
            self.counters["rejected_replayed"] += 1
            return None
        if len(self._redeemed) >= self.max_pending:
            self.counters["rejected_capacity"] += 1
            return None
        self._redeemed[nonce] = expiry
        self.counters["accepted"] += 1
        return master_secret, tenant_id

    def _evict(self, now: float) -> None:
        """Drop replay-cache entries whose tickets have expired anyway."""
        if len(self._redeemed) < self.max_pending:
            return
        expired = [nonce for nonce, expiry in self._redeemed.items()
                   if now >= expiry]
        for nonce in expired:
            del self._redeemed[nonce]

    @property
    def pending(self) -> int:
        """Replay-cache entries currently held."""
        return len(self._redeemed)
