"""The hello-v2 handshake state machine (sans-IO, two round trips).

Message flow, run *ahead* of the classic ``MHLO`` hello exchange on
the same stream (the link layer drives it; see DESIGN.md section 11)::

    initiator                                   responder
    ClientHello(offers, pub_c, rand_c, tenant, ticket?) -->
                  <-- ServerHello(mode, pub_s, rand_s, ticket', confirm_s)
    Finished(confirm_c) -->
    ... then the classic hello-v1 exchange under the derived root ...

Key schedule (all HKDF-SHA256; ``th`` is the SHA-256 transcript hash
over both hello frames, CRC trailers stripped and the server confirm
field zeroed)::

    ikm     = X25519(priv, peer_pub)         (ecdh mode)
            | ticket master secret           (resume mode)
    prk     = HKDF-Extract(salt=auth_secret, ikm)
    resume' = HKDF-Expand(prk, "mhhea-kex resumption" | rand_c | rand_s)
    master  = HKDF-Expand(prk, "mhhea-kex master" | th)
    confirm_s = HMAC(HKDF-Expand(master, "mhhea-kex confirm server"), th)
    confirm_c = HMAC(HKDF-Expand(master, "mhhea-kex confirm client"),
                     th | confirm_s)
    root    = Key.generate(HKDF-Expand(master, "mhhea-kex root key", 8))

Downgrade protection: the ClientHello's offered-mode bitmask and the
ServerHello's selected-mode byte are both inside ``th``, and both
confirmation MACs are keyed through ``auth_secret`` (which an on-path
attacker does not hold).  Tampering with either mode byte — or
substituting whole frames — changes ``th`` on exactly one side, so the
confirm MACs mismatch and the handshake raises
:class:`~repro.core.errors.KexError` instead of completing in a weaker
mode.  Falling back to the *pre-shared* (hello-v1-only) path is a link
policy decision made before any kex frame is sent, never a response to
what arrives on the wire — see ``repro.link.protocol``.

The resumption master secret is derived from ``prk`` and both fresh
randoms *before* the transcript closes, because the ticket that seals
it rides inside the ServerHello and therefore inside ``th`` — deriving
it from ``master`` would be circular.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct
from dataclasses import dataclass, field

from repro.core.errors import KexError
from repro.core.key import MAX_PAIRS, Key
from repro.core.params import PAPER_PARAMS, VectorParams
from repro.kex import wire
from repro.kex.hkdf import hkdf_expand, hkdf_extract
from repro.kex.keyring import TENANT_ID_SIZE, TenantKeyring, normalize_tenant_id
from repro.kex.tickets import TicketVault
from repro.kex.x25519 import KEY_SIZE, public_key, shared_secret

__all__ = [
    "KEX_MODES",
    "ResumptionTicket",
    "KexConfig",
    "Handshake",
    "kex_auth_secret",
]

#: Every mode name a :class:`KexConfig` may list.  ``psk`` is a link
#: policy ("the classic hello-v1 pre-shared path is acceptable"), not a
#: hello-v2 wire mode — the state machine below only ever negotiates
#: ``ecdh`` and ``resume``.
KEX_MODES = ("ecdh", "resume", "psk")

_OFFER_BITS = {"ecdh": wire.OFFER_ECDH, "resume": wire.OFFER_RESUME}
_MODE_IDS = {"ecdh": wire.MODE_ECDH, "resume": wire.MODE_RESUME}
_MODE_NAMES = {v: k for k, v in _MODE_IDS.items()}

_RANDOM_SIZE = 16
_CONFIRM_SIZE = 32
_ZERO_CONFIRM = bytes(_CONFIRM_SIZE)

_TICKET_MAGIC = b"MTK1"


def kex_auth_secret(root: Key) -> bytes:
    """Derive a handshake-authentication secret from a pre-shared key.

    Lets deployments bootstrap authenticated ECDH from the root key
    they already share: the handshake then adds forward secrecy on top
    of the existing trust relationship.
    """
    ikm = root.to_bytes() + bytes([root.params.width, len(root)])
    return hkdf_expand(hkdf_extract(b"mhhea-kex psk auth", ikm),
                       b"mhhea-kex auth secret", 32)


@dataclass(frozen=True)
class ResumptionTicket:
    """A client's half of a resumption: the sealed ticket plus the
    master secret it will prove knowledge of when redeeming."""

    ticket: bytes
    master_secret: bytes
    tenant_id: bytes

    def to_bytes(self) -> bytes:
        """Serialise for at-rest storage (the CLI's ``--ticket-file``)."""
        return (_TICKET_MAGIC + self.tenant_id + self.master_secret
                + struct.pack("<H", len(self.ticket)) + self.ticket)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ResumptionTicket":
        """Parse the :meth:`to_bytes` form; raises :class:`KexError`."""
        head = len(_TICKET_MAGIC) + TENANT_ID_SIZE + 32 + 2
        if len(blob) < head or blob[:4] != _TICKET_MAGIC:
            raise KexError("not a serialised resumption ticket")
        tenant_id = blob[4:4 + TENANT_ID_SIZE]
        master = blob[4 + TENANT_ID_SIZE:4 + TENANT_ID_SIZE + 32]
        (ticket_len,) = struct.unpack_from("<H", blob, head - 2)
        ticket = blob[head:]
        if len(ticket) != ticket_len:
            raise KexError("resumption ticket file is truncated")
        return cls(ticket, master, tenant_id)


@dataclass(frozen=True)
class KexConfig:
    """Everything one endpoint needs to run (or accept) hello-v2.

    ``modes`` is the endpoint's policy: which of ``ecdh`` / ``resume``
    / ``psk`` it will speak.  ``auth_secret`` is the shared
    authentication secret — or supply ``keyring`` and the secret is
    derived per tenant.  ``ticket`` (client) and ``tickets`` (server
    vault) drive resumption.
    """

    auth_secret: "bytes | None" = None
    modes: tuple = ("ecdh",)
    params: VectorParams = PAPER_PARAMS
    n_pairs: int = MAX_PAIRS
    tenant_id: "bytes | str" = b""
    ticket: "ResumptionTicket | None" = None
    tickets: "TicketVault | None" = None
    keyring: "TenantKeyring | None" = None

    def validate(self) -> None:
        """Reject inconsistent configs with :class:`KexError`."""
        unknown = [m for m in self.modes if m not in KEX_MODES]
        if unknown:
            raise KexError(f"unknown kex modes {unknown}; "
                           f"choose from {list(KEX_MODES)}")
        if not self.modes:
            raise KexError("kex modes must not be empty")
        if len(set(self.modes)) != len(self.modes):
            raise KexError(f"duplicate kex modes in {self.modes}")
        wants_kex = "ecdh" in self.modes or "resume" in self.modes
        if wants_kex and self.auth_secret is None and self.keyring is None:
            raise KexError("kex needs an auth_secret or a keyring")
        if self.params.width % 8 != 0:
            raise KexError(
                f"kex requires whole-byte vector widths, "
                f"got {self.params.width}"
            )
        if self.params.key_bits > 4:
            raise KexError("kex key derivation supports key_bits <= 4")
        if not 1 <= self.n_pairs <= MAX_PAIRS:
            raise KexError(f"n_pairs must be 1..{MAX_PAIRS}, "
                           f"got {self.n_pairs}")
        normalize_tenant_id(self.tenant_id)  # length check

    def resolve_auth_secret(self, tenant_id: bytes) -> bytes:
        """The authentication secret for ``tenant_id`` under this config."""
        if self.keyring is not None:
            return self.keyring.tenant_secret(tenant_id)
        if self.auth_secret is None:
            raise KexError("no auth secret available for kex")
        return self.auth_secret


@dataclass
class _Derived:
    """Output of the key schedule, shared by both roles."""

    master: bytes
    server_confirm: bytes
    client_confirm: bytes
    root_key: Key
    resumption_master: bytes
    transcript_hash: bytes = field(repr=False, default=b"")


class Handshake:
    """One endpoint's hello-v2 state machine.

    Sans-IO: :meth:`first_message` and :meth:`absorb` trade raw kex
    frames (as delimited by :class:`repro.net.framing.FrameDecoder`);
    the caller owns every byte of transport.  Any protocol violation
    raises :class:`KexError` and poisons the instance — the link layer
    maps that to a handshake abort, never a downgrade.
    """

    def __init__(self, config: KexConfig, role: str, *,
                 private_key: "bytes | None" = None,
                 random_bytes: "bytes | None" = None,
                 rng=None):
        if role not in ("initiator", "responder"):
            raise ValueError(f"role must be initiator/responder, got {role!r}")
        config.validate()
        if not any(m in config.modes for m in ("ecdh", "resume")):
            raise KexError("hello-v2 needs 'ecdh' or 'resume' in modes")
        self.config = config
        self.role = role
        self._rng = rng if rng is not None else os.urandom
        self._private = (private_key if private_key is not None
                         else self._rng(KEY_SIZE))
        self._random = (random_bytes if random_bytes is not None
                        else self._rng(_RANDOM_SIZE))
        self.done = False
        self.failed = False
        self.mode: "str | None" = None
        self.root_key: "Key | None" = None
        self.issued_ticket: "ResumptionTicket | None" = None
        self.tenant_id = normalize_tenant_id(config.tenant_id)
        self._derived: "_Derived | None" = None
        self._client_wire: "bytes | None" = None
        self._state = ("start" if role == "initiator" else "wait_client_hello")

    # -- initiator side ---------------------------------------------------

    def first_message(self) -> "bytes | None":
        """The opening ClientHello (initiator) or ``None`` (responder)."""
        if self.role != "initiator":
            return None
        if self._state != "start":
            raise KexError(f"first_message called in state {self._state}")
        offers = 0
        if "ecdh" in self.config.modes:
            offers |= wire.OFFER_ECDH
        ticket = b""
        if "resume" in self.config.modes and self.config.ticket is not None:
            offers |= wire.OFFER_RESUME
            ticket = self.config.ticket.ticket
        if not offers:
            raise self._fail(KexError(
                "nothing to offer: no 'ecdh' mode and no resumption ticket"
            ))
        # A resume-only offer never needs the Montgomery ladder: the
        # responder only reads ``public`` in ECDH mode, which it cannot
        # select without OFFER_ECDH.  Skipping it makes resumption
        # handshakes cheap enough to open hundreds of links per second
        # in pure Python (the relay's concurrent-link tests lean on it).
        public = (public_key(self._private) if offers & wire.OFFER_ECDH
                  else bytes(KEY_SIZE))
        hello = wire.ClientHello(
            offers=offers,
            width=self.config.params.width,
            n_pairs=self.config.n_pairs,
            public=public,
            random=self._random,
            tenant_id=self.tenant_id,
            ticket=ticket,
        )
        raw = hello.pack()
        self._client_wire = raw
        self._state = "wait_server_hello"
        return raw

    def absorb(self, raw: bytes) -> "bytes | None":
        """Feed one complete kex frame; returns the reply frame, if any."""
        if self.failed:
            raise KexError("handshake already failed")
        raw = bytes(raw)
        try:
            record = wire.unpack_record(raw)
        except Exception as exc:  # CipherFormatError included
            raise self._fail(KexError(f"malformed kex frame: {exc}"))
        if self._state == "wait_server_hello":
            return self._absorb_server_hello(record)
        if self._state == "wait_client_hello":
            return self._absorb_client_hello(record, raw)
        if self._state == "wait_finished":
            return self._absorb_finished(record)
        raise self._fail(KexError(
            f"unexpected kex frame (type {record.msg_type}) "
            f"in state {self._state}"
        ))

    def _absorb_server_hello(self, record: wire.KexRecord) -> bytes:
        try:
            hello = wire.ServerHello.unpack(record)
        except KexError as exc:
            raise self._fail(exc)
        mode = _MODE_NAMES.get(hello.mode)
        if mode is None:
            raise self._fail(KexError(f"server selected unknown mode "
                                      f"{hello.mode}"))
        if mode not in self.config.modes:
            raise self._fail(KexError(
                f"server selected mode {mode!r} we never offered"
            ))
        if mode == "resume":
            if self.config.ticket is None:
                raise self._fail(KexError(
                    "server selected resumption but no ticket was offered"
                ))
            ikm = self.config.ticket.master_secret
        else:
            try:
                ikm = shared_secret(self._private, hello.public)
            except KexError as exc:
                raise self._fail(exc)
        # Reconstruct the transcript form: confirm zeroed, CRC stripped.
        zero = hello.with_confirm(_ZERO_CONFIRM).pack()
        transcript = (self._client_wire[:-2]
                      + wire.unpack_record(zero).transcript_bytes)
        derived = self._derive(ikm, self._random, hello.random, transcript)
        if not hmac.compare_digest(derived.server_confirm, hello.confirm):
            raise self._fail(KexError(
                "server confirmation MAC mismatch (tampered transcript, "
                "wrong auth secret, or downgrade attempt)"
            ))
        self._derived = derived
        self.mode = mode
        self.root_key = derived.root_key
        if hello.ticket:
            self.issued_ticket = ResumptionTicket(
                ticket=hello.ticket,
                master_secret=derived.resumption_master,
                tenant_id=self.tenant_id,
            )
        self.done = True
        self._state = "done"
        return wire.Finished(hello.mode, derived.client_confirm).pack()

    # -- responder side ---------------------------------------------------

    def _absorb_client_hello(self, record: wire.KexRecord,
                             raw: bytes) -> bytes:
        try:
            hello = wire.ClientHello.unpack(record)
        except KexError as exc:
            raise self._fail(exc)
        if hello.width != self.config.params.width:
            raise self._fail(KexError(
                f"client wants {hello.width}-bit vectors, "
                f"this link is configured for {self.config.params.width}"
            ))
        if hello.n_pairs != self.config.n_pairs:
            raise self._fail(KexError(
                f"client wants {hello.n_pairs} key pairs, "
                f"this link is configured for {self.config.n_pairs}"
            ))
        self.tenant_id = hello.tenant_id
        mode = None
        ikm = None
        if (hello.offers & wire.OFFER_RESUME and "resume" in self.config.modes
                and hello.ticket and self.config.tickets is not None):
            redeemed = self.config.tickets.redeem(hello.ticket)
            if redeemed is not None:
                master, ticket_tenant = redeemed
                if ticket_tenant == hello.tenant_id:
                    mode, ikm = "resume", master
        if mode is None:
            if not (hello.offers & wire.OFFER_ECDH
                    and "ecdh" in self.config.modes):
                raise self._fail(KexError(
                    "no common kex mode (resumption rejected or not "
                    "offered, and ECDH unavailable)"
                ))
            mode = "ecdh"
            try:
                ikm = shared_secret(self._private, hello.public)
            except KexError as exc:
                raise self._fail(exc)
        public = (public_key(self._private) if mode == "ecdh"
                  else bytes(KEY_SIZE))
        # The resumption master must exist before the transcript closes
        # (the sealed ticket rides inside the ServerHello): derive it
        # from prk + both randoms, then seal, then close the transcript.
        auth = self.config.resolve_auth_secret(hello.tenant_id)
        prk = hkdf_extract(auth, ikm)
        resumption = hkdf_expand(
            prk, b"mhhea-kex resumption" + hello.random + self._random, 32)
        new_ticket = b""
        if self.config.tickets is not None:
            new_ticket = self.config.tickets.issue(resumption,
                                                   hello.tenant_id)
        reply = wire.ServerHello(
            mode=_MODE_IDS[mode],
            public=public,
            random=self._random,
            ticket=new_ticket,
            confirm=_ZERO_CONFIRM,
        )
        transcript = (bytes(raw)[:-2]
                      + wire.unpack_record(reply.pack()).transcript_bytes)
        derived = self._derive(ikm, hello.random, self._random, transcript,
                               prk=prk, resumption=resumption,
                               tenant_id=hello.tenant_id)
        self._derived = derived
        self.mode = mode
        self.root_key = derived.root_key
        if new_ticket:
            self.issued_ticket = ResumptionTicket(
                ticket=new_ticket,
                master_secret=resumption,
                tenant_id=hello.tenant_id,
            )
        self._state = "wait_finished"
        return reply.with_confirm(derived.server_confirm).pack()

    def _absorb_finished(self, record: wire.KexRecord) -> None:
        try:
            finished = wire.Finished.unpack(record)
        except KexError as exc:
            raise self._fail(exc)
        if _MODE_NAMES.get(finished.mode) != self.mode:
            raise self._fail(KexError(
                f"Finished mode {finished.mode} does not match the "
                f"negotiated {self.mode!r}"
            ))
        if not hmac.compare_digest(self._derived.client_confirm,
                                   finished.confirm):
            raise self._fail(KexError(
                "client confirmation MAC mismatch (tampered transcript, "
                "wrong auth secret, or downgrade attempt)"
            ))
        self.done = True
        self._state = "done"
        return None

    # -- key schedule -----------------------------------------------------

    def _derive(self, ikm: bytes, client_random: bytes,
                server_random: bytes, transcript: bytes, *,
                prk: "bytes | None" = None,
                resumption: "bytes | None" = None,
                tenant_id: "bytes | None" = None) -> _Derived:
        if prk is None:
            auth = self.config.resolve_auth_secret(
                tenant_id if tenant_id is not None else self.tenant_id)
            prk = hkdf_extract(auth, ikm)
        if resumption is None:
            resumption = hkdf_expand(
                prk, b"mhhea-kex resumption" + client_random + server_random,
                32)
        th = hashlib.sha256(transcript).digest()
        master = hkdf_expand(prk, b"mhhea-kex master" + th, 32)
        server_key = hkdf_expand(master, b"mhhea-kex confirm server", 32)
        client_key = hkdf_expand(master, b"mhhea-kex confirm client", 32)
        server_confirm = hmac.new(server_key, th, hashlib.sha256).digest()
        client_confirm = hmac.new(client_key, th + server_confirm,
                                  hashlib.sha256).digest()
        seed_bytes = hkdf_expand(master, b"mhhea-kex root key", 8)
        root_key = Key.generate(
            seed=int.from_bytes(seed_bytes, "little"),
            n_pairs=self.config.n_pairs, params=self.config.params)
        return _Derived(master=master, server_confirm=server_confirm,
                        client_confirm=client_confirm, root_key=root_key,
                        resumption_master=resumption, transcript_hash=th)

    def _fail(self, exc: KexError) -> KexError:
        self.failed = True
        self._state = "failed"
        return exc
