"""HKDF-SHA256 (RFC 5869): the derivation step under every kex key.

One raw Diffie-Hellman secret (or one resumption master secret) has to
fan out into independent keys — confirmation-MAC keys per direction,
the MHHEA root-key seed, the next resumption secret, ticket sealing
keys, per-tenant secrets.  HKDF's extract-then-expand construction is
the standard tool: extract concentrates the input keying material into
one pseudorandom key, expand stretches it under distinct ``info``
labels so no two outputs are related.  Pure :mod:`hashlib`/:mod:`hmac`,
pinned against the RFC 5869 appendix A test vectors.
"""

from __future__ import annotations

import hashlib
import hmac

__all__ = ["HASH_SIZE", "hkdf_extract", "hkdf_expand", "hkdf"]

#: Output size of the underlying hash (SHA-256).
HASH_SIZE = 32


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """RFC 5869 section 2.2: concentrate ``ikm`` into one PRK."""
    if not salt:
        salt = bytes(HASH_SIZE)
    return hmac.new(salt, ikm, hashlib.sha256).digest()


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """RFC 5869 section 2.3: stretch ``prk`` to ``length`` bytes."""
    if length < 1 or length > 255 * HASH_SIZE:
        raise ValueError(f"hkdf output length {length} outside "
                         f"[1, {255 * HASH_SIZE}]")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(block) for block in blocks) < length:
        previous = hmac.new(
            prk, previous + info + bytes([counter]), hashlib.sha256
        ).digest()
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(salt: bytes, ikm: bytes, info: bytes, length: int) -> bytes:
    """Extract-then-expand in one call."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)
