"""Per-tenant key hierarchy: one fleet root, many derived secrets.

At fleet scale no operator provisions a distinct MHHEA key per tenant
by hand.  The keyring derives everything from one 32-byte fleet root
via HKDF under distinct labels, so the derivation tree is::

    fleet root
    ├── tenant auth secret   (authenticates that tenant's handshakes)
    ├── tenant PSK root key  (pre-shared-mode MHHEA key for the tenant)
    └── ticket vault secret  (seals resumption tickets, fleet-wide)

and below the handshake each session adds its own layer::

    auth secret + ECDH/ticket secret ──> session master
    ├── per-session MHHEA root key
    ├── confirmation-MAC keys (one per direction)
    └── next resumption master secret

Compromise of one tenant's secrets never reaches a sibling tenant
(HKDF expansion under distinct infos), and the existing epoch ratchet
(:func:`repro.net.session.derive_epoch_key`) keys each traffic epoch
below the per-session root exactly as it always has.
"""

from __future__ import annotations

from repro.core.errors import KexError
from repro.core.key import MAX_PAIRS, Key
from repro.core.params import PAPER_PARAMS, VectorParams
from repro.kex.hkdf import hkdf_expand

__all__ = ["TENANT_ID_SIZE", "normalize_tenant_id", "TenantKeyring"]

#: Wire size of a tenant identifier (ClientHello field).
TENANT_ID_SIZE = 16


def normalize_tenant_id(tenant: "bytes | str") -> bytes:
    """Canonicalise a tenant name to the 16-byte wire form.

    Strings are UTF-8 encoded; anything shorter than 16 bytes is
    NUL-padded.  Longer identifiers are rejected rather than truncated
    (two tenants must never collide onto one key branch).
    """
    raw = tenant.encode("utf-8") if isinstance(tenant, str) else bytes(tenant)
    if len(raw) > TENANT_ID_SIZE:
        raise KexError(
            f"tenant id {raw!r} is {len(raw)} bytes; max {TENANT_ID_SIZE}"
        )
    return raw.ljust(TENANT_ID_SIZE, b"\x00")


class TenantKeyring:
    """Derives per-tenant secrets from a single fleet root."""

    def __init__(self, fleet_root: bytes):
        if len(fleet_root) < 16:
            raise KexError(
                f"fleet root must be at least 16 bytes, got {len(fleet_root)}"
            )
        self._root = bytes(fleet_root)

    def tenant_secret(self, tenant: "bytes | str") -> bytes:
        """The 32-byte handshake-authentication secret for a tenant."""
        tenant_id = normalize_tenant_id(tenant)
        return hkdf_expand(self._root, b"mhhea-kex tenant auth" + tenant_id, 32)

    def tenant_key(self, tenant: "bytes | str", *,
                   params: VectorParams = PAPER_PARAMS,
                   n_pairs: int = MAX_PAIRS) -> Key:
        """The tenant's pre-shared-mode MHHEA root key.

        Lets a fleet run old (PSK-only) clients per tenant while new
        clients handshake: both branches hang off the same root.
        """
        tenant_id = normalize_tenant_id(tenant)
        seed_bytes = hkdf_expand(
            self._root, b"mhhea-kex tenant root key" + tenant_id, 8)
        return Key.generate(seed=int.from_bytes(seed_bytes, "little"),
                            n_pairs=n_pairs, params=params)

    def ticket_secret(self) -> bytes:
        """The fleet-wide ticket-vault sealing secret."""
        return hkdf_expand(self._root, b"mhhea-kex ticket vault", 32)
