"""Per-tenant key hierarchy: one fleet root, many derived secrets.

At fleet scale no operator provisions a distinct MHHEA key per tenant
by hand.  The keyring derives everything from one 32-byte fleet root
via HKDF under distinct labels, so the derivation tree is::

    fleet root
    ├── tenant auth secret   (authenticates that tenant's handshakes)
    ├── tenant PSK root key  (pre-shared-mode MHHEA key for the tenant)
    └── ticket vault secret  (seals resumption tickets, fleet-wide)

and below the handshake each session adds its own layer::

    auth secret + ECDH/ticket secret ──> session master
    ├── per-session MHHEA root key
    ├── confirmation-MAC keys (one per direction)
    └── next resumption master secret

Compromise of one tenant's secrets never reaches a sibling tenant
(HKDF expansion under distinct infos), and the existing epoch ratchet
(:func:`repro.net.session.derive_epoch_key`) keys each traffic epoch
below the per-session root exactly as it always has.
"""

from __future__ import annotations

import time

from repro.core.errors import KexError, TenantRevokedError
from repro.core.key import MAX_PAIRS, Key
from repro.core.params import PAPER_PARAMS, VectorParams
from repro.kex.hkdf import hkdf_expand

__all__ = ["TENANT_ID_SIZE", "normalize_tenant_id", "TenantKeyring"]

#: Wire size of a tenant identifier (ClientHello field).
TENANT_ID_SIZE = 16


def normalize_tenant_id(tenant: "bytes | str") -> bytes:
    """Canonicalise a tenant name to the 16-byte wire form.

    Strings are UTF-8 encoded; anything shorter than 16 bytes is
    NUL-padded.  Longer identifiers are rejected rather than truncated
    (two tenants must never collide onto one key branch).
    """
    raw = tenant.encode("utf-8") if isinstance(tenant, str) else bytes(tenant)
    if len(raw) > TENANT_ID_SIZE:
        raise KexError(
            f"tenant id {raw!r} is {len(raw)} bytes; max {TENANT_ID_SIZE}"
        )
    return raw.ljust(TENANT_ID_SIZE, b"\x00")


class TenantKeyring:
    """Derives per-tenant secrets from a single fleet root.

    The keyring is also the fleet's *revocation authority*: a tenant
    branch can be revoked outright (:meth:`revoke`) or given an
    expiry instant (:meth:`set_expiry`), after which every derivation
    for that tenant raises :class:`~repro.core.errors.TenantRevokedError`
    — and since the handshake resolves its auth secret through the
    keyring, an in-flight handshake for a dead tenant aborts at exactly
    that point.  ``clock`` is injectable (wall-clock seconds) so expiry
    is testable without sleeping.
    """

    def __init__(self, fleet_root: bytes, *, clock=time.time):
        if len(fleet_root) < 16:
            raise KexError(
                f"fleet root must be at least 16 bytes, got {len(fleet_root)}"
            )
        self._root = bytes(fleet_root)
        self._clock = clock
        self._revoked: set = set()
        self._expires: dict = {}

    # -- revocation / expiry ----------------------------------------------

    def revoke(self, tenant: "bytes | str") -> None:
        """Permanently kill a tenant branch: all derivations now refuse."""
        self._revoked.add(normalize_tenant_id(tenant))

    def set_expiry(self, tenant: "bytes | str", expires_at: float) -> None:
        """Refuse derivations for ``tenant`` once the clock passes
        ``expires_at`` (wall-clock seconds, same scale as ``clock``)."""
        self._expires[normalize_tenant_id(tenant)] = float(expires_at)

    def is_active(self, tenant: "bytes | str", now: "float | None" = None) -> bool:
        """True if the tenant branch may still derive secrets."""
        tenant_id = normalize_tenant_id(tenant)
        if tenant_id in self._revoked:
            return False
        expires_at = self._expires.get(tenant_id)
        if expires_at is None:
            return True
        return (self._clock() if now is None else now) < expires_at

    def _check_active(self, tenant_id: bytes) -> None:
        name = tenant_id.rstrip(b"\x00")
        if tenant_id in self._revoked:
            raise TenantRevokedError(
                f"tenant {name!r} is revoked", tenant_id=tenant_id)
        expires_at = self._expires.get(tenant_id)
        if expires_at is not None and self._clock() >= expires_at:
            raise TenantRevokedError(
                f"tenant {name!r} key branch expired", tenant_id=tenant_id)

    # -- derivations -------------------------------------------------------

    def tenant_secret(self, tenant: "bytes | str") -> bytes:
        """The 32-byte handshake-authentication secret for a tenant."""
        tenant_id = normalize_tenant_id(tenant)
        self._check_active(tenant_id)
        return hkdf_expand(self._root, b"mhhea-kex tenant auth" + tenant_id, 32)

    def tenant_key(self, tenant: "bytes | str", *,
                   params: VectorParams = PAPER_PARAMS,
                   n_pairs: int = MAX_PAIRS) -> Key:
        """The tenant's pre-shared-mode MHHEA root key.

        Lets a fleet run old (PSK-only) clients per tenant while new
        clients handshake: both branches hang off the same root.
        """
        tenant_id = normalize_tenant_id(tenant)
        self._check_active(tenant_id)
        seed_bytes = hkdf_expand(
            self._root, b"mhhea-kex tenant root key" + tenant_id, 8)
        return Key.generate(seed=int.from_bytes(seed_bytes, "little"),
                            n_pairs=n_pairs, params=params)

    def ticket_secret(self) -> bytes:
        """The fleet-wide ticket-vault sealing secret."""
        return hkdf_expand(self._root, b"mhhea-kex ticket vault", 32)
