"""Drive the sans-IO link through hostile schedules and check invariants.

The scenario runner is the deterministic harness the ISSUE calls a
"hostile network in a box": a :class:`FaultyLink` wires two datagram-mode
:class:`~repro.link.LinkProtocol` ends together through per-direction
:class:`~repro.scenario.faults.FaultSchedule` processes (and optionally
the stego cover framing of :mod:`repro.scenario.cover`), while an
independent *reference receiver* — a from-scratch mirror of the
receive-side decision procedure, built only from public primitives —
predicts the fate of every arriving datagram.  After the storm the two
accounts must reconcile **exactly**:

* delivered payloads are precisely the oracle's accepted list (and
  therefore an in-order subsequence of the sent payloads);
* ``datagrams_dropped`` equals the oracle's drop total, per direction;
* ``bytes_skipped`` (framing discards) matches byte for byte;
* session metrics (``rx.packets``, ``rx.replays``, ``rx.crc_failures``,
  ``rx.rekeys``) match the mirror's counts — and corrupted nonces
  provoke *no* epoch movement at all, because receiver state commits
  only after a packet authenticates;
* the process-wide obs counters (``repro_link_drops_total{reason=...}``)
  agree with the per-protocol counters they shadow;
* and the link is *not wedged*: both ends are still ``OPEN`` and a
  fault-free probe payload still round-trips in each direction.

Handshakes run fault-free: over a real lossy transport a client simply
retries its hello, but retry loops would make schedule indices depend
on timing — exempting the handshake keeps every fault decision pinned
to a data datagram and the whole run replayable from seeds alone.

:func:`run_stream_control` is the stream-mode counterpart: a fault-free
:class:`~repro.link.memory.LinkPair` run whose captured wire bytes are
compared against independently reconstructed expected bytes
(hello + reference :class:`~repro.net.session.Session` encrypts), plus
the half-close and after-close-accounting checks — proving the scenario
plumbing itself never perturbs the wire.

This module is sans-IO (no sockets, no loop — enforced by
``tests/link/test_sans_io.py``); the UDP mirror lives in
:mod:`repro.scenario.udp` and is imported lazily.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.errors import CipherFormatError, SessionError
from repro.core.key import Key
from repro.core.stream import PacketHeader, verify_packet
from repro.link.events import PayloadReceived, ProtocolError
from repro.link.memory import LinkPair
from repro.link.protocol import OPEN, LinkProtocol, _resolve_root
from repro.net.framing import FrameDecoder, Hello
from repro.net.metrics import SessionMetrics
from repro.net.session import (
    Session,
    SessionConfig,
    key_fingerprint,
    seq_for_nonce,
)
from repro.kex.wire import MSG_CLIENT_HELLO, OFFER_ECDH, pack_record
from repro.obs import core as _obs
from repro.scenario.cover import CoverCodec
from repro.scenario.faults import Delivery, FaultSchedule
from repro.scenario.traffic import DIRECTIONS, TrafficMix

__all__ = [
    "ATTACK_KINDS",
    "SentDatagram",
    "ReferenceReceiver",
    "FaultyLink",
    "Scenario",
    "ScenarioResult",
    "run_scenario",
    "run_stream_control",
    "standard_matrix",
]

#: Session id every scenario link pins (determinism over uniqueness).
SCENARIO_SESSION_ID = b"SCENLINK"

#: Attacker datagram families :meth:`FaultyLink.inject` can forge.
ATTACK_KINDS = ("replay-hello", "replay-data", "forge-hello",
                "forge-junk", "forge-kex")


@dataclass(frozen=True)
class SentDatagram:
    """One data datagram as the sender emitted it, pre-fault."""

    index: int
    """Schedule index on its direction (== send order, 0-based)."""

    direction: str
    """``"i2r"`` or ``"r2i"``."""

    seq: int
    """The sequence number the sender's session consumed for it."""

    frame: bytes
    """The wire frame (header + ciphertext), before cover/faults."""

    payload: bytes
    """The plaintext this frame carries."""


class ReferenceReceiver:
    """Independent mirror of one direction's receive-side decisions.

    Deliberately *not* the :class:`~repro.link.LinkProtocol` code: it
    re-derives every drop/accept decision from the public primitives
    (:class:`~repro.net.framing.FrameDecoder`, header parsing,
    :func:`~repro.net.session.seq_for_nonce`,
    :func:`~repro.core.stream.verify_packet`) so that a bookkeeping bug
    in the protocol's hot path cannot silently agree with itself.  The
    scenario verifier compares the protocol's counters against this
    mirror's, field by field.
    """

    #: Drop buckets, in decision order (first failing gate wins).
    DROP_KINDS = ("unframeable", "late-hello", "session", "replay", "crc")

    def __init__(self, width: int, algorithm: int, rekey_interval: int,
                 max_wire_payload: int):
        self._width = width
        self._algorithm = algorithm
        self._interval = rekey_interval
        #: Mirror of the receiver's one-per-link framing decoder.
        self.decoder = FrameDecoder(max_wire_payload)
        self.last_seq = -1
        self.epoch = 0
        #: Committed epoch ratchets, mirroring ``metrics.rx.rekeys`` —
        #: only packets that authenticate move the epoch, so this counts
        #: exactly the epochs genuine traffic crossed (a corrupted nonce
        #: never ratchets receiver state).
        self.rekeys = 0
        self.drops = {kind: 0 for kind in self.DROP_KINDS}
        #: Accepted datagrams' original send records, in accept order.
        self.accepted: list[SentDatagram] = []
        #: Accepts whose bytes differed from the original (CRC collision
        #: under corruption — possible in principle, never under the
        #: committed seeds; always reported as a problem).
        self.tampered_accepts = 0

    @property
    def total_drops(self) -> int:
        """Every predicted drop, across all buckets."""
        return sum(self.drops.values())

    def absorb(self, data: bytes, record: SentDatagram) -> None:
        """Predict the receiver's decision for one arriving datagram."""
        try:
            frames = self.decoder.feed(bytes(data))
        except CipherFormatError:
            frames = []
        if len(frames) != 1 or self.decoder.pending:
            self.decoder.reset(count_skipped=True)
            self.drops["unframeable"] += 1
            return
        frame = frames[0]
        if frame.kind != "packet":
            self.drops["late-hello"] += 1
            return
        header = PacketHeader.unpack(frame.raw)
        if header.width != self._width or header.algorithm != self._algorithm:
            self.drops["session"] += 1
            return
        try:
            seq = seq_for_nonce(header.nonce, self._width)
        except SessionError:
            self.drops["session"] += 1
            return
        if seq <= self.last_seq:
            self.drops["replay"] += 1
            return
        try:
            verify_packet(frame.raw)
        except CipherFormatError:
            self.drops["crc"] += 1
            return
        # Epoch state moves only on commit — after the integrity check —
        # mirroring the receiver: a corrupted nonce advertising a
        # far-future sequence number fails CRC and must leave no trace.
        epoch = seq // self._interval
        if epoch != self.epoch:
            self.rekeys += epoch - self.epoch
            self.epoch = epoch
        self.last_seq = seq
        if bytes(data) != record.frame:
            self.tampered_accepts += 1
        self.accepted.append(record)


class FaultyLink:
    """Two datagram-mode link ends joined by fault-injected memory.

    The datagram cousin of :class:`~repro.link.memory.LinkPair`: both
    ends are :class:`~repro.link.LinkProtocol` machines in datagram
    mode, and every *data* datagram passes through its direction's
    :class:`~repro.scenario.faults.FaultSchedule` (when one is given)
    and, with ``cover=True``, through the stego cover framing.  A
    :class:`ReferenceReceiver` per direction predicts every outcome for
    :meth:`verify` to reconcile.

    Construct the process-wide obs registry *before* this object if you
    want the obs cross-checks: the protocols bind their instruments at
    construction (:func:`run_scenario` handles this).
    """

    def __init__(self, root, config: SessionConfig | None = None,
                 session_id: bytes = SCENARIO_SESSION_ID, *,
                 i2r_faults: FaultSchedule | None = None,
                 r2i_faults: FaultSchedule | None = None,
                 cover: bool = False, cover_seed: int = 2005):
        root, config = _resolve_root(root, config)
        self._config = config or SessionConfig()
        self._width = root.params.width
        self.initiator = LinkProtocol(root, "initiator", config=self._config,
                                      session_id=session_id, datagram=True,
                                      metrics=SessionMetrics())
        self.responder = LinkProtocol(root, "responder", config=self._config,
                                      datagram=True,
                                      metrics=SessionMetrics())
        self.schedules = {"i2r": i2r_faults, "r2i": r2i_faults}
        max_wire = self._config.max_wire_payload(self._width)
        self.oracles = {
            direction: ReferenceReceiver(
                self._width, self._config.algorithm,
                self._config.rekey_interval, max_wire)
            for direction in DIRECTIONS
        }
        self.sent = {direction: [] for direction in DIRECTIONS}
        #: ``(payload, seq)`` per accepted packet, in delivery order.
        self.delivered = {direction: [] for direction in DIRECTIONS}
        self.arrivals = {direction: 0 for direction in DIRECTIONS}
        self.cover_drops = {direction: 0 for direction in DIRECTIONS}
        #: Handshake datagrams each direction carried (attack material).
        self.hellos = {direction: [] for direction in DIRECTIONS}
        #: Injected attacker datagrams per direction, ``{kind: count}``.
        self.attacks = {direction: {} for direction in DIRECTIONS}
        self.failures: list[str] = []
        self._codecs = None
        if cover:
            # Per direction: the sender's wrap codec, the receiver's
            # unwrap codec, and the oracle's independent unwrap mirror.
            self._codecs = {}
            for offset, direction in enumerate(DIRECTIONS):
                seed = cover_seed + 100 * offset
                self._codecs[direction] = (
                    CoverCodec(root, cover_seed=seed),
                    CoverCodec(root, cover_seed=seed),
                    CoverCodec(root, cover_seed=seed),
                )

    # -- plumbing ---------------------------------------------------------

    def _ends(self, direction: str) -> tuple[LinkProtocol, LinkProtocol]:
        """``(sender, receiver)`` for one direction."""
        if direction == "i2r":
            return self.initiator, self.responder
        if direction == "r2i":
            return self.responder, self.initiator
        raise SessionError(
            f"direction must be one of {DIRECTIONS}, got {direction!r}"
        )

    def _wrap(self, direction: str, frame: bytes) -> bytes:
        if self._codecs is None:
            return frame
        return self._codecs[direction][0].wrap(frame)

    def handshake(self) -> bytes:
        """Open both ends, fault-free; returns the session id.

        Hellos bypass the schedules by design: a real client retries a
        lost hello, and modelling retries would make every later
        schedule index timing-dependent.  Faults start with the first
        data datagram.
        """
        for _ in range(4):
            for direction in DIRECTIONS:
                sender, _ = self._ends(direction)
                for datagram in sender.datagrams_to_send():
                    self.hellos[direction].append(bytes(datagram))
                    self._deliver_clean(direction, bytes(datagram))
            if (self.initiator.state == OPEN
                    and self.responder.state == OPEN):
                return self.initiator.session_id
        raise SessionError(
            f"scenario handshake did not complete: initiator "
            f"{self.initiator.state}, responder {self.responder.state}"
        )

    def _deliver_clean(self, direction: str, datagram: bytes) -> list:
        """One datagram, cover framing applied but no faults."""
        _, receiver = self._ends(direction)
        wire = self._wrap(direction, datagram)
        if self._codecs is not None:
            inner = self._codecs[direction][1].unwrap(wire)
            if inner is None:
                raise SessionError(
                    f"clean cover frame failed to unwrap on {direction}"
                )
        else:
            inner = wire
        events = receiver.receive_datagram(inner)
        for event in events:
            if isinstance(event, ProtocolError):
                raise event.error
        return events

    # -- traffic ----------------------------------------------------------

    def send(self, direction: str, payload: bytes) -> None:
        """Send one payload through this direction's fault process."""
        sender, _ = self._ends(direction)
        sender.send_payload(payload)
        frames = sender.datagrams_to_send()
        if len(frames) != 1:  # pragma: no cover - structural assert
            raise SessionError(
                f"one send queued {len(frames)} datagrams; expected 1"
            )
        frame = bytes(frames[0])
        index = len(self.sent[direction])
        record = SentDatagram(index, direction,
                              sender.session.next_send_seq - 1, frame,
                              bytes(payload))
        self.sent[direction].append(record)
        wire = self._wrap(direction, frame)
        schedule = self.schedules[direction]
        if schedule is None:
            deliveries = [Delivery(index, wire, tampered=False)]
        else:
            deliveries = schedule.apply(wire)
        self._deliver(direction, deliveries)

    def run_mix(self, mix: TrafficMix) -> None:
        """Send every round of ``mix`` through the fault processes."""
        for round_ in mix.rounds:
            for direction, payload in round_:
                self.send(direction, payload)

    def flush(self) -> None:
        """Release every still-held delayed datagram on both directions."""
        for direction in DIRECTIONS:
            schedule = self.schedules[direction]
            if schedule is not None:
                self._deliver(direction, schedule.flush())

    def _deliver(self, direction: str, deliveries: list[Delivery]) -> None:
        _, receiver = self._ends(direction)
        oracle = self.oracles[direction]
        for delivery in deliveries:
            record = self.sent[direction][delivery.origin]
            self.arrivals[direction] += 1
            if self._codecs is not None:
                _, rx_codec, oracle_codec = self._codecs[direction]
                inner = rx_codec.unwrap(delivery.data)
                mirror = oracle_codec.unwrap(delivery.data)
                if (inner is None) != (mirror is None):
                    self.failures.append(
                        f"{direction}: cover unwrap desync at arrival "
                        f"{self.arrivals[direction] - 1}"
                    )
                if inner is None:
                    self.cover_drops[direction] += 1
                    continue
            else:
                inner = delivery.data
                mirror = delivery.data
            oracle.absorb(mirror, record)
            for event in receiver.receive_datagram(inner):
                if isinstance(event, PayloadReceived):
                    self.delivered[direction].append(
                        (event.payload, event.seq))
                elif isinstance(event, ProtocolError):
                    self.failures.append(f"{direction}: {event.error}")

    # -- active attacker --------------------------------------------------

    def _forge(self, direction: str, kind: str) -> bytes:
        """Craft one attacker datagram of ``kind`` for ``direction``."""
        if kind == "replay-hello":
            if not self.hellos[direction]:
                raise SessionError(
                    f"no {direction} handshake datagram captured to replay"
                )
            return self.hellos[direction][0]
        if kind == "replay-data":
            if not self.sent[direction]:
                raise SessionError(
                    f"no {direction} data datagram sent yet to replay"
                )
            return self.sent[direction][-1].frame
        if kind == "forge-hello":
            # A syntactically perfect hello with a fabricated key
            # fingerprint: after the handshake it can only ever be
            # classified as late, never renegotiate the session.
            from repro.net.framing import Hello as _Hello

            return _Hello(algorithm=self._config.algorithm,
                          width=self._width, session_id=b"FORGERID",
                          fingerprint=b"\xde\xad\xbe\xef\xfa\xce\xd0\x0d",
                          rekey_interval=self._config.rekey_interval).pack()
        if kind == "forge-junk":
            # Strictly increasing bytes can never spell a frame magic,
            # so the whole datagram is unframeable noise.
            return bytes(range(32, 96))
        if kind == "forge-kex":
            # A well-framed hello-v2 ClientHello spliced into an open
            # datagram link: framing-valid (CRC fixed up), but the link
            # already has a session — it must be dropped, not answered.
            return pack_record(MSG_CLIENT_HELLO, OFFER_ECDH, bytes(70))
        raise SessionError(
            f"attack kind must be one of {ATTACK_KINDS}, got {kind!r}"
        )

    def inject(self, direction: str, kind: str) -> str:
        """Deliver one attacker-forged datagram; returns its fate.

        The forged bytes travel the same arrival path as scheduled
        deliveries — through the cover layer (which an attacker cannot
        speak) when one is active, then through both the receiver and
        its mirror oracle — so every injection stays inside the exact
        reconciliation :meth:`verify` enforces.  Returns the oracle's
        drop bucket (``"unframeable"``/``"late-hello"``/``"replay"``/
        ...), ``"cover"`` when the cover framing already rejected it, or
        ``"accepted"``.  A replayed data datagram whose original was
        lost in transit is legitimately accepted *once* — the replay
        window guarantees at-most-once delivery, not exactly-never —
        which is why replays reuse the original send record.
        """
        frame = self._forge(direction, kind)
        record = (self.sent[direction][-1] if kind == "replay-data"
                  else SentDatagram(-1, direction, -1, frame, b""))
        _, receiver = self._ends(direction)
        oracle = self.oracles[direction]
        self.attacks[direction][kind] = \
            self.attacks[direction].get(kind, 0) + 1
        self.arrivals[direction] += 1
        if self._codecs is not None:
            _, rx_codec, oracle_codec = self._codecs[direction]
            inner = rx_codec.unwrap(frame)
            mirror = oracle_codec.unwrap(frame)
            if (inner is None) != (mirror is None):
                self.failures.append(
                    f"{direction}: cover unwrap desync on injected "
                    f"{kind} datagram"
                )
            if inner is None:
                self.cover_drops[direction] += 1
                return "cover"
        else:
            inner = frame
            mirror = frame
        before = dict(oracle.drops)
        accepted_before = len(oracle.accepted)
        oracle.absorb(mirror, record)
        for event in receiver.receive_datagram(inner):
            if isinstance(event, PayloadReceived):
                self.delivered[direction].append((event.payload, event.seq))
            elif isinstance(event, ProtocolError):
                self.failures.append(f"{direction}: {event.error}")
        if len(oracle.accepted) > accepted_before:
            return "accepted"
        for bucket, count in oracle.drops.items():
            if count != before[bucket]:
                return bucket
        return "held"  # pragma: no cover - oracle always decides

    # -- invariants -------------------------------------------------------

    def verify(self) -> list[str]:
        """Reconcile every counter against the mirror; returns problems."""
        problems = list(self.failures)
        for direction in DIRECTIONS:
            _, receiver = self._ends(direction)
            oracle = self.oracles[direction]
            expected = [(record.payload, record.seq)
                        for record in oracle.accepted]
            if self.delivered[direction] != expected:
                problems.append(
                    f"{direction}: delivered {len(self.delivered[direction])}"
                    f" payloads, oracle predicted {len(expected)} "
                    f"(or order/content differs)"
                )
            indices = [record.index for record in oracle.accepted]
            if any(b <= a for a, b in zip(indices, indices[1:])):
                problems.append(
                    f"{direction}: accepted datagrams out of send order"
                )
            if receiver.datagrams_dropped != oracle.total_drops:
                problems.append(
                    f"{direction}: receiver dropped "
                    f"{receiver.datagrams_dropped} datagrams, oracle "
                    f"predicted {oracle.total_drops} ({oracle.drops})"
                )
            if receiver.bytes_skipped != oracle.decoder.bytes_skipped:
                problems.append(
                    f"{direction}: receiver skipped "
                    f"{receiver.bytes_skipped} framing bytes, oracle "
                    f"predicted {oracle.decoder.bytes_skipped}"
                )
            if oracle.tampered_accepts:
                problems.append(
                    f"{direction}: {oracle.tampered_accepts} tampered "
                    f"datagrams passed CRC (collision)"
                )
            session = receiver.session
            if session is None:
                problems.append(f"{direction}: receiver has no session")
                continue
            metrics = session.metrics
            checks = (
                ("rx.packets", metrics.rx.packets, len(oracle.accepted)),
                ("rx.replays", metrics.rx.replays, oracle.drops["replay"]),
                ("rx.crc_failures", metrics.rx.crc_failures,
                 oracle.drops["crc"]),
                ("rx.rekeys", metrics.rx.rekeys, oracle.rekeys),
            )
            for name, got, want in checks:
                if got != want:
                    problems.append(
                        f"{direction}: metrics {name} = {got}, oracle "
                        f"predicted {want}"
                    )
            if self._codecs is not None:
                _, rx_codec, oracle_codec = self._codecs[direction]
                if rx_codec.undecodable != oracle_codec.undecodable:
                    problems.append(
                        f"{direction}: cover layer dropped "
                        f"{rx_codec.undecodable} frames, mirror "
                        f"{oracle_codec.undecodable}"
                    )
                if rx_codec.undecodable != self.cover_drops[direction]:
                    problems.append(
                        f"{direction}: cover drop ledger "
                        f"{self.cover_drops[direction]} != codec counter "
                        f"{rx_codec.undecodable}"
                    )
        problems.extend(self._verify_obs())
        return problems

    def _verify_obs(self) -> list[str]:
        """Check the obs counters shadowing the per-protocol ledgers."""
        registry = _obs.get_registry()
        if not registry.enabled:
            return []
        problems = []
        datagram_drops = self.initiator.datagrams_dropped \
            + self.responder.datagrams_dropped
        checks = (
            ("datagram", datagram_drops),
            ("replay", sum(o.drops["replay"] for o in self.oracles.values())),
            ("crc", sum(o.drops["crc"] for o in self.oracles.values())),
        )
        for reason, want in checks:
            got = registry.counter("repro_link_drops_total",
                                   reason=reason).value
            if got != want:
                problems.append(
                    f"obs: repro_link_drops_total{{reason={reason}}} = "
                    f"{got}, ledgers say {want}"
                )
        return problems

    def probe(self) -> list[str]:
        """Fault-free round trip each way: the no-wedge check."""
        problems = []
        for direction in DIRECTIONS:
            sender, _ = self._ends(direction)
            if sender.state != OPEN:
                problems.append(
                    f"{direction}: sender wedged in state {sender.state}"
                )
                continue
            marker = b"scenario-probe/" + direction.encode("ascii")
            sender.send_payload(marker)
            got = []
            for datagram in sender.datagrams_to_send():
                for event in self._deliver_clean(direction, bytes(datagram)):
                    if isinstance(event, PayloadReceived):
                        got.append(event.payload)
            if got != [marker]:
                problems.append(
                    f"{direction}: probe payload not delivered after the "
                    f"storm (got {len(got)} payloads)"
                )
        return problems


@dataclass(frozen=True)
class Scenario:
    """One replayable hostile-network experiment, fully seeded."""

    name: str
    mix: TrafficMix
    """The deterministic traffic to push through the link."""

    faults: dict = field(default_factory=dict)
    """:class:`~repro.scenario.faults.FaultSchedule` kwargs (rates,
    ``delay_span``, ``max_flips``); empty means a clean network."""

    fault_seed: int = 20050307
    rekey_interval: int = 64
    cover: bool = False
    key_seed: int = 2005
    fault_directions: tuple = DIRECTIONS
    """Which directions the schedules cover (both by default)."""

    attacks: tuple = ()
    """Attacker injections as ``(direction, kind)`` pairs
    (:data:`ATTACK_KINDS`), delivered after the traffic mix."""


@dataclass
class ScenarioResult:
    """Everything one scenario run proved (or failed to)."""

    name: str
    ok: bool
    problems: list
    directions: dict
    """Per-direction ledger: sent/arrived/delivered/drop counts,
    ``bytes_skipped``, rekeys, epochs crossed, fault counts, trace
    digest."""

    def to_dict(self) -> dict:
        """JSON-ready form (BENCH_pipeline.json carries these)."""
        return {"name": self.name, "ok": self.ok,
                "problems": list(self.problems),
                "directions": self.directions}


def _trace_digest(schedule: FaultSchedule | None) -> str | None:
    """Stable digest of a schedule's full event trace (for replays)."""
    if schedule is None:
        return None
    blob = repr([(e.index, e.kind, e.size, e.detail)
                 for e in schedule.trace]).encode("ascii")
    return hashlib.sha256(blob).hexdigest()[:16]


def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Run one :class:`Scenario` end to end and verify every invariant.

    Installs a fresh obs registry for the duration (restoring the
    previous one) so the obs cross-checks see only this run's events.
    """
    previous = _obs.set_registry(_obs.ObsRegistry())
    try:
        root = Key.generate(seed=scenario.key_seed)
        config = SessionConfig(rekey_interval=scenario.rekey_interval)
        schedules = {}
        for offset, direction in enumerate(DIRECTIONS):
            if scenario.faults and direction in scenario.fault_directions:
                schedules[direction] = FaultSchedule(
                    scenario.fault_seed + offset, **scenario.faults)
            else:
                schedules[direction] = None
        link = FaultyLink(root, config=config,
                          i2r_faults=schedules["i2r"],
                          r2i_faults=schedules["r2i"],
                          cover=scenario.cover)
        link.handshake()
        link.run_mix(scenario.mix)
        for direction, kind in scenario.attacks:
            link.inject(direction, kind)
        link.flush()
        problems = link.verify()
        problems.extend(link.probe())
        directions = {}
        for direction in DIRECTIONS:
            oracle = link.oracles[direction]
            schedule = schedules[direction]
            accepted_seqs = [record.seq for record in oracle.accepted]
            directions[direction] = {
                "sent": len(link.sent[direction]),
                "arrived": link.arrivals[direction],
                "delivered": len(link.delivered[direction]),
                "dropped": dict(oracle.drops),
                "cover_dropped": link.cover_drops[direction],
                "bytes_skipped": oracle.decoder.bytes_skipped,
                "rekeys": oracle.rekeys,
                "epochs_crossed": (max(accepted_seqs)
                                   // scenario.rekey_interval
                                   if accepted_seqs else 0),
                "faults": dict(schedule.counts) if schedule else None,
                "attacks": dict(link.attacks[direction]),
                "trace_digest": _trace_digest(schedule),
            }
        return ScenarioResult(name=scenario.name, ok=not problems,
                              problems=problems, directions=directions)
    finally:
        _obs.set_registry(previous)


def _tap(bucket: list):
    """A :class:`~repro.link.memory.LinkPair` filter that only records."""
    def tap(chunk: bytes) -> bytes:
        bucket.append(bytes(chunk))
        return chunk
    return tap


def run_stream_control(mix: TrafficMix | None = None,
                       rekey_interval: int = 8,
                       key_seed: int = 2005) -> dict:
    """Fault-free stream-mode control run with byte-exact wire capture.

    Proves the scenario plumbing itself is inert: every captured wire
    byte must equal the independently reconstructed expectation (the
    initiator's hello + a reference :class:`~repro.net.session.Session`
    encrypting the same payloads in the same order — the PR-5
    differential-capture contract), deliveries must match the mix
    exactly, rekey epochs must ratchet on schedule, and the half-close
    path must classify cleanly, including truthful
    ``bytes_after_close`` accounting for a peer that keeps talking.
    Returns a dict with ``ok`` and a ``problems`` list.
    """
    if mix is None:
        mix = TrafficMix.duplex(3 * rekey_interval, seed=5)
    problems: list[str] = []
    root = Key.generate(seed=key_seed)
    config = SessionConfig(rekey_interval=rekey_interval)
    session_id = b"SCENCTRL"
    captured = {"i2r": [], "r2i": []}
    pair = LinkPair(root, config=config, session_id=session_id,
                    i2r_filter=_tap(captured["i2r"]),
                    r2i_filter=_tap(captured["r2i"]))
    pair.handshake()
    delivered = {"i2r": [], "r2i": []}
    for round_ in mix.rounds:
        for direction, payload in round_:
            sender = (pair.initiator if direction == "i2r"
                      else pair.responder)
            sender.send_payload(payload)
        initiator_events, responder_events = pair.pump()
        for events, direction in ((responder_events, "i2r"),
                                  (initiator_events, "r2i")):
            for event in events:
                if isinstance(event, ProtocolError):
                    problems.append(f"{direction}: {event.error}")
                elif isinstance(event, PayloadReceived):
                    delivered[direction].append(event.payload)
    for direction in DIRECTIONS:
        if delivered[direction] != mix.payloads(direction):
            problems.append(
                f"{direction}: delivered payloads differ from the mix"
            )
    # Reconstruct the expected wire bytes from scratch: hello frame plus
    # a reference session encrypting the same payloads in order.
    fingerprint = key_fingerprint(root)
    hello = Hello(algorithm=config.algorithm, width=root.params.width,
                  session_id=session_id, fingerprint=fingerprint,
                  rekey_interval=config.rekey_interval).pack()
    references = {
        "i2r": Session(root, role="initiator", session_id=session_id,
                       config=config),
        "r2i": Session(root, role="responder", session_id=session_id,
                       config=config),
    }
    for direction in DIRECTIONS:
        expected = hello + b"".join(
            references[direction].encrypt(payload)
            for payload in mix.payloads(direction))
        wire = b"".join(captured[direction])
        if wire != expected:
            problems.append(
                f"{direction}: captured wire bytes differ from the "
                f"reference reconstruction ({len(wire)} vs "
                f"{len(expected)} bytes)"
            )
    rekeys = {}
    for direction, sender in (("i2r", pair.initiator),
                              ("r2i", pair.responder)):
        n = len(mix.payloads(direction))
        expected_rekeys = max(0, (n - 1) // rekey_interval)
        got = sender.session.metrics.tx.rekeys
        rekeys[direction] = got
        if got != expected_rekeys:
            problems.append(
                f"{direction}: {got} tx rekeys, schedule implies "
                f"{expected_rekeys}"
            )
    # Half-close: the responder's transport signals EOF; the initiator
    # may keep sending (TCP half-close)...
    pair.initiator.receive_eof()
    if pair.initiator.state != OPEN or not pair.initiator.peer_closed:
        problems.append("half-close mis-classified on the initiator")
    pair.initiator.send_payload(b"post-half-close")
    post_events = pair.responder.receive_data(
        pair.initiator.data_to_send())
    post = [event.payload for event in post_events
            if isinstance(event, PayloadReceived)]
    if post != [b"post-half-close"]:
        problems.append("send after peer half-close did not deliver")
    # ...but a peer that keeps sending after its own EOF is dropped
    # with exact byte accounting.
    late_packet = references["r2i"].encrypt(b"late")
    pair.responder.send_packet(late_packet)
    pair.initiator.receive_data(pair.responder.data_to_send())
    if pair.initiator.bytes_after_close != len(late_packet):
        problems.append(
            f"bytes_after_close = {pair.initiator.bytes_after_close}, "
            f"expected {len(late_packet)}"
        )
    pair.initiator.close()
    pair.responder.close()
    return {
        "ok": not problems,
        "problems": problems,
        "messages": mix.total_messages,
        "wire_bytes": {d: sum(len(c) for c in captured[d])
                       for d in DIRECTIONS},
        "rekeys": rekeys,
        "bytes_after_close": len(late_packet),
    }


def standard_matrix() -> list[Scenario]:
    """The committed scenario battery (BENCH_pipeline.json's section).

    One clean baseline, one schedule per fault family, a combined
    hostile mix in both simplex and duplex shapes, and the cover-traffic
    transport under fire.  Every entry is seeded — rerunning the matrix
    anywhere reproduces the identical traces and verdicts.
    """
    return [
        Scenario("clean-duplex", TrafficMix.duplex(48, seed=11)),
        Scenario("lossy", TrafficMix.imix(120, seed=12),
                 faults={"loss": 0.2}),
        Scenario("dup-heavy", TrafficMix.imix(120, seed=13),
                 faults={"duplicate": 0.3}),
        Scenario("corrupt", TrafficMix.imix(120, seed=14),
                 faults={"corrupt": 0.15}),
        Scenario("truncate", TrafficMix.imix(120, seed=15),
                 faults={"truncate": 0.15}),
        Scenario("reorder", TrafficMix.imix(120, seed=16),
                 faults={"delay": 0.25, "delay_span": 4}),
        Scenario("hostile-mix", TrafficMix.bursty(10, 12, seed=17),
                 faults={"loss": 0.08, "duplicate": 0.08, "corrupt": 0.08,
                         "truncate": 0.04, "delay": 0.08}),
        Scenario("hostile-duplex", TrafficMix.duplex(90, seed=18),
                 faults={"loss": 0.1, "duplicate": 0.1, "corrupt": 0.1,
                         "delay": 0.1}),
        Scenario("cover-hostile", TrafficMix.soak(48, seed=19, duplex=True),
                 faults={"loss": 0.1, "corrupt": 0.1, "truncate": 0.05},
                 cover=True, rekey_interval=16),
        Scenario("attacker-replay", TrafficMix.duplex(48, seed=20),
                 attacks=(("i2r", "replay-hello"), ("i2r", "replay-data"),
                          ("r2i", "replay-hello"), ("r2i", "replay-data"))),
        Scenario("attacker-forge", TrafficMix.imix(60, seed=21),
                 attacks=(("i2r", "forge-hello"), ("i2r", "forge-junk"),
                          ("i2r", "forge-kex"), ("r2i", "forge-hello"),
                          ("r2i", "forge-junk"), ("r2i", "forge-kex"))),
        Scenario("attacker-under-fire", TrafficMix.duplex(90, seed=22),
                 faults={"loss": 0.1, "corrupt": 0.1},
                 attacks=(("i2r", "replay-hello"), ("i2r", "replay-data"),
                          ("i2r", "forge-hello"), ("i2r", "forge-junk"),
                          ("i2r", "forge-kex"), ("r2i", "replay-data"),
                          ("r2i", "forge-kex"))),
    ]
