"""Replayable duplex traffic mixes for scenario runs.

A :class:`TrafficMix` is a fully materialised, deterministic workload:
a list of *rounds*, each round a list of ``(direction, payload)`` sends
("``i2r``" initiator→responder, "``r2i``" responder→initiator).  One
round maps to one transport exchange in the scenario runner — every
payload in a round is queued before any bytes move, so a round is also
the batching unit the link's hot path sees.

The constructors grow the deterministic generators of
:mod:`repro.analysis.workloads` into link-shaped mixes:

* :meth:`TrafficMix.imix` — the classic 40/576/1500 IMIX packet mix,
  one direction;
* :meth:`TrafficMix.bursty` — dense bursts separated by idle rounds
  (on/off interactive traffic);
* :meth:`TrafficMix.duplex` — bidirectional: both ends send every
  round, exercising both replay windows and both key ratchets;
* :meth:`TrafficMix.soak` — thousands of tiny payloads for the
  rekey-crossing soak runs.

Same seed, same mix — the replayability contract every scenario
invariant builds on.
"""

from __future__ import annotations

from repro.analysis.workloads import (
    burst_cycles,
    packet_payloads,
    small_payloads,
)

__all__ = ["DIRECTIONS", "TrafficMix"]

#: The two simplex directions of one duplex link.
DIRECTIONS = ("i2r", "r2i")


class TrafficMix:
    """A deterministic list of send rounds over one duplex link."""

    def __init__(self, name: str, rounds: list):
        for round_ in rounds:
            for direction, payload in round_:
                if direction not in DIRECTIONS:
                    raise ValueError(
                        f"direction must be one of {DIRECTIONS}, "
                        f"got {direction!r}"
                    )
                if not isinstance(payload, (bytes, bytearray)):
                    raise ValueError(
                        f"payloads must be bytes, got {type(payload).__name__}"
                    )
        self.name = name
        self.rounds = [[(direction, bytes(payload))
                        for direction, payload in round_]
                       for round_ in rounds]

    # -- constructors -----------------------------------------------------

    @classmethod
    def imix(cls, n_packets: int, seed: int = 1,
             direction: str = "i2r") -> "TrafficMix":
        """IMIX-mix payloads (40/576/1500 bytes), one per round."""
        payloads = packet_payloads(n_packets, seed)
        return cls(f"imix-{n_packets}",
                   [[(direction, payload)] for payload in payloads])

    @classmethod
    def bursty(cls, n_bursts: int, burst_len: int, seed: int = 1,
               direction: str = "i2r") -> "TrafficMix":
        """Dense IMIX bursts, each burst one round (idle between)."""
        bursts = burst_cycles(n_bursts, burst_len, seed)
        return cls(f"bursty-{n_bursts}x{burst_len}",
                   [[(direction, payload) for payload in burst]
                    for burst in bursts])

    @classmethod
    def duplex(cls, n_rounds: int, seed: int = 1) -> "TrafficMix":
        """Both directions send one IMIX payload every round."""
        i2r = packet_payloads(n_rounds, seed)
        r2i = packet_payloads(n_rounds, seed + 1)
        return cls(f"duplex-{n_rounds}",
                   [[("i2r", a), ("r2i", b)] for a, b in zip(i2r, r2i)])

    @classmethod
    def soak(cls, n_messages: int, seed: int = 1, burst_len: int = 32,
             duplex: bool = True) -> "TrafficMix":
        """Many tiny payloads in bursts, optionally bidirectional.

        Sized for rekey-epoch crossing: with a small
        ``rekey_interval`` a few thousand messages cross several
        epochs per direction in seconds of wall clock.
        """
        payloads = small_payloads(n_messages, seed)
        rounds = []
        for start in range(0, n_messages, burst_len):
            burst = payloads[start:start + burst_len]
            round_ = [("i2r", payload) for payload in burst]
            if duplex:
                round_.extend(
                    ("r2i", payload)
                    for payload in small_payloads(len(burst),
                                                  seed + 7000 + start))
            rounds.append(round_)
        return cls(f"soak-{n_messages}", rounds)

    # -- introspection ----------------------------------------------------

    def payloads(self, direction: str) -> list[bytes]:
        """Every payload sent on ``direction``, in send order."""
        if direction not in DIRECTIONS:
            raise ValueError(
                f"direction must be one of {DIRECTIONS}, got {direction!r}"
            )
        return [payload for round_ in self.rounds
                for sent_direction, payload in round_
                if sent_direction == direction]

    @property
    def total_messages(self) -> int:
        """Payload count across both directions."""
        return sum(len(round_) for round_ in self.rounds)

    @property
    def total_bytes(self) -> int:
        """Plaintext byte count across both directions."""
        return sum(len(payload) for round_ in self.rounds
                   for _, payload in round_)

    def __repr__(self) -> str:
        return (f"<TrafficMix {self.name!r} rounds={len(self.rounds)} "
                f"messages={self.total_messages} bytes={self.total_bytes}>")
