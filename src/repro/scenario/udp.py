"""Cross-transport invariant matrix: the same schedule over real UDP.

The in-memory :class:`~repro.scenario.runner.FaultyLink` proves the
link's hostile-network accounting against a mirror oracle; this module
proves the *transport independence* of that accounting.  The same
seeded :class:`~repro.scenario.faults.FaultSchedule`, applied once
inside the in-memory harness and once via the
:class:`~repro.link.udp.UdpLinkServer` ``inbound_faults`` hook over a
real loopback socket, must yield the identical delivered-payload
sequence and identical drop/skip counters — loopback UDP preserves
order, so arrival order equals the schedule's emission order on both
transports and the runs are bit-comparable.

Two deliberate alignment choices keep the comparison exact:

* handshakes bypass the schedules on both transports (hellos are
  exempt from the UDP hook; the memory harness handshakes before
  faulting), so schedule index 0 is the first data datagram everywhere;
* neither run flushes end-of-stream delayed datagrams — a pull-based
  transport hook has no end-of-stream signal, so datagrams still held
  when traffic stops count as lost on both sides;
* both runs pin the same session id, so the derived keys — and with
  them every ciphertext byte — match across transports, and even
  content-dependent counters (a corrupted length field skips however
  many bytes it happens to spell) compare exactly.

This module opens real sockets and therefore lives *outside* the
sans-IO scenario core; import it lazily (``repro.scenario`` only loads
it on attribute access).
"""

from __future__ import annotations

import socket
import time

from repro.core.errors import SessionError
from repro.core.key import Key
from repro.link.protocol import HANDSHAKE, LinkProtocol
from repro.link.udp import _MAX_DATAGRAM, UdpLinkServer
from repro.net.session import SessionConfig
from repro.scenario.faults import FaultSchedule
from repro.scenario.runner import SCENARIO_SESSION_ID, FaultyLink
from repro.scenario.traffic import TrafficMix

__all__ = ["run_transport_matrix"]

#: Default faults for the matrix: every family except none.
MATRIX_FAULTS = {"loss": 0.1, "duplicate": 0.1, "corrupt": 0.1,
                 "truncate": 0.05, "delay": 0.1}


def _summary(delivered: list, receiver) -> dict:
    return {
        "delivered": len(delivered),
        "accepted_packets": (receiver.session.metrics.rx.packets
                             if receiver.session else 0),
        "datagrams_dropped": receiver.datagrams_dropped,
        "bytes_skipped": receiver.bytes_skipped,
    }


def _memory_run(mix: TrafficMix, faults: dict, fault_seed: int,
                config: SessionConfig, key_seed: int) -> tuple[list, dict]:
    """The reference run: FaultyLink, initiator→responder faults only."""
    root = Key.generate(seed=key_seed)
    link = FaultyLink(root, config=config,
                      i2r_faults=FaultSchedule(fault_seed, **faults))
    link.handshake()
    link.run_mix(mix)
    # No flush(): see the module docstring — end-of-stream held
    # datagrams count as lost, matching the pull-based UDP hook.
    problems = link.verify()
    delivered = [payload for payload, _ in link.delivered["i2r"]]
    summary = _summary(delivered, link.responder)
    summary["oracle_ok"] = not problems
    summary["problems"] = problems
    return delivered, summary


def _udp_run(mix: TrafficMix, faults: dict, fault_seed: int,
             config: SessionConfig, key_seed: int,
             deadline_s: float) -> tuple[list, dict, list]:
    """The same schedule through a real loopback UDP server."""
    root = Key.generate(seed=key_seed)
    schedule = FaultSchedule(fault_seed, **faults)
    received: list[bytes] = []
    emitted = [0]  # datagrams the hook has released towards the protocol

    def handler(payload: bytes) -> bytes:
        received.append(payload)
        return b""

    def hook(datagram: bytes) -> list[bytes]:
        out = schedule.filter(datagram)
        emitted[0] += len(out)
        return out

    problems: list[str] = []
    payloads = mix.payloads("i2r")
    with UdpLinkServer(root, config=config, handler=handler,
                       inbound_faults=hook) as server:
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            sock.connect(("127.0.0.1", server.port))
            sock.settimeout(5.0)
            # Same session id as the memory harness: derived keys, and
            # therefore every ciphertext byte, match across transports —
            # content-dependent skip counts then compare exactly.
            proto = LinkProtocol(root, "initiator", config=config,
                                 session_id=SCENARIO_SESSION_ID,
                                 datagram=True)
            for datagram in proto.datagrams_to_send():
                sock.send(datagram)
            while proto.state == HANDSHAKE:
                proto.receive_datagram(sock.recv(_MAX_DATAGRAM))
            sock.setblocking(False)
            for i, payload in enumerate(payloads):
                proto.send_payload(payload)
                for datagram in proto.datagrams_to_send():
                    sock.send(datagram)
                if i % 8 == 7:
                    time.sleep(0.001)  # let the serving thread drain
                try:  # discard echo replies; they are not under test
                    while True:
                        sock.recv(_MAX_DATAGRAM)
                except (BlockingIOError, InterruptedError):
                    pass
            deadline = time.monotonic() + deadline_s
            peer = None
            while time.monotonic() < deadline:
                peers = server.peer_links
                peer = peers[0] if peers else None
                if peer is not None and schedule.datagrams_seen == len(payloads):
                    accepted = (peer.session.metrics.rx.packets
                                if peer.session else 0)
                    if accepted + peer.datagrams_dropped >= emitted[0]:
                        break
                time.sleep(0.01)
            else:
                problems.append(
                    f"udp run did not drain within {deadline_s}s: "
                    f"{schedule.datagrams_seen}/{len(payloads)} datagrams "
                    f"seen by the schedule"
                )
            if peer is None:
                raise SessionError("udp server never built a peer session")
            if server.errors:
                problems.append(f"udp server errors: {server.errors}")
            summary = _summary(received, peer)
            summary["problems"] = problems
        finally:
            sock.close()
    return list(received), summary, problems


def run_transport_matrix(mix: TrafficMix | None = None,
                         faults: dict | None = None,
                         fault_seed: int = 20050307,
                         rekey_interval: int = 64,
                         key_seed: int = 2005,
                         deadline_s: float = 20.0) -> dict:
    """Run one schedule over memory and UDP; demand identical results.

    Returns a dict with ``ok``, ``problems`` and the per-transport
    summaries.  Identical means: the delivered-payload *sequences* are
    equal element for element, and the receiving protocol's
    ``datagrams_dropped`` and ``bytes_skipped`` ledgers agree — the
    sans-IO machine's accounting is transport-invariant.
    """
    if mix is None:
        # Small payloads keep every datagram well under loopback UDP
        # buffer sizes, so the only losses are the scheduled ones.
        mix = TrafficMix.soak(120, seed=23, duplex=False)
    if faults is None:
        faults = dict(MATRIX_FAULTS)
    config = SessionConfig(rekey_interval=rekey_interval)
    memory_delivered, memory_summary = _memory_run(
        mix, faults, fault_seed, config, key_seed)
    udp_delivered, udp_summary, problems = _udp_run(
        mix, faults, fault_seed, config, key_seed, deadline_s)
    problems = list(memory_summary["problems"]) + problems
    if memory_delivered != udp_delivered:
        problems.append(
            f"delivered sequences diverge: memory "
            f"{len(memory_delivered)} payloads, udp {len(udp_delivered)}"
            f" (or order/content differs)"
        )
    for field in ("datagrams_dropped", "bytes_skipped"):
        if memory_summary[field] != udp_summary[field]:
            problems.append(
                f"{field} diverges: memory {memory_summary[field]}, "
                f"udp {udp_summary[field]}"
            )
    return {
        "ok": not problems,
        "problems": problems,
        "messages": len(mix.payloads("i2r")),
        "memory": memory_summary,
        "udp": udp_summary,
    }
