"""Seeded, replayable hostile-network fault schedules.

A :class:`FaultSchedule` decides the fate of every datagram that passes
through it — deliver, lose, duplicate, corrupt, truncate or delay — from
nothing but a seed and a set of rates.  The same seed applied to the
same datagram sequence always produces the identical fate sequence and
the identical byte-level tampering, which is what makes hostile-network
runs *replayable*: a red scenario in CI reruns locally, byte for byte,
from its seed alone.

Every decision is recorded as a :class:`FaultEvent` in :attr:`FaultSchedule.trace`,
and every emitted datagram is wrapped in a :class:`Delivery` that
remembers which original it came from and whether its bytes were
tampered with.  The scenario runner (:mod:`repro.scenario.runner`)
reconciles these traces exactly against the protocol's own drop
counters (``datagrams_dropped``, ``bytes_skipped``) — injected faults
and observed drops must account for each other to the last byte.

This module is part of the sans-IO scenario core: it imports no
asyncio, socket or event-loop machinery (enforced by
``tests/link/test_sans_io.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.rng import SplitMix64

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "Delivery",
    "FaultSchedule",
]

#: Every fate a schedule can assign to one datagram, in decision order.
FAULT_KINDS = ("loss", "duplicate", "corrupt", "truncate", "delay",
               "deliver")


@dataclass(frozen=True)
class FaultEvent:
    """One fate decision in a schedule's replayable trace.

    ``detail`` pins the byte-level specifics so two runs from the same
    seed can be compared event-for-event: corrupted offsets and XOR
    masks for ``corrupt``, the kept length for ``truncate``, the release
    index for ``delay``.
    """

    index: int
    """Zero-based position of the datagram in this schedule's stream."""

    kind: str
    """One of :data:`FAULT_KINDS`."""

    size: int
    """Original datagram size in bytes."""

    detail: tuple = ()
    """Fate-specific parameters (offsets, masks, lengths, indices)."""


@dataclass(frozen=True)
class Delivery:
    """One datagram as it leaves the schedule towards the receiver."""

    origin: int
    """``FaultEvent.index`` of the original datagram this copy came from."""

    data: bytes
    """The bytes that actually travel (possibly tampered)."""

    tampered: bool
    """True when ``data`` differs from the original (corrupt/truncate)."""


class FaultSchedule:
    """A deterministic per-datagram fault process over one direction.

    Parameters
    ----------
    seed:
        The replay seed.  Two schedules built with the same seed and
        rates assign identical fates to the n-th datagram, whatever its
        content.
    loss, duplicate, corrupt, truncate, delay:
        Probability of each fate, decided by a single uniform draw per
        datagram (mutually exclusive; their sum must not exceed 1; the
        remainder is clean delivery).
    delay_span:
        A delayed datagram is held back and released after between 1 and
        ``delay_span`` later datagrams have passed — the reordering the
        replay window must then absorb.
    max_flips:
        ``corrupt`` XORs between 1 and ``max_flips`` bytes with non-zero
        masks at seeded offsets.

    Feed datagrams with :meth:`apply` (or :meth:`apply_all`); drain any
    still-held delayed datagrams with :meth:`flush` at end of stream.
    The schedule is single-use: to replay, build a new instance with
    the same arguments (:meth:`replay` does exactly that).
    """

    def __init__(self, seed: int, *, loss: float = 0.0,
                 duplicate: float = 0.0, corrupt: float = 0.0,
                 truncate: float = 0.0, delay: float = 0.0,
                 delay_span: int = 3, max_flips: int = 3):
        rates = {"loss": loss, "duplicate": duplicate, "corrupt": corrupt,
                 "truncate": truncate, "delay": delay}
        for name, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], got {rate}")
        if sum(rates.values()) > 1.0:
            raise ValueError(
                f"fault rates sum to {sum(rates.values())}, over 1.0"
            )
        if delay_span < 1:
            raise ValueError(f"delay_span must be >= 1, got {delay_span}")
        if max_flips < 1:
            raise ValueError(f"max_flips must be >= 1, got {max_flips}")
        self.seed = seed
        self.rates = rates
        self.delay_span = delay_span
        self.max_flips = max_flips
        self.trace: list[FaultEvent] = []
        self._rng = SplitMix64(seed)
        self._index = 0
        #: Held (release_after_index, Delivery) pairs, in decision order.
        self._held: list[tuple[int, Delivery]] = []

    # -- introspection ----------------------------------------------------

    @property
    def counts(self) -> dict:
        """Fate totals so far, one entry per :data:`FAULT_KINDS` kind."""
        totals = {kind: 0 for kind in FAULT_KINDS}
        for event in self.trace:
            totals[event.kind] += 1
        return totals

    @property
    def datagrams_seen(self) -> int:
        """How many datagrams this schedule has decided fates for."""
        return self._index

    @property
    def held(self) -> int:
        """Delayed datagrams still waiting for release."""
        return len(self._held)

    def replay(self) -> "FaultSchedule":
        """A fresh schedule with identical seed and rates (same fates)."""
        return FaultSchedule(self.seed, delay_span=self.delay_span,
                             max_flips=self.max_flips, **self.rates)

    # -- the fault process ------------------------------------------------

    def apply(self, datagram: bytes) -> list[Delivery]:
        """Decide one datagram's fate; return what arrives *now*, in order.

        The returned list holds zero or more :class:`Delivery` objects:
        empty for a loss or a delay, two copies for a duplicate, one
        (possibly tampered) copy otherwise — followed by any earlier
        delayed datagrams whose release point has been reached.
        """
        index = self._index
        self._index = index + 1
        datagram = bytes(datagram)
        event, out = self._decide(index, datagram)
        self.trace.append(event)
        out.extend(self._release(index))
        return out

    def apply_all(self, datagrams) -> list[Delivery]:
        """:meth:`apply` each datagram; one flat arrival list, in order."""
        arrivals: list[Delivery] = []
        for datagram in datagrams:
            arrivals.extend(self.apply(datagram))
        return arrivals

    def flush(self) -> list[Delivery]:
        """Release every still-held delayed datagram (end of stream)."""
        out = [delivery for _, delivery in self._held]
        self._held.clear()
        return out

    def filter(self, datagram: bytes) -> list[bytes]:
        """Adapter for transport injection hooks: raw bytes in, out.

        :class:`~repro.link.udp.UdpLinkServer` (``inbound_faults=``) and
        the :class:`~repro.link.memory.LinkPair` direction filters speak
        plain byte sequences; this wraps :meth:`apply` for them.
        """
        return [delivery.data for delivery in self.apply(datagram)]

    # -- internals --------------------------------------------------------

    def _decide(self, index: int,
                datagram: bytes) -> tuple[FaultEvent, list[Delivery]]:
        draw = self._rng.uniform()
        threshold = 0.0
        fate = "deliver"
        if datagram:  # empty datagrams always deliver (nothing to tamper)
            for name in ("loss", "duplicate", "corrupt", "truncate",
                         "delay"):
                threshold += self.rates[name]
                if draw < threshold:
                    fate = name
                    break
        size = len(datagram)
        clean = Delivery(index, datagram, tampered=False)
        if fate == "loss":
            return FaultEvent(index, "loss", size), []
        if fate == "duplicate":
            return FaultEvent(index, "duplicate", size), [clean, clean]
        if fate == "corrupt":
            tampered, detail = self._corrupt(datagram)
            return (FaultEvent(index, "corrupt", size, detail),
                    [Delivery(index, tampered, tampered=True)])
        if fate == "truncate":
            keep = self._rng.below(size)  # 0 .. size-1: always shorter
            return (FaultEvent(index, "truncate", size, (keep,)),
                    [Delivery(index, datagram[:keep], tampered=True)])
        if fate == "delay":
            release = index + 1 + self._rng.below(self.delay_span)
            self._held.append((release, clean))
            return FaultEvent(index, "delay", size, (release,)), []
        return FaultEvent(index, "deliver", size), [clean]

    def _corrupt(self, datagram: bytes) -> tuple[bytes, tuple]:
        """Flip 1..max_flips bytes at seeded offsets with non-zero masks."""
        n_flips = 1 + self._rng.below(self.max_flips)
        out = bytearray(datagram)
        detail = []
        for _ in range(n_flips):
            offset = self._rng.below(len(out))
            mask = 1 + self._rng.below(255)
            out[offset] ^= mask
            detail.append((offset, mask))
        if bytes(out) == datagram:
            # Two flips on one offset can cancel; a "corrupt" fate must
            # always actually change the bytes or drop accounting drifts.
            out[0] ^= 0xFF
            detail.append((0, 0xFF))
        return bytes(out), tuple(detail)

    def _release(self, index: int) -> list[Delivery]:
        """Held datagrams whose release point ``index`` has reached."""
        due = [delivery for release, delivery in self._held
               if release <= index]
        if due:
            self._held = [(release, delivery)
                          for release, delivery in self._held
                          if release > index]
        return due

    def __repr__(self) -> str:
        active = {name: rate for name, rate in self.rates.items() if rate}
        return (f"<FaultSchedule seed={self.seed} rates={active} "
                f"seen={self._index} held={len(self._held)}>")
