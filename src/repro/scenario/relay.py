"""Flood and slowloris attack schedules against the relay hub.

The relay's whole overload story is "every shed decision is explicit,
typed and counted"; this module is the adversarial audit of that claim.
Each check drives a fresh :class:`~repro.relay.MemoryRelayHub` on a
:class:`~repro.relay.ManualClock` through one attack shape —

* **connection flood** — connect bursts against the handshake-rate
  token bucket, then a sustained drip against the global link cap;
* **slowloris** — handshakes dripped one or two bytes per second,
  forever short of completion, against the handshake deadline;
* **stalled readers** — a writer flooding a reader that never drains,
  against the bounded egress queue under both overflow policies —

and reconciles the relay's shed ledger **exactly** (``==``, not ``<=``)
against an independently computed expectation, then re-checks the
ledger against the ``repro_relay_shed_total{reason=}`` obs counters so
the operator-facing numbers can never drift from the core's own
bookkeeping.  Every check ends by proving the relay did not wedge: a
fresh client connects, joins and routes after the attack.

Deterministic by construction: manual clock, fixed attempt counts and
seeded payload shapes — the X25519/ticket randomness varies per run
but every verdict and every counter is invariant.

Run the battery with :func:`run_relay_floods` (wired into the
``scenario`` CLI command and CI's scenario smoke job).
"""

from __future__ import annotations

import random

from repro.obs import core as _obs
from repro.relay.config import RelayConfig
from repro.relay.harness import ManualClock, MemoryRelayHub

__all__ = ["run_relay_floods"]

_SHED_SERIES = "repro_relay_shed_total{reason="


def _shed_counters(registry) -> dict:
    """The ``repro_relay_shed_total`` series as ``{reason: value}``."""
    counters = {}
    for series, value in registry.snapshot()["counters"].items():
        if series.startswith(_SHED_SERIES):
            reason = series[len(_SHED_SERIES):].rstrip("}")
            counters[reason] = int(value)
    return counters


def _reconcile(check: dict, hub: MemoryRelayHub, registry,
               expected: dict) -> None:
    """Demand ledger == expectation == obs counters, exactly."""
    ledger = hub.shed_by_reason()
    if ledger != expected:
        check["problems"].append(
            f"shed ledger {ledger} != expected {expected}")
    counters = _shed_counters(registry)
    if counters != ledger:
        check["problems"].append(
            f"obs shed counters {counters} != ledger {ledger}")
    check["shed"] = ledger


def _prove_alive(check: dict, hub: MemoryRelayHub) -> None:
    """After the storm: a fresh pair must still connect, join, route."""
    a = hub.connect("probe", channel=b"alive")
    b = hub.connect("probe", channel=b"alive")
    if a is None or b is None or not a.open or not b.open:
        check["problems"].append("relay wedged: probe links failed to open")
        return
    a.send(b"still-routing")
    b.pump()
    if b.received != [b"still-routing"]:
        check["problems"].append(
            f"relay wedged: probe payload not routed ({b.received!r})")
    a.close()
    b.close()


def _check_connection_flood(rng: random.Random) -> dict:
    """Connect bursts against the token bucket, a drip against the cap.

    The oracle is the bucket contract itself: it starts full at
    ``handshake_burst`` tokens, refills at ``handshake_rate``/s capped
    at the burst, and the global-quota gate runs *before* the token
    gate (a full relay spends no tokens on connections it cannot take).
    """
    check = {"name": "connection-flood", "problems": []}
    fresh = _obs.ObsRegistry()
    previous = _obs.set_registry(fresh)
    try:
        clock = ManualClock()
        hub = MemoryRelayHub(
            config=RelayConfig(max_links=24, max_links_per_tenant=24,
                               handshake_rate=5.0, handshake_burst=4,
                               idle_timeout_s=0.0),
            clock=clock)

        def storm_connect():
            # Tickets keep admitted handshakes ladder-free, so the
            # whole flood is cheap enough for tier-1 CI.
            return hub.connect("flood", channel=b"storm",
                               ticket=hub.mint_ticket("flood"))

        admitted = []
        expected_rate = 0
        # Three bursts against the bucket: it holds 4 tokens at t=0,
        # and every refill — 1 s or 3 s later — caps right back at the
        # burst of 4, so each burst admits exactly 4 however long the
        # gap was.  Everything past the 4th attempt is a rate shed.
        for attempts, gap in ((10, 1.0), (12, 3.0), (20, 0.0)):
            for _ in range(attempts):
                client = storm_connect()
                if client is not None:
                    admitted.append(client)
            expected_rate += attempts - 4
            clock.advance(gap)
        if len(admitted) != 12:
            check["problems"].append(
                f"bursts should admit exactly 12 links, got {len(admitted)}")
        if hub.core.shed.get("global-quota"):
            check["problems"].append(
                "global quota fired during the bursts (12 < 24 cap)")
        # Now a polite drip — one connect per second, never touching
        # the rate limit — until the global cap itself refuses: 12 free
        # slots admit, the last 5 attempts are global-quota sheds.
        for _ in range(17):
            clock.advance(1.0)
            client = storm_connect()
            if client is not None:
                admitted.append(client)
        expected = {"handshake-rate": expected_rate, "global-quota": 5}
        if len(admitted) != 24:
            check["problems"].append(
                f"expected the 24-link cap reached, got {len(admitted)}")
        # The flood must not have wedged routing for the links that won
        # admission: one storm payload fans out to all 23 peers.
        eye = bytes([rng.randrange(256)]) * rng.randrange(16, 48)
        admitted[0].send(eye)
        misrouted = 0
        for client in admitted[1:]:
            client.pump()
            if client.received != [eye]:
                misrouted += 1
        if misrouted:
            check["problems"].append(
                f"{misrouted} storm survivors misrouted the probe payload")
        # Retiring links must release their quota slots.
        for client in admitted:
            client.close()
        if hub.core.active_links != 0:
            check["problems"].append(
                f"{hub.core.active_links} links leaked after close")
        _prove_alive(check, hub)
        _reconcile(check, hub, fresh, expected)
        check["admitted"] = len(admitted)
        check["attempts"] = 10 + 12 + 20 + 17
    finally:
        _obs.set_registry(previous)
    return check


def _check_slowloris(rng: random.Random) -> dict:
    """Drip-fed handshakes against the handshake deadline."""
    check = {"name": "slowloris", "problems": []}
    fresh = _obs.ObsRegistry()
    previous = _obs.set_registry(fresh)
    try:
        clock = ManualClock()
        hub = MemoryRelayHub(
            config=RelayConfig(max_links=32, max_links_per_tenant=32,
                               handshake_timeout_s=5.0, idle_timeout_s=0.0),
            clock=clock)
        core = hub.core
        # Eight attackers connect and hold a *real* ClientHello, but
        # deliver it one or two bytes per second — never enough to
        # finish, always enough to look busy to a byte-counting check.
        drips = []
        for _ in range(8):
            client = hub.connect("loris", pump=False)
            if client is None:
                check["problems"].append("slowloris attacker refused early")
                continue
            hello = client.proto.data_to_send()
            drips.append([client.link_id, hello, rng.randrange(1, 3), 0])
        # One honest client races the attackers and must stay alive.
        honest = hub.connect("honest", channel=b"good")
        for second in range(6):
            clock.advance(1.0)
            for drip in drips:
                link_id, hello, pace, sent = drip
                if core.has_link(link_id):
                    core.receive_data(link_id, hello[sent:sent + pace])
                    drip[3] = sent + pace
            hub.poll()
            # Honest traffic keeps flowing mid-attack.
            if honest is not None and honest.open:
                honest.send(b"tick-%d" % second)
        expected = {"handshake-timeout": 8}
        survivors = [drip[0] for drip in drips if core.has_link(drip[0])]
        if survivors:
            check["problems"].append(
                f"attackers survived the deadline: {survivors}")
        if honest is None or not honest.open:
            check["problems"].append("honest link died during the attack")
        _prove_alive(check, hub)
        _reconcile(check, hub, fresh, expected)
        check["attackers"] = len(drips)
    finally:
        _obs.set_registry(previous)
    return check


def _check_stalled_readers(rng: random.Random) -> dict:
    """Bounded egress queues under both overflow policies."""
    check = {"name": "stalled-readers", "problems": []}

    # Policy 1: drop-oldest.  Queue depth 8, 20 sends at a reader that
    # never drains: exactly 12 oldest payloads drop, and the reader,
    # once it wakes, receives exactly the newest 8 — byte-identical,
    # in order, with no sequence-number gaps (the queue holds
    # plaintext, so drops never burn session counters).
    fresh = _obs.ObsRegistry()
    previous = _obs.set_registry(fresh)
    try:
        hub = MemoryRelayHub(
            config=RelayConfig(max_links=8, max_links_per_tenant=8,
                               egress_queue_payloads=8,
                               egress_policy="drop-oldest",
                               idle_timeout_s=0.0),
            clock=ManualClock())
        writer = hub.connect("t", channel=b"room")
        reader = hub.connect("t", channel=b"room")
        payloads = [bytes([rng.randrange(256)]) * rng.randrange(8, 64)
                    for _ in range(20)]
        for payload in payloads:
            writer.send(payload)  # the reader never pumps: it stalled
        reader.pump()  # now it wakes and drains what survived
        if reader.received != payloads[-8:]:
            check["problems"].append(
                "drop-oldest survivors wrong: expected the newest 8 "
                f"payloads, got {len(reader.received)}")
        _reconcile(check, hub, fresh, {"egress-drop": 12})
        check["drops"] = 12
    finally:
        _obs.set_registry(previous)

    # Policy 2: disconnect.  The ninth undrained payload sheds the
    # stalled reader itself; the writer keeps its link, and later
    # payloads route to nobody (receivers == 0) — never to a ghost.
    fresh = _obs.ObsRegistry()
    previous = _obs.set_registry(fresh)
    try:
        hub = MemoryRelayHub(
            config=RelayConfig(max_links=8, max_links_per_tenant=8,
                               egress_queue_payloads=8,
                               egress_policy="disconnect",
                               idle_timeout_s=0.0),
            clock=ManualClock())
        writer = hub.connect("t", channel=b"room")
        reader = hub.connect("t", channel=b"room")
        for i in range(10):
            writer.send(b"x%d" % i)
        if hub.core.has_link(reader.link_id):
            check["problems"].append(
                "disconnect policy left the stalled reader alive")
        if not writer.open:
            check["problems"].append(
                "disconnect policy killed the *writer*")
        events = writer.send(b"after the shed")
        routed = [event for event in events
                  if type(event).__name__ == "PayloadRouted"]
        if not routed or routed[0].receivers != 0:
            check["problems"].append(
                f"post-shed payload misrouted: {routed!r}")
        _prove_alive(check, hub)
        _reconcile(check, hub, fresh, {"egress-disconnect": 1})
    finally:
        _obs.set_registry(previous)
    return check


def run_relay_floods(seed: int = 20050307) -> dict:
    """Run the relay attack battery; returns ``{ok, problems, checks}``.

    Each check installs a fresh obs registry (restored afterwards) so
    the counter reconciliation sees exactly its own events.  The
    verdicts are deterministic given ``seed``.
    """
    rng = random.Random(seed)
    checks = [
        _check_connection_flood(rng),
        _check_slowloris(rng),
        _check_stalled_readers(rng),
    ]
    problems = [f"{check['name']}: {problem}"
                for check in checks
                for problem in check["problems"]]
    return {"ok": not problems, "problems": problems, "checks": checks}
