"""Cross-transport invariant matrix over real asyncio TCP streams.

The stream-mode counterpart of :mod:`repro.scenario.udp`: the same
deterministic traffic mix is driven once through the in-memory
:class:`~repro.link.memory.MemoryLinkServer` and once through a real
:class:`~repro.net.server.SecureLinkServer` /
:class:`~repro.net.client.SecureLinkClient` pair on loopback, for every
handshake mode the link speaks — pre-shared (``psk``), the hello-v2
X25519 exchange (``ecdh``) and ticket resumption (``resume``).  For
each mode the two transports must agree:

* the echoed payload sequence is byte-identical to the sent sequence on
  both transports (TCP is reliable; nothing may be lost or reordered);
* both negotiate the *same* handshake mode — the transport can never
  influence what the kex state machine agrees on;
* the per-session counters (``rx.packets``, ``tx.rekeys``) match each
  other and the schedule arithmetic;
* a resumption handshake mints a fresh session root (fingerprints
  differ from the full handshake's) on both transports alike.

A downgrade probe rides along: a classic pre-shared client against an
ecdh-only TCP server must *fail to connect* — the server refuses the
hello-v1, nothing silently falls back — mirroring the sans-IO verdicts
of :mod:`repro.scenario.attacks` over a real socket.

This module opens real sockets and runs an event loop, so it lives
*outside* the sans-IO scenario core; import it lazily
(``repro.scenario`` only loads it on attribute access).
"""

from __future__ import annotations

import asyncio

from repro.core.errors import ReproError
from repro.core.key import Key
from repro.kex.handshake import KexConfig, kex_auth_secret
from repro.kex.hkdf import hkdf_expand
from repro.kex.tickets import TicketVault
from repro.link.memory import MemoryLinkServer
from repro.net.client import SecureLinkClient
from repro.net.server import SecureLinkServer
from repro.net.session import SessionConfig
from repro.scenario.traffic import TrafficMix

__all__ = ["run_tcp_matrix"]

#: Handshake modes the matrix exercises, in run order.
MATRIX_MODES = ("psk", "ecdh", "resume")


def _client_kex(root: Key, ticket=None) -> KexConfig:
    return KexConfig(auth_secret=kex_auth_secret(root),
                     modes=("ecdh", "resume"), params=root.params,
                     n_pairs=len(root), ticket=ticket)


def _server_kex(root: Key, *, modes=("ecdh", "resume", "psk")) -> KexConfig:
    auth = kex_auth_secret(root)
    return KexConfig(auth_secret=auth, modes=modes, params=root.params,
                     n_pairs=len(root),
                     tickets=TicketVault(hkdf_expand(
                         auth, b"mhhea-kex ticket vault", 32)))


def _summary(client, payloads: list, replies: list) -> dict:
    metrics = client.metrics
    return {
        "mode": client.kex_mode,
        "echoed": replies == payloads,
        "rx_packets": metrics.rx.packets,
        "tx_rekeys": metrics.tx.rekeys,
        "fingerprint": (client.fingerprint.hex()
                        if client.fingerprint is not None else None),
        "ticket_issued": client.issued_ticket is not None,
    }


def _memory_run(root: Key, config: SessionConfig,
                payloads: list) -> dict:
    """One mode sweep through the in-memory transport."""
    server = MemoryLinkServer(root, config=config, kex=_server_kex(root))
    out = {}
    # psk: a classic client against the dual-mode server.
    client = server.connect()
    out["psk"] = _summary(client, payloads, client.send_all(payloads))
    client.close()
    # ecdh: full exchange; keep the ticket for the resume leg.
    client = server.connect(kex=_client_kex(root))
    out["ecdh"] = _summary(client, payloads, client.send_all(payloads))
    ticket = client.issued_ticket
    client.close()
    # resume: redeem the ticket minted above.
    client = server.connect(kex=_client_kex(root, ticket=ticket))
    out["resume"] = _summary(client, payloads, client.send_all(payloads))
    out["resume"]["full_fingerprint"] = out["ecdh"]["fingerprint"]
    client.close()
    server.close()
    return out


async def _tcp_run(root: Key, config: SessionConfig,
                   payloads: list) -> tuple[dict, dict]:
    """The same sweep over a real loopback TCP server; plus downgrade."""
    out = {}
    async with SecureLinkServer(root, port=0, config=config,
                                kex=_server_kex(root)) as server:
        async with SecureLinkClient(root, port=server.port,
                                    config=config) as client:
            replies = await client.send_all(payloads)
            out["psk"] = _summary(client, payloads, replies)
        async with SecureLinkClient(root, port=server.port, config=config,
                                    kex=_client_kex(root)) as client:
            replies = await client.send_all(payloads)
            out["ecdh"] = _summary(client, payloads, replies)
            ticket = client.issued_ticket
        async with SecureLinkClient(root, port=server.port, config=config,
                                    kex=_client_kex(root, ticket=ticket),
                                    ) as client:
            replies = await client.send_all(payloads)
            out["resume"] = _summary(client, payloads, replies)
            out["resume"]["full_fingerprint"] = out["ecdh"]["fingerprint"]
    # Downgrade probe: an ecdh-only server must refuse a classic client.
    downgrade = {"connected": False, "error": None}
    async with SecureLinkServer(root, port=0, config=config,
                                kex=_server_kex(root, modes=("ecdh",)),
                                ) as server:
        client = SecureLinkClient(root, port=server.port, config=config)
        try:
            await client.connect()
            downgrade["connected"] = True
            await client.close()
        except (ReproError, OSError) as exc:
            downgrade["error"] = f"{type(exc).__name__}: {exc}"
    return out, downgrade


def _reconcile(transport: str, summary: dict, n: int,
               rekey_interval: int) -> list:
    problems = []
    for mode in MATRIX_MODES:
        entry = summary[mode]
        if entry["mode"] != mode:
            problems.append(
                f"{transport}/{mode}: negotiated {entry['mode']!r}"
            )
        if not entry["echoed"]:
            problems.append(f"{transport}/{mode}: echoes not byte-exact")
        if entry["rx_packets"] != n:
            problems.append(
                f"{transport}/{mode}: rx.packets {entry['rx_packets']}, "
                f"expected {n}"
            )
        expected_rekeys = max(0, (n - 1) // rekey_interval)
        if entry["tx_rekeys"] != expected_rekeys:
            problems.append(
                f"{transport}/{mode}: tx.rekeys {entry['tx_rekeys']}, "
                f"schedule implies {expected_rekeys}"
            )
    if summary["resume"]["fingerprint"] == \
            summary["resume"]["full_fingerprint"]:
        problems.append(
            f"{transport}/resume: session root identical to the full "
            f"handshake's (no fresh keys)"
        )
    return problems


def run_tcp_matrix(messages: int = 48, rekey_interval: int = 16,
                   key_seed: int = 2005) -> dict:
    """Run every handshake mode over memory and real TCP; reconcile.

    Returns a dict with ``ok``, ``problems`` and per-transport
    summaries.  The cross-transport invariant: for each mode, both
    transports negotiate identically, deliver identically and count
    identically — the sans-IO machine's handshake behaviour is
    transport-invariant, over streams just as :mod:`repro.scenario.udp`
    proves it over datagrams.
    """
    root = Key.generate(seed=key_seed)
    config = SessionConfig(rekey_interval=rekey_interval)
    payloads = TrafficMix.soak(messages, seed=29, duplex=False).payloads("i2r")
    memory = _memory_run(root, config, payloads)
    tcp, downgrade = asyncio.run(_tcp_run(root, config, payloads))
    problems = _reconcile("memory", memory, len(payloads), rekey_interval)
    problems += _reconcile("tcp", tcp, len(payloads), rekey_interval)
    for mode in MATRIX_MODES:
        for field in ("mode", "echoed", "rx_packets", "tx_rekeys"):
            if memory[mode][field] != tcp[mode][field]:
                problems.append(
                    f"{mode}: {field} diverges across transports "
                    f"(memory {memory[mode][field]!r}, "
                    f"tcp {tcp[mode][field]!r})"
                )
    if downgrade["connected"]:
        problems.append(
            "downgrade probe: a classic psk client connected to an "
            "ecdh-only TCP server (silent fallback)"
        )
    return {
        "ok": not problems,
        "problems": problems,
        "messages": len(payloads),
        "memory": memory,
        "tcp": tcp,
        "downgrade": downgrade,
    }
