"""repro.scenario — deterministic load generation and fault injection.

The scenario harness drives the sans-IO secure link
(:mod:`repro.link`) through seeded hostile-network conditions and
checks, after every run, that the protocol's own accounting reconciles
*exactly* with the injected faults:

* :class:`FaultSchedule` — replayable per-datagram loss / duplication /
  corruption / truncation / delay processes (:mod:`repro.scenario.faults`);
* :class:`TrafficMix` — deterministic duplex workload mixes grown from
  :mod:`repro.analysis.workloads` (:mod:`repro.scenario.traffic`);
* :class:`FaultyLink` / :func:`run_scenario` / :func:`standard_matrix`
  — the datagram-mode harness with its independent mirror oracle,
  including active-attacker injections (:meth:`FaultyLink.inject`,
  :data:`ATTACK_KINDS`) reconciled against the same oracle
  (:mod:`repro.scenario.runner`);
* :func:`run_stream_control` — the fault-free stream-mode control run
  with byte-exact wire capture;
* :func:`run_kex_attacks` — the hello-v2 handshake attack battery:
  downgrade stripping, transcript tampering, splice replays and ticket
  replay/tamper/expiry, each asserting abort-with-reconciled-counters
  (:mod:`repro.scenario.attacks`);
* :func:`run_relay_floods` — flood / slowloris / stalled-reader attack
  schedules against the multi-tenant relay hub (:mod:`repro.relay`),
  each reconciling the relay's shed ledger and its obs counters
  exactly against an independent oracle (:mod:`repro.scenario.relay`);
* :class:`CoverCodec` — the stego cover-traffic transport framing
  (:mod:`repro.scenario.cover`);
* :func:`run_transport_matrix` — the same schedule over in-memory and
  real UDP transports, demanding identical results
  (:mod:`repro.scenario.udp`; imported lazily, as it opens sockets);
* :func:`run_tcp_matrix` — every handshake mode (psk/ecdh/resume) over
  in-memory and real asyncio TCP transports, demanding identical
  negotiation and accounting (:mod:`repro.scenario.tcp`; lazy too).

Everything except :mod:`repro.scenario.udp` and
:mod:`repro.scenario.tcp` is sans-IO — no sockets, no event loop — and
stays inside the import closure policed by
``tests/link/test_sans_io.py``.
"""

from __future__ import annotations

from repro.scenario.attacks import run_kex_attacks
from repro.scenario.cover import CoverCodec
from repro.scenario.relay import run_relay_floods
from repro.scenario.faults import (
    FAULT_KINDS,
    Delivery,
    FaultEvent,
    FaultSchedule,
)
from repro.scenario.runner import (
    ATTACK_KINDS,
    FaultyLink,
    ReferenceReceiver,
    Scenario,
    ScenarioResult,
    SentDatagram,
    run_scenario,
    run_stream_control,
    standard_matrix,
)
from repro.scenario.traffic import DIRECTIONS, TrafficMix

__all__ = [
    "ATTACK_KINDS",
    "FAULT_KINDS",
    "DIRECTIONS",
    "FaultEvent",
    "Delivery",
    "FaultSchedule",
    "TrafficMix",
    "CoverCodec",
    "SentDatagram",
    "ReferenceReceiver",
    "FaultyLink",
    "Scenario",
    "ScenarioResult",
    "run_scenario",
    "run_stream_control",
    "run_kex_attacks",
    "run_relay_floods",
    "standard_matrix",
    "run_transport_matrix",
    "run_tcp_matrix",
]


def __getattr__(name: str):
    # PEP 562: the transport matrices open real sockets, so importing
    # them eagerly would drag socket/asyncio into the sans-IO closure.
    if name == "run_transport_matrix":
        from repro.scenario.udp import run_transport_matrix

        return run_transport_matrix
    if name == "run_tcp_matrix":
        from repro.scenario.tcp import run_tcp_matrix

        return run_tcp_matrix
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
