"""Active-attacker battery against the hello-v2 key exchange.

Where :mod:`repro.scenario.runner` storms an *established* link with
replayed and forged datagrams, this module attacks the handshake itself:
every check below plays a man-in-the-middle against a stream-mode
:class:`~repro.link.memory.LinkPair` (or drives
:class:`~repro.kex.Handshake` machines directly) and then demands the
exact outcome the downgrade-protection argument in ``docs/kex.md``
promises:

* stripping the hello-v2 opener (or answering it with a classic hello)
  **aborts** the connection on whichever end required the exchange —
  never a silent fall back to the pre-shared key;
* tampering with the transcript-bound bytes (the mode/offer byte, the
  confirmation MAC) aborts with a MAC mismatch, even though the
  attacker fixes up the *unkeyed* framing CRC;
* splicing a captured ClientHello into a fresh connection stalls at the
  confirmation step — the attacker cannot compute the Finished MAC
  without the ECDH shared secret;
* a resumption ticket redeems **at most once**; replayed, tampered or
  expired tickets are refused by the vault (each in its own counter)
  and the handshake falls back to a full exchange, never to a stale
  session key.

Counters reconcile exactly: each check asserts the
``repro_link_handshakes_total{mode=...}`` observations and the
:class:`~repro.kex.TicketVault` ledgers it expects, on a private obs
registry so concurrent runs never blur the books.

This module is sans-IO (no sockets, no loop — enforced by
``tests/link/test_sans_io.py``); :func:`run_kex_attacks` is part of the
``repro-mhhea scenario`` battery and the BENCH pipeline document.
"""

from __future__ import annotations

from repro.core.errors import HandshakeError, KexError, ReproError
from repro.core.key import Key
from repro.kex.handshake import Handshake, KexConfig, kex_auth_secret
from repro.kex.hkdf import hkdf_expand
from repro.kex.tickets import TicketVault
from repro.kex.wire import pack_record, unpack_record
from repro.link.memory import LinkPair
from repro.link.protocol import OPEN
from repro.net.session import SessionConfig
from repro.obs import core as _obs

__all__ = ["run_kex_attacks"]

#: Session id every attack run pins (determinism over uniqueness).
ATTACK_SESSION_ID = b"KEXATTCK"


def _client_config(root: Key, *, modes=("ecdh",), ticket=None) -> KexConfig:
    return KexConfig(auth_secret=kex_auth_secret(root), modes=modes,
                     params=root.params, n_pairs=len(root), ticket=ticket)


def _server_config(root: Key, *, modes=("ecdh", "resume", "psk"),
                   vault: TicketVault | None = None) -> KexConfig:
    auth = kex_auth_secret(root)
    if vault is None and "resume" in modes:
        vault = TicketVault(hkdf_expand(auth, b"mhhea-kex ticket vault", 32))
    return KexConfig(auth_secret=auth, modes=modes, params=root.params,
                     n_pairs=len(root), tickets=vault)


def _handshake_counts(registry) -> dict:
    """``repro_link_handshakes_total`` by mode from one obs registry."""
    return {mode: registry.counter("repro_link_handshakes_total",
                                   mode=mode).value
            for mode in ("psk", "ecdh", "resume")}


def _pair(root: Key, *, kex=None, responder_kex=None,
          i2r_filter=None, r2i_filter=None) -> LinkPair:
    return LinkPair(root, config=SessionConfig(),
                    session_id=ATTACK_SESSION_ID,
                    responder_root=root, responder_config=SessionConfig(),
                    kex=kex, responder_kex=responder_kex,
                    i2r_filter=i2r_filter, r2i_filter=r2i_filter)


def _expect_abort(name: str, pair: LinkPair, needle: str = "") -> dict:
    """Pump to completion; the handshake must fail, with no OPEN end."""
    error = None
    try:
        pair.handshake()
    except ReproError as exc:
        error = exc
    problems = []
    if error is None:
        problems.append("handshake completed; expected an abort")
    elif needle and needle not in str(error):
        problems.append(
            f"abort reason {error!r} does not mention {needle!r}"
        )
    for side in ("initiator", "responder"):
        end = getattr(pair, side)
        if end.state == OPEN:
            problems.append(f"{side} is OPEN after an attacked handshake")
    if error is not None and not isinstance(error, HandshakeError):
        problems.append(
            f"abort raised {type(error).__name__}, not a HandshakeError"
        )
    return {"name": name, "ok": not problems, "problems": problems,
            "error": type(error).__name__ if error else None,
            "detail": str(error) if error else None}


def _record_tamper(mutate):
    """A LinkPair filter that re-frames one kex record through ``mutate``.

    The attacker model: full read/write access to the stream, including
    the ability to recompute the *unkeyed* framing CRC after tampering —
    only the transcript-bound MACs are out of reach.
    """
    done = [False]

    def tamper(chunk: bytes) -> bytes:
        if done[0]:
            return chunk
        done[0] = True
        record = unpack_record(chunk)
        msg_type, mode, body = mutate(record)
        return pack_record(msg_type, mode, body)
    return tamper


def _check_baseline(root: Key) -> dict:
    """The battery's own control: an unmolested kex handshake opens."""
    registry = _obs.get_registry()
    problems = []
    pair = _pair(root, kex=_client_config(root),
                 responder_kex=_server_config(root))
    try:
        pair.handshake()
    except ReproError as exc:
        problems.append(f"clean kex handshake failed: {exc}")
    else:
        for side in ("initiator", "responder"):
            if getattr(pair, side).kex_mode != "ecdh":
                problems.append(f"{side} negotiated "
                                f"{getattr(pair, side).kex_mode!r}")
        counts = _handshake_counts(registry)
        if counts["ecdh"] != 2 or counts["psk"] or counts["resume"]:
            problems.append(f"handshake counters off: {counts}")
    return {"name": "baseline-ecdh", "ok": not problems,
            "problems": problems}


def _check_downgrades(root: Key) -> list[dict]:
    registry = _obs.get_registry()
    before = _handshake_counts(registry)
    checks = []
    # A kex initiator meeting a peer that only speaks the classic hello:
    # the hello-v1 answer is a downgrade signal, never a fallback.
    checks.append(_expect_abort(
        "downgrade-responder-psk-only",
        _pair(root, kex=_client_config(root), responder_kex=None)))
    # A kex-required responder meeting a classic hello-v1 client.
    checks.append(_expect_abort(
        "downgrade-initiator-psk-only",
        _pair(root, kex=None,
              responder_kex=_server_config(root, modes=("ecdh",))),
        needle="downgrade"))
    after = _handshake_counts(registry)
    if after != before:
        checks.append({"name": "downgrade-counters", "ok": False,
                       "problems": [f"aborted downgrades moved the "
                                    f"handshake counters: {after}"]})
    else:
        checks.append({"name": "downgrade-counters", "ok": True,
                       "problems": []})
    # The one legitimate old-client path: a responder whose *local*
    # policy lists "psk" accepts the classic hello byte-for-byte.
    problems = []
    pair = _pair(root, kex=None, responder_kex=_server_config(root))
    try:
        pair.handshake()
    except ReproError as exc:
        problems.append(f"policy-sanctioned psk fallback failed: {exc}")
    else:
        if pair.responder.kex_mode != "psk":
            problems.append(
                f"responder recorded {pair.responder.kex_mode!r}, "
                f"expected 'psk'"
            )
        if _handshake_counts(registry)["psk"] - before["psk"] != 2:
            problems.append("psk fallback did not move the psk counter")
    checks.append({"name": "psk-fallback-is-local-policy",
                   "ok": not problems, "problems": problems})
    return checks


def _check_tampering(root: Key) -> list[dict]:
    checks = []
    # Flip the offer bitmask in the ClientHello (CRC fixed up): both
    # transcripts now disagree, so the confirmation MACs cannot match.
    checks.append(_expect_abort(
        "tamper-mode-byte",
        _pair(root, kex=_client_config(root),
              responder_kex=_server_config(root),
              i2r_filter=_record_tamper(
                  lambda r: (r.msg_type, r.mode ^ 0x02, r.body))),
        needle="MAC"))
    # Flip one byte of the ServerHello's confirmation MAC.
    checks.append(_expect_abort(
        "tamper-server-confirm",
        _pair(root, kex=_client_config(root),
              responder_kex=_server_config(root),
              r2i_filter=_record_tamper(
                  lambda r: (r.msg_type, r.mode,
                             r.body[:-1] + bytes([r.body[-1] ^ 0x01])))),
        needle="MAC"))
    # Flip one byte of ephemeral-key material in the ClientHello.
    checks.append(_expect_abort(
        "tamper-client-public",
        _pair(root, kex=_client_config(root),
              responder_kex=_server_config(root),
              i2r_filter=_record_tamper(
                  lambda r: (r.msg_type, r.mode,
                             bytes([r.body[0], r.body[1],
                                    r.body[2] ^ 0x40]) + r.body[3:]))),
        needle="MAC"))
    return checks


def _check_splice(root: Key) -> dict:
    """Replay a captured ClientHello; the Finished MAC is unforgeable."""
    problems = []
    client = Handshake(_client_config(root), "initiator")
    captured = client.first_message()
    # Session A: the victim server answers the genuine client normally.
    server_a = Handshake(_server_config(root), "responder")
    server_a.absorb(captured)
    # Session B: the attacker splices the captured hello into a fresh
    # connection and must now produce the Finished confirmation MAC —
    # keyed through the ECDH shared secret it does not hold.
    server_b = Handshake(_server_config(root), "responder")
    server_b.absorb(captured)
    from repro.kex.wire import MSG_FINISHED, MODE_ECDH

    forged = pack_record(MSG_FINISHED, MODE_ECDH, bytes(32))
    try:
        server_b.absorb(forged)
    except KexError:
        pass
    else:
        problems.append("responder accepted a forged Finished MAC")
    if server_b.done:
        problems.append("spliced handshake completed")
    return {"name": "splice-replayed-clienthello", "ok": not problems,
            "problems": problems}


def _check_tickets(root: Key) -> list[dict]:
    checks = []
    ticks = [0.0]
    vault = TicketVault(b"attack-battery-ticket-secret-32b",
                        lifetime_s=60.0, clock=lambda: ticks[0])
    server = _server_config(root, vault=vault)

    def run(ticket):
        pair = _pair(root, kex=_client_config(root, modes=("ecdh", "resume"),
                                              ticket=ticket),
                     responder_kex=server)
        pair.handshake()
        return pair

    problems = []
    first = run(None)
    ticket = first.initiator.issued_ticket
    if ticket is None:
        problems.append("full handshake issued no resumption ticket")
    else:
        resumed = run(ticket)
        if resumed.initiator.kex_mode != "resume":
            problems.append(f"first redemption negotiated "
                            f"{resumed.initiator.kex_mode!r}")
        if resumed.initiator.fingerprint == first.initiator.fingerprint:
            problems.append("resumed session reused the session root key")
    checks.append({"name": "ticket-resumes-once", "ok": not problems,
                   "problems": problems})
    # Replay: the same ticket a second time must fall back to a full
    # exchange — the vault's single-use cache refuses it.
    problems = []
    if ticket is not None:
        replayed = run(ticket)
        if replayed.initiator.kex_mode != "ecdh":
            problems.append(f"replayed ticket negotiated "
                            f"{replayed.initiator.kex_mode!r}, "
                            f"expected the ecdh fallback")
        if vault.counters["rejected_replayed"] != 1:
            problems.append(f"vault counters after replay: "
                            f"{vault.counters}")
    checks.append({"name": "ticket-replay-refused", "ok": not problems,
                   "problems": problems})
    # Tamper: one flipped ciphertext byte fails the ticket MAC.
    problems = []
    fresh = run(None).initiator.issued_ticket
    if fresh is not None:
        blob = bytearray(fresh.ticket)
        blob[20] ^= 0x10
        import dataclasses

        bad = dataclasses.replace(fresh, ticket=bytes(blob))
        tampered = run(bad)
        if tampered.initiator.kex_mode != "ecdh":
            problems.append(f"tampered ticket negotiated "
                            f"{tampered.initiator.kex_mode!r}")
        if vault.counters["rejected_tampered"] != 1:
            problems.append(f"vault counters after tamper: "
                            f"{vault.counters}")
    checks.append({"name": "ticket-tamper-refused", "ok": not problems,
                   "problems": problems})
    # Expiry: advance the vault clock past the lifetime.
    problems = []
    stale = run(None).initiator.issued_ticket
    ticks[0] = 61.0
    if stale is not None:
        expired = run(stale)
        if expired.initiator.kex_mode != "ecdh":
            problems.append(f"expired ticket negotiated "
                            f"{expired.initiator.kex_mode!r}")
        if vault.counters["rejected_expired"] != 1:
            problems.append(f"vault counters after expiry: "
                            f"{vault.counters}")
    checks.append({"name": "ticket-expiry-refused", "ok": not problems,
                   "problems": problems})
    return checks


def run_kex_attacks(key_seed: int = 2005) -> dict:
    """Run the whole battery; returns ``{ok, problems, checks}``.

    Installs a fresh obs registry for the duration (restoring the
    previous one) so the handshake-counter reconciliation sees only
    this run's events.  Deterministic given ``key_seed`` — the X25519
    ephemerals vary per run, but every verdict is invariant.
    """
    previous = _obs.set_registry(_obs.ObsRegistry())
    try:
        root = Key.generate(seed=key_seed)
        checks = [_check_baseline(root)]
        checks.extend(_check_downgrades(root))
        checks.extend(_check_tampering(root))
        checks.append(_check_splice(root))
        checks.extend(_check_tickets(root))
        problems = [f"{check['name']}: {problem}"
                    for check in checks
                    for problem in check["problems"]]
        return {"ok": not problems, "problems": problems,
                "checks": checks}
    finally:
        _obs.set_registry(previous)
