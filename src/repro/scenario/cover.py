"""Cover-traffic framing: link datagrams hidden in stego cover objects.

The paper's steganographic mode (:mod:`repro.stego.cover`) hides message
bits inside innocuous cover data.  :class:`CoverCodec` turns that into a
*transport framing*: every secure-link wire datagram is embedded into a
deterministic, per-frame cover blob, and what travels is the stego
object — to an observer, a stream of cover-shaped byte blobs rather
than ``MHEA``-framed ciphertext.

Wire format of one cover frame (little-endian)::

    b"COVR" | n_bits u32 | n_vectors u32 | data_len u32 | stego bytes

The receiver rebuilds the :class:`~repro.stego.cover.StegoObject` and
extracts the original datagram with the stego key alone.  Anything that
does not parse back — truncated frames, corrupted headers, stego bytes
damaged beyond extraction — is *undecodable* and counted, never raised:
on a hostile network the cover layer drops what it cannot read and the
inner link protocol's replay window handles the resulting loss, exactly
like any other datagram transport.  Damage that survives the cover
layer (e.g. a flipped bit inside the used stego area) surfaces as a
tampered inner datagram, which the link protocol then drops with its
own truthful accounting — the two layers compose.

Cover material is drawn deterministically per frame from a seed, sized
to the *guaranteed* capacity floor of :func:`repro.stego.cover.cover_capacity_bits`
(one message bit per cover word), so embedding can never raise
:class:`~repro.core.errors.CoverExhaustedError` mid-run.

Sans-IO like the rest of the scenario core: no sockets, no loop.
"""

from __future__ import annotations

import struct

from repro.core.errors import ReproError
from repro.core.key import Key
from repro.core.params import PAPER_PARAMS, VectorParams
from repro.stego.cover import StegoObject, embed_in_cover, extract_from_cover
from repro.util.rng import random_bytes

__all__ = ["COVER_MAGIC", "COVER_HEADER", "CoverCodec"]

#: Magic leading every cover frame on the wire.
COVER_MAGIC = b"COVR"

#: magic, n_bits, n_vectors, stego byte length (little-endian).
COVER_HEADER = struct.Struct("<4sIII")


class CoverCodec:
    """Wrap/unwrap link datagrams as stego cover frames (one direction).

    Parameters
    ----------
    stego_key:
        The :class:`~repro.core.key.Key` both ends share for embedding
        and extraction (independent of the link's session keys; the
        link's own root key works fine for tests).
    cover_seed:
        Seeds the deterministic per-frame cover material.  Both ends
        only need the *stego key* to agree — the cover bytes travel in
        the frame — but a fixed seed keeps runs replayable.
    params:
        Vector geometry of the stego embedding (the paper's 16-bit
        configuration by default).
    """

    def __init__(self, stego_key: Key, cover_seed: int = 2005,
                 params: VectorParams = PAPER_PARAMS):
        self._key = stego_key
        self._params = params
        self._seed = cover_seed
        self._frame_index = 0
        #: Frames wrapped so far (also the per-frame cover seed offset).
        self.frames_wrapped = 0
        #: Inbound frames dropped because they would not parse back.
        self.undecodable = 0

    def wrap(self, datagram: bytes) -> bytes:
        """Embed one wire datagram into a fresh cover; return the frame."""
        index = self._frame_index
        self._frame_index = index + 1
        step = self._params.width // 8
        # Capacity floor: one bit per cover word, so n_bits words always
        # fit (plus one spare word so zero-length datagrams stay legal).
        n_words = len(datagram) * 8 + 1
        cover = random_bytes(self._seed + index, n_words * step)
        stego = embed_in_cover(datagram, cover, self._key, self._params)
        self.frames_wrapped += 1
        return COVER_HEADER.pack(COVER_MAGIC, stego.n_bits, stego.n_vectors,
                                 len(stego.data)) + stego.data

    def unwrap(self, frame: bytes) -> bytes | None:
        """Extract the datagram from one cover frame, or ``None``.

        ``None`` means the frame is undecodable — malformed header,
        inconsistent lengths, or stego payload damaged beyond
        extraction — and :attr:`undecodable` was incremented.  A frame
        that extracts to *wrong* bytes (damage inside the used stego
        area that still parses) is returned as-is; the inner link
        protocol's own framing/CRC accounting catches it.
        """
        step = self._params.width // 8
        header_size = COVER_HEADER.size
        try:
            if len(frame) < header_size:
                raise ValueError("cover frame shorter than its header")
            magic, n_bits, n_vectors, data_len = COVER_HEADER.unpack_from(
                frame)
            if magic != COVER_MAGIC:
                raise ValueError(f"bad cover magic {magic!r}")
            if len(frame) - header_size != data_len:
                raise ValueError(
                    f"cover frame advertises {data_len} stego bytes, "
                    f"carries {len(frame) - header_size}"
                )
            if n_vectors * step > data_len:
                raise ValueError(
                    f"{n_vectors} vectors do not fit in {data_len} bytes"
                )
            if n_bits % 8 != 0 or n_vectors > n_bits + 1:
                raise ValueError(
                    f"inconsistent stego geometry: {n_bits} bits, "
                    f"{n_vectors} vectors"
                )
            stego = StegoObject(data=frame[header_size:], n_bits=n_bits,
                                n_vectors=n_vectors,
                                width=self._params.width)
            return extract_from_cover(stego, self._key, self._params)
        except (ReproError, ValueError, struct.error):
            self.undecodable += 1
            return None

    def __repr__(self) -> str:
        return (f"<CoverCodec wrapped={self.frames_wrapped} "
                f"undecodable={self.undecodable}>")
