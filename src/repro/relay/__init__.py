"""repro.relay — the multi-tenant secure-link relay/hub.

The "millions of users" deployment shape: one relay terminates many
concurrent secure links, authenticates each one to a tenant through
the :class:`~repro.kex.TenantKeyring` hierarchy, and routes decrypted
payloads between links that joined the same ``(tenant, channel)``
group — re-encrypting per receiver under that receiver's own session
keys.  Admission control (global/per-tenant quotas, handshake-rate
limiting), per-link budgets, handshake/idle deadlines and bounded
egress queues make every overload path an *explicit, typed, counted*
shed decision rather than an un-accounted drop or an unbounded buffer.

Layering (the PR 5 sans-IO/adapter split, applied to the hub):

* :class:`RelayCore` — the sans-IO state machine; owns one responder
  :class:`~repro.link.LinkProtocol` per link (:mod:`repro.relay.core`);
* :class:`AdmissionController` / :class:`ChannelRouter` — the policy
  and routing tables under it (:mod:`repro.relay.admission`,
  :mod:`repro.relay.router`);
* :class:`RelayConfig` / :func:`load_tenant_config` — policy knobs and
  the operator config file (:mod:`repro.relay.config`);
* typed events in :mod:`repro.relay.events`;
* :class:`MemoryRelayHub` — the deterministic in-memory driver behind
  the scale tests, flood scenarios and benchmarks
  (:mod:`repro.relay.harness`);
* :class:`RelayServer` / :class:`RelayClient` — the asyncio TCP
  adapter (:mod:`repro.relay.server`; imported lazily, as it drags in
  asyncio — everything above is sans-IO and policed by
  ``tests/link/test_sans_io.py``).
"""

from __future__ import annotations

from repro.relay.admission import AdmissionController
from repro.relay.config import RelayConfig, load_tenant_config
from repro.relay.core import RelayCore
from repro.relay.events import (
    ChannelJoined,
    LinkAdmitted,
    LinkOpen,
    LinkRejected,
    LinkRetired,
    LinkShed,
    PayloadDropped,
    PayloadRouted,
    RelayEvent,
)
from repro.relay.harness import ManualClock, MemoryRelayClient, MemoryRelayHub
from repro.relay.router import ChannelRouter

__all__ = [
    "RelayCore",
    "RelayConfig",
    "load_tenant_config",
    "AdmissionController",
    "ChannelRouter",
    "RelayEvent",
    "LinkAdmitted",
    "LinkRejected",
    "LinkOpen",
    "ChannelJoined",
    "PayloadRouted",
    "PayloadDropped",
    "LinkShed",
    "LinkRetired",
    "ManualClock",
    "MemoryRelayHub",
    "MemoryRelayClient",
    "RelayServer",
    "RelayClient",
]


def __getattr__(name: str):
    # PEP 562: the asyncio adapter stays out of the sans-IO import
    # closure until someone actually asks for it.
    if name in ("RelayServer", "RelayClient"):
        from repro.relay import server

        return getattr(server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
