"""Asyncio adapter for the sans-IO relay core (plus a relay client).

The PR 5 split, applied to the hub: every protocol and policy decision
lives in :class:`~repro.relay.RelayCore`; this module only moves bytes
between asyncio streams and that machine.  Per connection there are two
tasks — a reader feeding :meth:`RelayCore.receive_data` and a writer
draining :meth:`RelayCore.data_to_send` — joined by an
:class:`asyncio.Event` the core pings through its ``on_egress`` hook
whenever routing queues new output for the link.  A periodic poll task
ticks the core's deadline sweep (handshake/idle timeouts and the
metrics idle eviction) so a relay full of silent links still sheds.

Backpressure is the egress queue itself: the writer awaits
``writer.drain()``, so a stalled TCP peer stops the drain loop, the
core's bounded plaintext queue fills, and the configured egress policy
(drop-oldest or disconnect) applies — the relay never buffers without
limit on behalf of a slow reader.
"""

from __future__ import annotations

import asyncio

from repro.kex.handshake import KexConfig
from repro.kex.keyring import TenantKeyring
from repro.link.events import PayloadReceived, ProtocolError
from repro.link.protocol import LinkProtocol
from repro.net.session import SessionConfig
from repro.relay.config import RelayConfig
from repro.relay.core import RelayCore

__all__ = ["RelayServer", "RelayClient"]

#: Socket read granularity (bytes per ``reader.read`` call).
_READ_CHUNK = 1 << 16


class RelayServer:
    """TCP front end for a :class:`~repro.relay.RelayCore`.

    Usage::

        async with RelayServer(keyring, port=0) as server:
            ...  # server.port is bound; server.core holds the policy

    ``metrics_port`` starts a :class:`repro.obs.MetricsEndpoint`
    (``/metrics`` + ``/healthz``) next to the listener, the same shape
    :class:`repro.net.SecureLinkServer` exposes.
    """

    def __init__(self, keyring: TenantKeyring, host: str = "127.0.0.1",
                 port: int = 0, *, config: "RelayConfig | None" = None,
                 metrics_port: "int | None" = None,
                 poll_interval_s: float = 1.0):
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be > 0")
        self.core = RelayCore(keyring, config, on_egress=self._wake)
        self._host = host
        self._requested_port = port
        self._metrics_port = metrics_port
        self._poll_interval = poll_interval_s
        self._server: "asyncio.base_events.Server | None" = None
        self._poll_task: "asyncio.Task | None" = None
        self._connections: set = set()
        self._wakeups: dict = {}
        self._writers: dict = {}
        self.metrics_endpoint = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and start the deadline-poll task."""
        if self._server is not None:
            raise RuntimeError("relay server already started")
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._requested_port)
        self._poll_task = asyncio.create_task(self._poll_loop())
        if self._metrics_port is not None:
            from repro.obs.http import MetricsEndpoint

            self.metrics_endpoint = MetricsEndpoint(
                host=self._host, port=self._metrics_port,
                health=self._health)
            await self.metrics_endpoint.start()

    def _health(self) -> dict:
        """The ``/healthz`` document: the core's stats snapshot."""
        status = "ok" if self._server is not None else "closed"
        return {"status": status, **self.core.stats()}

    @property
    def port(self) -> int:
        """The bound TCP port (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("relay server not started")
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop accepting, shed every live link, tear the tasks down."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        if self._poll_task is not None:
            self._poll_task.cancel()
            await asyncio.gather(self._poll_task, return_exceptions=True)
            self._poll_task = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self.metrics_endpoint is not None:
            await self.metrics_endpoint.close()
            self.metrics_endpoint = None

    async def serve_forever(self) -> None:
        """Block until cancelled (for CLI use)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def __aenter__(self) -> "RelayServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- per-connection machinery ------------------------------------------

    def _wake(self, link_id: int) -> None:
        event = self._wakeups.get(link_id)
        if event is not None:
            event.set()

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        link_id = None
        try:
            link_id, _ = self.core.connection_made()
            if link_id is None:
                return  # refused at the door: close without a byte
            wakeup = asyncio.Event()
            self._wakeups[link_id] = wakeup
            self._writers[link_id] = writer
            sender = asyncio.create_task(
                self._drain_egress(link_id, wakeup, writer))
            try:
                while True:
                    chunk = await reader.read(_READ_CHUNK)
                    if not chunk:
                        self.core.receive_eof(link_id)
                        break
                    self.core.receive_data(link_id, chunk)
                    # Handshake replies and JOIN acks queue on our own
                    # link; routed traffic pings *other* links via the
                    # on_egress hook.
                    wakeup.set()
                    if not self.core.has_link(link_id):
                        break
            finally:
                self.core.close_link(link_id)
                wakeup.set()  # unblock the sender so it can exit
                await asyncio.gather(sender, return_exceptions=True)
        except (ConnectionError, asyncio.IncompleteReadError):
            if link_id is not None:
                self.core.close_link(link_id, "transport-error")
        except asyncio.CancelledError:
            if link_id is not None:
                self.core.close_link(link_id, "server-shutdown")
        finally:
            if link_id is not None:
                self._wakeups.pop(link_id, None)
                self._writers.pop(link_id, None)
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - race
                pass

    async def _drain_egress(self, link_id: int, wakeup: asyncio.Event,
                            writer: asyncio.StreamWriter) -> None:
        while True:
            await wakeup.wait()
            wakeup.clear()
            data = self.core.data_to_send(link_id)
            if data:
                writer.write(data)
                # The backpressure point: a stalled peer parks us here,
                # the core's bounded egress queue fills behind us, and
                # the egress policy (not this buffer) absorbs the flood.
                await writer.drain()
            if not self.core.has_link(link_id) and not data:
                return

    async def _poll_loop(self) -> None:
        while True:
            await asyncio.sleep(self._poll_interval)
            for event in self.core.poll():
                # Deadline sheds happen outside any connection task:
                # wake the link's writer (it exits on has_link=False)
                # and close its transport to unblock the reader.
                link_id = getattr(event, "link_id", None)
                if link_id is None:
                    continue
                self._wake(link_id)
                writer = self._writers.get(link_id)
                if writer is not None:
                    writer.close()


class RelayClient:
    """One asyncio client link to a :class:`RelayServer`.

    Handshakes on :meth:`connect`, joins its channel, then exposes
    :meth:`send` / :meth:`receive` over the decrypted stream::

        client = await RelayClient.connect("127.0.0.1", port, kex=kex,
                                           channel=b"room")
        await client.send(b"hello")
        payload = await client.receive()
    """

    def __init__(self, proto: LinkProtocol, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._proto = proto
        self._reader = reader
        self._writer = writer
        self._payloads: asyncio.Queue = asyncio.Queue()
        self._pump_task: "asyncio.Task | None" = None
        self.error = None

    @classmethod
    async def connect(cls, host: str, port: int, *, kex: KexConfig,
                      channel: "bytes | None" = None,
                      timeout: float = 10.0,
                      engine: str = "fast") -> "RelayClient":
        """Dial, handshake, optionally JOIN; returns the live client.

        ``engine`` matches the relay's default (wire-identical either
        way; the fast engine just decrypts routed traffic cheaper)."""
        reader, writer = await asyncio.open_connection(host, port)
        proto = LinkProtocol(None, "initiator", SessionConfig(engine=engine),
                             kex=kex)
        client = cls(proto, reader, writer)
        try:
            await asyncio.wait_for(client._handshake(), timeout)
            client._pump_task = asyncio.create_task(client._pump())
            if channel is not None:
                await client.send(channel)
                ack = await asyncio.wait_for(client.receive(), timeout)
                if ack != b"+" + bytes(channel):
                    raise ConnectionError(f"relay refused join: {ack!r}")
        except BaseException:
            writer.close()
            raise
        return client

    async def _handshake(self) -> None:
        while self._proto.handshaking:
            data = self._proto.data_to_send()
            if data:
                self._writer.write(data)
                await self._writer.drain()
            chunk = await self._reader.read(_READ_CHUNK)
            if not chunk:
                for event in self._proto.receive_eof():
                    if isinstance(event, ProtocolError):
                        raise event.error
                raise ConnectionError("relay closed during handshake")
            for event in self._proto.receive_data(chunk):
                if isinstance(event, ProtocolError):
                    raise event.error
        data = self._proto.data_to_send()
        if data:
            self._writer.write(data)
            await self._writer.drain()

    async def _pump(self) -> None:
        while True:
            chunk = await self._reader.read(_READ_CHUNK)
            events = (self._proto.receive_eof() if not chunk
                      else self._proto.receive_data(chunk))
            for event in events:
                if isinstance(event, PayloadReceived):
                    self._payloads.put_nowait(event.payload)
                elif isinstance(event, ProtocolError):
                    self.error = event.error
                    self._payloads.put_nowait(None)
                    return
            if not chunk:
                self._payloads.put_nowait(None)
                return

    async def send(self, payload: bytes) -> None:
        """Encrypt and ship one payload to the relay."""
        self._proto.send_payload(payload)
        self._writer.write(self._proto.data_to_send())
        await self._writer.drain()

    async def receive(self) -> "bytes | None":
        """The next routed payload, or ``None`` once the link ended."""
        payload = await self._payloads.get()
        return payload

    async def close(self) -> None:
        """Tear the connection down."""
        if self._pump_task is not None:
            self._pump_task.cancel()
            await asyncio.gather(self._pump_task, return_exceptions=True)
            self._pump_task = None
        self._proto.close()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - race
            pass
