"""Typed events emitted by the sans-IO :class:`~repro.relay.RelayCore`.

Exactly the h11/h2 convention the link layer already follows: the core
never calls the application, it *returns* immutable event objects from
``connection_made`` / ``receive_data`` / ``receive_eof`` / ``poll`` and
the transport adapter dispatches on their types.  Load-shedding is
always explicit — a refused connection or a killed link produces a
:class:`LinkRejected` / :class:`LinkShed` event *and* bumps the
``repro_relay_shed_total{reason=}`` counter, never a silent drop —
which is what lets the scenario harness reconcile every shed decision
exactly against its own attack ledger.

Reason vocabulary (the ``reason`` field of the shedding events, and the
label set of the shed counter):

===================  ====================================================
``global-quota``     connection refused: relay-wide link cap reached
``handshake-rate``   connection refused: admission token bucket empty
``tenant-quota``     handshake done, but the tenant's link cap is reached
``unknown-tenant``   handshake done, but the tenant is not on the allow
                     list
``tenant-revoked``   the keyring refused the tenant mid-handshake
                     (revoked or expired branch)
``handshake-timeout``  the peer dripped its handshake past the deadline
``idle-timeout``     no traffic progress within the idle window
``egress-drop``      one queued payload dropped from a full egress queue
                     (``drop-oldest`` policy; the link survives)
``egress-disconnect``  egress queue overflowed under the ``disconnect``
                     policy; the link is shed
``budget-frames``    per-link frame budget exhausted
``budget-bytes``     per-link payload-byte budget exhausted
``bad-join``         first payload was not a valid channel name
``protocol-error``   the link state machine failed (framing damage,
                     handshake mismatch, replay...)
===================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "RelayEvent",
    "LinkAdmitted",
    "LinkRejected",
    "LinkOpen",
    "ChannelJoined",
    "PayloadRouted",
    "PayloadDropped",
    "LinkShed",
    "LinkRetired",
]


@dataclass(frozen=True)
class RelayEvent:
    """Base class of every event a :class:`~repro.relay.RelayCore` emits."""


@dataclass(frozen=True)
class LinkAdmitted(RelayEvent):
    """A new connection passed admission and got a link id."""

    link_id: int


@dataclass(frozen=True)
class LinkRejected(RelayEvent):
    """Admission refused a connection or an authenticated tenant.

    ``link_id`` is ``None`` when the refusal happened before a link id
    was even assigned (global quota, handshake-rate limiting);
    ``tenant_id`` is set when the refusal is tenant-scoped (quota,
    allow list, revocation).
    """

    link_id: "int | None"
    reason: str
    tenant_id: "bytes | None" = None


@dataclass(frozen=True)
class LinkOpen(RelayEvent):
    """A link finished its handshake and its tenant passed admission."""

    link_id: int
    tenant_id: bytes


@dataclass(frozen=True)
class ChannelJoined(RelayEvent):
    """A link bound itself to a routing channel (first payload)."""

    link_id: int
    tenant_id: bytes
    channel: bytes


@dataclass(frozen=True)
class PayloadRouted(RelayEvent):
    """One payload fanned out to every other member of the channel.

    ``receivers`` is the number of peer links the payload was queued
    to (0 if the sender is alone in the channel — the payload then
    went nowhere, by design).
    """

    link_id: int
    channel: bytes
    receivers: int
    n_bytes: int


@dataclass(frozen=True)
class PayloadDropped(RelayEvent):
    """A full egress queue dropped its oldest payload (link survives)."""

    link_id: int
    reason: str


@dataclass(frozen=True)
class LinkShed(RelayEvent):
    """An admitted link was killed by policy (budgets, deadlines,
    egress overflow under the ``disconnect`` policy, protocol failure)."""

    link_id: int
    reason: str
    tenant_id: "bytes | None" = None


@dataclass(frozen=True)
class LinkRetired(RelayEvent):
    """A link left the relay for a non-shedding reason (peer close,
    local close); bookkeeping is complete and the id is dead."""

    link_id: int
    reason: str
