"""The sans-IO relay core: terminate many links, route by tenant+channel.

:class:`RelayCore` is to a fleet what
:class:`~repro.link.LinkProtocol` is to one connection: a pure state
machine.  It owns one responder ``LinkProtocol`` per accepted
connection, decrypts inbound payloads, routes them to every other link
in the same ``(tenant, channel)`` group, and re-encrypts per receiver
under that receiver's own session keys — the relay is the trust
boundary where tenant policy (quotas, revocation, budgets) is applied
to *plaintext* it alone can see.

No asyncio, no sockets (policed by ``tests/link/test_sans_io.py``):
adapters push bytes in with :meth:`receive_data`, pull bytes out with
:meth:`data_to_send`, and tick deadlines with :meth:`poll` on an
injectable clock.  Every decision comes back as a typed event from
:mod:`repro.relay.events`, and every shed decision is double-entry
bookkeeping: a typed event *and* a ``repro_relay_shed_total{reason=}``
increment, reconciled exactly by the scenario harness.

Wire protocol above the secure link (all inside encrypted payloads)::

    client -> relay   first payload: the channel name (the JOIN)
    relay  -> client  ``b"+" + channel``  (the ack; FIFO per link, so
                      it always precedes any routed traffic)
    client -> relay   every later payload: routed verbatim to every
                      other member of the (tenant, channel) group
"""

from __future__ import annotations

import time

from repro.core.errors import SessionError, TenantRevokedError
from repro.kex.handshake import KexConfig
from repro.kex.keyring import TenantKeyring
from repro.kex.tickets import TicketVault
from repro.link.events import (
    HandshakeComplete,
    LinkClosed,
    PayloadReceived,
    ProtocolError,
)
from repro.link.protocol import OPEN, LinkProtocol
from repro.net.metrics import MetricsRegistry
from repro.net.session import SessionConfig
from repro.obs import core as _obs
from repro.relay.admission import AdmissionController
from repro.relay.config import RelayConfig
from repro.relay.events import (
    ChannelJoined,
    LinkAdmitted,
    LinkOpen,
    LinkRejected,
    LinkRetired,
    LinkShed,
    PayloadDropped,
    PayloadRouted,
    RelayEvent,
)
from repro.relay.router import ChannelRouter

__all__ = ["RelayCore"]

#: Histogram buckets for routed fan-out (receivers per payload).
_FANOUT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


def _tenant_label(tenant_id: bytes) -> str:
    """A human label for a 16-byte tenant id (metrics/log use only)."""
    name = tenant_id.rstrip(b"\x00")
    try:
        return name.decode("ascii")
    except UnicodeDecodeError:
        return name.hex()


class _Link:
    """Per-link relay state riding above one responder LinkProtocol."""

    __slots__ = ("link_id", "proto", "opened_at", "last_activity",
                 "tenant_id", "tenant_admitted", "channel", "egress",
                 "frames", "payload_bytes", "closed")

    def __init__(self, link_id: int, proto: LinkProtocol, now: float):
        self.link_id = link_id
        self.proto = proto
        self.opened_at = now
        self.last_activity = now
        self.tenant_id: "bytes | None" = None
        self.tenant_admitted = False
        self.channel: "bytes | None" = None
        self.egress: list = []   # plaintext payloads awaiting encryption
        self.frames = 0
        self.payload_bytes = 0
        self.closed = False


class RelayCore:
    """Multi-tenant relay hub as a sans-IO state machine.

    Parameters
    ----------
    keyring:
        The fleet :class:`~repro.kex.TenantKeyring`.  Every link's
        handshake resolves its auth secret per tenant through it, so
        revocation/expiry bite mid-handshake and surface as typed
        ``tenant-revoked`` rejections.
    config:
        The :class:`~repro.relay.RelayConfig` policy; defaults apply.
    clock:
        Monotonic-seconds callable for deadlines, rate limiting and
        per-link metrics (injectable for deterministic tests).
    on_egress:
        Optional ``callable(link_id)`` invoked whenever new outbound
        work is queued for a link — the hook an asyncio adapter uses to
        wake that link's writer task.  Called from inside
        :meth:`receive_data`; must not reenter the core.
    """

    def __init__(self, keyring: TenantKeyring, config: "RelayConfig | None" = None,
                 *, clock=time.monotonic, on_egress=None):
        if not isinstance(keyring, TenantKeyring):
            raise SessionError("RelayCore needs a TenantKeyring "
                               f"(got {type(keyring).__name__})")
        self._keyring = keyring
        self._config = config if config is not None else RelayConfig()
        self._config.validate()
        self._clock = clock
        self._on_egress = on_egress
        #: The relay-wide resumption-ticket vault, sealed under the
        #: fleet's ticket secret — reconnecting clients skip the ladder.
        self.vault = TicketVault(keyring.ticket_secret(),
                                 lifetime_s=self._config.ticket_lifetime_s)
        self._kex_config = KexConfig(modes=("ecdh", "resume"),
                                     keyring=keyring, tickets=self.vault)
        self._allowed = self._config.normalized_allow_list()
        self.admission = AdmissionController(
            max_links=self._config.max_links,
            max_links_per_tenant=self._config.max_links_per_tenant,
            handshake_rate=self._config.handshake_rate,
            handshake_burst=self._config.handshake_burst,
            allowed_tenants=self._allowed,
        )
        self.router = ChannelRouter()
        self.metrics = MetricsRegistry(clock=clock)
        self._links: dict = {}
        self._next_id = 0
        self._last_eviction = clock()
        #: The shed ledger: reason -> count, mirrored one-for-one into
        #: ``repro_relay_shed_total{reason=}`` — the reconciliation
        #: ground truth for the flood scenarios.
        self.shed: dict = {}
        self.routed_payloads = 0
        self.routed_bytes = 0
        registry = _obs.get_registry()
        self._obs = registry
        self._obs_active = registry.gauge(
            "repro_relay_links_active",
            help="Links currently admitted to the relay.")
        self._obs_routed_payloads = registry.counter(
            "repro_relay_routed_payloads_total",
            help="Payloads fanned out by the relay.")
        self._obs_routed_bytes = registry.counter(
            "repro_relay_routed_bytes_total",
            help="Plaintext bytes queued to receivers by the relay.")
        self._obs_fanout = registry.histogram(
            "repro_relay_fanout_receivers",
            help="Receivers per routed payload.",
            buckets=_FANOUT_BUCKETS)
        self._shed_counters: dict = {}

    # -- introspection ----------------------------------------------------

    @property
    def config(self) -> RelayConfig:
        """The (validated) policy this relay runs under."""
        return self._config

    @property
    def active_links(self) -> int:
        """Links currently alive (any state, handshaking included)."""
        return len(self._links)

    def has_link(self, link_id: int) -> bool:
        """True while ``link_id`` is alive inside the relay."""
        return link_id in self._links

    def link_tenant(self, link_id: int) -> "bytes | None":
        """The authenticated tenant of a link (``None`` pre-handshake)."""
        link = self._links.get(link_id)
        return link.tenant_id if link is not None else None

    def tenants(self) -> dict:
        """``{tenant label: live link count}`` over authenticated links."""
        return {_tenant_label(tenant): count
                for tenant, count in sorted(self.admission.tenant_links.items())}

    def stats(self) -> dict:
        """One JSON-able snapshot (the CLI's and health endpoint's view)."""
        return {
            "active_links": self.active_links,
            "tenants": self.tenants(),
            "channels": len(self.router.snapshot()),
            "routed_payloads": self.routed_payloads,
            "routed_bytes": self.routed_bytes,
            "shed": dict(sorted(self.shed.items())),
            "metrics_sessions": self.metrics.total_sessions,
            "tickets": dict(self.vault.counters),
        }

    # -- admission ---------------------------------------------------------

    def connection_made(self) -> tuple:
        """Admit (or refuse) one new transport connection.

        Returns ``(link_id, events)``; ``link_id`` is ``None`` when the
        connect-time gates refused — the adapter must then close the
        transport without feeding any bytes.
        """
        now = self._clock()
        reason = self.admission.admit_connection(now)
        if reason is not None:
            self._count_shed(reason)
            return None, [LinkRejected(None, reason)]
        link_id = self._next_id
        self._next_id += 1
        proto = LinkProtocol(
            None, "responder", SessionConfig(engine=self._config.engine),
            kex=self._kex_config,
            metrics=lambda name=f"relay-{link_id}": self.metrics.session(name),
        )
        self._links[link_id] = _Link(link_id, proto, now)
        self._obs_active.set(len(self._links))
        return link_id, [LinkAdmitted(link_id)]

    # -- inbound -----------------------------------------------------------

    def receive_data(self, link_id: int, data: bytes) -> list:
        """Feed one transport chunk to a link; returns relay events.

        Unknown or already-retired link ids are ignored (the adapter's
        reader may race a poll-driven shed) — feeding a dead link is
        not an error, it is a no-op.
        """
        link = self._links.get(link_id)
        if link is None or link.closed:
            return []
        link.last_activity = self._clock()
        return self._dispatch(link, link.proto.receive_data(data))

    def receive_eof(self, link_id: int) -> list:
        """The transport hit end-of-stream for a link.

        The relay treats a peer's EOF as the end of the conversation —
        half-open relay links have no use and would pin quota slots —
        so a clean close retires the link and a dirty one sheds it.
        """
        link = self._links.get(link_id)
        if link is None or link.closed:
            return []
        return self._dispatch(link, link.proto.receive_eof())

    def _dispatch(self, link: _Link, link_events: list) -> list:
        events: list = []
        for event in link_events:
            if isinstance(event, PayloadReceived):
                events.extend(self._on_payload(link, event.payload))
            elif isinstance(event, HandshakeComplete):
                events.extend(self._on_open(link))
            elif isinstance(event, ProtocolError):
                events.extend(self._on_protocol_error(link, event.error))
            elif isinstance(event, LinkClosed):
                events.extend(self._retire(link, "peer-closed"))
            if link.closed:
                break
        return events

    def _on_open(self, link: _Link) -> list:
        tenant_id = link.proto.tenant_id
        reason = self.admission.admit_tenant(tenant_id)
        if reason is not None:
            self._count_shed(reason)
            self._retire(link, reason, count_tenant=False)
            return [LinkRejected(link.link_id, reason, tenant_id=tenant_id)]
        link.tenant_id = tenant_id
        link.tenant_admitted = True
        if self._obs.enabled:
            self._obs.gauge(
                "repro_relay_tenant_links",
                help="Live links per authenticated tenant.",
                tenant=_tenant_label(tenant_id),
            ).set(self.admission.tenant_links[tenant_id])
        return [LinkOpen(link.link_id, tenant_id)]

    def _on_payload(self, link: _Link, payload: bytes) -> list:
        cfg = self._config
        link.frames += 1
        link.payload_bytes += len(payload)
        if cfg.max_frames_per_link and link.frames > cfg.max_frames_per_link:
            return self._shed(link, "budget-frames")
        if cfg.max_bytes_per_link and link.payload_bytes > cfg.max_bytes_per_link:
            return self._shed(link, "budget-bytes")
        if link.channel is None:
            # The JOIN: first payload names the channel.
            if not payload or len(payload) > cfg.max_channel_bytes:
                return self._shed(link, "bad-join")
            link.channel = bytes(payload)
            self.router.join(link.link_id, link.tenant_id, link.channel)
            events = [ChannelJoined(link.link_id, link.tenant_id, link.channel)]
            events.extend(self._enqueue(link, b"+" + link.channel)[1])
            return events
        receivers = 0
        side_events: list = []
        for peer_id in self.router.peers(link.link_id):
            peer = self._links.get(peer_id)
            if peer is None or peer.closed:
                continue
            delivered, dropped = self._enqueue(peer, payload)
            side_events.extend(dropped)
            if delivered:
                receivers += 1
        self.routed_payloads += 1
        self.routed_bytes += len(payload) * receivers
        self._obs_routed_payloads.inc()
        if receivers:
            self._obs_routed_bytes.inc(len(payload) * receivers)
        self._obs_fanout.observe(receivers)
        return [PayloadRouted(link.link_id, link.channel, receivers,
                              len(payload))] + side_events

    def _enqueue(self, link: _Link, payload: bytes) -> tuple:
        """Queue one plaintext payload toward a link; apply the egress
        policy.  Returns ``(delivered, events)``."""
        cfg = self._config
        events: list = []
        if len(link.egress) >= cfg.egress_queue_payloads:
            if cfg.egress_policy == "disconnect":
                return False, self._shed(link, "egress-disconnect")
            del link.egress[0]
            self._count_shed("egress-drop")
            events.append(PayloadDropped(link.link_id, "egress-drop"))
        link.egress.append(payload)
        if self._on_egress is not None:
            self._on_egress(link.link_id)
        return True, events

    def _on_protocol_error(self, link: _Link, error) -> list:
        if isinstance(error, TenantRevokedError):
            # The keyring refused the tenant mid-handshake: this is an
            # admission decision, not a wire failure, and it gets the
            # typed rejection the revocation policy promises.
            self._count_shed("tenant-revoked")
            self._retire(link, "tenant-revoked")
            return [LinkRejected(link.link_id, "tenant-revoked",
                                 tenant_id=error.tenant_id)]
        return self._shed(link, "protocol-error")

    # -- outbound ----------------------------------------------------------

    def data_to_send(self, link_id: int) -> bytes:
        """Drain every sendable outbound byte for one link.

        Encrypts the link's queued plaintext egress under its own
        session (payloads are queued as plaintext so an overflowing
        queue never burns sequence numbers on bytes it then drops),
        then drains the protocol's wire buffer — which also carries
        handshake traffic while the link is still negotiating.
        """
        link = self._links.get(link_id)
        if link is None:
            return b""
        proto = link.proto
        if link.egress and proto.state == OPEN:
            for payload in link.egress:
                proto.send_payload(payload)
            link.egress.clear()
        data = proto.data_to_send()
        if data:
            # Outbound progress counts as activity: a healthy reader
            # keeps draining, a stalled one lets the idle deadline bite.
            link.last_activity = self._clock()
        return data

    def pending_output(self, link_id: int) -> bool:
        """True while a link has queued egress or undrained wire bytes."""
        link = self._links.get(link_id)
        if link is None:
            return False
        return bool(link.egress) or link.proto.bytes_to_send > 0

    def close_link(self, link_id: int, reason: str = "local-close") -> list:
        """Retire a link locally (no shed accounting); idempotent."""
        link = self._links.get(link_id)
        if link is None:
            return []
        return self._retire(link, reason)

    # -- deadlines ---------------------------------------------------------

    def poll(self, now: "float | None" = None) -> list:
        """Enforce handshake/idle deadlines; call on a coarse timer.

        Also runs the periodic ``MetricsRegistry.evict_idle`` sweep so
        a long-running relay's metrics table cannot grow unbounded on
        wedged links.
        """
        now = self._clock() if now is None else now
        cfg = self._config
        events: list = []
        for link in list(self._links.values()):
            if link.closed:
                continue
            if link.proto.handshaking:
                if now - link.opened_at >= cfg.handshake_timeout_s:
                    events.extend(self._shed(link, "handshake-timeout"))
            elif cfg.idle_timeout_s:
                if now - link.last_activity >= cfg.idle_timeout_s:
                    events.extend(self._shed(link, "idle-timeout"))
        if (cfg.metrics_eviction_s
                and now - self._last_eviction >= cfg.metrics_eviction_s):
            self.metrics.evict_idle(cfg.metrics_eviction_s)
            self._last_eviction = now
        return events

    # -- internals ---------------------------------------------------------

    def _shed(self, link: _Link, reason: str) -> list:
        self._count_shed(reason)
        tenant_id = link.tenant_id
        self._retire(link, reason)
        return [LinkShed(link.link_id, reason, tenant_id=tenant_id)]

    def _retire(self, link: _Link, reason: str,
                count_tenant: bool = True) -> list:
        if link.closed:
            return []
        link.closed = True
        self.router.leave(link.link_id)
        tenant_id = link.tenant_id if (link.tenant_admitted and count_tenant) \
            else None
        self.admission.release(tenant_id)
        if tenant_id is not None and self._obs.enabled:
            self._obs.gauge(
                "repro_relay_tenant_links",
                tenant=_tenant_label(tenant_id),
            ).set(self.admission.tenant_links.get(tenant_id, 0))
        self.metrics.remove(f"relay-{link.link_id}")
        link.proto.close()
        link.egress.clear()
        del self._links[link.link_id]
        self._obs_active.set(len(self._links))
        return [LinkRetired(link.link_id, reason)]

    def _count_shed(self, reason: str) -> None:
        self.shed[reason] = self.shed.get(reason, 0) + 1
        counter = self._shed_counters.get(reason)
        if counter is None:
            counter = self._obs.counter(
                "repro_relay_shed_total",
                help="Relay load-shedding decisions by reason.",
                reason=reason)
            self._shed_counters[reason] = counter
        counter.inc()

    def __repr__(self) -> str:
        return (f"<RelayCore links={self.active_links} "
                f"tenants={len(self.admission.tenant_links)} "
                f"shed={sum(self.shed.values())}>")
