"""Deterministic in-memory driver for :class:`~repro.relay.RelayCore`.

The relay twin of :class:`repro.link.memory.LinkPair`: real client-side
:class:`~repro.link.LinkProtocol` machines speak to a real relay core
through plain byte shuttling — no sockets, no event loop, no clock
dependence (inject a :class:`ManualClock` to step deadlines by hand).
This is what the 500-link scale tests, the flood scenarios and the
benchmarks all drive, and what makes every one of them replayable.

    >>> hub = MemoryRelayHub()
    >>> a = hub.connect("alpha", channel=b"room")
    >>> b = hub.connect("alpha", channel=b"room")
    >>> _ = a.send(b"hi")
    >>> b.pump()
    >>> b.received
    [b'hi']
"""

from __future__ import annotations

import os

from repro.core.errors import SessionError
from repro.kex.handshake import KexConfig, ResumptionTicket
from repro.kex.keyring import TenantKeyring, normalize_tenant_id
from repro.link.events import PayloadReceived, ProtocolError
from repro.link.protocol import OPEN, LinkProtocol
from repro.net.session import SessionConfig
from repro.relay.config import RelayConfig
from repro.relay.core import RelayCore

__all__ = ["ManualClock", "MemoryRelayHub", "MemoryRelayClient"]

#: The harness's default fleet root (32 bytes, fixed so examples and
#: doctests need no setup; never use a published constant in production).
DEFAULT_FLEET_ROOT = b"mhhea-relay-harness-fleet-root!!"


class ManualClock:
    """A hand-stepped monotonic clock for deterministic deadline tests."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new now."""
        self.now += seconds
        return self.now


class MemoryRelayClient:
    """One client endpoint attached to a :class:`MemoryRelayHub`.

    Holds a real initiator :class:`~repro.link.LinkProtocol`; every
    :meth:`pump` shuttles bytes both ways until the pair is quiescent.
    Received payloads accumulate in :attr:`received` (the JOIN ack is
    captured separately in :attr:`ack`).  A client that is never
    pumped models a stalled reader: the relay keeps queueing at it
    until the egress policy bites.
    """

    def __init__(self, hub: "MemoryRelayHub", link_id: int,
                 proto: LinkProtocol, tenant):
        self.hub = hub
        self.link_id = link_id
        self.proto = proto
        self.tenant = tenant
        self.received: list = []
        self.ack: "bytes | None" = None
        self.error = None

    @property
    def open(self) -> bool:
        """True while both this endpoint and its relay link are live."""
        return self.proto.state == OPEN and self.hub.core.has_link(self.link_id)

    def pump(self) -> list:
        """Shuttle bytes with the relay until quiescent; returns the
        relay events this exchange produced (also appended to
        ``hub.events``)."""
        core = self.hub.core
        events: list = []
        progress = True
        while progress:
            progress = False
            out = self.proto.data_to_send()
            if out:
                if core.has_link(self.link_id):
                    events.extend(core.receive_data(self.link_id, out))
                progress = True
            back = core.data_to_send(self.link_id)
            if back:
                self._absorb(back)
                progress = True
        self.hub.events.extend(events)
        return events

    def _absorb(self, data: bytes) -> None:
        for event in self.proto.receive_data(data):
            if isinstance(event, PayloadReceived):
                if self.ack is None and event.payload[:1] == b"+":
                    self.ack = event.payload
                else:
                    self.received.append(event.payload)
            elif isinstance(event, ProtocolError):
                self.error = event.error

    def join(self, channel: bytes) -> bool:
        """Send the JOIN payload; True once the relay acked the channel."""
        self.proto.send_payload(channel)
        self.pump()
        return self.ack == b"+" + bytes(channel)

    def send(self, payload: bytes) -> list:
        """Send one routed payload (pumps; peers still need their own
        :meth:`pump` to actually read what the relay queued at them)."""
        self.proto.send_payload(payload)
        return self.pump()

    def close(self) -> list:
        """Retire this link at the relay and close the local machine."""
        events = self.hub.core.close_link(self.link_id)
        self.hub.events.extend(events)
        self.proto.close()
        return events


class MemoryRelayHub:
    """A relay core plus byte-shuttled in-memory clients.

    ``keyring`` defaults to one derived from a fixed harness root;
    ``clock`` (e.g. a :class:`ManualClock`) reaches the core, the
    admission token bucket and the per-link metrics.  Tenant auth
    secrets are cached at first use so a tenant can be revoked *after*
    its clients learned their secret — exactly the mid-life revocation
    the tests exercise.
    """

    def __init__(self, keyring: "TenantKeyring | None" = None,
                 config: "RelayConfig | None" = None, *, clock=None):
        self.keyring = keyring if keyring is not None \
            else TenantKeyring(DEFAULT_FLEET_ROOT)
        kwargs = {} if clock is None else {"clock": clock}
        self.core = RelayCore(self.keyring, config, **kwargs)
        #: Every relay event any pump produced, in order.
        self.events: list = []
        self._secrets: dict = {}

    def tenant_secret(self, tenant) -> bytes:
        """The tenant's auth secret, cached across revocation."""
        tenant_id = normalize_tenant_id(tenant)
        secret = self._secrets.get(tenant_id)
        if secret is None:
            secret = self.keyring.tenant_secret(tenant_id)
            self._secrets[tenant_id] = secret
        return secret

    def mint_ticket(self, tenant, master: "bytes | None" = None) -> ResumptionTicket:
        """Pre-issue a resumption ticket (clients holding one handshake
        without any X25519 ladder — how the scale tests open hundreds
        of links per second)."""
        tenant_id = normalize_tenant_id(tenant)
        master = os.urandom(32) if master is None else bytes(master)
        if len(master) != 32:
            raise SessionError("ticket master secret must be 32 bytes")
        return ResumptionTicket(self.core.vault.issue(master, tenant_id),
                                master, tenant_id)

    def connect(self, tenant, *, channel: "bytes | None" = None,
                ticket: "ResumptionTicket | None" = None,
                modes: "tuple | None" = None,
                auth_secret: "bytes | None" = None,
                pump: bool = True) -> "MemoryRelayClient | None":
        """Open one client link; ``None`` if admission refused it.

        With ``channel`` the client also JOINs once open.  ``modes``
        defaults to resume-only when a ticket is given, else ECDH.
        """
        link_id, events = self.core.connection_made()
        self.events.extend(events)
        if link_id is None:
            return None
        if modes is None:
            modes = ("resume",) if ticket is not None else ("ecdh",)
        secret = auth_secret if auth_secret is not None \
            else self.tenant_secret(tenant)
        kex = KexConfig(auth_secret=secret, modes=modes,
                        tenant_id=tenant, ticket=ticket)
        proto = LinkProtocol(None, "initiator",
                             SessionConfig(engine=self.core.config.engine),
                             kex=kex)
        client = MemoryRelayClient(self, link_id, proto, tenant)
        if pump or channel is not None:
            client.pump()
        if channel is not None and client.open:
            client.join(channel)
        return client

    def poll(self, now: "float | None" = None) -> list:
        """Run the core's deadline sweep; events land in ``events`` too."""
        events = self.core.poll(now)
        self.events.extend(events)
        return events

    def shed_by_reason(self) -> dict:
        """A copy of the core's shed ledger (reconciliation helper)."""
        return dict(self.core.shed)
