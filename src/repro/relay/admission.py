"""Admission control: who gets a link, and who gets shed.

Two gates, matching the two moments the relay learns something about a
connection:

1. **At connect** (:meth:`AdmissionController.admit_connection`) the
   relay knows nothing but "a socket arrived", so the only policies
   that can apply are the global link cap and the handshake-rate
   token bucket — both exist to keep a connection flood from buying
   CPU-expensive handshake work with cheap SYNs.
2. **At handshake completion** (:meth:`AdmissionController.admit_tenant`)
   the confirm MACs have *proven* which tenant the peer is, so the
   per-tenant quota and the allow list apply.  Checking tenant policy
   any earlier would trust an unauthenticated ClientHello field.

The controller is pure bookkeeping over an injectable clock — no IO,
no time.sleep — so floods are testable by stepping a fake clock.
"""

from __future__ import annotations

__all__ = ["AdmissionController"]


class AdmissionController:
    """Connection quotas + handshake-rate limiting for the relay.

    Returns ``None`` from the ``admit_*`` methods on success and a
    shed-reason string (see :mod:`repro.relay.events`) on refusal; the
    caller (:class:`~repro.relay.RelayCore`) owns the shed ledger and
    the typed events.
    """

    def __init__(self, *, max_links: int, max_links_per_tenant: int,
                 handshake_rate: float = 0.0, handshake_burst: int = 32,
                 allowed_tenants: "frozenset | None" = None):
        if max_links < 1:
            raise ValueError(f"max_links must be >= 1, got {max_links}")
        if max_links_per_tenant < 1:
            raise ValueError("max_links_per_tenant must be >= 1, "
                             f"got {max_links_per_tenant}")
        if handshake_rate < 0:
            raise ValueError("handshake_rate must be >= 0")
        if handshake_burst < 1:
            raise ValueError("handshake_burst must be >= 1")
        self.max_links = max_links
        self.max_links_per_tenant = max_links_per_tenant
        self.handshake_rate = float(handshake_rate)
        self.handshake_burst = int(handshake_burst)
        self.allowed_tenants = allowed_tenants
        #: Links currently holding a connection slot (admitted, not yet
        #: released) — includes links still mid-handshake.
        self.active_links = 0
        #: Links per authenticated tenant (16-byte id -> count).
        self.tenant_links: dict = {}
        self._tokens = float(handshake_burst)
        self._refilled_at: "float | None" = None

    # -- the connect-time gate --------------------------------------------

    def admit_connection(self, now: float) -> "str | None":
        """Gate a raw connection; returns ``None`` or a shed reason."""
        if self.active_links >= self.max_links:
            return "global-quota"
        if not self._take_token(now):
            return "handshake-rate"
        self.active_links += 1
        return None

    def _take_token(self, now: float) -> bool:
        if self.handshake_rate <= 0:
            return True
        if self._refilled_at is None:
            self._refilled_at = now
        elapsed = max(0.0, now - self._refilled_at)
        self._tokens = min(self.handshake_burst,
                           self._tokens + elapsed * self.handshake_rate)
        self._refilled_at = now
        if self._tokens < 1.0:
            return False
        self._tokens -= 1.0
        return True

    # -- the handshake-time gate ------------------------------------------

    def admit_tenant(self, tenant_id: bytes) -> "str | None":
        """Gate an *authenticated* tenant; returns ``None`` or a reason."""
        if (self.allowed_tenants is not None
                and tenant_id not in self.allowed_tenants):
            return "unknown-tenant"
        count = self.tenant_links.get(tenant_id, 0)
        if count >= self.max_links_per_tenant:
            return "tenant-quota"
        self.tenant_links[tenant_id] = count + 1
        return None

    # -- teardown ----------------------------------------------------------

    def release(self, tenant_id: "bytes | None" = None) -> None:
        """Return a connection slot (and the tenant slot, if one was
        taken) when a link retires for any reason."""
        if self.active_links > 0:
            self.active_links -= 1
        if tenant_id is not None:
            count = self.tenant_links.get(tenant_id, 0)
            if count <= 1:
                self.tenant_links.pop(tenant_id, None)
            else:
                self.tenant_links[tenant_id] = count - 1
