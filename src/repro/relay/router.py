"""Tenant/channel routing table: who hears whom.

The routing key is the pair ``(tenant_id, channel)`` — two tenants
using the same channel name are in *different* rooms, which is the
isolation property the whole TenantKeyring hierarchy exists to give:
cross-tenant delivery is impossible by construction because the lookup
key embeds the authenticated tenant identity, not anything the client
typed.
"""

from __future__ import annotations

__all__ = ["ChannelRouter"]


class ChannelRouter:
    """Maps ``(tenant, channel)`` groups to member link ids.

    Pure bookkeeping: membership is driven by the
    :class:`~repro.relay.RelayCore` (join on the first payload, leave
    on retirement), and :meth:`peers` answers the only routing question
    the hot path asks.  Peer lists come back sorted so fan-out order —
    and therefore every adapter's write order — is deterministic.
    """

    def __init__(self):
        self._groups: dict = {}
        self._membership: dict = {}

    def join(self, link_id: int, tenant_id: bytes, channel: bytes) -> int:
        """Add a link to its tenant's channel; returns the group size."""
        if link_id in self._membership:
            raise ValueError(f"link {link_id} already joined a channel")
        key = (bytes(tenant_id), bytes(channel))
        group = self._groups.setdefault(key, set())
        group.add(link_id)
        self._membership[link_id] = key
        return len(group)

    def leave(self, link_id: int) -> "tuple | None":
        """Remove a link; returns its ``(tenant, channel)`` key or
        ``None`` if it never joined.  Empty groups are deleted."""
        key = self._membership.pop(link_id, None)
        if key is None:
            return None
        group = self._groups.get(key)
        if group is not None:
            group.discard(link_id)
            if not group:
                del self._groups[key]
        return key

    def peers(self, link_id: int) -> list:
        """Every *other* member of the link's group, sorted by id."""
        key = self._membership.get(link_id)
        if key is None:
            return []
        return sorted(m for m in self._groups[key] if m != link_id)

    def group_size(self, tenant_id: bytes, channel: bytes) -> int:
        """Current membership of one ``(tenant, channel)`` group."""
        return len(self._groups.get((bytes(tenant_id), bytes(channel)), ()))

    def membership(self, link_id: int) -> "tuple | None":
        """The ``(tenant, channel)`` a link joined, or ``None``."""
        return self._membership.get(link_id)

    def __len__(self) -> int:
        return len(self._membership)

    def snapshot(self) -> dict:
        """``{(tenant, channel): sorted member ids}`` — for stats/tests."""
        return {key: sorted(group) for key, group in self._groups.items()}
