"""Relay policy knobs and the operator-facing tenant config file.

:class:`RelayConfig` is the full policy surface of a
:class:`~repro.relay.RelayCore` — quotas, budgets, deadlines, egress
bounds — with defaults sized for tests and small deployments.
:func:`load_tenant_config` reads the JSON file the ``repro relay
--tenant-config`` flag points at and returns the
(:class:`~repro.kex.TenantKeyring`, :class:`RelayConfig`) pair the
server needs.  File format::

    {
      "fleet_root_hex": "<32+ byte hex fleet root>",
      "tenants": {
        "alpha": {},
        "beta":  {"revoked": true},
        "gamma": {"expires_unix": 1767225600}
      },
      "max_links": 1000,
      "max_links_per_tenant": 100,
      "handshake_rate": 200,
      "idle_timeout_s": 120
    }

Naming a ``tenants`` map turns on the allow list (unknown tenants are
shed with ``unknown-tenant``); omitting it admits any tenant the
keyring will derive for.  Revocations and expiries are applied to the
returned keyring, so they bite mid-handshake exactly like runtime
:meth:`~repro.kex.TenantKeyring.revoke` calls.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.core.errors import SessionError
from repro.kex.keyring import TenantKeyring, normalize_tenant_id

__all__ = ["RelayConfig", "load_tenant_config"]

#: Egress-overflow policies: drop the oldest queued payload (lossy but
#: the link survives) or shed the whole link.
EGRESS_POLICIES = ("drop-oldest", "disconnect")


@dataclass(frozen=True)
class RelayConfig:
    """Every policy knob of a relay core.  Zero means "unlimited" for
    the budget fields; deadlines are seconds on the core's injected
    clock."""

    #: Relay-wide concurrent-link cap (the global admission quota).
    max_links: int = 1024
    #: Per-authenticated-tenant concurrent-link cap.
    max_links_per_tenant: int = 256
    #: Admissions per second the token bucket refills (0 = unlimited).
    handshake_rate: float = 0.0
    #: Token-bucket burst depth for :attr:`handshake_rate`.
    handshake_burst: int = 32
    #: Tenant allow list (names or 16-byte ids); ``None`` admits all.
    allowed_tenants: "tuple | None" = None
    #: Seconds a link may spend handshaking before it is shed.
    handshake_timeout_s: float = 10.0
    #: Seconds without traffic progress before an open link is shed
    #: (0 disables).  Progress is *either* direction: inbound frames or
    #: outbound drains — a stalled reader makes no progress even while
    #: the relay queues data at it, which is the slowloris defence.
    idle_timeout_s: float = 300.0
    #: Per-link inbound frame budget (0 = unlimited).
    max_frames_per_link: int = 0
    #: Per-link inbound payload-byte budget (0 = unlimited).
    max_bytes_per_link: int = 0
    #: Max plaintext payloads queued toward one link before the
    #: egress policy applies.
    egress_queue_payloads: int = 64
    #: ``"drop-oldest"`` or ``"disconnect"`` (see EGRESS_POLICIES).
    egress_policy: str = "drop-oldest"
    #: Longest accepted channel name (the JOIN payload).
    max_channel_bytes: int = 64
    #: Resumption-ticket lifetime for the relay's vault.
    ticket_lifetime_s: float = 3600.0
    #: Retire per-link metrics slots idle longer than this on every
    #: :meth:`~repro.relay.RelayCore.poll` (0 disables) — the wiring
    #: for ``MetricsRegistry.evict_idle``.
    metrics_eviction_s: float = 60.0
    #: Cipher engine for every relay-side link session.  The relay
    #: re-encrypts each payload once per receiver, so unlike the
    #: library-wide ``"reference"`` default it runs the word-level
    #: ``"fast"`` engine (wire-identical; see repro.core.engines).
    engine: str = "fast"

    def validate(self) -> None:
        """Reject inconsistent policies with :class:`SessionError`."""
        if self.max_links < 1:
            raise SessionError(f"max_links must be >= 1, got {self.max_links}")
        if self.max_links_per_tenant < 1:
            raise SessionError("max_links_per_tenant must be >= 1, "
                               f"got {self.max_links_per_tenant}")
        if self.handshake_rate < 0:
            raise SessionError("handshake_rate must be >= 0")
        if self.handshake_burst < 1:
            raise SessionError("handshake_burst must be >= 1")
        if self.handshake_timeout_s <= 0:
            raise SessionError("handshake_timeout_s must be > 0")
        if self.idle_timeout_s < 0:
            raise SessionError("idle_timeout_s must be >= 0")
        if self.max_frames_per_link < 0 or self.max_bytes_per_link < 0:
            raise SessionError("per-link budgets must be >= 0")
        if self.egress_queue_payloads < 1:
            raise SessionError("egress_queue_payloads must be >= 1")
        if self.egress_policy not in EGRESS_POLICIES:
            raise SessionError(
                f"egress_policy must be one of {EGRESS_POLICIES}, "
                f"got {self.egress_policy!r}")
        if self.max_channel_bytes < 1:
            raise SessionError("max_channel_bytes must be >= 1")
        if self.ticket_lifetime_s <= 0:
            raise SessionError("ticket_lifetime_s must be > 0")
        if self.metrics_eviction_s < 0:
            raise SessionError("metrics_eviction_s must be >= 0")
        from repro.core.engines import check_engine_name
        check_engine_name(self.engine)
        if self.allowed_tenants is not None:
            for tenant in self.allowed_tenants:
                normalize_tenant_id(tenant)  # length check

    def normalized_allow_list(self) -> "frozenset | None":
        """The allow list as 16-byte wire ids, or ``None``."""
        if self.allowed_tenants is None:
            return None
        return frozenset(normalize_tenant_id(t) for t in self.allowed_tenants)


#: RelayConfig fields an operator may set from the JSON file.
_CONFIG_KEYS = (
    "max_links", "max_links_per_tenant", "handshake_rate",
    "handshake_burst", "handshake_timeout_s", "idle_timeout_s",
    "max_frames_per_link", "max_bytes_per_link", "egress_queue_payloads",
    "egress_policy", "max_channel_bytes", "ticket_lifetime_s",
    "metrics_eviction_s", "engine",
)


def load_tenant_config(path, *, clock=None) -> tuple:
    """Parse a tenant-config JSON file into ``(keyring, relay_config)``.

    Raises :class:`SessionError` on a malformed file.  ``clock`` is
    forwarded to the keyring (tests inject a fake one for expiries).
    """
    try:
        with open(path, "rb") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SessionError(f"cannot load tenant config {path}: {exc}")
    if not isinstance(doc, dict):
        raise SessionError(f"tenant config {path} must be a JSON object")
    root_hex = doc.get("fleet_root_hex")
    if not isinstance(root_hex, str):
        raise SessionError("tenant config needs a 'fleet_root_hex' string")
    try:
        fleet_root = bytes.fromhex(root_hex)
    except ValueError as exc:
        raise SessionError(f"bad fleet_root_hex: {exc}")
    keyring = (TenantKeyring(fleet_root, clock=clock) if clock is not None
               else TenantKeyring(fleet_root))
    fields = {}
    for key in _CONFIG_KEYS:
        if key in doc:
            fields[key] = doc[key]
    tenants = doc.get("tenants")
    if tenants is not None:
        if not isinstance(tenants, dict):
            raise SessionError("'tenants' must map tenant names to policies")
        fields["allowed_tenants"] = tuple(sorted(tenants))
        for name, policy in tenants.items():
            policy = policy or {}
            if policy.get("revoked"):
                keyring.revoke(name)
            expires = policy.get("expires_unix")
            if expires is not None:
                keyring.set_expiry(name, float(expires))
    config = RelayConfig(**fields)
    config.validate()
    return keyring, config
