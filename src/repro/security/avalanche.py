"""Diffusion / avalanche measurement.

A block cipher aims for the strict avalanche criterion: flip any input
bit and every output bit flips with probability one half.  A *hiding*
cipher fundamentally does not — each message bit lands in exactly one
vector position — and the honest way to report that is to measure it.
:func:`avalanche_profile` quantifies three sensitivities:

* **message-bit flips**: for (M)HHEA exactly one ciphertext bit changes
  (the embedded copy), so the mean flip count is 1.0 of
  ``n_vectors*width`` bits — the locality the steganographic use case
  actually *wants* (minimal cover distortion), but cryptographically a
  world away from 50%;
* **key flips**: flipping one key half changes the windows and the data
  pattern of every vector that uses the pair, so diffusion is larger
  and grows with message length;
* **seed (vector) flips**: changing the LFSR seed re-randomises every
  vector — the baseline "everything changed" reference.

These numbers feed the EXPERIMENTS.md discussion of the paper's security
claims.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import mhhea
from repro.core.key import Key, KeyPair
from repro.core.params import PAPER_PARAMS, VectorParams
from repro.util.bits import hamming_distance
from repro.util.lfsr import Lfsr
from repro.util.rng import make_rng

__all__ = ["AvalancheProfile", "avalanche_profile"]


@dataclass(frozen=True)
class AvalancheProfile:
    """Mean ciphertext response to single-bit input changes."""

    message_flip_mean_bits: float
    """Mean ciphertext bits changed per flipped message bit."""

    key_flip_mean_ratio: float
    """Mean fraction of ciphertext bits changed per flipped key bit."""

    seed_flip_mean_ratio: float
    """Mean fraction of ciphertext bits changed per flipped seed bit."""

    n_trials: int
    message_bits: int


def _cipher_bits(bits: list[int], key: Key, seed: int,
                 params: VectorParams) -> tuple[list[int], int]:
    vectors = mhhea.encrypt_bits(bits, key, Lfsr(params.width, seed=seed), params)
    total = 0
    width = params.width
    for i, vector in enumerate(vectors):
        total |= vector << (i * width)
    return vectors, total


def avalanche_profile(
    key: Key,
    n_trials: int = 32,
    message_bits: int = 256,
    seed: int = 0xACE1,
    params: VectorParams = PAPER_PARAMS,
) -> AvalancheProfile:
    """Measure the three diffusion responses for MHHEA."""
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    rng = make_rng(seed)

    msg_flips = 0.0
    key_ratios = 0.0
    seed_ratios = 0.0
    for trial in range(n_trials):
        bits = [rng.getrandbits(1) for _ in range(message_bits)]
        base_vectors, base_word = _cipher_bits(bits, key, seed + 1, params)
        total_ct_bits = len(base_vectors) * params.width

        # message-bit flip
        position = rng.randrange(message_bits)
        flipped = list(bits)
        flipped[position] ^= 1
        _, word = _cipher_bits(flipped, key, seed + 1, params)
        msg_flips += hamming_distance(base_word, word)

        # key-bit flip (one random bit of one random pair half)
        pair_index = rng.randrange(len(key))
        bit_index = rng.randrange(params.key_bits)
        half = rng.randrange(2)
        pairs = list(key.pairs)
        old = pairs[pair_index]
        if half == 0:
            pairs[pair_index] = KeyPair(old.k1 ^ (1 << bit_index), old.k2)
        else:
            pairs[pair_index] = KeyPair(old.k1, old.k2 ^ (1 << bit_index))
        mutated = Key(pairs, params)
        mut_vectors, word = _cipher_bits(bits, mutated, seed + 1, params)
        span = max(len(mut_vectors), len(base_vectors)) * params.width
        key_ratios += hamming_distance(base_word, word) / span

        # seed flip
        _, word = _cipher_bits(bits, key, (seed + 1) ^ (1 << rng.randrange(16)),
                               params)
        seed_ratios += hamming_distance(base_word, word) / total_ct_bits

    return AvalancheProfile(
        message_flip_mean_bits=msg_flips / n_trials,
        key_flip_mean_ratio=key_ratios / n_trials,
        seed_flip_mean_ratio=seed_ratios / n_trials,
        n_trials=n_trials,
        message_bits=message_bits,
    )
