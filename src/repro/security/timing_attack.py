"""Timing side-channel analysis of the serial vs improved designs.

The serial HHEA micro-architecture replaces one bit per cycle, so the
gap between consecutive Ready pulses is ``1 + window_width`` cycles, and
the window width of pair ``i`` is the key-derived ``|K[i][1] - K[i][0]|
+ 1``.  An observer who can timestamp ciphertext outputs (a bus analyser
on the link, or any throughput counter) therefore reads the *span* of
every key pair directly off the wire.  This module mounts that attack:

1. run a message through a model, collecting the Ready cycle stamps;
2. convert inter-output gaps into per-pair span estimates (mode over
   the observations of each pair index, which also rejects the gaps
   perturbed by buffer-reload cycles);
3. score the estimates against the true key.

Against the improved design every gap is the constant two cycles (plus
reload overhead), so the same estimator degenerates to chance — which is
precisely the paper's claim, asserted by the tests.

The span is not the full key (the pair's absolute position is not
leaked), so the report also quantifies the *entropy reduction*: knowing
``span = d`` shrinks a pair's candidate set from ``half**2`` to
``2*(half-d)`` ordered pairs (``half`` for ``d = 0``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.key import Key
from repro.core.params import PAPER_PARAMS, VectorParams
from repro.rtl.cycle_model import CycleModelRun

__all__ = ["TimingAttackReport", "timing_attack", "spans_from_ready_gaps"]


@dataclass
class TimingAttackReport:
    """Outcome of one timing-recovery attempt."""

    recovered_spans: list[int | None]
    true_spans: list[int]
    correct: int
    observations_per_pair: list[int] = field(default_factory=list)

    @property
    def n_pairs(self) -> int:
        return len(self.true_spans)

    @property
    def accuracy(self) -> float:
        """Fraction of key-pair spans recovered exactly."""
        if not self.true_spans:
            return 0.0
        return self.correct / len(self.true_spans)

    def entropy_reduction_bits(self, params: VectorParams = PAPER_PARAMS) -> float:
        """Key-space entropy removed by the recovered spans, in bits."""
        half = params.half
        total = 0.0
        for guess, _true in zip(self.recovered_spans, self.true_spans):
            if guess is None or not 1 <= guess <= half:
                # no observation, or a reload-inflated gap produced an
                # impossible span: the attacker learns nothing here
                continue
            d = guess - 1
            candidates = half if d == 0 else 2 * (half - d)
            total += math.log2((half * half) / candidates)
        return total


def spans_from_ready_gaps(
    ready_cycles: list[int], n_pairs: int, setup_cycles: int = 1
) -> tuple[list[int | None], list[int]]:
    """Estimate per-pair window spans from output timestamps.

    Gap ``g`` between consecutive outputs implies a window width of
    ``g - setup_cycles``; each gap is attributed to its pair index
    (outputs appear in pair order, ``i mod n_pairs``).  The per-pair
    estimate is the *mode* of its observations, which suppresses gaps
    inflated by the LMSGCACHE / LMSG reload cycles.
    """
    observations: list[list[int]] = [[] for _ in range(n_pairs)]
    for i in range(1, len(ready_cycles)):
        gap = ready_cycles[i] - ready_cycles[i - 1]
        # output i is produced by pair (i mod n_pairs)
        observations[i % n_pairs].append(gap - setup_cycles)
    estimates: list[int | None] = []
    counts: list[int] = []
    for obs in observations:
        counts.append(len(obs))
        if not obs:
            estimates.append(None)
            continue
        histogram: dict[int, int] = {}
        for value in obs:
            histogram[value] = histogram.get(value, 0) + 1
        estimates.append(max(histogram.items(), key=lambda item: item[1])[0])
    return estimates, counts


def timing_attack(
    run: CycleModelRun, key: Key, setup_cycles: int = 1
) -> TimingAttackReport:
    """Mount the span-recovery attack against one model run."""
    n_pairs = len(key)
    estimates, counts = spans_from_ready_gaps(
        run.ready_cycles, n_pairs, setup_cycles
    )
    true_spans = [pair.span for pair in key.pairs]
    correct = sum(
        1 for guess, true in zip(estimates, true_spans) if guess == true
    )
    return TimingAttackReport(
        recovered_spans=estimates,
        true_spans=true_spans,
        correct=correct,
        observations_per_pair=counts,
    )
