"""Statistical randomness battery for bit streams.

A compact, dependency-free subset of the NIST SP 800-22 / FIPS 140-1
tests, used to check (a) that the LFSR hiding-vector generator is
balanced over its period and (b) that ciphertext streams do not
advertise the embedded message.  P-values for the chi-square statistics
use the Wilson–Hilferty normal approximation, which is accurate to a
couple of decimal places for the degrees of freedom used here — plenty
for a pass/fail battery at alpha = 0.01 (documented so nobody mistakes
these for certification-grade numbers).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

__all__ = ["TestResult", "RandomnessReport", "test_bits",
           "monobit_test", "runs_test", "block_frequency_test",
           "poker_test", "autocorrelation_test"]


@dataclass(frozen=True)
class TestResult:
    """One statistical test outcome."""

    name: str
    statistic: float
    p_value: float
    passed: bool


@dataclass
class RandomnessReport:
    """All test outcomes for one bit stream."""

    n_bits: int
    alpha: float
    results: list[TestResult] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        """True when every test passed at the report's alpha."""
        return all(result.passed for result in self.results)

    def failed(self) -> list[TestResult]:
        """The failing tests (for diagnostics)."""
        return [result for result in self.results if not result.passed]

    def render(self) -> str:
        """Text table of the battery."""
        lines = [f"Randomness battery over {self.n_bits} bits (alpha={self.alpha})"]
        for result in self.results:
            verdict = "pass" if result.passed else "FAIL"
            lines.append(
                f"  {result.name:22s} stat={result.statistic:10.4f} "
                f"p={result.p_value:8.5f}  {verdict}"
            )
        return "\n".join(lines)


def _check_bits(bits: Sequence[int], minimum: int) -> None:
    if len(bits) < minimum:
        raise ValueError(f"need at least {minimum} bits, got {len(bits)}")
    for bit in bits[:8]:
        if bit not in (0, 1):
            raise ValueError("stream must contain only 0/1 bits")


def _chi2_sf(x: float, dof: int) -> float:
    """Survival function of chi-square via Wilson–Hilferty."""
    if x <= 0:
        return 1.0
    if dof <= 0:
        raise ValueError(f"dof must be positive, got {dof}")
    z = ((x / dof) ** (1.0 / 3.0) - (1.0 - 2.0 / (9.0 * dof))) / math.sqrt(
        2.0 / (9.0 * dof)
    )
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def monobit_test(bits: Sequence[int], alpha: float = 0.01) -> TestResult:
    """NIST frequency (monobit) test."""
    _check_bits(bits, 100)
    s = sum(1 if b else -1 for b in bits)
    statistic = abs(s) / math.sqrt(len(bits))
    p = math.erfc(statistic / math.sqrt(2.0))
    return TestResult("monobit", statistic, p, p >= alpha)


def runs_test(bits: Sequence[int], alpha: float = 0.01) -> TestResult:
    """NIST runs test (total number of runs vs expectation)."""
    _check_bits(bits, 100)
    n = len(bits)
    pi = sum(bits) / n
    if abs(pi - 0.5) >= 2.0 / math.sqrt(n):
        # prerequisite frequency condition failed: report as failure
        return TestResult("runs", float("inf"), 0.0, False)
    runs = 1 + sum(1 for i in range(1, n) if bits[i] != bits[i - 1])
    expected = 2.0 * n * pi * (1.0 - pi)
    statistic = abs(runs - expected) / (2.0 * math.sqrt(2.0 * n) * pi * (1.0 - pi))
    p = math.erfc(statistic / math.sqrt(2.0))
    return TestResult("runs", statistic, p, p >= alpha)


def block_frequency_test(bits: Sequence[int], block: int = 128,
                         alpha: float = 0.01) -> TestResult:
    """NIST block-frequency test."""
    _check_bits(bits, 2 * block)
    n_blocks = len(bits) // block
    chi2 = 0.0
    for b in range(n_blocks):
        ones = sum(bits[b * block : (b + 1) * block])
        pi = ones / block
        chi2 += (pi - 0.5) ** 2
    chi2 *= 4.0 * block
    p = _chi2_sf(chi2, n_blocks)
    return TestResult(f"block-frequency(m={block})", chi2, p, p >= alpha)


def poker_test(bits: Sequence[int], m: int = 4, alpha: float = 0.01) -> TestResult:
    """FIPS 140-1 poker test on ``m``-bit words."""
    _check_bits(bits, 5 * (1 << m))
    k = len(bits) // m
    counts = [0] * (1 << m)
    for i in range(k):
        word = 0
        for j in range(m):
            word |= bits[i * m + j] << j
        counts[word] += 1
    statistic = (1 << m) / k * sum(c * c for c in counts) - k
    p = _chi2_sf(statistic, (1 << m) - 1)
    return TestResult(f"poker(m={m})", statistic, p, p >= alpha)


def autocorrelation_test(bits: Sequence[int], lag: int = 1,
                         alpha: float = 0.01) -> TestResult:
    """Autocorrelation at a fixed lag (z-test on the match count)."""
    _check_bits(bits, 100 + lag)
    n = len(bits) - lag
    matches = sum(1 for i in range(n) if bits[i] == bits[i + lag])
    statistic = abs(matches - n / 2.0) / math.sqrt(n / 4.0)
    p = math.erfc(statistic / math.sqrt(2.0))
    return TestResult(f"autocorrelation(lag={lag})", statistic, p, p >= alpha)


def test_bits(bits: Sequence[int], alpha: float = 0.01) -> RandomnessReport:
    """Run the whole battery over one stream."""
    report = RandomnessReport(n_bits=len(bits), alpha=alpha)
    report.results.append(monobit_test(bits, alpha))
    report.results.append(runs_test(bits, alpha))
    report.results.append(block_frequency_test(bits, alpha=alpha))
    report.results.append(poker_test(bits, alpha=alpha))
    for lag in (1, 2, 8, 16):
        report.results.append(autocorrelation_test(bits, lag=lag, alpha=alpha))
    return report
