"""Security analyses behind the paper's claims.

The paper makes three security arguments for the modified design; each
has an executable counterpart here:

* the serial design "caused a dependency between the throughput and the
  nature of the used secret key ... viewed by some as vulnerability" —
  :mod:`repro.security.timing_attack` recovers key spans from the serial
  model's Ready-pulse timing and shows the improved design leaks nothing
  per-output;
* "we have scrambled the location and the message to overcome constant
  chosen-plaintext attack" — :mod:`repro.security.chosen_plaintext`
  mounts that attack and measures its success against HHEA vs MHHEA;
* the hiding vector must be "scrambled as much as possible" —
  :mod:`repro.security.randomness` is a small statistical battery for
  LFSR and ciphertext streams, and :mod:`repro.security.avalanche`
  quantifies diffusion (including the honest negative result that a
  hiding cipher has no block-cipher-style avalanche).
"""

from repro.security.avalanche import avalanche_profile
from repro.security.chosen_plaintext import (
    ChosenPlaintextReport,
    constant_chosen_plaintext_attack,
)
from repro.security.randomness import RandomnessReport, test_bits
from repro.security.timing_attack import TimingAttackReport, timing_attack

__all__ = [
    "avalanche_profile",
    "ChosenPlaintextReport",
    "constant_chosen_plaintext_attack",
    "RandomnessReport",
    "test_bits",
    "TimingAttackReport",
    "timing_attack",
]
