"""The constant chosen-plaintext attack (paper section II).

Against plain HHEA the attack is devastating: encrypt a long all-zero
message and every vector produced by key pair ``i`` carries literal
zeros at locations ``K1[i] .. K2[i]`` while all other bits are LFSR
noise.  Collecting a handful of vectors per pair index makes the window
— and hence the pair — stand out as the bits that are *always* zero.

MHHEA's two counter-measures break both pillars of the attack: location
scrambling moves the window per vector (driven by the vector's own high
bits), and data scrambling XORs the constant message with cycling key
bits so even the embedded values are not constant.  The same estimator
then sees no always-zero positions beyond chance.

The attack here is exactly that estimator, run under an honest attacker
model: known algorithm and parameters, chosen plaintext, ciphertext
vectors in order (so the pair index of each vector is known), key
unknown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import hhea, mhhea
from repro.core.key import Key
from repro.core.params import PAPER_PARAMS, VectorParams
from repro.util.lfsr import Lfsr

__all__ = ["ChosenPlaintextReport", "constant_chosen_plaintext_attack"]


@dataclass
class ChosenPlaintextReport:
    """Outcome of one constant chosen-plaintext attack."""

    algorithm: str
    guessed_pairs: list[tuple[int, int] | None]
    true_pairs: list[tuple[int, int]]
    vectors_per_pair: int
    always_zero_profile: list[list[int]] = field(default_factory=list)
    """Per pair index: the low-half bit positions that were always zero."""

    @property
    def exact_recoveries(self) -> int:
        """How many pairs the attack recovered exactly."""
        return sum(
            1 for guess, true in zip(self.guessed_pairs, self.true_pairs)
            if guess == true
        )

    @property
    def accuracy(self) -> float:
        """Fraction of key pairs recovered exactly."""
        if not self.true_pairs:
            return 0.0
        return self.exact_recoveries / len(self.true_pairs)


def constant_chosen_plaintext_attack(
    algorithm: str,
    key: Key,
    vectors_per_pair: int = 64,
    seed: int = 0xACE1,
    plaintext_bit: int = 0,
    params: VectorParams = PAPER_PARAMS,
) -> ChosenPlaintextReport:
    """Mount the attack against ``"hhea"`` or ``"mhhea"``.

    Encrypts a constant message long enough that every key pair emits at
    least ``vectors_per_pair`` vectors, then estimates each pair as the
    span of the always-constant positions in its vectors.
    """
    if algorithm not in ("hhea", "mhhea"):
        raise ValueError(f"unknown algorithm {algorithm!r}")
    if plaintext_bit not in (0, 1):
        raise ValueError("plaintext_bit must be 0 or 1")
    n_pairs = len(key)
    # Each vector consumes at most ``max_window`` bits, so this length
    # guarantees at least ``vectors_per_pair`` vectors for every pair
    # index regardless of the (key- and vector-dependent) window widths.
    n_bits = vectors_per_pair * n_pairs * params.max_window
    bits = [plaintext_bit] * n_bits
    source = Lfsr(params.width, seed=seed)
    encrypt = mhhea.encrypt_bits if algorithm == "mhhea" else hhea.encrypt_bits
    vectors = encrypt(bits, key, source, params)

    # Attacker view: vectors grouped by pair index (i mod L is public).
    grouped: list[list[int]] = [[] for _ in range(n_pairs)]
    for i, vector in enumerate(vectors):
        grouped[i % n_pairs].append(vector)

    guesses: list[tuple[int, int] | None] = []
    profiles: list[list[int]] = []
    for samples in grouped:
        samples = samples[:vectors_per_pair]
        if not samples:
            guesses.append(None)
            profiles.append([])
            continue
        constant_positions = []
        for j in range(params.half):
            column = [(v >> j) & 1 for v in samples]
            if all(bit == plaintext_bit for bit in column):
                constant_positions.append(j)
        profiles.append(constant_positions)
        if constant_positions:
            guesses.append((min(constant_positions), max(constant_positions)))
        else:
            guesses.append(None)

    true_pairs = [
        (pair.sorted().k1, pair.sorted().k2) for pair in key.pairs
    ]
    return ChosenPlaintextReport(
        algorithm=algorithm,
        guessed_pairs=guesses,
        true_pairs=true_pairs,
        vectors_per_pair=vectors_per_pair,
        always_zero_profile=profiles,
    )
