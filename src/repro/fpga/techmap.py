"""FlowMap: depth-optimal technology mapping into K-input LUTs.

The classic algorithm of Cong & Ding (1994).  Phase one computes, for
every gate in topological order, the minimum possible LUT *depth* label
via a max-flow/min-cut test on the gate's fan-in cone; phase two covers
the network from the outputs using the recorded cuts.  The result is a
netlist of K-feasible LUTs whose depth equals the optimum for the given
decomposition — the right baseline for a Spartan-II (K = 4) flow.

Implementation notes:

* node capacities are modelled by the standard in/out node splitting;
  max flow stops early once it exceeds K (the cut is then infeasible);
* the two global constant nets are invisible to the mapper: they never
  occupy LUT inputs and are folded into truth tables instead;
* every LUT carries its computed truth table, so the mapped netlist is
  executable — :meth:`LutMapping.evaluate` — and the mapping is verified
  against the gate-level simulator by the test suite.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.errors import FlowError
from repro.hdl.circuit import Circuit
from repro.hdl.gates import GATE_EVAL, Gate
from repro.hdl.netlist import combinational_dag
from repro.hdl.signal import Signal

__all__ = ["Lut", "LutMapping", "flowmap"]

_CONST_KINDS = ("CONST0", "CONST1")


def _is_const(sig: Signal) -> bool:
    driver = sig.driver
    return isinstance(driver, Gate) and driver.kind in _CONST_KINDS


def _const_value(sig: Signal) -> int:
    return 1 if sig.driver.kind == "CONST1" else 0


@dataclass
class Lut:
    """One mapped K-input lookup table."""

    output: Signal
    inputs: list[Signal]
    truth: int
    """Truth table: bit ``i`` is the output when input ``j`` carries bit
    ``j`` of ``i`` (input 0 is the least significant selector)."""
    label: int
    """FlowMap depth label of the output signal."""
    n_covered: int
    """How many original gates this LUT absorbs."""

    def evaluate(self, values: list[int]) -> int:
        """Output for one input-value assignment."""
        if len(values) != len(self.inputs):
            raise ValueError(
                f"LUT {self.output.name!r} has {len(self.inputs)} inputs, "
                f"got {len(values)} values"
            )
        index = 0
        for j, bit in enumerate(values):
            index |= (bit & 1) << j
        return (self.truth >> index) & 1


@dataclass
class LutMapping:
    """A complete LUT cover of one circuit's combinational logic."""

    circuit: Circuit
    k: int
    luts: list[Lut] = field(default_factory=list)
    sources: list[Signal] = field(default_factory=list)
    sinks: list[Signal] = field(default_factory=list)

    @property
    def n_luts(self) -> int:
        """Number of LUTs in the cover."""
        return len(self.luts)

    @property
    def depth(self) -> int:
        """Maximum LUT depth (FlowMap label) over all mapped outputs."""
        return max((lut.label for lut in self.luts), default=0)

    def lut_for(self, sig: Signal) -> Lut | None:
        """The LUT producing ``sig``, or None if it is a source/const."""
        return self._by_output.get(sig.index)

    def __post_init__(self) -> None:
        self._by_output: dict[int, Lut] = {}

    def _register(self, lut: Lut) -> None:
        self.luts.append(lut)
        self._by_output[lut.output.index] = lut

    def evaluate(self, source_values: dict[int, int]) -> dict[int, int]:
        """Evaluate every LUT given source-signal values.

        ``source_values`` maps signal ``index`` to a bit for every
        non-constant source; the return maps every LUT output's signal
        index to its computed bit.  Used by the mapping-equivalence tests
        and by the packer's sanity checks.
        """
        values = dict(source_values)
        remaining = deque(self.luts)
        progress = True
        while remaining and progress:
            progress = False
            for _ in range(len(remaining)):
                lut = remaining.popleft()
                input_bits = []
                ok = True
                for sig in lut.inputs:
                    if _is_const(sig):
                        input_bits.append(_const_value(sig))
                    elif sig.index in values:
                        input_bits.append(values[sig.index])
                    else:
                        ok = False
                        break
                if ok:
                    values[lut.output.index] = lut.evaluate(input_bits)
                    progress = True
                else:
                    remaining.append(lut)
        if remaining:
            raise FlowError(
                f"{len(remaining)} LUTs could not be evaluated "
                "(missing source values or a dependency cycle)"
            )
        return values


def flowmap(circuit: Circuit, k: int = 4) -> LutMapping:
    """Map a circuit's combinational gates into K-input LUTs."""
    if k < 2:
        raise FlowError(f"LUT fanin k must be at least 2, got {k}")
    dag = combinational_dag(circuit)
    gates = _topo_sort(dag.nodes)

    source_ids = {sig.index for sig in dag.sources if not _is_const(sig)}
    labels: dict[int, int] = {idx: 0 for idx in source_ids}
    cuts: dict[int, tuple[Signal, ...]] = {}
    cones: dict[int, set[int]] = {}  # gate.index -> cone gate indices
    gate_by_index = {g.index: g for g in gates}

    for gate in gates:
        fanin = [s for s in gate.inputs if not _is_const(s)]
        cone: set[int] = {gate.index}
        for sig in fanin:
            driver = sig.driver
            if isinstance(driver, Gate) and driver.index in cones:
                cone |= cones[driver.index]
        cones[gate.index] = cone

        if not fanin:
            labels[gate.output.index] = 1
            cuts[gate.output.index] = ()
            continue

        p = max(labels[s.index] for s in fanin)
        if p == 0:
            # every input is a primary source: a 1-level LUT always fits
            labels[gate.output.index] = 1
            cuts[gate.output.index] = tuple(fanin)
            continue

        cut = _feasible_cut(gate, cone, gate_by_index, labels, source_ids, p, k)
        if cut is not None:
            labels[gate.output.index] = p
            cuts[gate.output.index] = cut
        else:
            labels[gate.output.index] = p + 1
            cuts[gate.output.index] = tuple(fanin)
        if len(cuts[gate.output.index]) > k:
            raise FlowError(
                f"gate {gate!r} has {len(fanin)} non-constant inputs; "
                f"cannot map with k={k}"
            )

    mapping = LutMapping(circuit=circuit, k=k, sources=list(dag.sources),
                         sinks=list(dag.sinks))
    _cover(mapping, dag.sinks, cuts, labels)
    return mapping


# ----------------------------------------------------------------------
# phase 1 helpers
# ----------------------------------------------------------------------

def _topo_sort(gates: list[Gate]) -> list[Gate]:
    gate_ids = {g.index for g in gates}
    indegree: dict[int, int] = {}
    consumers: dict[int, list[Gate]] = {}
    for gate in gates:
        count = 0
        for sig in gate.inputs:
            driver = sig.driver
            if isinstance(driver, Gate) and driver.index in gate_ids:
                count += 1
                consumers.setdefault(driver.index, []).append(gate)
        indegree[gate.index] = count
    ready = [g for g in gates if indegree[g.index] == 0]
    ordered: list[Gate] = []
    while ready:
        gate = ready.pop()
        ordered.append(gate)
        for consumer in consumers.get(gate.index, []):
            indegree[consumer.index] -= 1
            if indegree[consumer.index] == 0:
                ready.append(consumer)
    if len(ordered) != len(gates):
        raise FlowError("combinational gates contain a cycle")
    return ordered


def _feasible_cut(
    target: Gate,
    cone: set[int],
    gate_by_index: dict[int, Gate],
    labels: dict[int, int],
    source_ids: set[int],
    p: int,
    k: int,
) -> tuple[Signal, ...] | None:
    """K-feasible min-cut test on the collapsed cone (FlowMap core).

    Returns the cut as a tuple of signals, or None when the min cut at
    height ``p - 1`` exceeds ``k``.
    """
    # Collapse: cone gates with label == p merge into the sink.
    merged: set[int] = {target.index}
    plain: list[Gate] = []
    for idx in cone:
        if idx == target.index:
            continue
        gate = gate_by_index[idx]
        if labels[gate.output.index] == p:
            merged.add(idx)
        else:
            plain.append(gate)

    # Flow-network node ids: each plain gate and each cone-input signal
    # splits into (in, out).  Sources feed cone-input signals; edges to
    # any merged gate go straight to the sink.
    node_ids: dict[tuple[str, int], int] = {}

    def nid(kind: str, key: int) -> int:
        if (kind, key) not in node_ids:
            node_ids[(kind, key)] = len(node_ids)
        return node_ids[(kind, key)]

    SOURCE = nid("s", 0)
    SINK = nid("t", 0)
    edges: dict[int, dict[int, int]] = {}

    def add_edge(u: int, v: int, cap: int) -> None:
        edges.setdefault(u, {})[v] = edges.setdefault(u, {}).get(v, 0) + cap
        edges.setdefault(v, {}).setdefault(u, 0)

    INF = 1 << 20
    cone_inputs: set[int] = set()

    def signal_out_node(sig: Signal) -> int:
        """Flow node representing availability of ``sig``'s value."""
        driver = sig.driver
        if isinstance(driver, Gate) and driver.index in cone and driver.index not in merged:
            return nid("go", driver.index)  # gate's split out-node
        if isinstance(driver, Gate) and driver.index in merged:
            raise AssertionError("merged gate outputs never feed the cut side")
        # cone input: PI / FF / tristate source (or gate outside cone —
        # impossible: cone is the full fan-in cone)
        if sig.index not in cone_inputs:
            cone_inputs.add(sig.index)
            add_edge(SOURCE, nid("pi_in", sig.index), INF)
            add_edge(nid("pi_in", sig.index), nid("pi_out", sig.index), 1)
        return nid("pi_out", sig.index)

    for gate in plain:
        add_edge(nid("gi", gate.index), nid("go", gate.index), 1)
    consumers_of: list[tuple[Signal, int]] = []  # (input signal, consumer node)
    for gate in plain:
        for sig in gate.inputs:
            if _is_const(sig):
                continue
            consumers_of.append((sig, nid("gi", gate.index)))
    for idx in merged:
        for sig in gate_by_index[idx].inputs:
            if _is_const(sig):
                continue
            driver = sig.driver
            if isinstance(driver, Gate) and driver.index in merged:
                continue
            consumers_of.append((sig, SINK))
    for sig, consumer in consumers_of:
        add_edge(signal_out_node(sig), consumer, INF)

    flow_value = _max_flow(edges, SOURCE, SINK, limit=k + 1)
    if flow_value > k:
        return None

    # Min cut: signals whose split edge crosses the residual frontier.
    reachable = _residual_reachable(edges, SOURCE)
    cut_signals: list[Signal] = []
    seen: set[int] = set()
    for (kind, key), node in list(node_ids.items()):
        if kind == "go" and node not in reachable:
            in_node = node_ids.get(("gi", key))
            if in_node in reachable:
                sig = gate_by_index[key].output
                if sig.index not in seen:
                    seen.add(sig.index)
                    cut_signals.append(sig)
        elif kind == "pi_out" and node not in reachable:
            in_node = node_ids.get(("pi_in", key))
            if in_node in reachable and key not in seen:
                seen.add(key)
                cut_signals.append(_signal_by_index(gate_by_index, key, consumers_of))
    if len(cut_signals) > k:  # pragma: no cover - guarded by flow limit
        raise FlowError("min-cut exceeded k despite feasible flow")
    return tuple(cut_signals)


def _signal_by_index(gate_by_index, index: int, consumers_of) -> Signal:
    for sig, _ in consumers_of:
        if sig.index == index:
            return sig
    raise FlowError(f"cut signal {index} not found")  # pragma: no cover


def _max_flow(edges: dict[int, dict[int, int]], s: int, t: int, limit: int) -> int:
    """BFS augmenting-path max flow, stopping once ``limit`` is reached."""
    flow = 0
    while flow < limit:
        parents: dict[int, int] = {s: s}
        queue = deque([s])
        while queue and t not in parents:
            u = queue.popleft()
            for v, cap in edges.get(u, {}).items():
                if cap > 0 and v not in parents:
                    parents[v] = u
                    queue.append(v)
        if t not in parents:
            break
        # unit bottleneck is enough: all finite capacities are 1
        v = t
        bottleneck = 1 << 30
        while v != s:
            u = parents[v]
            bottleneck = min(bottleneck, edges[u][v])
            v = u
        v = t
        while v != s:
            u = parents[v]
            edges[u][v] -= bottleneck
            edges[v][u] += bottleneck
            v = u
        flow += bottleneck
    return flow


def _residual_reachable(edges: dict[int, dict[int, int]], s: int) -> set[int]:
    reachable = {s}
    queue = deque([s])
    while queue:
        u = queue.popleft()
        for v, cap in edges.get(u, {}).items():
            if cap > 0 and v not in reachable:
                reachable.add(v)
                queue.append(v)
    return reachable


# ----------------------------------------------------------------------
# phase 2: covering
# ----------------------------------------------------------------------

def _cover(
    mapping: LutMapping,
    sinks: list[Signal],
    cuts: dict[int, tuple[Signal, ...]],
    labels: dict[int, int],
) -> None:
    pending: list[Signal] = []
    for sig in sinks:
        driver = sig.driver
        if isinstance(driver, Gate) and driver.kind not in _CONST_KINDS:
            pending.append(sig)
    realised: set[int] = set()
    while pending:
        sig = pending.pop()
        if sig.index in realised:
            continue
        realised.add(sig.index)
        gate = sig.driver
        cut = cuts[sig.index]
        truth = _truth_table(gate, cut)
        mapping._register(
            Lut(
                output=sig,
                inputs=list(cut),
                truth=truth,
                label=labels[sig.index],
                n_covered=_count_covered(gate, cut),
            )
        )
        for input_sig in cut:
            driver = input_sig.driver
            if isinstance(driver, Gate) and driver.kind not in _CONST_KINDS:
                if input_sig.index not in realised:
                    pending.append(input_sig)


def _cone_gates(root: Gate, cut: tuple[Signal, ...]) -> list[Gate]:
    """Gates strictly inside the cut (root included), topo-ordered."""
    cut_ids = {s.index for s in cut}
    seen: set[int] = set()
    order: list[Gate] = []

    def visit(gate: Gate) -> None:
        if gate.index in seen:
            return
        seen.add(gate.index)
        for sig in gate.inputs:
            if sig.index in cut_ids or _is_const(sig):
                continue
            driver = sig.driver
            if isinstance(driver, Gate):
                visit(driver)
            else:  # pragma: no cover - cut always covers sources
                raise FlowError(
                    f"source {sig.name!r} reached inside a cut cone"
                )
        order.append(gate)

    visit(root)
    return order


def _truth_table(root: Gate, cut: tuple[Signal, ...]) -> int:
    gates = _cone_gates(root, cut)
    truth = 0
    n = len(cut)
    for assignment in range(1 << n):
        values: dict[int, int] = {
            sig.index: (assignment >> j) & 1 for j, sig in enumerate(cut)
        }
        for gate in gates:
            input_bits = []
            for sig in gate.inputs:
                if _is_const(sig):
                    input_bits.append(_const_value(sig))
                else:
                    input_bits.append(values[sig.index])
            values[gate.output.index] = GATE_EVAL[gate.kind](*input_bits)
        if values[root.output.index]:
            truth |= 1 << assignment
    return truth


def _count_covered(root: Gate, cut: tuple[Signal, ...]) -> int:
    return len(_cone_gates(root, cut))
