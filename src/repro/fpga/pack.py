"""Slice and CLB packing.

Spartan-II architecture: a slice holds two 4-input LUTs and two
flip-flops; a CLB holds two slices.  Packing policy (the standard Xilinx
map heuristic, simplified):

1. a flip-flop whose D input is produced by a LUT that drives nothing
   else is *fused* with that LUT (the LUT output uses the slice-internal
   connection, costing no routing);
2. fused pairs, remaining LUTs and remaining FFs are then packed two per
   slice, preferring to co-locate cells that share input signals (a
   cheap connectivity affinity that helps the placer).

Tristate buffers occupy dedicated TBUF sites next to the CLBs and are
tracked but not slotted into slices, matching the separate "Number of
TBUFs" line of the design summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import FlowError
from repro.hdl.circuit import Circuit
from repro.hdl.gates import Dff, Gate, Tbuf
from repro.hdl.signal import Signal
from repro.fpga.device import FpgaDevice
from repro.fpga.techmap import Lut, LutMapping

__all__ = ["PackedCell", "Slice", "PackedDesign", "pack_design"]


@dataclass
class PackedCell:
    """One slice slot: a LUT, a FF, or a fused LUT→FF pair."""

    lut: Lut | None = None
    ff: Dff | None = None

    @property
    def input_signals(self) -> list[Signal]:
        """Signals this cell reads from the routing fabric."""
        signals: list[Signal] = []
        if self.lut is not None:
            signals.extend(self.lut.inputs)
        if self.ff is not None:
            if self.lut is None:
                signals.append(self.ff.d)
            if self.ff.enable is not None:
                signals.append(self.ff.enable)
            if self.ff.reset is not None:
                signals.append(self.ff.reset)
        return signals

    @property
    def output_signals(self) -> list[Signal]:
        """Signals this cell drives onto the routing fabric."""
        signals: list[Signal] = []
        if self.lut is not None and self.ff is None:
            signals.append(self.lut.output)
        if self.ff is not None:
            signals.append(self.ff.q)
        return signals


@dataclass
class Slice:
    """One packed slice (up to two cells)."""

    index: int
    cells: list[PackedCell] = field(default_factory=list)

    @property
    def n_luts(self) -> int:
        return sum(1 for c in self.cells if c.lut is not None)

    @property
    def n_ffs(self) -> int:
        return sum(1 for c in self.cells if c.ff is not None)


@dataclass
class PackedDesign:
    """The packing result for one circuit on one device."""

    circuit: Circuit
    device: FpgaDevice
    mapping: LutMapping
    slices: list[Slice]
    tbufs: list[Tbuf]

    @property
    def n_slices(self) -> int:
        return len(self.slices)

    @property
    def n_luts(self) -> int:
        return sum(s.n_luts for s in self.slices)

    @property
    def n_ffs(self) -> int:
        return sum(s.n_ffs for s in self.slices)

    @property
    def n_clbs(self) -> int:
        """CLBs occupied (two slices per CLB, rounded up)."""
        per_clb = self.device.slices_per_clb
        return (len(self.slices) + per_clb - 1) // per_clb


def pack_design(mapping: LutMapping, device: FpgaDevice) -> PackedDesign:
    """Pack a LUT mapping plus its circuit's FFs/TBUFs into slices."""
    circuit = mapping.circuit

    # How many loads does each LUT output have *inside* the netlist?
    load_count: dict[int, int] = {}
    for lut in mapping.luts:
        for sig in lut.inputs:
            load_count[sig.index] = load_count.get(sig.index, 0) + 1
    for ff in circuit.dffs:
        for sig in (ff.d, ff.enable, ff.reset):
            if sig is not None:
                load_count[sig.index] = load_count.get(sig.index, 0) + 1
    for group in circuit.tristate_groups:
        for t in group.buffers:
            load_count[t.input.index] = load_count.get(t.input.index, 0) + 1
            load_count[t.enable.index] = load_count.get(t.enable.index, 0) + 1
    output_ids = {
        sig.index for bus in circuit.outputs.values() for sig in bus
    }

    lut_by_output = {lut.output.index: lut for lut in mapping.luts}
    fused_luts: set[int] = set()
    cells: list[PackedCell] = []

    for ff in circuit.dffs:
        lut = lut_by_output.get(ff.d.index)
        exclusive = (
            lut is not None
            and load_count.get(ff.d.index, 0) == 1
            and ff.d.index not in output_ids
        )
        if exclusive:
            fused_luts.add(lut.output.index)
            cells.append(PackedCell(lut=lut, ff=ff))
        else:
            cells.append(PackedCell(ff=ff))
    for lut in mapping.luts:
        if lut.output.index not in fused_luts:
            cells.append(PackedCell(lut=lut))

    slices = _fill_slices(cells)
    tbufs = [t for group in circuit.tristate_groups for t in group.buffers]

    design = PackedDesign(
        circuit=circuit, device=device, mapping=mapping,
        slices=slices, tbufs=tbufs,
    )
    _check_capacity(design)
    return design


def _fill_slices(cells: list[PackedCell]) -> list[Slice]:
    """Pair cells two per slice, preferring shared-input affinity."""
    remaining = list(cells)
    slices: list[Slice] = []
    while remaining:
        first = remaining.pop(0)
        best_j = -1
        best_shared = -1
        first_inputs = {s.index for s in first.input_signals}
        # Scan a bounded window: affinity packing is a heuristic, and a
        # full O(n^2) scan buys nothing measurable on designs this size.
        for j in range(min(len(remaining), 64)):
            shared = len(
                first_inputs & {s.index for s in remaining[j].input_signals}
            )
            if shared > best_shared:
                best_shared = shared
                best_j = j
        members = [first]
        if best_j >= 0:
            members.append(remaining.pop(best_j))
        slices.append(Slice(index=len(slices), cells=members))
    return slices


def _check_capacity(design: PackedDesign) -> None:
    device = design.device
    if design.n_slices > device.n_slices:
        raise FlowError(
            f"design needs {design.n_slices} slices, "
            f"{device.name} has {device.n_slices}"
        )
    if len(design.tbufs) > device.n_tbufs:
        raise FlowError(
            f"design needs {len(design.tbufs)} TBUFs, "
            f"{device.name} has {device.n_tbufs}"
        )
    stats_io = (
        sum(b.width for b in design.circuit.inputs.values())
        + sum(b.width for b in design.circuit.outputs.values())
    )
    if stats_io > device.n_iobs:
        raise FlowError(
            f"design needs {stats_io} bonded IOBs, "
            f"{device.name} has {device.n_iobs}"
        )
