"""The end-to-end implementation flow.

``circuit → FlowMap → pack → place → route → STA → reports`` — the
reproduction's equivalent of pushing the design through the Xilinx
Foundation toolchain.  :func:`run_flow` is deterministic for a given
(circuit, device, seed, effort) tuple; results are plain dataclasses so
benchmarks can cache and compare them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.device import FpgaDevice, SPARTAN2_XC2S100
from repro.fpga.floorplan import render_floorplan
from repro.fpga.pack import PackedDesign, pack_design
from repro.fpga.place import Placement, place_design
from repro.fpga.reports import (
    DesignSummary,
    TimingSummary,
    design_summary,
    timing_summary,
)
from repro.fpga.route import RoutingResult, route_design
from repro.fpga.techmap import LutMapping, flowmap
from repro.fpga.timing import TimingAnalysis, analyse_timing
from repro.hdl.circuit import Circuit

__all__ = ["FlowResult", "run_flow"]


@dataclass
class FlowResult:
    """Everything the flow produced for one design."""

    circuit: Circuit
    device: FpgaDevice
    mapping: LutMapping
    packed: PackedDesign
    placement: Placement
    routing: RoutingResult
    timing: TimingAnalysis
    summary: DesignSummary
    timing_report: TimingSummary

    def floorplan(self) -> str:
        """ASCII floor plan of the placed design (Figure 10)."""
        return render_floorplan(self.placement)

    def render_reports(self) -> str:
        """The full Appendix-A style report block."""
        return "\n\n".join(
            [self.summary.render(), self.timing_report.render(), self.floorplan()]
        )


def run_flow(
    circuit: Circuit,
    device: FpgaDevice = SPARTAN2_XC2S100,
    seed: int = 1,
    effort: float = 1.0,
    k: int = 4,
) -> FlowResult:
    """Implement ``circuit`` on ``device``; returns all stage artefacts."""
    mapping = flowmap(circuit, k=k)
    packed = pack_design(mapping, device)
    placement = place_design(packed, seed=seed, effort=effort)
    routing = route_design(placement)
    timing = analyse_timing(routing)
    return FlowResult(
        circuit=circuit,
        device=device,
        mapping=mapping,
        packed=packed,
        placement=placement,
        routing=routing,
        timing=timing,
        summary=design_summary(packed),
        timing_report=timing_summary(timing, circuit.name),
    )
