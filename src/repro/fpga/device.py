"""FPGA device models.

Capacity and geometry come from the public Spartan-II data sheet
(DS001): the XC2S100 has a 20x30 CLB array, two slices per CLB, two
4-input LUTs and two flip-flops per slice — 1,200 slices, matching the
paper's "Number of Slices: 337 out of 1200".  The tq144 package bonds 92
user I/Os and the part provides hundreds of TBUFs driving horizontal
long lines (we model the data-sheet figure of up to four per CLB plus
the bus capacity the paper reports: "206 out of 1280, 16%").

The delay model is deliberately simple — fixed cell delays plus a
distance-proportional net delay — but its constants are taken from the
-6 speed grade data-sheet values, so the timing report lands in the
right regime (tens of nanoseconds for a design with deep combinational
cones and tristate buses).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FpgaDevice", "SPARTAN2_XC2S100", "XC4005XL"]


@dataclass(frozen=True)
class FpgaDevice:
    """Geometry, capacity and timing of one FPGA part."""

    name: str
    family: str
    package: str
    speed_grade: str
    rows: int
    """CLB rows."""
    cols: int
    """CLB columns."""
    slices_per_clb: int
    luts_per_slice: int
    ffs_per_slice: int
    n_iobs: int
    """Bonded user I/O in this package."""
    n_tbufs: int
    """Tristate buffers available on the long lines."""
    channel_width: int
    """Routing wires per channel segment of the grid routing graph."""

    # --- timing (nanoseconds) -----------------------------------------
    t_lut: float
    """LUT (combinational CLB) propagation delay, T_ILO."""
    t_clk_to_q: float
    """Flip-flop clock-to-out, T_CKO."""
    t_setup: float
    """Flip-flop setup at the slice input, T_ICK."""
    t_tbuf: float
    """TBUF input-to-long-line delay, T_IOP-ish."""
    t_iob: float
    """IOB input or output buffer delay."""
    t_net_base: float
    """Fixed component of every net's delay (local interconnect)."""
    t_net_per_hop: float
    """Incremental delay per routed channel segment."""
    t_longline: float
    """Delay of a dedicated TBUF long line, independent of distance
    (tristate buses ride the horizontal long lines, not the segmented
    general routing)."""

    @property
    def n_clbs(self) -> int:
        """Total CLBs in the array."""
        return self.rows * self.cols

    @property
    def n_slices(self) -> int:
        """Total slices in the array."""
        return self.n_clbs * self.slices_per_clb

    @property
    def n_luts(self) -> int:
        """Total 4-input LUTs in the array."""
        return self.n_slices * self.luts_per_slice

    @property
    def n_ffs(self) -> int:
        """Total slice flip-flops in the array."""
        return self.n_slices * self.ffs_per_slice

    def net_delay(self, hops: int) -> float:
        """Delay of one routed connection spanning ``hops`` grid hops.

        Models the segmented interconnect of the real part: the first
        three hops ride single-length lines at the full per-hop cost;
        anything longer promotes onto hex/long segments, which cover six
        CLBs per switch and therefore cost roughly a third per CLB.
        """
        if hops < 0:
            raise ValueError(f"hops must be non-negative, got {hops}")
        short = min(hops, 3)
        long = hops - short
        return self.t_net_base + self.t_net_per_hop * (short + long / 3.0)

    def __str__(self) -> str:
        return f"{self.name} ({self.package}{self.speed_grade})"


#: The paper's target: Spartan-II XC2S100, tq144 package, -6 speed grade.
SPARTAN2_XC2S100 = FpgaDevice(
    name="xc2s100",
    family="spartan2",
    package="tq144",
    speed_grade="-06",
    rows=20,
    cols=30,
    slices_per_clb=2,
    luts_per_slice=2,
    ffs_per_slice=2,
    n_iobs=92,
    n_tbufs=1280,
    channel_width=24,
    t_lut=0.8,
    t_clk_to_q=1.3,
    t_setup=1.2,
    t_tbuf=1.6,
    t_iob=2.0,
    t_net_base=1.0,
    t_net_per_hop=0.45,
    t_longline=2.4,
)

#: The XC4000XL part the YAEA literature row was implemented on; its CLB
#: is two 4-LUTs plus an F-mux, so LUT capacity per CLB is comparable to
#: one Spartan-II slice pair.  Used only for literature-row context.
XC4005XL = FpgaDevice(
    name="xc4005xl",
    family="xc4000xl",
    package="pc84",
    speed_grade="-09",
    rows=14,
    cols=14,
    slices_per_clb=1,
    luts_per_slice=2,
    ffs_per_slice=2,
    n_iobs=61,
    n_tbufs=448,
    channel_width=12,
    t_lut=1.2,
    t_clk_to_q=1.6,
    t_setup=1.4,
    t_tbuf=2.0,
    t_iob=2.4,
    t_net_base=1.3,
    t_net_per_hop=0.6,
    t_longline=3.1,
)
