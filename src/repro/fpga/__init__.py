"""A self-contained FPGA implementation flow.

Our stand-in for the Xilinx Foundation back end the paper used
(DESIGN.md section 4).  Each stage implements the standard published
algorithm for its problem:

* :mod:`repro.fpga.device` — device models (Spartan-II xc2s100 and
  friends) with geometry, capacity and a delay model;
* :mod:`repro.fpga.techmap` — FlowMap: depth-optimal covering of the
  gate netlist with 4-input LUTs (Cong & Ding, 1994);
* :mod:`repro.fpga.pack` — slice/CLB packing (2 LUTs + 2 FFs per
  Spartan-II slice, 2 slices per CLB);
* :mod:`repro.fpga.place` — simulated-annealing placement minimising
  half-perimeter wirelength;
* :mod:`repro.fpga.route` — PathFinder-style negotiated-congestion
  routing on a grid routing graph;
* :mod:`repro.fpga.timing` — static timing analysis over the
  implemented netlist (LUT/TBUF/FF delays plus routed net delays);
* :mod:`repro.fpga.reports` / :mod:`repro.fpga.floorplan` — the design
  summary, timing summary and floor plan in the shape of the paper's
  Appendix A;
* :mod:`repro.fpga.flow` — the end-to-end driver.
"""

from repro.fpga.device import SPARTAN2_XC2S100, XC4005XL, FpgaDevice
from repro.fpga.flow import FlowResult, run_flow
from repro.fpga.pack import PackedDesign, pack_design
from repro.fpga.place import Placement, place_design
from repro.fpga.reports import DesignSummary, TimingSummary
from repro.fpga.route import RoutingResult, route_design
from repro.fpga.techmap import LutMapping, flowmap
from repro.fpga.timing import TimingAnalysis, analyse_timing

__all__ = [
    "SPARTAN2_XC2S100",
    "XC4005XL",
    "FpgaDevice",
    "FlowResult",
    "run_flow",
    "PackedDesign",
    "pack_design",
    "Placement",
    "place_design",
    "DesignSummary",
    "TimingSummary",
    "RoutingResult",
    "route_design",
    "LutMapping",
    "flowmap",
    "TimingAnalysis",
    "analyse_timing",
]
