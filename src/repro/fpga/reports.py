"""Implementation report rendering (the shape of the paper's Appendix A).

Two artefacts:

* :class:`DesignSummary` — the map-report numbers: slices, flip-flops,
  4-input LUTs, bonded IOBs, TBUFs (each as used/total with percentage)
  and a total equivalent gate count;
* :class:`TimingSummary` — minimum period, maximum frequency, maximum
  net delay.

Gate-equivalent convention (documented because every vendor counts
differently): a used 4-LUT counts 9 gates, a flip-flop 7, a TBUF 1 —
chosen so the paper's own 393-LUT / 205-FF design evaluates near its
reported "Total equivalent gate count: 5051".  The JTAG/IOB additional
gate line uses the paper's implied ~49 gates per bonded IOB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.device import FpgaDevice
from repro.fpga.pack import PackedDesign
from repro.fpga.timing import TimingAnalysis

__all__ = [
    "GATES_PER_LUT",
    "GATES_PER_FF",
    "GATES_PER_TBUF",
    "JTAG_GATES_PER_IOB",
    "DesignSummary",
    "TimingSummary",
    "design_summary",
    "timing_summary",
]

GATES_PER_LUT = 9
GATES_PER_FF = 7
GATES_PER_TBUF = 1
JTAG_GATES_PER_IOB = 49


@dataclass(frozen=True)
class DesignSummary:
    """Resource usage of one implemented design."""

    design_name: str
    device: FpgaDevice
    n_slices: int
    n_ffs: int
    n_luts: int
    n_iobs: int
    n_tbufs: int

    @property
    def slice_utilisation(self) -> float:
        """Fraction of device slices used."""
        return self.n_slices / self.device.n_slices

    @property
    def iob_utilisation(self) -> float:
        """Fraction of bonded IOBs used."""
        return self.n_iobs / self.device.n_iobs

    @property
    def tbuf_utilisation(self) -> float:
        """Fraction of device TBUFs used."""
        return self.n_tbufs / self.device.n_tbufs

    @property
    def n_clbs(self) -> int:
        """Occupied CLBs (the paper's area unit for functional density)."""
        per_clb = self.device.slices_per_clb
        return (self.n_slices + per_clb - 1) // per_clb

    @property
    def equivalent_gates(self) -> int:
        """Total equivalent gate count under the documented convention."""
        return (
            self.n_luts * GATES_PER_LUT
            + self.n_ffs * GATES_PER_FF
            + self.n_tbufs * GATES_PER_TBUF
        )

    @property
    def jtag_gates(self) -> int:
        """Additional JTAG gate count for the bonded IOBs."""
        return self.n_iobs * JTAG_GATES_PER_IOB

    def render(self) -> str:
        """Format in the style of the Xilinx map report the paper quotes."""
        d = self.device
        lines = [
            "Design Information",
            f"  Target Device : {d.name}",
            f"  Target Package : {d.package}",
            f"  Target Speed : {d.speed_grade}",
            f"  Mapper : repro.fpga flowmap/pack",
            "",
            "Design Summary",
            f"  Number of Slices : {self.n_slices} out of {d.n_slices} "
            f"{self.slice_utilisation:.0%}",
            f"  Slice Flip Flops : {self.n_ffs}",
            f"  4 input LUTs : {self.n_luts}",
            f"  Number of bonded IOBs : {self.n_iobs} out of {d.n_iobs} "
            f"{self.iob_utilisation:.0%}",
            f"  Number of TBUFs : {self.n_tbufs} out of {d.n_tbufs} "
            f"{self.tbuf_utilisation:.0%}",
            f"  Total equivalent gate count for design : {self.equivalent_gates}",
            f"  Additional JTAG gate count for IOBs : {self.jtag_gates}",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class TimingSummary:
    """Timing numbers of one implemented design."""

    design_name: str
    min_period_ns: float
    max_net_delay_ns: float
    logic_levels: int

    @property
    def max_frequency_mhz(self) -> float:
        """Maximum clock frequency."""
        if self.min_period_ns <= 0:
            return float("inf")
        return 1000.0 / self.min_period_ns

    def render(self) -> str:
        """Format in the style of the Xilinx timing report."""
        return "\n".join(
            [
                "Timing Summary",
                f"  Minimum period : {self.min_period_ns:.3f}ns",
                f"  Maximum frequency : {self.max_frequency_mhz:.3f}MHz",
                f"  Maximum net delay : {self.max_net_delay_ns:.3f}ns",
                f"  Logic levels on critical path : {self.logic_levels}",
            ]
        )


def design_summary(packed: PackedDesign, name: str | None = None) -> DesignSummary:
    """Build the design summary from a packed design."""
    circuit = packed.circuit
    n_iobs = sum(b.width for b in circuit.inputs.values()) + sum(
        b.width for b in circuit.outputs.values()
    )
    return DesignSummary(
        design_name=name or circuit.name,
        device=packed.device,
        n_slices=packed.n_slices,
        n_ffs=packed.n_ffs,
        n_luts=packed.n_luts,
        n_iobs=n_iobs,
        n_tbufs=len(packed.tbufs),
    )


def timing_summary(analysis: TimingAnalysis, name: str) -> TimingSummary:
    """Build the timing summary from an STA result."""
    return TimingSummary(
        design_name=name,
        min_period_ns=analysis.min_period_ns,
        max_net_delay_ns=analysis.max_net_delay_ns,
        logic_levels=analysis.logic_levels_on_critical_path,
    )
