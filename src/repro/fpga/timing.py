"""Static timing analysis of the implemented design.

Walks the mapped netlist (LUTs, tristate groups, flip-flops, IOBs) in
topological order, accumulating cell delays from the device model and
*per-sink* routed net delays: each consumer is charged the tree distance
from the driver to its own site (``t_net_base + t_net_per_hop * hops``),
exactly like a production STA, rather than every consumer paying for the
net's worst sink.  Produces the two numbers of the paper's timing
summary — minimum period / maximum frequency and maximum net delay —
plus the full critical path for inspection.

Conventions:

* a path starts at a flip-flop Q (``t_clk_to_q``) or a primary input
  (``t_iob``) and ends at a flip-flop D/CE/SR (``t_setup``); the minimum
  period is the worst such path (the paper's synchronous core regime);
* slice-internal connections (fused LUT→FF) have zero net delay, which
  falls out naturally because the packer never emits a net for them;
* tristate groups are combinational: arrival at the resolved net is the
  worst arrival over all drivers plus ``t_tbuf``, and the resolved net
  itself rides a dedicated long line with distance-independent delay
  ``t_longline``;
* ``max net delay`` is reported Xilinx-style: the worst sink delay over
  all routed nets.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.errors import FlowError
from repro.fpga.route import RoutingResult
from repro.hdl.gates import Gate, TristateGroup
from repro.hdl.signal import Signal

__all__ = ["TimingAnalysis", "analyse_timing"]

Terminal = tuple[str, int]


@dataclass
class TimingAnalysis:
    """The timing report of one implemented design."""

    min_period_ns: float
    max_net_delay_ns: float
    critical_path: list[str] = field(default_factory=list)
    n_timing_paths: int = 0
    logic_levels_on_critical_path: int = 0

    @property
    def max_frequency_mhz(self) -> float:
        """Maximum clock frequency implied by the minimum period."""
        if self.min_period_ns <= 0:
            return float("inf")
        return 1000.0 / self.min_period_ns


class _NetDelays:
    """Per-sink routed delay lookup for every signal."""

    def __init__(self, routing: RoutingResult):
        placement = routing.placement
        device = placement.device
        circuit = placement.design.circuit
        self._device = device
        self._tristate_outputs = {
            g.output.index for g in circuit.tristate_groups
        }
        # signal index -> {terminal -> hops}, plus the worst sink per net.
        self._hops: dict[int, dict[Terminal, int]] = {}
        self._worst: dict[int, int] = {}
        self.max_net_delay = 0.0
        for tree in routing.routed:
            sig_index = tree.net.signal_index
            per_terminal: dict[Terminal, int] = {}
            for t_index, hops in tree.sink_hops.items():
                terminal = tree.net.terminals[t_index]
                per_terminal[terminal] = max(per_terminal.get(terminal, 0), hops)
            self._hops[sig_index] = per_terminal
            worst = max(tree.sink_hops.values(), default=0)
            self._worst[sig_index] = worst
            if sig_index in self._tristate_outputs:
                delay = device.t_longline
            else:
                delay = device.net_delay(worst)
            self.max_net_delay = max(self.max_net_delay, delay)

    def delay(self, sig: Signal, consumer: Terminal | None) -> float:
        """Routed delay from ``sig``'s driver to one consumer terminal."""
        if sig.index in self._tristate_outputs:
            return self._device.t_longline
        per_terminal = self._hops.get(sig.index)
        if per_terminal is None:
            return 0.0  # slice-internal or unrouted
        if consumer is not None and consumer in per_terminal:
            return self._device.net_delay(per_terminal[consumer])
        return self._device.net_delay(self._worst.get(sig.index, 0))


def analyse_timing(routing: RoutingResult) -> TimingAnalysis:
    """Run STA over a routed design."""
    placement = routing.placement
    design = placement.design
    device = placement.device
    circuit = design.circuit
    mapping = design.mapping
    delays = _NetDelays(routing)

    # --- consumer-site lookup tables -------------------------------------
    slice_of_lut: dict[int, int] = {}
    slice_of_ff: dict[int, int] = {}
    for slice_ in design.slices:
        for cell in slice_.cells:
            if cell.lut is not None:
                slice_of_lut[cell.lut.output.index] = slice_.index
            if cell.ff is not None:
                slice_of_ff[id(cell.ff)] = slice_.index
    producer_site: dict[int, Terminal] = {}
    for slice_ in design.slices:
        for cell in slice_.cells:
            for sig in cell.output_signals:
                producer_site[sig.index] = ("S", slice_.index)
    io_terminal: dict[int, Terminal] = {}
    position = 0
    for bus in circuit.inputs.values():
        for sig in bus:
            io_terminal[sig.index] = ("I", position)
            position += 1
    for bus in circuit.outputs.values():
        for sig in bus:
            io_terminal.setdefault(sig.index, ("I", position))
            position += 1

    # --- arrival-time propagation ----------------------------------------
    arrival: dict[int, float] = {}
    reason: dict[int, tuple[int | None, str]] = {}

    for bus in circuit.inputs.values():
        for sig in bus:
            arrival[sig.index] = device.t_iob
            reason[sig.index] = (None, f"IOB {sig.name}")
    for ff in circuit.dffs:
        arrival[ff.q.index] = device.t_clk_to_q
        reason[ff.q.index] = (None, f"FF {ff.q.name} (clk->q)")

    def source_arrival(sig: Signal) -> float:
        driver = sig.driver
        if isinstance(driver, Gate) and driver.kind in ("CONST0", "CONST1"):
            return 0.0
        if sig.index not in arrival:
            raise FlowError(f"no arrival for {sig.name!r}; broken topo order")
        return arrival[sig.index]

    nodes: list = list(mapping.luts) + list(circuit.tristate_groups)
    indegree: dict[int, int] = {}
    consumers: dict[int, list] = {}
    produced_by: dict[int, object] = {}
    for node in nodes:
        produced_by[node.output.index] = node

    def node_inputs(node) -> list[tuple[Signal, Terminal | None]]:
        if isinstance(node, TristateGroup):
            pairs: list[tuple[Signal, Terminal | None]] = []
            for t in node.buffers:
                host = producer_site.get(t.input.index,
                                         io_terminal.get(t.input.index))
                pairs.append((t.input, host))
                pairs.append((t.enable, host))
            return pairs
        host = ("S", slice_of_lut[node.output.index])
        return [(sig, host) for sig in node.inputs]

    for node in nodes:
        count = 0
        for sig, _term in node_inputs(node):
            upstream = produced_by.get(sig.index)
            if upstream is not None:
                count += 1
                consumers.setdefault(id(upstream), []).append(node)
        indegree[id(node)] = count
    ready = deque(node for node in nodes if indegree[id(node)] == 0)
    processed = 0
    while ready:
        node = ready.popleft()
        processed += 1
        is_tristate = isinstance(node, TristateGroup)
        cell_delay = device.t_tbuf if is_tristate else device.t_lut
        best = 0.0
        best_sig: int | None = None
        for sig, terminal in node_inputs(node):
            candidate = source_arrival(sig) + delays.delay(sig, terminal)
            if candidate >= best:
                best = candidate
                best_sig = sig.index
        out = node.output
        arrival[out.index] = best + cell_delay
        label = "TBUF" if is_tristate else "LUT"
        reason[out.index] = (best_sig, f"{label} {out.name}")
        for consumer in consumers.get(id(node), []):
            indegree[id(consumer)] -= 1
            if indegree[id(consumer)] == 0:
                ready.append(consumer)
    if processed != len(nodes):
        raise FlowError("timing graph contains a combinational cycle")

    # --- endpoint analysis ---------------------------------------------
    min_period = 0.0
    worst_endpoint: int | None = None
    worst_label = ""
    n_paths = 0
    for ff in circuit.dffs:
        ff_site: Terminal | None = (
            ("S", slice_of_ff[id(ff)]) if id(ff) in slice_of_ff else None
        )
        for sig, pin in ((ff.d, "D"), (ff.enable, "CE"), (ff.reset, "SR")):
            if sig is None:
                continue
            driver = sig.driver
            if isinstance(driver, Gate) and driver.kind in ("CONST0", "CONST1"):
                continue
            if sig.index not in arrival:
                continue  # swept / unconnected cone
            n_paths += 1
            total = (
                arrival[sig.index]
                + delays.delay(sig, ff_site)
                + device.t_setup
            )
            if total > min_period:
                min_period = total
                worst_endpoint = sig.index
                worst_label = f"FF {ff.q.name}.{pin} (setup)"

    critical: list[str] = []
    levels = 0
    if worst_endpoint is not None:
        critical.append(worst_label)
        cursor: int | None = worst_endpoint
        while cursor is not None:
            pred, label = reason.get(cursor, (None, "?"))
            critical.append(f"{label} @ {arrival.get(cursor, 0.0):.3f}ns")
            if label.startswith(("LUT", "TBUF")):
                levels += 1
            cursor = pred
        critical.reverse()

    return TimingAnalysis(
        min_period_ns=round(min_period, 3),
        max_net_delay_ns=round(delays.max_net_delay, 3),
        critical_path=critical,
        n_timing_paths=n_paths,
        logic_levels_on_critical_path=levels,
    )
