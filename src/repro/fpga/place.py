"""Simulated-annealing placement.

Slices are placed onto the device's (row, col, slice) sites; IOBs are
pre-assigned around the package perimeter in port-declaration order.
The optimiser is the standard VPR-style annealer: random pairwise
moves/swaps, accepted by the Metropolis criterion on the change in total
half-perimeter wirelength (HPWL), with a geometric cooling schedule.
Everything is seeded, so placements — and therefore the timing reports
derived from them — are reproducible.

Tristate buffers are modelled as living next to the slice that produces
their data input (Spartan-II TBUFs sit beside the CLBs), so tristate
nets simply contribute their driver/load sites to the net list like any
other net.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.errors import FlowError
from repro.fpga.device import FpgaDevice
from repro.fpga.pack import PackedDesign
from repro.hdl.gates import Gate, TristateGroup
from repro.hdl.signal import Signal
from repro.util.rng import SplitMix64

__all__ = ["Net", "Placement", "place_design"]


@dataclass
class Net:
    """One routed signal: a driver terminal and one or more load terminals.

    Terminals are ``("S", slice_index)`` or ``("I", io_index)``.  The
    first terminal is the driver (for tristate nets, every TBUF driver
    terminal precedes the loads; ``n_drivers`` records how many).
    """

    name: str
    terminals: list[tuple[str, int]]
    n_drivers: int = 1
    signal_index: int = -1


@dataclass
class Placement:
    """A complete placement of one packed design."""

    design: PackedDesign
    device: FpgaDevice
    slice_sites: dict[int, tuple[int, int, int]]
    """slice index -> (row, col, slot)."""

    io_sites: dict[int, tuple[int, int]]
    """io index -> perimeter (row, col) in CLB coordinates."""

    nets: list[Net] = field(default_factory=list)
    cost: float = 0.0
    moves_tried: int = 0
    moves_accepted: int = 0

    def terminal_position(self, terminal: tuple[str, int]) -> tuple[int, int]:
        """CLB-grid coordinates of one net terminal."""
        kind, index = terminal
        if kind == "S":
            row, col, _slot = self.slice_sites[index]
            return row, col
        return self.io_sites[index]

    def net_hpwl(self, net: Net) -> int:
        """Half-perimeter wirelength of one net."""
        rows = []
        cols = []
        for terminal in net.terminals:
            r, c = self.terminal_position(terminal)
            rows.append(r)
            cols.append(c)
        return (max(rows) - min(rows)) + (max(cols) - min(cols))

    def total_hpwl(self) -> int:
        """Sum of HPWL over all nets (the annealer's cost function)."""
        return sum(self.net_hpwl(net) for net in self.nets)

    def occupancy(self) -> dict[tuple[int, int], int]:
        """CLB coordinate -> number of occupied slice slots (floorplan)."""
        counts: dict[tuple[int, int], int] = {}
        for row, col, _slot in self.slice_sites.values():
            counts[(row, col)] = counts.get((row, col), 0) + 1
        return counts


def place_design(
    design: PackedDesign,
    seed: int = 1,
    effort: float = 1.0,
) -> Placement:
    """Anneal a placement for ``design``; ``effort`` scales move count."""
    if effort <= 0:
        raise FlowError(f"placement effort must be positive, got {effort}")
    device = design.device
    rng = SplitMix64(seed)

    io_sites = _assign_io_sites(design)
    placement = Placement(
        design=design, device=device,
        slice_sites=_initial_sites(design),
        io_sites=io_sites,
    )
    placement.nets = _extract_nets(design, io_sites)
    nets_of_slice = _nets_by_slice(placement.nets, design.n_slices)

    site_to_slice: dict[tuple[int, int, int], int] = {
        site: idx for idx, site in placement.slice_sites.items()
    }

    cost = float(placement.total_hpwl())
    n_moves = max(4000, int(effort * 600 * max(1, design.n_slices)))
    # VPR-style schedule: hot start, geometric cooling, and a move window
    # that shrinks from the whole die down to neighbouring CLBs.
    temperature = max(0.5, 2.0 * cost / max(1, len(placement.nets)))
    max_radius = max(device.rows, device.cols)

    moves_done = 0
    while moves_done < n_moves:
        progress = moves_done / n_moves
        radius = max(1, int(round(max_radius * (1.0 - progress))))
        accepted_in_block = 0
        block = max(128, design.n_slices * 4)
        for _ in range(block):
            moves_done += 1
            a = rng.below(design.n_slices)
            source = placement.slice_sites[a]
            target = _site_near(source, radius, device, rng)
            if target == source:
                continue
            b = site_to_slice.get(target)
            affected = set(nets_of_slice[a])
            if b is not None:
                affected |= set(nets_of_slice[b])
            before = sum(placement.net_hpwl(placement.nets[i]) for i in affected)
            _apply_move(placement, site_to_slice, a, source, b, target)
            after = sum(placement.net_hpwl(placement.nets[i]) for i in affected)
            delta = after - before
            placement.moves_tried += 1
            if delta <= 0 or (
                temperature > 1e-9 and rng.uniform() < math.exp(-delta / temperature)
            ):
                cost += delta
                placement.moves_accepted += 1
                accepted_in_block += 1
            else:
                _apply_move(placement, site_to_slice, a, target, b, source)
        # standard VPR temperature update keyed on acceptance rate
        rate = accepted_in_block / block
        if rate > 0.96:
            temperature *= 0.5
        elif rate > 0.8:
            temperature *= 0.9
        elif rate > 0.15:
            temperature *= 0.95
        else:
            temperature *= 0.8
    placement.cost = float(placement.total_hpwl())
    return placement


def _site_near(
    source: tuple[int, int, int], radius: int, device, rng: SplitMix64
) -> tuple[int, int, int]:
    """Random legal site within ``radius`` CLBs of ``source``."""
    row, col, _slot = source
    r_lo = max(0, row - radius)
    r_hi = min(device.rows - 1, row + radius)
    c_lo = max(0, col - radius)
    c_hi = min(device.cols - 1, col + radius)
    new_row = r_lo + rng.below(r_hi - r_lo + 1)
    new_col = c_lo + rng.below(c_hi - c_lo + 1)
    return (new_row, new_col, rng.below(device.slices_per_clb))


def _apply_move(placement, site_to_slice, a, source, b, target) -> None:
    placement.slice_sites[a] = target
    site_to_slice[target] = a
    if b is not None:
        placement.slice_sites[b] = source
        site_to_slice[source] = b
    else:
        del site_to_slice[source]


def _initial_sites(design: PackedDesign) -> dict[int, tuple[int, int, int]]:
    """Compact initial placement: fill a centred block in scan order.

    Starting compact (rather than scattered) gives the annealer a
    wirelength already within a small factor of optimal, so the cooling
    schedule spends its moves on refinement.
    """
    device = design.device
    per_clb = device.slices_per_clb
    n_clbs_needed = (design.n_slices + per_clb - 1) // per_clb
    import math as _math

    side = max(1, int(_math.ceil(_math.sqrt(n_clbs_needed))))
    rows = min(device.rows, side)
    cols = min(device.cols, (n_clbs_needed + rows - 1) // rows)
    row0 = max(0, (device.rows - rows) // 2)
    col0 = max(0, (device.cols - cols) // 2)

    sites: list[tuple[int, int, int]] = []
    for r in range(device.rows):
        for c in range(device.cols):
            in_block = row0 <= r < row0 + rows and col0 <= c < col0 + cols
            if in_block:
                for s in range(per_clb):
                    sites.append((r, c, s))
    # overflow beyond the block (possible when the block clips the die)
    if len(sites) < design.n_slices:
        for r in range(device.rows):
            for c in range(device.cols):
                for s in range(per_clb):
                    site = (r, c, s)
                    if site not in sites:
                        sites.append(site)
    if design.n_slices > len(sites):
        raise FlowError("more slices than sites")  # pack checked already
    return {idx: sites[idx] for idx in range(design.n_slices)}


def _assign_io_sites(design: PackedDesign) -> dict[int, tuple[int, int]]:
    """Distribute IO bits evenly around the CLB-grid perimeter."""
    device = design.device
    perimeter: list[tuple[int, int]] = []
    for c in range(device.cols):
        perimeter.append((-1, c))
    for r in range(device.rows):
        perimeter.append((r, device.cols))
    for c in reversed(range(device.cols)):
        perimeter.append((device.rows, c))
    for r in reversed(range(device.rows)):
        perimeter.append((r, -1))

    circuit = design.circuit
    io_signals: list[Signal] = []
    for bus in circuit.inputs.values():
        io_signals.extend(bus)
    for bus in circuit.outputs.values():
        io_signals.extend(bus)
    if len(io_signals) > len(perimeter):
        # more IO than perimeter slots at CLB pitch: double up
        step = 1
    else:
        step = len(perimeter) // max(1, len(io_signals))
    sites: dict[int, tuple[int, int]] = {}
    for i, _sig in enumerate(io_signals):
        sites[i] = perimeter[(i * step) % len(perimeter)]
    return sites


def _extract_nets(design: PackedDesign, io_sites: dict[int, tuple[int, int]]
                  ) -> list[Net]:
    """Build the net list connecting slices and IOBs."""
    circuit = design.circuit
    mapping = design.mapping

    # Where is each signal produced?
    producer: dict[int, tuple[str, int]] = {}
    for slice_ in design.slices:
        for cell in slice_.cells:
            for sig in cell.output_signals:
                producer[sig.index] = ("S", slice_.index)

    io_index: dict[int, int] = {}
    position = 0
    for bus in circuit.inputs.values():
        for sig in bus:
            io_index[sig.index] = position
            producer.setdefault(sig.index, ("I", position))
            position += 1
    for bus in circuit.outputs.values():
        for sig in bus:
            io_index.setdefault(sig.index, position)
            position += 1

    # Where is each signal consumed?  TBUFs sit at the site producing
    # their data input, so the data needs no routing but the enable must
    # be routed to that host site, and the resolved bus net is driven
    # from every host site.
    loads: dict[int, list[tuple[str, int]]] = {}

    def add_load(sig: Signal, terminal: tuple[str, int]) -> None:
        loads.setdefault(sig.index, []).append(terminal)

    def tbuf_host(t) -> tuple[str, int]:
        host = producer.get(t.input.index)
        if host is None:
            host = ("I", io_index.get(t.input.index, 0))
        return host

    for slice_ in design.slices:
        for cell in slice_.cells:
            for sig in cell.input_signals:
                add_load(sig, ("S", slice_.index))
    for bus in circuit.outputs.values():
        for sig in bus:
            add_load(sig, ("I", io_index[sig.index]))
    for group in circuit.tristate_groups:
        for t in group.buffers:
            add_load(t.enable, tbuf_host(t))

    nets: list[Net] = []
    for sig in circuit.signals:
        driver = sig.driver
        if isinstance(driver, Gate) and driver.kind in ("CONST0", "CONST1"):
            continue  # constants are local, not routed
        sig_loads = loads.get(sig.index, [])
        if not sig_loads:
            continue
        if isinstance(driver, TristateGroup):
            drivers = [tbuf_host(t) for t in driver.buffers]
            nets.append(Net(name=sig.name, terminals=drivers + sig_loads,
                            n_drivers=len(drivers), signal_index=sig.index))
            continue
        src = producer.get(sig.index)
        if src is None:
            continue  # unconnected (e.g. swept logic) or slice-internal
        nets.append(Net(name=sig.name, terminals=[src] + sig_loads,
                        n_drivers=1, signal_index=sig.index))
    return nets


def _nets_by_slice(nets: list[Net], n_slices: int) -> list[list[int]]:
    table: list[list[int]] = [[] for _ in range(n_slices)]
    for i, net in enumerate(nets):
        for kind, index in net.terminals:
            if kind == "S":
                table[index].append(i)
    return table
