"""Floor-plan rendering (the paper's Figure 10).

The paper shows the placed design as a screenshot of the Xilinx floor
planner; our equivalent is an ASCII density map of the CLB array — one
character per CLB, shaded by how many of its slice slots are occupied —
plus a utilisation histogram.  Fully textual so it renders in any
terminal and diffs cleanly in regression tests.
"""

from __future__ import annotations

from repro.fpga.place import Placement

__all__ = ["render_floorplan", "occupancy_histogram"]

_SHADES = {0: ".", 1: "+", 2: "#"}


def render_floorplan(placement: Placement) -> str:
    """ASCII density map of the placed design.

    ``.`` empty CLB, ``+`` one slice used, ``#`` both slices used (for
    devices with more slices per CLB the shade saturates at ``#``).
    """
    device = placement.device
    occupancy = placement.occupancy()
    lines = [
        f"Floor plan: {placement.design.circuit.name} on {device} "
        f"({device.rows}x{device.cols} CLBs)"
    ]
    header = "    " + "".join(str(c % 10) for c in range(device.cols))
    lines.append(header)
    for row in range(device.rows):
        cells = []
        for col in range(device.cols):
            used = occupancy.get((row, col), 0)
            cells.append(_SHADES.get(min(used, 2), "#"))
        lines.append(f"{row:3d} " + "".join(cells))
    used_slices = len(placement.slice_sites)
    lines.append(
        f"slices placed: {used_slices} / {device.n_slices} "
        f"({used_slices / device.n_slices:.0%}), "
        f"total HPWL: {placement.cost:.0f}"
    )
    return "\n".join(lines)


def occupancy_histogram(placement: Placement) -> dict[int, int]:
    """CLB occupancy histogram: slices-used-per-CLB -> CLB count."""
    device = placement.device
    occupancy = placement.occupancy()
    histogram: dict[int, int] = {}
    for row in range(device.rows):
        for col in range(device.cols):
            used = occupancy.get((row, col), 0)
            histogram[used] = histogram.get(used, 0) + 1
    return histogram
