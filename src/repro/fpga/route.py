"""PathFinder-style negotiated-congestion routing.

The routing fabric is modelled as the CLB grid: one routing node per CLB
coordinate (perimeter IOB positions clamp onto the nearest CLB), edges
between 4-neighbours with a capacity of ``device.channel_width`` wires.
Every net is routed as a Steiner-ish tree: sinks are connected one at a
time by a cheapest-path search seeded from the partially built tree
(Prim/Dijkstra hybrid, bounded to the net's bounding box plus a margin).

Congestion is negotiated across iterations exactly as in PathFinder
(McMurchie & Ebeling, 1995): every edge carries a *present* overuse
penalty that rises with demand and a *history* penalty that accumulates
each iteration it stays over capacity; all nets are ripped up and
re-routed until no edge is over capacity or the iteration budget runs
out (the latter raises — an unroutable design must not silently produce
timing numbers).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.core.errors import FlowError
from repro.fpga.place import Net, Placement

__all__ = ["RoutedNet", "RoutingResult", "route_design"]

_BBOX_MARGIN = 3


@dataclass
class RoutedNet:
    """The routed tree of one net."""

    net: Net
    edges: list[tuple[tuple[int, int], tuple[int, int]]]
    """Undirected grid edges (a, b) with a < b, forming the net's tree."""

    sink_hops: dict[int, int] = field(default_factory=dict)
    """terminal index (into net.terminals) -> tree-path hops from driver."""

    @property
    def wirelength(self) -> int:
        """Total routed wirelength in channel segments."""
        return len(self.edges)


@dataclass
class RoutingResult:
    """The full routing of one placement."""

    placement: Placement
    routed: list[RoutedNet]
    iterations: int
    total_wirelength: int
    max_edge_usage: int
    channel_width: int

    def hops_to_sink(self, net_index: int, terminal_index: int) -> int:
        """Routed hops from a net's driver to one of its sink terminals."""
        return self.routed[net_index].sink_hops[terminal_index]


def _clamp(placement: Placement, terminal: tuple[str, int]) -> tuple[int, int]:
    row, col = placement.terminal_position(terminal)
    device = placement.device
    row = min(max(row, 0), device.rows - 1)
    col = min(max(col, 0), device.cols - 1)
    return row, col


def _edge_key(a: tuple[int, int], b: tuple[int, int]):
    return (a, b) if a <= b else (b, a)


def route_design(placement: Placement, max_iterations: int = 12) -> RoutingResult:
    """Route every net of a placement; raises :class:`FlowError` if the
    channels stay over capacity after ``max_iterations`` rounds."""
    device = placement.device
    capacity = device.channel_width
    usage: dict[tuple, int] = {}
    history: dict[tuple, float] = {}
    routed: list[RoutedNet] = [None] * len(placement.nets)  # type: ignore

    def present_cost(edge, extra: int = 0) -> float:
        over = usage.get(edge, 0) + extra - capacity
        penalty = 1.0 + history.get(edge, 0.0)
        if over >= 0:
            penalty += 4.0 * (over + 1)
        return penalty

    iterations = 0
    for iteration in range(1, max_iterations + 1):
        iterations = iteration
        congested = False
        for index, net in enumerate(placement.nets):
            previous = routed[index]
            if previous is not None:
                for edge in previous.edges:
                    usage[edge] -= 1
            tree = _route_net(placement, net, present_cost)
            for edge in tree.edges:
                usage[edge] = usage.get(edge, 0) + 1
            routed[index] = tree
        over_edges = [e for e, u in usage.items() if u > capacity]
        if over_edges:
            congested = True
            for edge in over_edges:
                history[edge] = history.get(edge, 0.0) + 1.0
        if not congested:
            break
    else:  # pragma: no cover - capacity is generous for these designs
        raise FlowError("routing failed to converge: channels over capacity")
    if any(u > capacity for u in usage.values()):
        raise FlowError("routing failed to converge: channels over capacity")

    total = sum(tree.wirelength for tree in routed)
    max_usage = max(usage.values(), default=0)
    return RoutingResult(
        placement=placement,
        routed=routed,
        iterations=iterations,
        total_wirelength=total,
        max_edge_usage=max_usage,
        channel_width=capacity,
    )


def _route_net(placement: Placement, net: Net, present_cost) -> RoutedNet:
    device = placement.device
    positions = [_clamp(placement, t) for t in net.terminals]
    driver_positions = positions[: net.n_drivers]
    sink_positions = positions[net.n_drivers :]

    rows = [r for r, _ in positions]
    cols = [c for _, c in positions]
    r_lo = max(0, min(rows) - _BBOX_MARGIN)
    r_hi = min(device.rows - 1, max(rows) + _BBOX_MARGIN)
    c_lo = max(0, min(cols) - _BBOX_MARGIN)
    c_hi = min(device.cols - 1, max(cols) + _BBOX_MARGIN)

    tree_nodes: set[tuple[int, int]] = set(driver_positions)
    tree_edges: set[tuple] = set()
    # tristate buses: connect the driver sites together first, then sinks
    targets = list(dict.fromkeys(driver_positions[1:])) + list(sink_positions)
    for target in targets:
        if target in tree_nodes:
            continue
        came_from = _cheapest_path(
            tree_nodes, target, (r_lo, r_hi, c_lo, c_hi), present_cost, tree_edges
        )
        node = target
        while came_from[node] is not None:
            parent = came_from[node]
            tree_edges.add(_edge_key(parent, node))
            tree_nodes.add(node)
            node = parent
        tree_nodes.add(target)

    routed = RoutedNet(net=net, edges=sorted(tree_edges))
    _annotate_sink_hops(routed, positions, net)
    return routed


def _cheapest_path(tree_nodes, target, bbox, present_cost, tree_edges):
    """Dijkstra from the existing tree to ``target`` inside the bbox.

    Edges already owned by this net's tree are free, which is what makes
    the result a tree rather than a set of independent paths.
    """
    r_lo, r_hi, c_lo, c_hi = bbox
    dist: dict[tuple[int, int], float] = {}
    came_from: dict[tuple[int, int], tuple[int, int] | None] = {}
    heap: list[tuple[float, tuple[int, int]]] = []
    for node in tree_nodes:
        dist[node] = 0.0
        came_from[node] = None
        heapq.heappush(heap, (0.0, node))
    while heap:
        d, node = heapq.heappop(heap)
        if d > dist.get(node, float("inf")):
            continue
        if node == target:
            return came_from
        row, col = node
        for nrow, ncol in ((row - 1, col), (row + 1, col), (row, col - 1), (row, col + 1)):
            if not (r_lo <= nrow <= r_hi and c_lo <= ncol <= c_hi):
                continue
            neighbour = (nrow, ncol)
            edge = _edge_key(node, neighbour)
            step = 0.0 if edge in tree_edges else present_cost(edge, 1)
            nd = d + step + 1e-6  # tiny bias keeps paths short
            if nd < dist.get(neighbour, float("inf")):
                dist[neighbour] = nd
                came_from[neighbour] = node
                heapq.heappush(heap, (nd, neighbour))
    raise FlowError(f"no path to sink at {target} within bounding box")


def _annotate_sink_hops(routed: RoutedNet, positions, net: Net) -> None:
    """Per-sink hop counts from the (first) driver through the tree."""
    adjacency: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for a, b in routed.edges:
        adjacency.setdefault(a, []).append(b)
        adjacency.setdefault(b, []).append(a)
    start = positions[0]
    hops = {start: 0}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for neighbour in adjacency.get(node, []):
            if neighbour not in hops:
                hops[neighbour] = hops[node] + 1
                frontier.append(neighbour)
    for t_index in range(net.n_drivers, len(net.terminals)):
        position = positions[t_index]
        routed.sink_hops[t_index] = hops.get(position, 0)
