"""Throughput accounting.

The paper's Table 1 defines throughput as "reciprocal of minimum period
times the expected output number of information bits".  For MHHEA it
charges **8 information bits per two-cycle output** — the *maximum*
window width — giving 95.532 Mbps at 23.883 MHz.  That is one of three
defensible accountings, and they differ by more than 2x, so this module
implements all of them explicitly and every report labels which one it
is using:

``Accounting.PAPER_MAX_WINDOW``
    max-window bits per output (8 for 16-bit vectors), the paper's
    convention; reproduces the published numbers from f_max.

``Accounting.EXPECTED_WINDOW``
    the analytically exact expected *scrambled* window width for
    uniform keys and uniform vector bits
    (:func:`expected_scrambled_window`), i.e. the mean number of message
    bits a random output vector actually carries.

``Accounting.MEASURED``
    end-to-end message bits per clock cycle measured on a cycle-model
    run, including all load/align overhead cycles.
"""

from __future__ import annotations

import enum
from fractions import Fraction

from repro.core.key import Key, KeyPair, scramble_pair
from repro.core.params import PAPER_PARAMS, VectorParams
from repro.rtl.cycle_model import CycleModelRun

__all__ = [
    "Accounting",
    "throughput_mbps",
    "expected_scrambled_window",
    "expected_raw_window",
    "measured_bits_per_cycle",
    "paper_table1_throughput",
]


class Accounting(enum.Enum):
    """Which information-bit convention a throughput number uses."""

    PAPER_MAX_WINDOW = "paper-max-window"
    EXPECTED_WINDOW = "expected-window"
    MEASURED = "measured"


def throughput_mbps(fmax_mhz: float, bits_per_cycle: float) -> float:
    """Throughput in Mbps from a clock rate and an information rate."""
    if fmax_mhz < 0 or bits_per_cycle < 0:
        raise ValueError("rates must be non-negative")
    return fmax_mhz * bits_per_cycle


def paper_table1_throughput(fmax_mhz: float, params: VectorParams = PAPER_PARAMS,
                            cycles_per_output: int = 2) -> float:
    """The paper's Table-1 convention: max window bits per output.

    ``23.883 MHz * 8 bits / 2 cycles = 95.532 Mbps`` — reproduced
    exactly by this function, which is asserted in the tests.
    """
    return throughput_mbps(fmax_mhz, params.max_window / cycles_per_output)


def expected_raw_window(params: VectorParams = PAPER_PARAMS) -> Fraction:
    """Exact E[|K1-K2| + 1] for independent uniform key halves.

    3.625 bits for the paper's 3-bit keys (plain HHEA windows).
    """
    n = params.half
    total = sum(abs(a - b) for a in range(n) for b in range(n))
    return Fraction(total, n * n) + 1


def expected_scrambled_window(params: VectorParams = PAPER_PARAMS,
                              key: Key | None = None) -> Fraction:
    """Exact expected MHHEA window width ``E[KN2 - KN1 + 1]``.

    Enumerates every key pair (uniform, or the given key's pairs) and
    every value of the vector slice that scrambles the location (uniform
    bits, exact because the slice is ``span+1`` bits wide).  The mod-half
    wraparound makes this differ from the raw expectation — the tests
    cross-check it against Monte-Carlo simulation of the real cipher.
    """
    half = params.half
    if key is None:
        pairs = [
            KeyPair(a, b) for a in range(half) for b in range(half)
        ]
    else:
        pairs = list(key.pairs)
    total = Fraction(0)
    for pair in pairs:
        s = pair.sorted()
        span = s.k2 - s.k1
        # The slice is span+1 uniform bits, but KN1 truncates it to
        # key_bits, so only the low min(span+1, key_bits) bits matter —
        # enumerate those exactly (keeps the sweep polynomial for wide
        # vectors instead of 2**span).
        effective_bits = min(span + 1, params.key_bits)
        slice_space = 1 << effective_bits
        acc = Fraction(0)
        for slice_bits in range(slice_space):
            kn1 = (slice_bits ^ s.k1) & (half - 1)
            kn2 = (kn1 + span) % half
            if kn1 > kn2:
                kn1, kn2 = kn2, kn1
            acc += kn2 - kn1 + 1
        total += acc / slice_space
    return total / len(pairs)


def measured_bits_per_cycle(run: CycleModelRun) -> float:
    """End-to-end information rate of one cycle-model run."""
    if run.total_cycles == 0:
        raise ValueError("run has no cycles; drive a non-empty message")
    return run.n_bits / run.total_cycles
