"""Evaluation harness: throughput, area, functional density.

Reproduces the quantitative artefacts of the paper's section V and
Appendix A:

* :mod:`repro.analysis.throughput` — the three throughput accountings
  (the paper's max-window formula, the expected-window analytic value,
  and cycle-model measurement);
* :mod:`repro.analysis.density` — functional density (Mbps/CLB) and the
  Figure 9 bar chart;
* :mod:`repro.analysis.literature` — the reported numbers of Table 1 and
  the other implementations the paper cites;
* :mod:`repro.analysis.table1` — the end-to-end Table 1 builder that
  runs our own CAD flow and cycle models next to the literature rows;
* :mod:`repro.analysis.workloads` — deterministic message generators.
"""

from repro.analysis.density import ComparisonRow, functional_density, render_chart
from repro.analysis.literature import LITERATURE_TABLE1, LiteratureEntry
from repro.analysis.table1 import Table1, build_table1
from repro.analysis.throughput import (
    Accounting,
    expected_scrambled_window,
    measured_bits_per_cycle,
    throughput_mbps,
)

__all__ = [
    "ComparisonRow",
    "functional_density",
    "render_chart",
    "LITERATURE_TABLE1",
    "LiteratureEntry",
    "Table1",
    "build_table1",
    "Accounting",
    "expected_scrambled_window",
    "measured_bits_per_cycle",
    "throughput_mbps",
]
