"""End-to-end Table 1 reproduction.

Runs the three micro-architectures through the same pipeline the paper
used for its own design — implement on the device, take f_max from the
timing report, convert to throughput, divide by CLB area — and prints
the measured rows next to the literature rows.  Flow runs are cached on
the builder because placement is by far the slowest stage and Table 1,
Figure 9 and the report benches all want the same three implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.density import ComparisonRow, render_chart, render_table
from repro.analysis.literature import LITERATURE_TABLE1
from repro.analysis.throughput import (
    Accounting,
    expected_scrambled_window,
    measured_bits_per_cycle,
    paper_table1_throughput,
    throughput_mbps,
)
from repro.analysis.workloads import message_bits
from repro.core.key import Key
from repro.core.params import PAPER_PARAMS
from repro.fpga.flow import FlowResult, run_flow
from repro.rtl.cycle_model import MhheaCycleModel
from repro.rtl.serial_model import HheaSerialCycleModel
from repro.rtl.serial_top import build_serial_top
from repro.rtl.top import build_mhhea_top
from repro.rtl.yaea_like import YaeaLikeCycleModel
from repro.rtl.yaea_top import build_yaea_top

__all__ = ["Table1", "build_table1"]

_WORKLOAD_BITS = 4096
_WORKLOAD_SEED = 0xC0FFEE
_KEY_SEED = 2005


@dataclass
class Table1:
    """The reproduced comparison: measured and literature rows."""

    measured: list[ComparisonRow]
    literature: list[ComparisonRow]
    accounting: Accounting
    flows: dict[str, FlowResult] = field(default_factory=dict)

    @property
    def rows(self) -> list[ComparisonRow]:
        """All rows, literature first (as the paper prints them)."""
        return self.literature + self.measured

    def render(self) -> str:
        """Table 1 as text."""
        return render_table(
            self.rows,
            title=f"Table 1 — FPGA implementation comparison "
                  f"(accounting: {self.accounting.value})",
        )

    def chart(self) -> str:
        """Figure 9 as an ASCII bar chart."""
        return render_chart(self.rows)


def build_table1(
    accounting: Accounting = Accounting.PAPER_MAX_WINDOW,
    effort: float = 0.6,
    seed: int = 7,
) -> Table1:
    """Implement all three designs and assemble the comparison table."""
    key = Key.generate(seed=_KEY_SEED, n_pairs=16)
    bits = message_bits(_WORKLOAD_BITS, seed=_WORKLOAD_SEED)
    params = PAPER_PARAMS

    flows: dict[str, FlowResult] = {
        "MHHEA": run_flow(build_mhhea_top().circuit, seed=seed, effort=effort),
        "HHEA": run_flow(build_serial_top().circuit, seed=seed, effort=effort),
        "YAEA-like": run_flow(build_yaea_top().circuit, seed=seed, effort=effort),
    }

    mhhea_run = MhheaCycleModel(key, params).run(bits)
    serial_run = HheaSerialCycleModel(key, params).run(bits)
    yaea_run = YaeaLikeCycleModel(params=params).run(bits)

    def rate(name: str) -> float:
        fmax = flows[name].timing.max_frequency_mhz
        if accounting is Accounting.PAPER_MAX_WINDOW:
            if name == "MHHEA":
                return paper_table1_throughput(fmax, params)
            if name == "HHEA":
                # serial: max window bits over (1 setup + max window) cycles
                return throughput_mbps(
                    fmax, params.max_window / (params.max_window + 1)
                )
            return throughput_mbps(fmax, float(params.width))
        if accounting is Accounting.EXPECTED_WINDOW:
            if name == "MHHEA":
                return throughput_mbps(
                    fmax, float(expected_scrambled_window(params)) / 2.0
                )
            if name == "HHEA":
                from repro.analysis.throughput import expected_raw_window

                expected = float(expected_raw_window(params))
                return throughput_mbps(fmax, expected / (expected + 1.0))
            return throughput_mbps(fmax, float(params.width))
        runs = {"MHHEA": mhhea_run, "HHEA": serial_run, "YAEA-like": yaea_run}
        return throughput_mbps(fmax, measured_bits_per_cycle(runs[name]))

    measured = []
    for name in ("YAEA-like", "HHEA", "MHHEA"):
        flow = flows[name]
        measured.append(
            ComparisonRow(
                name=name,
                throughput_mbps=round(rate(name), 3),
                area_clb=flow.summary.n_clbs,
                source="measured",
                note=f"fmax {flow.timing.max_frequency_mhz:.2f} MHz, "
                     f"{flow.summary.n_slices} slices",
            )
        )
    literature = [entry.as_row() for entry in LITERATURE_TABLE1]
    return Table1(
        measured=measured,
        literature=literature,
        accounting=accounting,
        flows=flows,
    )
