"""Reported numbers from the paper and its citations.

These are the *literature* rows that the measured rows are printed next
to: the three implementations of Table 1, exactly as published, plus
context figures the paper cites for other FPGA cipher implementations.
Keeping them as data (rather than scattering magic numbers through
benches) makes every paper-vs-measured comparison auditable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.density import ComparisonRow

__all__ = ["LiteratureEntry", "LITERATURE_TABLE1", "PAPER_REPORTS", "CITED_IMPLEMENTATIONS"]


@dataclass(frozen=True)
class LiteratureEntry:
    """One published implementation data point."""

    name: str
    device: str
    throughput_mbps: float
    area_clb: int
    reference: str

    @property
    def density(self) -> float:
        """Functional density as defined in the paper."""
        return self.throughput_mbps / self.area_clb

    def as_row(self) -> ComparisonRow:
        """Convert to a comparison-table row."""
        return ComparisonRow(
            name=self.name,
            throughput_mbps=self.throughput_mbps,
            area_clb=self.area_clb,
            source="literature",
            note=f"{self.device} [{self.reference}]",
        )


#: Table 1 of the paper, verbatim.
LITERATURE_TABLE1: list[LiteratureEntry] = [
    LiteratureEntry(
        name="YAEA",
        device="XC4005XL",
        throughput_mbps=129.1,
        area_clb=149,
        reference="SAEB02",
    ),
    LiteratureEntry(
        name="HHEA",
        device="(serial uarch)",
        throughput_mbps=15.8,
        area_clb=144,
        reference="MARW04",
    ),
    LiteratureEntry(
        name="MHHEA",
        device="xc2s100",
        throughput_mbps=95.532,
        area_clb=168,
        reference="this paper",
    ),
]

#: The paper's own implementation reports (Appendix A), used by the
#: report-reproduction benches as the comparison target.
PAPER_REPORTS = {
    "n_slices": 337,
    "slice_total": 1200,
    "n_ffs": 205,
    "n_luts": 393,
    "n_iobs": 57,
    "iob_total": 92,
    "n_tbufs": 206,
    "tbuf_total": 1280,
    "equivalent_gates": 5051,
    "jtag_gates": 2784,
    "min_period_ns": 41.871,
    "max_frequency_mhz": 23.883,
    "max_net_delay_ns": 6.770,
}

#: Other cited FPGA cipher implementations (context only; different
#: devices and area metrics, so they never enter the density chart).
CITED_IMPLEMENTATIONS = [
    ("DES encryptor/decryptor core", 12_000.0, "TRIM00"),
    ("Serpent (dynamic FPGA)", 0.0, "PATT00"),
    ("AES finalists comparative study", 0.0, "DAND00"),
]
