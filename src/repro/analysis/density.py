"""Functional density — the paper's figure of merit.

``F = throughput (Mbps) / area (CLB)`` (section V).  This module holds
the comparison-row structure shared by Table 1 and Figure 9 plus the
ASCII rendering of the Figure 9 bar chart.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ComparisonRow", "functional_density", "render_chart", "render_table"]


def functional_density(throughput_mbps: float, area_clb: int) -> float:
    """The figure of merit ``Mbps / CLB``."""
    if area_clb <= 0:
        raise ValueError(f"area must be positive, got {area_clb}")
    if throughput_mbps < 0:
        raise ValueError(f"throughput must be non-negative, got {throughput_mbps}")
    return throughput_mbps / area_clb


@dataclass(frozen=True)
class ComparisonRow:
    """One algorithm/implementation row of Table 1 / Figure 9."""

    name: str
    throughput_mbps: float
    area_clb: int
    source: str = "measured"
    """``measured`` (our flow) or ``literature`` (the paper's Table 1)."""

    note: str = ""

    @property
    def density(self) -> float:
        """Functional density in Mbps/CLB."""
        return functional_density(self.throughput_mbps, self.area_clb)


def render_table(rows: list[ComparisonRow], title: str = "Table 1") -> str:
    """Text rendering of the comparison table."""
    lines = [
        title,
        f"{'Algorithm':24s} {'Source':11s} {'Mbps':>9s} {'CLB':>6s} {'Mbps/CLB':>9s}  Note",
        "-" * 78,
    ]
    for row in rows:
        lines.append(
            f"{row.name:24s} {row.source:11s} {row.throughput_mbps:9.3f} "
            f"{row.area_clb:6d} {row.density:9.3f}  {row.note}"
        )
    return "\n".join(lines)


def render_chart(rows: list[ComparisonRow], width: int = 50,
                 title: str = "Functional Density (F = Mbps / CLB)") -> str:
    """ASCII bar chart in the shape of the paper's Figure 9."""
    if not rows:
        raise ValueError("chart needs at least one row")
    peak = max(row.density for row in rows)
    if peak <= 0:
        peak = 1.0
    lines = [title]
    label_pad = max(len(f"{r.name} [{r.source}]") for r in rows) + 2
    for row in rows:
        bar = "#" * max(1, round(width * row.density / peak))
        label = f"{row.name} [{row.source}]"
        lines.append(f"{label:{label_pad}s} {bar} {row.density:.3f}")
    return "\n".join(lines)
