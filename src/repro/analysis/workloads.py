"""Deterministic workload generators.

Every benchmark and security experiment draws its plaintext from here so
runs are reproducible and the traffic mix is explicit.  Four flavours:

* :func:`message_bits` — pseudo-random bits (the generic traffic of the
  throughput benches);
* :func:`ascii_text` — natural-language-ish bytes (biased bit
  statistics, for the randomness tests);
* :func:`constant_bits` — the all-zero/all-one messages of the
  chosen-plaintext attack;
* :func:`packet_payloads` — a deterministic mix of packet sizes shaped
  like link traffic (IMIX-style) for the packet-layer benches.
"""

from __future__ import annotations

from repro.util.bits import bytes_to_bits
from repro.util.rng import make_rng, random_bytes

__all__ = ["message_bits", "ascii_text", "constant_bits", "packet_payloads"]

_WORDS = (
    "packet", "cipher", "vector", "hiding", "random", "stream", "secure",
    "channel", "message", "key", "fpga", "slice", "rotate", "buffer",
)


def message_bits(n_bits: int, seed: int = 1) -> list[int]:
    """``n_bits`` reproducible pseudo-random message bits."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    rng = make_rng(seed)
    return [rng.getrandbits(1) for _ in range(n_bits)]


def ascii_text(n_bytes: int, seed: int = 1) -> bytes:
    """Readable filler text of exactly ``n_bytes`` bytes."""
    if n_bytes < 0:
        raise ValueError(f"n_bytes must be non-negative, got {n_bytes}")
    rng = make_rng(seed)
    pieces: list[str] = []
    length = 0
    while length < n_bytes:
        word = _WORDS[rng.randrange(len(_WORDS))]
        pieces.append(word)
        length += len(word) + 1
    text = " ".join(pieces)[:n_bytes]
    return text.encode("ascii")


def constant_bits(n_bits: int, value: int = 0) -> list[int]:
    """The constant message of the chosen-plaintext attack."""
    if value not in (0, 1):
        raise ValueError(f"value must be 0 or 1, got {value}")
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    return [value] * n_bits


def packet_payloads(n_packets: int, seed: int = 1) -> list[bytes]:
    """An IMIX-flavoured mix of payload sizes (40 / 576 / 1500 bytes)."""
    if n_packets < 0:
        raise ValueError(f"n_packets must be non-negative, got {n_packets}")
    rng = make_rng(seed)
    sizes = [40] * 7 + [576] * 4 + [1500]
    payloads = []
    for i in range(n_packets):
        size = sizes[rng.randrange(len(sizes))]
        payloads.append(random_bytes(seed + 1000 + i, size))
    return payloads


def bits_of_text(n_bytes: int, seed: int = 1) -> list[int]:
    """Bit stream of :func:`ascii_text` (convenience for bit-level APIs)."""
    return bytes_to_bits(ascii_text(n_bytes, seed))
