"""Deterministic workload generators.

Every benchmark and security experiment draws its plaintext from here so
runs are reproducible and the traffic mix is explicit.  Four flavours:

* :func:`message_bits` — pseudo-random bits (the generic traffic of the
  throughput benches);
* :func:`ascii_text` — natural-language-ish bytes (biased bit
  statistics, for the randomness tests);
* :func:`constant_bits` — the all-zero/all-one messages of the
  chosen-plaintext attack;
* :func:`packet_payloads` — a deterministic mix of packet sizes shaped
  like link traffic (IMIX-style) for the packet-layer benches;
* :func:`small_payloads` — short chat/telemetry-sized payloads for
  high-packet-count runs (the scenario soaks);
* :func:`burst_cycles` — bursty traffic: dense payload bursts separated
  by idle cycles, the on/off shape of interactive links (used by
  :class:`repro.scenario.TrafficMix`).
"""

from __future__ import annotations

from repro.util.bits import bytes_to_bits
from repro.util.rng import make_rng, random_bytes

__all__ = ["message_bits", "ascii_text", "constant_bits", "packet_payloads",
           "small_payloads", "burst_cycles"]

_WORDS = (
    "packet", "cipher", "vector", "hiding", "random", "stream", "secure",
    "channel", "message", "key", "fpga", "slice", "rotate", "buffer",
)


def message_bits(n_bits: int, seed: int = 1) -> list[int]:
    """``n_bits`` reproducible pseudo-random message bits."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    rng = make_rng(seed)
    return [rng.getrandbits(1) for _ in range(n_bits)]


def ascii_text(n_bytes: int, seed: int = 1) -> bytes:
    """Readable filler text of exactly ``n_bytes`` bytes."""
    if n_bytes < 0:
        raise ValueError(f"n_bytes must be non-negative, got {n_bytes}")
    rng = make_rng(seed)
    pieces: list[str] = []
    length = 0
    while length < n_bytes:
        word = _WORDS[rng.randrange(len(_WORDS))]
        pieces.append(word)
        length += len(word) + 1
    text = " ".join(pieces)[:n_bytes]
    return text.encode("ascii")


def constant_bits(n_bits: int, value: int = 0) -> list[int]:
    """The constant message of the chosen-plaintext attack."""
    if value not in (0, 1):
        raise ValueError(f"value must be 0 or 1, got {value}")
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    return [value] * n_bits


def packet_payloads(n_packets: int, seed: int = 1) -> list[bytes]:
    """An IMIX-flavoured mix of payload sizes (40 / 576 / 1500 bytes)."""
    if n_packets < 0:
        raise ValueError(f"n_packets must be non-negative, got {n_packets}")
    rng = make_rng(seed)
    sizes = [40] * 7 + [576] * 4 + [1500]
    payloads = []
    for i in range(n_packets):
        size = sizes[rng.randrange(len(sizes))]
        payloads.append(random_bytes(seed + 1000 + i, size))
    return payloads


def small_payloads(n_packets: int, seed: int = 1, lo: int = 8,
                   hi: int = 64) -> list[bytes]:
    """``n_packets`` short payloads of ``lo``..``hi`` bytes (inclusive).

    The chat/telemetry end of the traffic spectrum: many tiny packets,
    per-packet overhead dominant — the shape the scenario soak runs use
    to cross many rekey epochs cheaply.
    """
    if n_packets < 0:
        raise ValueError(f"n_packets must be non-negative, got {n_packets}")
    if not 0 < lo <= hi:
        raise ValueError(f"need 0 < lo <= hi, got lo={lo} hi={hi}")
    rng = make_rng(seed)
    return [random_bytes(seed + 2000 + i, lo + rng.randrange(hi - lo + 1))
            for i in range(n_packets)]


def burst_cycles(n_bursts: int, burst_len: int, seed: int = 1) -> list[list[bytes]]:
    """Bursty traffic: ``n_bursts`` dense bursts of IMIX payloads.

    Each inner list is one burst whose payloads are meant to be sent
    back-to-back (one transport round); the gaps *between* bursts are
    the idle cycles.  Deterministic in ``seed``, like every generator
    here.
    """
    if n_bursts < 0:
        raise ValueError(f"n_bursts must be non-negative, got {n_bursts}")
    if burst_len < 1:
        raise ValueError(f"burst_len must be >= 1, got {burst_len}")
    payloads = packet_payloads(n_bursts * burst_len, seed)
    return [payloads[i * burst_len:(i + 1) * burst_len]
            for i in range(n_bursts)]


def bits_of_text(n_bytes: int, seed: int = 1) -> list[int]:
    """Bit stream of :func:`ascii_text` (convenience for bit-level APIs)."""
    return bytes_to_bits(ascii_text(n_bytes, seed))
