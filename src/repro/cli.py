"""Command-line interface (``repro-mhhea``).

Subcommands map one-to-one onto the library's public surface:

* ``keygen`` — generate a key schedule and print it in hex;
* ``engines`` — list the registered cipher engines;
* ``encrypt`` / ``decrypt`` — packet-format file encryption;
* ``embed`` / ``extract`` — steganographic cover embedding;
* ``wave`` — print the simulation waveforms of Figs 5–8;
* ``report`` — run the FPGA flow and print the Appendix-A reports;
* ``table1`` — print the Table 1 / Figure 9 reproduction;
* ``serve`` — run a secure-link echo server (``repro.net``);
* ``send`` — stream a file to a ``serve`` peer and verify the echoes;
* ``stats`` — fetch ``/metrics`` from a ``--metrics-port`` endpoint;
* ``scenario`` — run the hostile-network scenario battery
  (:mod:`repro.scenario`): seeded fault schedules against the sans-IO
  link with exact drop reconciliation; exits 1 if any invariant fails.

``serve`` and ``send`` accept ``--metrics-port N`` (TCP transport only;
``0`` binds a free port): the command enables the :mod:`repro.obs`
registry, serves ``GET /metrics`` (Prometheus text), ``/metrics.json``
and ``/healthz`` on that port for its lifetime, and prints the registry
summary on exit.  ``repro-mhhea stats --port N`` fetches the text from
a running endpoint (``--json`` for the snapshot document).

Every cipher-facing subcommand funnels through :class:`repro.api.Codec`
— the CLI is a thin shim over the facade, and ``--engine`` accepts any
name in the engine registry (``repro-mhhea engines`` lists them).
Invalid arguments (bad key hex, unknown engine, missing files) exit
with status 2 and a one-line message, never a traceback.

``serve``/``send`` speak the framed wire protocol of DESIGN.md sections
4–6: a hello handshake (algorithm, width, rekey interval, key
fingerprint), then ciphertext packets under per-session derived keys
with automatic rekeying.  Both ends must be started with the same key,
the same ``--rekey-interval`` and the same ``--transport`` (``tcp``,
the reliable asyncio default, or ``udp``, best-effort datagrams whose
replay window absorbs loss and reordering; UDP runs cipher work inline,
so it rejects ``--workers``).  ``encrypt``/``decrypt``/``serve``/
``send`` default to the bit-parallel fast engine (``--engine reference``
selects the per-bit golden model; both emit identical packets, see
DESIGN.md section 8) and accept ``--workers N`` to shard cipher work
across a process pool (``repro.parallel``; wire bytes are identical for
every worker count, see DESIGN.md section 9).  A typical loopback
check::

    repro-mhhea keygen --seed 1 > key.txt
    repro-mhhea serve --key "$(cat key.txt)" --port 45678 &
    repro-mhhea send --key "$(cat key.txt)" --port 45678 somefile.bin

Every subcommand is a thin shim over library calls so behaviour is
always test-covered through the API, not through the CLI.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import os
import sys

from repro.core.engines import registered_engines
from repro.core.errors import ReproError
from repro.core.key import Key
from repro.core.params import PAPER_PARAMS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro-mhhea",
        description="MHHEA hybrid hiding cipher — DATE 2005 reproduction",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro-mhhea {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    keygen = sub.add_parser("keygen", help="generate a key schedule")
    keygen.add_argument("--seed", type=int, required=True)
    keygen.add_argument("--pairs", type=int, default=16)

    sub.add_parser("engines",
                   help="list the registered cipher engine backends")

    def add_engine_flag(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            # Choices come from the registry, so a plugin registered
            # before main() is selectable; argparse rejects unknown
            # names with the registered list and exit status 2.
            "--engine", choices=registered_engines(), default="fast",
            help="cipher implementation: bit-parallel 'fast' (default), "
                 "the per-bit 'reference', or any registered plugin; all "
                 "produce identical packets",
        )

    def add_workers_flag(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--workers", type=int, default=0,
            help="worker processes for the sharded pipeline (0 = inline); "
                 "wire output is identical for every setting",
        )

    encrypt = sub.add_parser("encrypt", help="encrypt a file into a packet")
    encrypt.add_argument("--key", required=True, help="hex key (keygen output)")
    encrypt.add_argument("--nonce", type=lambda s: int(s, 0), default=0xACE1)
    add_engine_flag(encrypt)
    add_workers_flag(encrypt)
    encrypt.add_argument(
        "--chunk-size", type=int, default=None,
        help="plaintext bytes per chunk packet (default 64 KiB); files "
             "up to one chunk produce a plain single packet — this flag "
             "alone determines the wire bytes, --workers never does",
    )
    encrypt.add_argument("input")
    encrypt.add_argument("output")

    decrypt = sub.add_parser("decrypt", help="decrypt a packet file")
    decrypt.add_argument("--key", required=True)
    add_engine_flag(decrypt)
    add_workers_flag(decrypt)
    decrypt.add_argument("input")
    decrypt.add_argument("output")

    embed = sub.add_parser("embed", help="hide a message file in a cover file")
    embed.add_argument("--key", required=True)
    embed.add_argument("message")
    embed.add_argument("cover")
    embed.add_argument("output")

    extract = sub.add_parser("extract", help="recover a message from a stego file")
    extract.add_argument("--key", required=True)
    extract.add_argument("--bits", type=int, required=True,
                         help="message length in bits (from embed)")
    extract.add_argument("--vectors", type=int, required=True,
                         help="vector count (from embed)")
    extract.add_argument("input")
    extract.add_argument("output")

    wave = sub.add_parser("wave", help="print the Figs 5-8 waveforms")
    wave.add_argument("--seed", type=lambda s: int(s, 0), default=0xACE1)

    report = sub.add_parser("report", help="run the FPGA flow, print reports")
    report.add_argument("--design", choices=("mhhea", "serial", "yaea"),
                        default="mhhea")
    report.add_argument("--effort", type=float, default=0.6)
    report.add_argument("--place-seed", type=int, default=7)

    table1 = sub.add_parser("table1", help="print the Table 1 reproduction")
    table1.add_argument(
        "--accounting",
        choices=("paper-max-window", "expected-window", "measured"),
        default="paper-max-window",
    )
    table1.add_argument("--effort", type=float, default=0.5)

    def add_transport_flag(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--transport", choices=("tcp", "udp"), default="tcp",
            help="link transport: reliable asyncio TCP (default) or "
                 "best-effort UDP datagrams (one packet per datagram; "
                 "incompatible with --workers)",
        )

    def add_kex_flag(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--kex", choices=("ecdh", "psk"), default="psk",
            help="handshake mode: 'psk' (default) uses the pre-shared "
                 "key directly with the classic hello; 'ecdh' runs the "
                 "authenticated X25519 exchange (hello-v2) first, "
                 "deriving fresh per-session root keys; stream "
                 "transports only",
        )

    def add_metrics_flag(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--metrics-port", type=int, default=None,
            help="serve GET /metrics (Prometheus text) and /healthz on "
                 "this HTTP port (0 picks a free one); enables the obs "
                 "registry and prints its summary on exit; TCP transport "
                 "only",
        )

    serve = sub.add_parser("serve", help="run a secure-link echo server")
    serve.add_argument("--key", required=True, help="hex key (keygen output)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="port (0 picks a free one)")
    add_transport_flag(serve)
    serve.add_argument("--rekey-interval", type=int, default=1024,
                       help="packets per direction before the key ratchets")
    add_engine_flag(serve)
    add_workers_flag(serve)
    serve.add_argument("--parallel-threshold", type=int, default=None,
                       help="smallest payload (bytes) offloaded to workers")
    add_kex_flag(serve)
    add_metrics_flag(serve)

    send = sub.add_parser("send", help="stream a file over the secure link")
    send.add_argument("--key", required=True, help="hex key (keygen output)")
    send.add_argument("--host", default="127.0.0.1")
    send.add_argument("--port", type=int, required=True)
    add_transport_flag(send)
    send.add_argument("--chunk", type=int, default=1024,
                      help="payload bytes per packet")
    send.add_argument("--rekey-interval", type=int, default=1024,
                      help="must match the server's setting")
    add_engine_flag(send)
    add_workers_flag(send)
    send.add_argument("--parallel-threshold", type=int, default=None,
                      help="smallest payload (bytes) offloaded to workers")
    add_kex_flag(send)
    send.add_argument("--ticket-file", default=None, metavar="PATH",
                      help="resumption-ticket store (requires --kex ecdh): "
                           "an existing ticket at PATH is offered for "
                           "session resumption, and the freshly issued "
                           "one is saved back for the next run")
    add_metrics_flag(send)
    send.add_argument("input")

    scenario = sub.add_parser(
        "scenario",
        help="run the hostile-network scenario battery with exact "
             "fault/drop reconciliation")
    scenario.add_argument("--list", action="store_true",
                          help="list the committed scenarios and exit")
    scenario.add_argument("--only", metavar="NAME", default=None,
                          help="run a single scenario by name")
    scenario.add_argument("--transports", action="store_true",
                          help="also run the memory-vs-UDP transport "
                               "matrix (opens loopback sockets)")
    scenario.add_argument("--json", action="store_true",
                          help="emit the full result document as JSON")

    relay = sub.add_parser(
        "relay",
        help="run the multi-tenant secure-link relay hub")
    relay.add_argument("--host", default="127.0.0.1")
    relay.add_argument("--port", type=int, default=0,
                       help="port (0 picks a free one)")
    relay_keys = relay.add_mutually_exclusive_group(required=True)
    relay_keys.add_argument(
        "--fleet-root", metavar="HEX",
        help="32-byte fleet root key as hex; tenant keys derive from it "
             "and default relay policy applies")
    relay_keys.add_argument(
        "--tenant-config", metavar="PATH",
        help="JSON tenant/policy config file: fleet root, tenant allow "
             "list with revocation/expiry, and policy knobs "
             "(see docs/relay.md)")
    relay.add_argument("--max-links", type=int, default=None,
                       help="override the global concurrent-link cap")
    add_metrics_flag(relay)

    stats = sub.add_parser(
        "stats", help="fetch /metrics from a running --metrics-port server")
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--port", type=int, required=True,
                       help="the server's --metrics-port")
    stats.add_argument("--json", action="store_true",
                       help="fetch the JSON snapshot instead of "
                            "Prometheus text")
    return parser


def _link_codec(args) -> "Codec":
    """Build the Codec shared by the serve/send subcommands."""
    from repro.api import open_codec

    extra = {}
    if args.parallel_threshold is not None:
        extra["parallel_threshold"] = args.parallel_threshold
    return open_codec(args.key, engine=args.engine, workers=args.workers,
                      rekey_interval=args.rekey_interval, **extra)


def _obs_registry(args):
    """A fresh obs registry when ``--metrics-port`` asked for one."""
    if args.metrics_port is None:
        return None
    from repro.obs import core as obs

    return obs.ObsRegistry()


@contextlib.contextmanager
def _obs_installed(registry):
    """Install ``registry`` process-wide for the duration of a command.

    Restoring the previous registry on exit keeps embedded ``main()``
    callers (tests, notebooks) from leaking an enabled registry into
    later code; a no-op when ``registry`` is ``None``.
    """
    if registry is None:
        yield
        return
    from repro.obs import core as obs

    previous = obs.set_registry(registry)
    try:
        yield
    finally:
        obs.set_registry(previous)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Invalid arguments — bad key material, unknown engines, unreadable
    files, malformed packets — exit with status 2 and a one-line
    ``repro-mhhea: error: ...`` message on stderr (argparse handles its
    own usage errors the same way); tracebacks are reserved for actual
    bugs.
    """
    args = build_parser().parse_args(argv)
    try:
        return _run(args, sys.stdout)
    except (ReproError, OSError, ValueError) as exc:
        print(f"repro-mhhea: error: {exc}", file=sys.stderr)
        return 2


def _run(args, out) -> int:
    """Dispatch one parsed subcommand (separated for the error shim)."""
    if args.command == "keygen":
        key = Key.generate(seed=args.seed, n_pairs=args.pairs)
        out.write(key.to_hex() + "\n")
        return 0

    if args.command == "engines":
        from repro.core.engines import DEFAULT_ENGINE_NAME, get_engine

        for name in registered_engines():
            backend = get_engine(name)
            cls = type(backend)
            tags = []
            if name == DEFAULT_ENGINE_NAME:
                tags.append("library default")
            if name == "fast":
                tags.append("CLI default")
            suffix = f"  ({', '.join(tags)})" if tags else ""
            out.write(f"{name:<12} {cls.__module__}.{cls.__qualname__}"
                      f"{suffix}\n")
        return 0

    if args.command == "encrypt":
        from repro.api import open_codec
        from repro.parallel import DEFAULT_CHUNK_SIZE

        with open(args.input, "rb") as handle:
            payload = handle.read()
        # Always the sharded-blob path, so --workers genuinely never
        # changes the wire bytes: the output is determined by
        # --chunk-size alone (files up to one chunk are a plain single
        # packet, byte-identical to the pre-sharding format).
        chunk_size = (args.chunk_size if args.chunk_size is not None
                      else DEFAULT_CHUNK_SIZE)
        with open_codec(args.key, workers=args.workers,
                        chunk_size=chunk_size, engine=args.engine) as codec:
            packet = codec.seal_blob(payload, args.nonce)
        with open(args.output, "wb") as handle:
            handle.write(packet)
        out.write(f"wrote {len(packet)} bytes ({len(payload)} plaintext)\n")
        return 0

    if args.command == "decrypt":
        from repro.api import open_codec

        with open(args.input, "rb") as handle:
            packet = handle.read()
        # open_blob accepts both a single packet and a sharded
        # multi-packet blob (the --workers encrypt format).
        with open_codec(args.key, workers=args.workers,
                        engine=args.engine) as codec:
            payload = codec.open_blob(packet)
        with open(args.output, "wb") as handle:
            handle.write(payload)
        out.write(f"recovered {len(payload)} bytes\n")
        return 0

    if args.command == "embed":
        from repro.stego.cover import embed_in_cover

        key = Key.from_hex(args.key)
        with open(args.message, "rb") as handle:
            message = handle.read()
        with open(args.cover, "rb") as handle:
            cover = handle.read()
        stego = embed_in_cover(message, cover, key)
        with open(args.output, "wb") as handle:
            handle.write(stego.data)
        out.write(
            f"embedded {stego.n_bits} bits in {stego.n_vectors} vectors; "
            f"extract with --bits {stego.n_bits} --vectors {stego.n_vectors}\n"
        )
        return 0

    if args.command == "extract":
        from repro.stego.cover import StegoObject, extract_from_cover

        key = Key.from_hex(args.key)
        with open(args.input, "rb") as handle:
            data = handle.read()
        stego = StegoObject(data=data, n_bits=args.bits,
                            n_vectors=args.vectors, width=PAPER_PARAMS.width)
        message = extract_from_cover(stego, key)
        with open(args.output, "wb") as handle:
            handle.write(message)
        out.write(f"recovered {len(message)} bytes\n")
        return 0

    if args.command == "wave":
        from repro.hdl.wave import render_wave
        from repro.rtl.cycle_model import MhheaCycleModel
        from repro.util.bits import bytes_to_bits

        key = Key.generate(seed=2005)
        model = MhheaCycleModel(key)
        run = model.run(bytes_to_bits(bytes.fromhex("34124d3c" * 2)),
                        seed=args.seed, record_trace=True)
        out.write(render_wave(run.trace, 0, min(24, len(run.trace) - 1)) + "\n")
        return 0

    if args.command == "report":
        from repro.fpga.flow import run_flow
        from repro.rtl.serial_top import build_serial_top
        from repro.rtl.top import build_mhhea_top
        from repro.rtl.yaea_top import build_yaea_top

        builders = {
            "mhhea": lambda: build_mhhea_top().circuit,
            "serial": lambda: build_serial_top().circuit,
            "yaea": lambda: build_yaea_top().circuit,
        }
        result = run_flow(builders[args.design](), seed=args.place_seed,
                          effort=args.effort)
        out.write(result.render_reports() + "\n")
        return 0

    if args.command == "table1":
        from repro.analysis.table1 import build_table1
        from repro.analysis.throughput import Accounting

        table = build_table1(Accounting(args.accounting), effort=args.effort)
        out.write(table.render() + "\n\n" + table.chart() + "\n")
        return 0

    if args.command == "serve":
        from repro.api import serve

        if args.kex == "ecdh" and args.transport == "udp":
            raise ValueError("--kex ecdh requires --transport tcp "
                             "(the udp transport is datagram-only)")
        kex = "ecdh" if args.kex == "ecdh" else None
        codec = _link_codec(args)

        if args.transport == "udp":
            if args.metrics_port is not None:
                raise ValueError("--metrics-port requires --transport tcp")
            # The datagram transport is thread-driven, not asyncio, and
            # runs cipher work inline (serve() rejects --workers > 0
            # with a one-line error and exit status 2).
            with serve(codec, host=args.host, port=args.port,
                       transport="udp") as server:
                out.write(f"listening on {args.host}:{server.port}/udp\n")
                out.flush()
                try:
                    server.serve_forever()
                except KeyboardInterrupt:
                    pass
                out.write(server.metrics.render() + "\n")
            return 0

        registry = _obs_registry(args)

        async def _serve() -> None:
            async with serve(codec, host=args.host, port=args.port,
                             metrics_port=args.metrics_port,
                             kex=kex) as server:
                out.write(f"listening on {args.host}:{server.port}\n")
                if server.metrics_endpoint is not None:
                    out.write(
                        f"metrics on http://{args.host}:"
                        f"{server.metrics_endpoint.port}/metrics\n"
                    )
                out.flush()
                try:
                    await server.serve_forever()
                except asyncio.CancelledError:
                    pass
                out.write(server.metrics.render() + "\n")
                if registry is not None:
                    out.write(registry.render() + "\n")

        with _obs_installed(registry):
            try:
                asyncio.run(_serve())
            except KeyboardInterrupt:
                pass
        return 0

    if args.command == "send":
        from repro.api import connect

        if args.kex == "ecdh" and args.transport == "udp":
            raise ValueError("--kex ecdh requires --transport tcp "
                             "(the udp transport is datagram-only)")
        if args.ticket_file is not None and args.kex != "ecdh":
            raise ValueError("--ticket-file requires --kex ecdh")
        kex = "ecdh" if args.kex == "ecdh" else None
        ticket = None
        if args.ticket_file is not None and os.path.exists(args.ticket_file):
            from repro.kex import ResumptionTicket

            with open(args.ticket_file, "rb") as handle:
                ticket = ResumptionTicket.from_bytes(handle.read())
        codec = _link_codec(args)
        with open(args.input, "rb") as handle:
            data = handle.read()
        chunk = max(args.chunk, 1)
        payloads = [data[i:i + chunk] for i in range(0, len(data), chunk)] or [b""]

        if args.transport == "udp":
            if args.metrics_port is not None:
                raise ValueError("--metrics-port requires --transport tcp")
            with connect(codec, host=args.host, port=args.port,
                         transport="udp") as client:
                replies = client.send_all(payloads)
                if replies != payloads:
                    out.write("echo mismatch: link corrupted the data\n")
                    return 1
                out.write(
                    f"echoed {len(payloads)} datagrams / {len(data)} bytes "
                    f"byte-exact at {client.metrics.mbps('rx'):.2f} Mbps\n"
                )
                out.write(client.metrics.render("link") + "\n")
                return 0

        registry = _obs_registry(args)

        async def _send() -> int:
            endpoint = None
            if args.metrics_port is not None:
                from repro.obs.http import MetricsEndpoint

                endpoint = MetricsEndpoint(port=args.metrics_port)
                await endpoint.start()
                out.write(
                    f"metrics on http://127.0.0.1:{endpoint.port}/metrics\n"
                )
                out.flush()
            try:
                async with connect(codec, host=args.host, port=args.port,
                                   kex=kex, ticket=ticket) as client:
                    replies = await client.send_all(payloads)
                    if replies != payloads:
                        out.write("echo mismatch: link corrupted the data\n")
                        return 1
                    if kex is not None:
                        out.write(f"kex mode: {client.kex_mode}\n")
                        if (args.ticket_file is not None
                                and client.issued_ticket is not None):
                            with open(args.ticket_file, "wb") as handle:
                                handle.write(client.issued_ticket.to_bytes())
                            out.write("saved resumption ticket to "
                                      f"{args.ticket_file}\n")
                    out.write(
                        f"echoed {len(payloads)} packets / {len(data)} bytes "
                        f"byte-exact at {client.metrics.mbps('rx'):.2f} Mbps\n"
                    )
                    out.write(client.metrics.render("link") + "\n")
                    if registry is not None:
                        out.write(registry.render() + "\n")
                    return 0
            finally:
                if endpoint is not None:
                    await endpoint.close()

        with _obs_installed(registry):
            return asyncio.run(_send())

    if args.command == "scenario":
        import json

        from repro.scenario import (
            run_kex_attacks,
            run_relay_floods,
            run_scenario,
            run_stream_control,
            standard_matrix,
        )

        scenarios = standard_matrix()
        if args.list:
            for entry in scenarios:
                out.write(f"{entry.name}\n")
            return 0
        if args.only is not None:
            scenarios = [entry for entry in scenarios
                         if entry.name == args.only]
            if not scenarios:
                raise ValueError(
                    f"unknown scenario {args.only!r} "
                    f"(repro-mhhea scenario --list)"
                )
        results = [run_scenario(entry) for entry in scenarios]
        document = {"scenarios": [result.to_dict() for result in results]}
        ok = all(result.ok for result in results)
        if args.only is None:
            control = run_stream_control()
            document["stream_control"] = control
            ok = ok and control["ok"]
            attacks = run_kex_attacks()
            document["kex_attacks"] = attacks
            ok = ok and attacks["ok"]
            floods = run_relay_floods()
            document["relay_floods"] = floods
            ok = ok and floods["ok"]
        if args.transports:
            from repro.scenario.tcp import run_tcp_matrix
            from repro.scenario.udp import run_transport_matrix

            matrix = run_transport_matrix()
            document["transport_matrix"] = matrix
            ok = ok and matrix["ok"]
            tcp_matrix = run_tcp_matrix()
            document["tcp_matrix"] = tcp_matrix
            ok = ok and tcp_matrix["ok"]
        if args.json:
            out.write(json.dumps(document, indent=2) + "\n")
        else:
            for result in results:
                totals = result.directions
                delivered = sum(t["delivered"] for t in totals.values())
                sent = sum(t["sent"] for t in totals.values())
                status = "ok" if result.ok else "FAIL"
                out.write(f"{result.name:<16} {status:<4} "
                          f"{delivered}/{sent} delivered\n")
                for problem in result.problems:
                    out.write(f"  problem: {problem}\n")
            for name in ("stream_control", "kex_attacks", "relay_floods",
                         "transport_matrix", "tcp_matrix"):
                section = document.get(name)
                if section is not None:
                    status = "ok" if section["ok"] else "FAIL"
                    out.write(f"{name:<16} {status}\n")
                    for problem in section["problems"]:
                        out.write(f"  problem: {problem}\n")
        return 0 if ok else 1

    if args.command == "relay":
        import dataclasses
        import json

        from repro.kex.keyring import TenantKeyring
        from repro.relay import RelayConfig, RelayServer, load_tenant_config

        if args.tenant_config is not None:
            keyring, config = load_tenant_config(args.tenant_config)
        else:
            try:
                root = bytes.fromhex(args.fleet_root)
            except ValueError:
                raise ValueError("--fleet-root is not valid hex") from None
            keyring = TenantKeyring(root)
            config = RelayConfig()
        if args.max_links is not None:
            config = dataclasses.replace(config, max_links=args.max_links)
        registry = _obs_registry(args)

        async def _relay() -> None:
            async with RelayServer(keyring, host=args.host, port=args.port,
                                   config=config,
                                   metrics_port=args.metrics_port) as server:
                out.write(f"relay listening on {args.host}:{server.port}\n")
                if server.metrics_endpoint is not None:
                    out.write(
                        f"metrics on http://{args.host}:"
                        f"{server.metrics_endpoint.port}/metrics\n"
                    )
                out.flush()
                try:
                    await server.serve_forever()
                except asyncio.CancelledError:
                    pass
                out.write(json.dumps(server.core.stats(), indent=2,
                                     default=str) + "\n")
                if registry is not None:
                    out.write(registry.render() + "\n")

        with _obs_installed(registry):
            try:
                asyncio.run(_relay())
            except KeyboardInterrupt:
                pass
        return 0

    if args.command == "stats":
        from repro.obs.http import http_get

        path = "/metrics.json" if args.json else "/metrics"
        status, body = http_get(args.host, args.port, path=path)
        if status != 200:
            raise ValueError(
                f"GET http://{args.host}:{args.port}{path} "
                f"returned HTTP {status}"
            )
        out.write(body if body.endswith("\n") else body + "\n")
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
