"""Structural top level of the improved MHHEA micro-architecture.

Assembles the six modules of paper Figure 4 — message cache, message
alignment, key cache, comparator(s), encryption module, random number
generator — around the control FSM, producing a pure gate/FF/TBUF
netlist that (a) simulates cycle-identically to
:class:`repro.rtl.cycle_model.MhheaCycleModel` and (b) feeds the FPGA
CAD flow that regenerates the paper's implementation reports.

Port list (the bonded-IOB demand of the design summary):

========== === =====================================================
``go``      in  start strobe; hold high for the whole message
``plaintext`` in one ``2*width``-bit block, presented during LMSG
``key_data``  in one key pair (left low), presented during LKEY
``eof``     in  high while the current block is the last one
``cipher``  out the hiding vector with the embedded window
``ready``   out one-cycle pulse per stable ``cipher``
``done``    out high after the EOF block completes
``key_addr`` out key-cache address (drives the key feed during LKEY)
========== === =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import PAPER_PARAMS, VectorParams
from repro.hdl.circuit import Circuit
from repro.hdl.signal import Bus
from repro.rtl.alignment import AlignmentPorts, build_alignment
from repro.rtl.control import ControlPorts, build_control
from repro.rtl.encrypt_unit import build_encrypt_unit, build_scrambler
from repro.rtl.key_cache import KeyCachePorts, build_key_cache
from repro.rtl.lfsr import LfsrPorts, build_lfsr
from repro.rtl.message_cache import MessageCachePorts, build_message_cache

__all__ = ["MhheaTop", "build_mhhea_top"]


@dataclass
class MhheaTop:
    """The built circuit plus every handle the testbench needs."""

    circuit: Circuit
    params: VectorParams
    n_pairs: int
    seed: int
    # primary ports
    go: Bus
    plaintext: Bus
    key_data: Bus
    eof: Bus
    cipher: Bus
    ready: Bus
    done: Bus
    key_addr: Bus
    # module handles (internal observability for tests/waveforms)
    control: ControlPorts
    message_cache: MessageCachePorts
    key_cache: KeyCachePorts
    alignment: AlignmentPorts
    lfsr: LfsrPorts
    kn_small: Bus
    kn_large: Bus
    bits_done: Bus


def build_mhhea_top(
    params: VectorParams = PAPER_PARAMS,
    n_pairs: int = 16,
    seed: int = 0xACE1,
) -> MhheaTop:
    """Elaborate the full micro-architecture into a gate-level circuit."""
    if n_pairs < 1:
        raise ValueError(f"n_pairs must be positive, got {n_pairs}")
    if seed == 0:
        raise ValueError("LFSR seed must be non-zero")
    width = params.width
    key_bits = params.key_bits
    counter_bits = width.bit_length() + 1  # bits_done: 0 .. ~1.5*width
    addr_bits = max(1, (n_pairs - 1).bit_length())

    c = Circuit("mhhea_top")

    # ---- primary inputs ------------------------------------------------
    go = c.input_bus("go", 1)
    plaintext = c.input_bus("plaintext", 2 * width)
    key_data = c.input_bus("key_data", 2 * key_bits)
    eof = c.input_bus("eof", 1)

    # ---- registers needing early nets (feedback) -----------------------
    addr = c.bus("addr.q", addr_bits)
    key_full = c.bus("key_full.q", 1)
    half_sel = c.bus("half_sel.q", 1)
    bits_done = c.bus("bits_done.q", counter_bits)
    done = c.bus("done.q", 1)

    # ---- control guards -------------------------------------------------
    addr_is_last = c.equals_const(addr, n_pairs - 1, name="addr_last")
    lkey_done = c.or_(key_full[0], addr_is_last, name="lkey_done")

    # window width from the latched scrambled keys (built below, but the
    # latches themselves need the scrambler, so declare their nets now).
    kn_small = c.bus("kn_small.q", key_bits)
    kn_large = c.bus("kn_large.q", key_bits)
    k1_latch = c.bus("k1.q", key_bits)

    span, _ = c.subtractor(kn_large, kn_small, name="win.span")
    window = Bus(
        "win.width",
        list(c.increment(
            Bus("win.ext", list(span) + [c.const(0)] * (counter_bits - key_bits)),
            name="win.inc",
        )),
    )
    bits_sum, _ = c.adder(bits_done, window, name="bits.sum")
    log2_width = (width - 1).bit_length()
    half_done = c.or_(
        *[bits_sum[b] for b in range(log2_width, counter_bits)], name="half_done"
    )  # bits_done + window >= width

    control = build_control(
        c,
        go=go[0],
        lkey_done=lkey_done,
        half_done=half_done,
        last_half=half_sel[0],
        eof=eof[0],
    )

    # ---- message cache ---------------------------------------------------
    message_cache = build_message_cache(
        c, plaintext, load=control.in_lmsg, half_sel=half_sel[0]
    )

    # ---- key cache --------------------------------------------------------
    key_write = c.gate("ANDN2", control.in_lkey, key_full[0], name="key_we")
    key_cache = build_key_cache(c, key_data, addr, key_write, n_pairs)

    # ---- random number generator (leap-forward LFSR) ----------------------
    lfsr = build_lfsr(c, width, seed=seed, enable=control.in_circ)

    # ---- scrambler + comparator (CIRC-phase combinational) ----------------
    scrambler = build_scrambler(
        c, lfsr.next_word, key_cache.left, key_cache.right
    )
    c.register_on(kn_small, c.mux_bus(control.in_circ, kn_small, scrambler.kn_small,
                                      name="kns.d"))
    c.register_on(kn_large, c.mux_bus(control.in_circ, kn_large, scrambler.kn_large,
                                      name="knl.d"))
    c.register_on(k1_latch, c.mux_bus(control.in_circ, k1_latch, scrambler.k1_sorted,
                                      name="k1.d"))

    # ---- message alignment -------------------------------------------------
    rotr_amount = c.increment(
        Bus("ror.ext", list(kn_large) + [c.const(0)]), name="ror.amt"
    )
    alignment = build_alignment(
        c,
        load_data=message_cache.read_data,
        rotl_amount=scrambler.kn_small,
        rotr_amount=rotr_amount,
        sel_load=control.in_lmsgcache,
        sel_rotl=control.in_circ,
        sel_rotr=control.in_encrypt,
    )

    # ---- encryption module --------------------------------------------------
    remaining, _ = c.subtractor(
        c.const_bus(width, counter_bits), bits_done, name="bits.rem"
    )
    cipher_next = build_encrypt_unit(
        c,
        vector=lfsr.state,
        buffer=alignment.buffer,
        kn_small=kn_small,
        kn_large=kn_large,
        k1=k1_latch,
        remaining=remaining,
    )
    cipher = c.register(cipher_next, enable=control.in_encrypt, name="cipher.q")
    ready = c.register(
        Bus("ready.d", [control.in_encrypt]), name="ready.q"
    )

    # ---- counters and flags ---------------------------------------------------
    addr_step = c.or_(
        key_write, control.in_encrypt, name="addr.step"
    )
    addr_wrapped = c.mux_bus(
        addr_is_last, c.increment(addr, name="addr.inc"),
        c.const_bus(0, addr_bits), name="addr.wrap",
    )
    addr_next = c.mux_bus(addr_step, addr, addr_wrapped, name="addr.d")
    c.register_on(addr, addr_next)

    key_full_set = c.and_(key_write, addr_is_last, name="kf.set")
    key_full_clr = c.and_(control.in_init, go[0], name="kf.clr")
    key_full_next = c.gate(
        "ANDN2", c.or_(key_full[0], key_full_set, name="kf.or"), key_full_clr,
        name="kf.d",
    )
    c.register_on(key_full, Bus("kf.db", [key_full_next]))

    toggle = c.and_(control.in_encrypt, half_done, name="hs.tgl")
    half_toggled = c.mux(toggle, half_sel[0], c.not_(half_sel[0], name="hs.n"),
                         name="hs.mux")
    half_next = c.gate("ANDN2", half_toggled, control.in_lmsg, name="hs.d")
    c.register_on(half_sel, Bus("hs.db", [half_next]))

    bits_cleared = c.mux_bus(
        control.in_lmsgcache,
        c.mux_bus(control.in_encrypt, bits_done, bits_sum, name="bits.upd"),
        c.const_bus(0, counter_bits),
        name="bits.d",
    )
    c.register_on(bits_done, bits_cleared)

    done_set = c.and_(toggle, half_sel[0], eof[0], name="done.set")
    done_next = c.gate(
        "ANDN2", c.or_(done[0], done_set, name="done.or"), key_full_clr,
        name="done.d",
    )
    c.register_on(done, Bus("done.db", [done_next]))

    # ---- primary outputs --------------------------------------------------
    c.set_output("cipher", cipher)
    c.set_output("ready", ready)
    done_out = Bus("done", [done[0]])
    c.set_output("done", done_out)
    c.set_output("key_addr", addr)

    return MhheaTop(
        circuit=c,
        params=params,
        n_pairs=n_pairs,
        seed=seed,
        go=go,
        plaintext=plaintext,
        key_data=key_data,
        eof=eof,
        cipher=cipher,
        ready=ready,
        done=done_out,
        key_addr=addr,
        control=control,
        message_cache=message_cache,
        key_cache=key_cache,
        alignment=alignment,
        lfsr=lfsr,
        kn_small=kn_small,
        kn_large=kn_large,
        bits_done=bits_done,
    )
