"""Structural Key Cache (paper section 3.3, circuit diagrams Figs 12–13).

"The Key Cache module buffers the whole 16 three-bit key pairs.  The key
cache is organized as 32 three-bit registers.  Each two registers share
the same address to create key pairs."  Writes are address-decoded with
a write strobe (LKEY state); reads are continuous through two tristate
buses — one for the left key, one for the right — driven by the one-hot
address decode.  For the paper's geometry this is exactly 16 pairs × 2
registers × 3 bits = 96 flip-flops and 96 tristate buffers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdl.circuit import Circuit
from repro.hdl.signal import Bus, Signal

__all__ = ["KeyCachePorts", "build_key_cache"]


@dataclass
class KeyCachePorts:
    """Handles exposed by the key cache."""

    left: Bus
    """Tristate read bus: left key of the addressed pair (``K[i][0]``)."""

    right: Bus
    """Tristate read bus: right key of the addressed pair (``K[i][1]``)."""

    select: Bus
    """The one-hot address decode (exposed for the write-path tests)."""


def build_key_cache(
    circuit: Circuit,
    key_data: Bus,
    addr: Bus,
    write: Signal,
    n_pairs: int,
    name: str = "keycache",
) -> KeyCachePorts:
    """Instantiate the key cache.

    ``key_data`` carries one pair, left key in the low ``key_bits``,
    right key above it ("key pairs are loaded in parallel since they are
    pointed to by the same address", Fig. 6).  ``addr`` addresses both
    the write decode and the read buses; ``n_pairs`` slots are
    instantiated (the paper's cache holds 16).
    """
    if key_data.width % 2 != 0:
        raise ValueError(f"key_data width must be even, got {key_data.width}")
    if n_pairs < 1:
        raise ValueError(f"n_pairs must be positive, got {n_pairs}")
    if n_pairs > (1 << addr.width):
        raise ValueError(
            f"{addr.width}-bit address cannot reach {n_pairs} pairs"
        )
    key_bits = key_data.width // 2
    data_left = key_data.field(key_bits - 1, 0)
    data_right = key_data.field(2 * key_bits - 1, key_bits)

    select = circuit.decoder(addr, name=f"{name}.sel")
    left_bus = circuit.tristate_bus(f"{name}.left", key_bits)
    right_bus = circuit.tristate_bus(f"{name}.right", key_bits)

    for slot in range(n_pairs):
        write_enable = circuit.and_(select[slot], write, name=f"{name}.we{slot}")
        left_reg = circuit.register(
            data_left, enable=write_enable, name=f"{name}.l{slot}"
        )
        right_reg = circuit.register(
            data_right, enable=write_enable, name=f"{name}.r{slot}"
        )
        circuit.tbuf_drive(left_reg, select[slot], left_bus)
        circuit.tbuf_drive(right_reg, select[slot], right_bus)

    return KeyCachePorts(left=left_bus, right=right_bus, select=select)
