"""Behavioural, cycle-accurate model of the improved MHHEA micro-architecture.

One call to :meth:`MhheaCycleModel.step` is one clock edge.  The model
keeps exactly the registers of the structural design (message cache,
alignment buffer, key cache, LFSR/vector register, scrambled-key latches,
counters, cipher/ready/done flops) and sequences them with the six-state
FSM of paper Figure 1, so that:

* the emitted vector stream equals the reference cipher in framed mode
  (``frame_bits = width``) bit-for-bit — asserted by the equivalence
  tests;
* the cycle counts are the paper's: **two cycles per key pair**
  (``CIRC`` + ``ENCRYPT``) regardless of how many bits the window
  replaces, which is the headline architectural claim;
* the per-cycle traces reproduce the simulation figures (Figs 5–8).

The model deliberately performs "hardware arithmetic": every intermediate
is masked to its register width, and the hiding-vector RNG advances one
whole word per key pair exactly like the structural leap-forward LFSR.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.errors import HardwareModelError
from repro.core.key import Key, KeyPair, scramble_pair
from repro.core.params import PAPER_PARAMS, VectorParams
from repro.hdl.wave import WaveTrace
from repro.rtl import states
from repro.util.bits import bits_to_int, mask, rotl, rotr
from repro.util.lfsr import Lfsr

__all__ = ["MhheaCycleModel", "CycleModelRun", "ScriptedVectorSource"]


class ScriptedVectorSource:
    """Vector source that replays a fixed word list (for directed tests)."""

    def __init__(self, words: Sequence[int]):
        if not words:
            raise ValueError("scripted source needs at least one word")
        self._words = list(words)
        self._pos = 0

    def next_word(self) -> int:
        """Next scripted word; raises when the script runs out."""
        if self._pos >= len(self._words):
            raise IndexError("scripted vector source exhausted")
        word = self._words[self._pos]
        self._pos += 1
        return word


@dataclass
class CycleModelRun:
    """Result of driving a cycle model over one whole message."""

    vectors: list[int] = field(default_factory=list)
    ready_cycles: list[int] = field(default_factory=list)
    total_cycles: int = 0
    n_bits: int = 0
    trace: WaveTrace | None = None

    @property
    def cycles_per_vector(self) -> float:
        """Mean clock cycles between Ready pulses (steady-state cost)."""
        if len(self.ready_cycles) < 2:
            return float(self.total_cycles)
        spans = [
            b - a for a, b in zip(self.ready_cycles, self.ready_cycles[1:])
        ]
        return sum(spans) / len(spans)

    @property
    def bits_per_cycle(self) -> float:
        """End-to-end information throughput in message bits per cycle."""
        if self.total_cycles == 0:
            return 0.0
        return self.n_bits / self.total_cycles


class MhheaCycleModel:
    """Cycle-accurate MHHEA processor model.

    Parameters
    ----------
    key:
        The key schedule; the key cache is loaded from it during
        ``LKEY`` (one pair per cycle, ``L`` cycles on the first block).
    params:
        Vector geometry; the paper's build is the 16-bit default.
    """

    #: Names and widths of the traced signals, in display order.
    def __init__(self, key: Key, params: VectorParams = PAPER_PARAMS):
        self.key = key
        self.params = params
        self.width = params.width
        self.block_bits = 2 * params.width
        self._reset_registers()

    def _reset_registers(self) -> None:
        p = self.params
        self.state = states.INIT
        self.msg_cache = 0                      # 2 x width plaintext register
        self.buffer = 0                         # alignment buffer (width bits)
        self.half_sel = 0                       # 0 = low half next, 1 = high
        self.bits_done = 0                      # bits consumed in this half
        self.half_len = 0                       # message bits in this half
        self.key_addr = 0                       # key cache address counter
        self.key_full = False                   # cache loaded flag
        self.key_cache = [(0, 0)] * len(self.key)
        self.v_reg = 0                          # latched hiding vector
        self.kn_small = 0                       # latched scrambled keys
        self.kn_large = 0
        self.k1_latch = 0                       # sorted smaller key half
        self.cipher = 0
        self.ready = 0
        self.done = 0
        self.consumed_total = 0
        self.cycle = 0
        # current-cycle combinational values (for tracing)
        self._v_comb = 0
        self._kn1_comb = 0
        self._kn2_comb = 0

    # ------------------------------------------------------------------

    def _trace_columns(self) -> list[tuple[str, int]]:
        p = self.params
        kb = p.key_bits
        counter_bits = p.width.bit_length() + 1
        return [
            ("state", 0),
            ("go", 1),
            ("plaintext", self.block_bits),
            ("msg_cache", self.block_bits),
            ("buffer", p.width),
            ("key_addr", 5),
            ("key_left", kb),
            ("key_right", kb),
            ("v", p.width),
            ("kn_small", kb),
            ("kn_large", kb),
            ("cipher", p.width),
            ("ready", 1),
            ("bits_done", counter_bits),
            ("done", 1),
        ]

    def run(
        self,
        bits: Sequence[int],
        seed: int = 0xACE1,
        source=None,
        record_trace: bool = False,
        max_cycles: int | None = None,
    ) -> CycleModelRun:
        """Drive a whole message through the processor.

        ``source`` overrides the internal LFSR (must provide
        ``next_word()``); otherwise a fresh ``Lfsr(width, seed)`` is used,
        matching :func:`repro.core.mhhea.encrypt_bits` with the same seed.
        """
        self._reset_registers()
        vector_source = source if source is not None else Lfsr(self.width, seed=seed)
        run = CycleModelRun(n_bits=len(bits))
        if record_trace:
            run.trace = WaveTrace(self._trace_columns())
        if not bits:
            return run

        blocks = self._pack_blocks(bits)
        block_index = 0
        n_bits = len(bits)
        if max_cycles is None:
            max_cycles = 64 + 8 * len(blocks) + 8 * n_bits + 4 * len(self.key)

        go = 1
        plaintext = blocks[0]
        while not (self.done and self.state == states.INIT):
            if self.cycle > max_cycles:
                raise HardwareModelError(
                    f"FSM failed to finish within {max_cycles} cycles "
                    f"(stuck in {self.state})"
                )
            eof = block_index >= len(blocks) - 1
            emitted = self._step(go, plaintext, eof, vector_source, run)
            if emitted and self.state == states.LMSG:
                # _step moved to LMSG for the next block
                block_index += 1
                plaintext = blocks[block_index]
        # one flush cycle so the final Ready pulse is observed/recorded
        self._step(0, plaintext, True, vector_source, run)
        run.total_cycles = self.cycle
        return run

    # ------------------------------------------------------------------

    def _pack_blocks(self, bits: Sequence[int]) -> list[int]:
        blocks = []
        for start in range(0, len(bits), self.block_bits):
            chunk = list(bits[start : start + self.block_bits])
            chunk += [0] * (self.block_bits - len(chunk))
            blocks.append(bits_to_int(chunk))
        return blocks

    def _record(self, run: CycleModelRun, go: int, plaintext: int) -> None:
        if run.trace is None:
            return
        if self.state == states.LKEY and not self.key_full:
            # Fig. 6 view: the pair being presented on the key input bus
            # is what the logic analyser shows during the load cycle.
            pair = self.key.pairs[self.key_addr]
            left, right = pair.k1, pair.k2
        else:
            left, right = self.key_cache[self.key_addr % len(self.key_cache)]
        run.trace.record(
            state=self.state,
            go=go,
            plaintext=plaintext,
            msg_cache=self.msg_cache,
            buffer=self.buffer,
            key_addr=self.key_addr,
            key_left=left,
            key_right=right,
            v=self._v_comb if self.state == states.CIRC else self.v_reg,
            kn_small=self._kn1_comb if self.state == states.CIRC else self.kn_small,
            kn_large=self._kn2_comb if self.state == states.CIRC else self.kn_large,
            cipher=self.cipher,
            ready=self.ready,
            bits_done=self.bits_done,
            done=self.done,
        )

    def _step(self, go: int, plaintext: int, eof: bool, source, run: CycleModelRun) -> bool:
        """Advance one clock; returns True when a state transition consumed
        the current block (caller should present the next one)."""
        p = self.params
        width = self.width
        advanced_block = False
        ready_next = 0

        if self.state == states.CIRC:
            # combinational work of the CIRC cycle: sample the hiding
            # vector and scramble the key *before* tracing, so the trace
            # shows these values during the cycle they are computed in
            # (paper Fig. 8 annotates them on the Circ state).
            left, right = self.key_cache[self.key_addr]
            vector = source.next_word() & mask(width)
            self._v_comb = vector
            kn1, kn2 = scramble_pair(KeyPair(left, right).sorted(), vector, p)
            self._kn1_comb, self._kn2_comb = kn1, kn2

        self._record(run, go, plaintext)
        if self.ready:
            run.ready_cycles.append(self.cycle)

        if self.state == states.INIT:
            if go:
                self.done = 0
                self.state = states.LMSG

        elif self.state == states.LMSG:
            self.msg_cache = plaintext & mask(self.block_bits)
            self.half_sel = 0
            self.state = states.LKEY

        elif self.state == states.LKEY:
            if not self.key_full:
                pair = self.key.pairs[self.key_addr]
                self.key_cache[self.key_addr] = (pair.k1, pair.k2)
                if self.key_addr == len(self.key) - 1:
                    self.key_addr = 0
                    self.key_full = True
                    self.state = states.LMSGCACHE
                else:
                    self.key_addr += 1
            else:
                self.state = states.LMSGCACHE

        elif self.state == states.LMSGCACHE:
            if self.half_sel == 0:
                self.buffer = self.msg_cache & mask(width)
            else:
                self.buffer = (self.msg_cache >> width) & mask(width)
            self.bits_done = 0
            self.half_len = min(width, run.n_bits - self.consumed_total)
            self.state = states.CIRC

        elif self.state == states.CIRC:
            left, right = self.key_cache[self.key_addr]
            kn1, kn2 = self._kn1_comb, self._kn2_comb
            self.buffer = rotl(self.buffer, kn1, width)
            self.v_reg = self._v_comb
            self.kn_small = kn1
            self.kn_large = kn2
            self.k1_latch = min(left, right)
            self.state = states.ENCRYPT

        elif self.state == states.ENCRYPT:
            window = self.kn_large - self.kn_small + 1
            budget = min(window, self.half_len - self.bits_done)
            out = self.v_reg
            for offset in range(budget):
                j = self.kn_small + offset
                q = offset % p.key_bits
                message_bit = (self.buffer >> j) & 1
                scrambled = message_bit ^ ((self.k1_latch >> q) & 1)
                out = (out & ~(1 << j)) | (scrambled << j)
            self.cipher = out
            run.vectors.append(out)
            ready_next = 1
            self.buffer = rotr(self.buffer, self.kn_large + 1, width)
            self.bits_done += budget
            self.consumed_total += budget
            self.key_addr = 0 if self.key_addr == len(self.key) - 1 else self.key_addr + 1
            if self.bits_done >= self.half_len:
                if self.consumed_total >= run.n_bits:
                    if eof:
                        self.done = 1
                        self.state = states.INIT
                    else:  # pragma: no cover - driver always sets eof right
                        raise HardwareModelError("message exhausted but EOF low")
                elif self.half_sel == 0:
                    self.half_sel = 1
                    self.state = states.LMSGCACHE
                else:
                    self.state = states.LMSG
                    advanced_block = True
            else:
                self.state = states.CIRC

        self.ready = ready_next
        self.cycle += 1
        return advanced_block
