"""YAEA stand-in: a word-wide LFSR keystream micro-architecture.

The paper's Table 1 compares against "YAEA" [SAEB02], whose specification
was never published openly.  Per the substitution policy (DESIGN.md
section 4) we build the closest open equivalent that exercises the same
comparison pipeline: a stream design that XORs one full plaintext word
with a keystream word every cycle.  Its relevant properties match what
Table 1 implies about YAEA — very high throughput (a full 16-bit word per
cycle, versus MHHEA's at-most-8 embedded bits per two cycles) from a
small datapath, hence the highest functional density in the chart.

The *measured* Table 1 row uses this stand-in; the *literature* row keeps
the paper's reported YAEA numbers.  Both are printed side by side.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.params import PAPER_PARAMS, VectorParams
from repro.hdl.wave import WaveTrace
from repro.rtl import states
from repro.rtl.cycle_model import CycleModelRun
from repro.util.bits import bits_to_int, int_to_bits, mask
from repro.util.lfsr import Lfsr

__all__ = ["YaeaLikeCycleModel", "decrypt_words"]


class YaeaLikeCycleModel:
    """One-word-per-cycle XOR stream cipher model.

    Protocol: ``INIT`` (1 cycle) → ``LKEY`` (1 cycle, keystream seed
    latch) → one ``ENCRYPT`` cycle per plaintext word with Ready high
    from the second word on.
    """

    def __init__(self, seed: int = 0xACE1, params: VectorParams = PAPER_PARAMS):
        if seed == 0:
            raise ValueError("keystream seed must be non-zero")
        self.seed = seed
        self.params = params
        self.width = params.width

    def run(self, bits: Sequence[int], record_trace: bool = False) -> CycleModelRun:
        """Encrypt a bit stream, one ``width``-bit word per cycle."""
        run = CycleModelRun(n_bits=len(bits))
        trace = None
        if record_trace:
            trace = WaveTrace(
                [
                    ("state", 0),
                    ("word", self.width),
                    ("keystream", self.width),
                    ("cipher", self.width),
                    ("ready", 1),
                ]
            )
            run.trace = trace
        if not bits:
            return run

        lfsr = Lfsr(self.width, seed=self.seed)
        words = [
            bits_to_int(list(bits[i : i + self.width]) + [0] * max(0, self.width - (len(bits) - i)))
            for i in range(0, len(bits), self.width)
        ]
        cycle = 0
        ready = 0
        cipher = 0

        def emit(state: str, word: int, keystream: int) -> None:
            nonlocal cycle
            if trace is not None:
                trace.record(state=state, word=word, keystream=keystream,
                             cipher=cipher, ready=ready)
            if ready:
                run.ready_cycles.append(cycle)
            cycle += 1

        emit(states.INIT, 0, 0)
        emit(states.LKEY, 0, 0)
        for word in words:
            keystream = lfsr.next_word() & mask(self.width)
            cipher = word ^ keystream
            emit(states.ENCRYPT, word, keystream)
            run.vectors.append(cipher)
            ready = 1
        emit(states.INIT, 0, 0)  # flush: final Ready pulse
        run.total_cycles = cycle
        return run


def decrypt_words(vectors: Sequence[int], seed: int, n_bits: int,
                  params: VectorParams = PAPER_PARAMS) -> list[int]:
    """Invert :class:`YaeaLikeCycleModel`: XOR with the same keystream."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    lfsr = Lfsr(params.width, seed=seed)
    bits: list[int] = []
    for vector in vectors:
        word = vector ^ lfsr.next_word()
        bits.extend(int_to_bits(word & mask(params.width), params.width))
    return bits[:n_bits]
