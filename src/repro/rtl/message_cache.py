"""Structural Message Cache (paper section 3.1).

Stores one ``2*width``-bit plaintext block as two ``width``-bit register
halves and presents the selected half on a shared tristate read bus —
"32-bit of the user plaintext is saved into two 16-bit registers" because
the alignment module "can operate on 16-bit data only".  The half select
follows the paper's order: the least-significant half is consumed first
(Fig. 7 shows the low 16 bits entering the alignment buffer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdl.circuit import Circuit
from repro.hdl.signal import Bus, Signal

__all__ = ["MessageCachePorts", "build_message_cache"]


@dataclass
class MessageCachePorts:
    """Handles exposed by the message cache."""

    cache_low: Bus
    """Low-half register (plaintext bits ``width-1 .. 0``)."""

    cache_high: Bus
    """High-half register (plaintext bits ``2*width-1 .. width``)."""

    read_data: Bus
    """Tristate read bus carrying the half selected by ``half_sel``."""


def build_message_cache(
    circuit: Circuit,
    plaintext: Bus,
    load: Signal,
    half_sel: Signal,
    name: str = "msgcache",
) -> MessageCachePorts:
    """Instantiate the message cache.

    ``load`` latches the full block (asserted during LMSG); ``half_sel``
    chooses which half drives the read bus (0 = low half, matching the
    LMSGCACHE ordering).  The half mux is built from tristate buffers —
    one TBUF per bit per half — mirroring the long-line buses the
    original Xilinx design used (the design summary counts them).
    """
    if plaintext.width % 2 != 0:
        raise ValueError(f"plaintext width must be even, got {plaintext.width}")
    width = plaintext.width // 2

    low = circuit.register(
        plaintext.field(width - 1, 0), enable=load, name=f"{name}.lo"
    )
    high = circuit.register(
        plaintext.field(2 * width - 1, width), enable=load, name=f"{name}.hi"
    )

    read_data = circuit.tristate_bus(f"{name}.rd", width)
    sel_high = half_sel
    sel_low = circuit.not_(half_sel, name=f"{name}.sel_lo")
    circuit.tbuf_drive(low, sel_low, read_data)
    circuit.tbuf_drive(high, sel_high, read_data)
    return MessageCachePorts(cache_low=low, cache_high=high, read_data=read_data)
