"""Structural Comparator / sorter (paper section 3.4).

"The comparator delivers the scrambled key with the smaller value to the
Message Alignment module."  The same sort-two-small-integers structure is
used twice in the datapath: once on the raw key pair (the algorithm's
first swap) and once on the scrambled pair (the second swap), so it is a
reusable builder here.  Implementation: an unsigned ripple-borrow
comparison steers a pair of word muxes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdl.circuit import Circuit
from repro.hdl.signal import Bus, Signal

__all__ = ["SorterPorts", "build_sorter"]


@dataclass
class SorterPorts:
    """Handles exposed by one comparator/sorter."""

    small: Bus
    """min(a, b) — goes to the left-rotation amount."""

    large: Bus
    """max(a, b) — plus one, it becomes the right-rotation amount."""

    swapped: Signal
    """High when the inputs arrived out of order (b < a)."""


def build_sorter(circuit: Circuit, a: Bus, b: Bus, name: str = "sort") -> SorterPorts:
    """Sort two equal-width unsigned buses into (small, large)."""
    if a.width != b.width:
        raise ValueError(
            f"sorter inputs must match: {a.width} vs {b.width} bits"
        )
    swapped = circuit.less_than(b, a, name=f"{name}.lt")
    small = circuit.mux_bus(swapped, a, b, name=f"{name}.min")
    large = circuit.mux_bus(swapped, b, a, name=f"{name}.max")
    return SorterPorts(small=small, large=large, swapped=swapped)
