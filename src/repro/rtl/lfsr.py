"""Structural leap-forward LFSR (the Random Number Generator module).

The reference model consumes one whole ``width``-bit word per key pair
(:meth:`repro.util.lfsr.Lfsr.next_word`).  A bit-serial hardware LFSR
would need ``width`` clock cycles for that; instead the structural build
uses the standard *leap-forward* construction: the state-update matrix
``M`` of the single-step LFSR is raised to the ``width``-th power over
GF(2), and each next-state bit becomes an XOR tree over the current
state.  One clock edge then advances the register a full word, keeping
the two-cycles-per-pair schedule of the micro-architecture.

:func:`leap_matrix` derives the XOR taps symbolically from the *same*
single-step recurrence the software model uses, so the two can never
disagree; a property test drives both side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdl.circuit import Circuit
from repro.hdl.signal import Bus, Signal  # noqa: F401 (Signal in type hints)
from repro.util.lfsr import PRIMITIVE_TAPS

__all__ = ["leap_matrix", "build_lfsr", "LfsrPorts"]


def leap_matrix(width: int, taps: tuple[int, ...], steps: int) -> list[frozenset[int]]:
    """GF(2) dependency sets of the ``steps``-step LFSR update.

    Entry ``i`` of the result is the set of *current* state bit indices
    whose XOR yields *next* state bit ``i`` after ``steps`` single-bit
    shifts of the Fibonacci LFSR (shift toward LSB, feedback into MSB).
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if steps < 0:
        raise ValueError(f"steps must be non-negative, got {steps}")
    tap_positions = []
    for t in taps:
        if not 1 <= t <= width:
            raise ValueError(f"tap {t} out of range for width {width}")
        tap_positions.append(width - t)
    # state[i] starts as {i}; one step: new[i] = old[i+1] for i < width-1,
    # new[width-1] = XOR of the Fibonacci tap bits (positions width - t,
    # matching repro.util.lfsr.fibonacci_mask).
    state: list[frozenset[int]] = [frozenset([i]) for i in range(width)]
    for _ in range(steps):
        feedback: frozenset[int] = frozenset()
        for t in tap_positions:
            feedback = feedback ^ state[t]
        state = state[1:] + [feedback]
    return state


@dataclass
class LfsrPorts:
    """Handles exposed by the structural LFSR."""

    state: Bus
    """The register holding the *current* word (last sampled V)."""

    next_word: Bus
    """Combinational leap-forward output: the word the register will
    hold after the next enabled clock edge."""


def build_lfsr(
    circuit: Circuit,
    width: int,
    seed: int,
    enable: Signal,
    taps: tuple[int, ...] | None = None,
    name: str = "lfsr",
) -> LfsrPorts:
    """Instantiate the leap-forward LFSR.

    ``state`` initialises to ``seed`` and advances by one full word per
    clock while ``enable`` is high — the micro-architecture raises
    ``enable`` during the CIRC state only, once per key pair.
    """
    if taps is None:
        if width not in PRIMITIVE_TAPS:
            raise ValueError(f"no default primitive taps for width {width}")
        taps = PRIMITIVE_TAPS[width]
    if seed == 0:
        raise ValueError("seed must be non-zero for an LFSR")

    matrix = leap_matrix(width, taps, steps=width)
    # Feedback loop: create the bare Q nets first, build the XOR network
    # that reads them, then bind each Q to its computed D.
    state = circuit.bus(f"{name}.q", width)
    next_bits = []
    for i, deps in enumerate(matrix):
        sources = [state[j] for j in sorted(deps)]
        if not sources:  # impossible for a primitive polynomial, but safe
            next_bits.append(circuit.const(0))
        elif len(sources) == 1:
            next_bits.append(circuit.buf(sources[0], name=f"{name}.n{i}"))
        else:
            next_bits.append(circuit.xor_(*sources, name=f"{name}.n{i}"))
    next_word = Bus(f"{name}.next", next_bits)
    circuit.register_on(state, next_word, enable=enable, init=seed)
    return LfsrPorts(state=state, next_word=next_word)
