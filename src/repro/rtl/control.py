"""Structural control unit: the six-state FSM of paper Figure 1.

The state register is 3 bits wide with the encodings of
:mod:`repro.rtl.states`.  Next-state selection is a word-level mux tree
over the current state; the guard inputs arrive from the datapath:

``go``         start request (INIT exit)
``lkey_done``  key cache full, or the last pair is being written now
``half_done``  this ENCRYPT consumes the rest of the current half
``last_half``  the high half is the one being consumed
``eof``        no further plaintext block will be presented

The module also exports the one-hot state decodes every other module
uses as load/enable strobes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdl.circuit import Circuit
from repro.hdl.signal import Bus, Signal
from repro.rtl import states

__all__ = ["ControlPorts", "build_control"]


@dataclass
class ControlPorts:
    """Handles exposed by the control unit."""

    state: Bus
    """The 3-bit state register (encodings per ``repro.rtl.states``)."""

    in_init: Signal
    in_lmsg: Signal
    in_lkey: Signal
    in_lmsgcache: Signal
    in_circ: Signal
    in_encrypt: Signal


def build_control(
    circuit: Circuit,
    go: Signal,
    lkey_done: Signal,
    half_done: Signal,
    last_half: Signal,
    eof: Signal,
    name: str = "ctl",
) -> ControlPorts:
    """Instantiate the FSM; returns the state register and decodes."""
    bits = states.STATE_BITS
    state = circuit.bus(f"{name}.state", bits)

    def const_state(state_name: str) -> Bus:
        return circuit.const_bus(states.encode(state_name), bits)

    # Per-state next-state choices (Figure 1).
    from_init = circuit.mux_bus(
        go, const_state(states.INIT), const_state(states.LMSG), name=f"{name}.ninit"
    )
    from_lmsg = const_state(states.LKEY)
    from_lkey = circuit.mux_bus(
        lkey_done, const_state(states.LKEY), const_state(states.LMSGCACHE),
        name=f"{name}.nlkey",
    )
    from_lmsgcache = const_state(states.CIRC)
    from_circ = const_state(states.ENCRYPT)
    # ENCRYPT exit: not half_done -> CIRC; half_done & !last_half ->
    # LMSGCACHE; half_done & last_half & !eof -> LMSG; ... & eof -> INIT.
    done_path = circuit.mux_bus(
        eof, const_state(states.LMSG), const_state(states.INIT),
        name=f"{name}.ndone",
    )
    last_path = circuit.mux_bus(
        last_half, const_state(states.LMSGCACHE), done_path, name=f"{name}.nlast"
    )
    from_encrypt = circuit.mux_bus(
        half_done, const_state(states.CIRC), last_path, name=f"{name}.nenc"
    )

    choices = [const_state(states.INIT)] * (1 << bits)
    choices[states.encode(states.INIT)] = from_init
    choices[states.encode(states.LMSG)] = from_lmsg
    choices[states.encode(states.LKEY)] = from_lkey
    choices[states.encode(states.LMSGCACHE)] = from_lmsgcache
    choices[states.encode(states.CIRC)] = from_circ
    choices[states.encode(states.ENCRYPT)] = from_encrypt
    next_state = circuit.muxn(state, choices, name=f"{name}.next")
    circuit.register_on(state, next_state, init=states.encode(states.INIT))

    decode = circuit.decoder(state, name=f"{name}.dec")
    return ControlPorts(
        state=state,
        in_init=decode[states.encode(states.INIT)],
        in_lmsg=decode[states.encode(states.LMSG)],
        in_lkey=decode[states.encode(states.LKEY)],
        in_lmsgcache=decode[states.encode(states.LMSGCACHE)],
        in_circ=decode[states.encode(states.CIRC)],
        in_encrypt=decode[states.encode(states.ENCRYPT)],
    )
