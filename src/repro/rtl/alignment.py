"""Structural Message Alignment module (paper section 3.2, Fig. 3).

Holds the ``width``-bit working half of the plaintext and rotates it so
that the bits to embed line up with the replacement window:

* **load** (LMSGCACHE): the buffer takes the selected message-cache half;
* **circulate left** (CIRC): rotate by the *smaller* scrambled key, so
  the next message bit sits at window position ``KN1`` (Fig. 3b);
* **circulate right** (ENCRYPT): rotate by the *larger* scrambled key
  plus one, which nets out to shifting the consumed bits away so "the
  least significant bits of the message buffer are always the bits yet
  to be encrypted" (Fig. 3c);
* **hold** otherwise.

Both rotators are combinational mux barrels ("multiplexers are used for
n-bit rotations.  Hence, the circulate operation takes only one clock
cycle").  The four sources drive the register input through a tristate
bus with one-hot state-decoded enables, the TBUF-heavy style of the
original implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdl.circuit import Circuit
from repro.hdl.signal import Bus, Signal

__all__ = ["AlignmentPorts", "build_alignment"]


@dataclass
class AlignmentPorts:
    """Handles exposed by the alignment module."""

    buffer: Bus
    """The working message-half register."""

    rotated_left: Bus
    """Combinational left-rotation of the buffer (CIRC result)."""

    rotated_right: Bus
    """Combinational right-rotation of the buffer (ENCRYPT result)."""


def build_alignment(
    circuit: Circuit,
    load_data: Bus,
    rotl_amount: Bus,
    rotr_amount: Bus,
    sel_load: Signal,
    sel_rotl: Signal,
    sel_rotr: Signal,
    name: str = "align",
) -> AlignmentPorts:
    """Instantiate the alignment buffer with its two barrel rotators.

    ``rotl_amount`` is the smaller scrambled key (``key_bits`` wide);
    ``rotr_amount`` is the larger scrambled key plus one, which needs one
    extra bit (a rotation by up to the full window width).  The three
    select lines are the one-hot decodes of LMSGCACHE / CIRC / ENCRYPT;
    the hold path enables itself when none of them is active.
    """
    width = load_data.width
    buffer = circuit.bus(f"{name}.q", width)

    rotated_left = circuit.barrel_rotate_left(buffer, rotl_amount, name=f"{name}.rol")
    rotated_right = circuit.barrel_rotate_right(buffer, rotr_amount, name=f"{name}.ror")

    source = circuit.tristate_bus(f"{name}.d", width)
    sel_hold = circuit.not_(
        circuit.or_(sel_load, sel_rotl, sel_rotr, name=f"{name}.any"),
        name=f"{name}.hold",
    )
    circuit.tbuf_drive(load_data, sel_load, source)
    circuit.tbuf_drive(Bus(f"{name}.rolw", list(rotated_left)), sel_rotl, source)
    circuit.tbuf_drive(Bus(f"{name}.rorw", list(rotated_right)), sel_rotr, source)
    circuit.tbuf_drive(buffer, sel_hold, source)

    circuit.register_on(buffer, source)
    return AlignmentPorts(
        buffer=buffer, rotated_left=rotated_left, rotated_right=rotated_right
    )
