"""The paper's micro-architecture, modelled at two levels.

* **Behavioural cycle models** — register-accurate, one Python step per
  clock, fast enough for throughput measurement and waveform generation:

  - :class:`repro.rtl.cycle_model.MhheaCycleModel` — the improved
    parallel-replacement design (paper sections III–IV);
  - :class:`repro.rtl.serial_model.HheaSerialCycleModel` — the earlier
    serial design [SAEB04a] whose key-dependent timing the paper
    criticises;
  - :class:`repro.rtl.yaea_like.YaeaLikeCycleModel` — the YAEA stand-in
    stream design used for the Table 1 comparison pipeline.

* **Structural gate-level builds** (:mod:`repro.rtl.structure`) — the
  same designs elaborated into :class:`repro.hdl.circuit.Circuit`
  netlists of LUT-mappable gates, flip-flops and tristate buffers, which
  are what the FPGA CAD flow implements and what the gate-level
  equivalence tests simulate.

All models share the FSM vocabulary of :mod:`repro.rtl.states`, which
mirrors the six states of the paper's Figure 1.
"""

from repro.rtl.cycle_model import CycleModelRun, MhheaCycleModel
from repro.rtl.serial_model import HheaSerialCycleModel
from repro.rtl.states import FSM_STATES, fsm_dot
from repro.rtl.yaea_like import YaeaLikeCycleModel

__all__ = [
    "CycleModelRun",
    "MhheaCycleModel",
    "HheaSerialCycleModel",
    "FSM_STATES",
    "fsm_dot",
    "YaeaLikeCycleModel",
]
