"""FSM vocabulary of the micro-architecture (paper Figure 1).

The machine has six states; names follow the paper exactly:

========== =====================================================
``INIT``     wait for Go, reset all modules
``LMSG``     buffer the 32-bit input plaintext (message cache)
``LKEY``     load the key pairs into the key cache (self-loops
             until the cache is full; single-cycle pass-through
             on later visits)
``LMSGCACHE``  move one 16-bit half into the alignment buffer
``CIRC``     rotate the buffer left by the smaller scrambled key
``ENCRYPT``  replace the window bits of the hiding vector, rotate
             the buffer right by the larger scrambled key plus one
========== =====================================================

``CIRC``/``ENCRYPT`` interleave, two cycles per key pair, until the
half is consumed; the encoding values double as the 3-bit state
register contents of the structural build.
"""

from __future__ import annotations

__all__ = ["INIT", "LMSG", "LKEY", "LMSGCACHE", "CIRC", "ENCRYPT",
           "FSM_STATES", "STATE_BITS", "encode", "decode", "fsm_dot"]

INIT = "INIT"
LMSG = "LMSG"
LKEY = "LKEY"
LMSGCACHE = "LMSGCACHE"
CIRC = "CIRC"
ENCRYPT = "ENCRYPT"

#: State name -> 3-bit encoding used by the structural state register.
FSM_STATES: dict[str, int] = {
    INIT: 0,
    LMSG: 1,
    LKEY: 2,
    LMSGCACHE: 3,
    CIRC: 4,
    ENCRYPT: 5,
}

#: Width of the state register.
STATE_BITS = 3

_DECODE = {code: name for name, code in FSM_STATES.items()}

#: The transition structure of Figure 1, as (source, guard, destination).
TRANSITIONS: list[tuple[str, str, str]] = [
    (INIT, "Go", LMSG),
    (INIT, "Not Go", INIT),
    (LMSG, "", LKEY),
    (LKEY, "Key Cache Not Filled", LKEY),
    (LKEY, "Key Cache Full", LMSGCACHE),
    (LMSGCACHE, "", CIRC),
    (CIRC, "", ENCRYPT),
    (ENCRYPT, "Not All Message is Encrypted", CIRC),
    (ENCRYPT, "Half Done, Cache Not Empty", LMSGCACHE),
    (ENCRYPT, "All Message Cache is Encrypted, Not EOF", LMSG),
    (ENCRYPT, "EOF", INIT),
]


def encode(name: str) -> int:
    """3-bit encoding of a state name."""
    if name not in FSM_STATES:
        raise ValueError(f"unknown state {name!r}")
    return FSM_STATES[name]


def decode(code: int) -> str:
    """State name for a 3-bit encoding."""
    if code not in _DECODE:
        raise ValueError(f"no state has encoding {code}")
    return _DECODE[code]


def fsm_dot() -> str:
    """Graphviz DOT rendering of the FSM — our Figure 1 artefact."""
    lines = [
        "digraph mhhea_fsm {",
        "  rankdir=TB;",
        '  node [shape=circle, fontname="Helvetica"];',
    ]
    for name in FSM_STATES:
        lines.append(f"  {name};")
    for source, guard, destination in TRANSITIONS:
        label = f' [label="{guard}"]' if guard else ""
        lines.append(f"  {source} -> {destination}{label};")
    lines.append("}")
    return "\n".join(lines)
