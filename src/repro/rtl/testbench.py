"""Testbench driver for the structural micro-architecture.

Wraps the gate-level simulator with the same block-feeding protocol the
behavioural cycle model uses internally, so equivalence tests can compare
the two (and the reference cipher) run-for-run:

* present ``go`` and the first plaintext block, clock until LKEY, feed
  the key pair addressed by ``key_addr`` every LKEY cycle;
* on every Ready pulse, collect ``cipher``;
* when the FSM returns to LMSG, present the next block; assert ``eof``
  while the last block is in flight;
* stop when ``done`` rises.

The structural build processes whole ``2*width``-bit blocks, so the
message bit count must be a multiple of ``2*width`` (the cycle model and
the reference handle arbitrary lengths; padding policy belongs to the
packet layer, not the datapath).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.errors import HardwareModelError
from repro.core.key import Key
from repro.hdl.sim import Simulator
from repro.hdl.wave import WaveTrace
from repro.rtl import states
from repro.rtl.cycle_model import CycleModelRun
from repro.rtl.serial_top import SERIAL_STATES, SerialTop, build_serial_top, serial_decode
from repro.rtl.top import MhheaTop, build_mhhea_top
from repro.rtl.yaea_top import YaeaTop, build_yaea_top
from repro.util.bits import bits_to_int

__all__ = ["MhheaHardwareDriver", "SerialHardwareDriver", "YaeaHardwareDriver"]


class MhheaHardwareDriver:
    """Drives one :class:`~repro.rtl.top.MhheaTop` netlist."""

    def __init__(self, top: MhheaTop | None = None, key: Key | None = None,
                 seed: int = 0xACE1):
        if top is None:
            if key is None:
                raise ValueError("pass either a built top or a key")
            top = build_mhhea_top(key.params, n_pairs=len(key), seed=seed)
        self.top = top
        self.sim = Simulator(top.circuit)

    def run(
        self,
        bits: Sequence[int],
        key: Key,
        record_trace: bool = False,
        max_cycles: int | None = None,
    ) -> CycleModelRun:
        """Encrypt a whole message; returns vector stream and cycle counts."""
        top = self.top
        width = top.params.width
        block_bits = 2 * width
        if len(bits) % block_bits != 0:
            raise HardwareModelError(
                f"structural model consumes whole {block_bits}-bit blocks; "
                f"got {len(bits)} bits"
            )
        if len(key) != top.n_pairs:
            raise HardwareModelError(
                f"netlist was built for {top.n_pairs} key pairs, key has {len(key)}"
            )
        sim = self.sim
        sim.reset_state()
        run = CycleModelRun(n_bits=len(bits))
        trace = None
        if record_trace:
            trace = WaveTrace(
                [
                    ("state", 0),
                    ("buffer", width),
                    ("v", width),
                    ("kn_small", top.params.key_bits),
                    ("kn_large", top.params.key_bits),
                    ("cipher", width),
                    ("ready", 1),
                    ("done", 1),
                ]
            )
            run.trace = trace

        blocks = [
            bits_to_int(list(bits[i : i + block_bits]))
            for i in range(0, len(bits), block_bits)
        ]
        if not blocks:
            return run
        if max_cycles is None:
            max_cycles = 64 + (8 * block_bits + 8) * len(blocks) + 4 * top.n_pairs

        block_index = 0
        sim.set_input("go", 1)
        sim.set_input("plaintext", blocks[0])
        sim.set_input("eof", 1 if len(blocks) == 1 else 0)
        sim.set_input("key_data", 0)

        state_bus = top.control.state
        while True:
            state_name = states.decode(sim.peek(state_bus))
            if state_name == states.LKEY:
                pair = key.pairs[sim.peek(top.key_addr)]
                sim.set_input(
                    "key_data", pair.k1 | (pair.k2 << top.params.key_bits)
                )
            if trace is not None:
                trace.record(
                    state=state_name,
                    buffer=sim.peek(top.alignment.buffer),
                    v=sim.peek(top.lfsr.state),
                    kn_small=sim.peek(top.kn_small),
                    kn_large=sim.peek(top.kn_large),
                    cipher=sim.peek(top.cipher),
                    ready=sim.peek(top.ready),
                    done=sim.peek(top.done),
                )
            if sim.peek(top.ready):
                run.ready_cycles.append(sim.cycle)
                run.vectors.append(sim.peek(top.cipher))
            if sim.peek(top.done):
                break
            sim.tick()
            if sim.cycle > max_cycles:
                raise HardwareModelError(
                    f"netlist failed to finish within {max_cycles} cycles "
                    f"(stuck in {state_name})"
                )
            new_state = states.decode(sim.peek(state_bus))
            if new_state == states.LMSG and state_name == states.ENCRYPT:
                block_index += 1
                sim.set_input("plaintext", blocks[block_index])
                sim.set_input("eof", 1 if block_index == len(blocks) - 1 else 0)
        run.total_cycles = sim.cycle
        sim.set_input("go", 0)
        return run


class SerialHardwareDriver:
    """Drives one :class:`~repro.rtl.serial_top.SerialTop` netlist.

    Same protocol as :class:`MhheaHardwareDriver`; the serial FSM has its
    own state encodings and the next-block handoff happens on the
    SHIFT → LMSG transition.
    """

    def __init__(self, top: SerialTop | None = None, key: Key | None = None,
                 seed: int = 0xACE1):
        if top is None:
            if key is None:
                raise ValueError("pass either a built top or a key")
            top = build_serial_top(key.params, n_pairs=len(key), seed=seed)
        self.top = top
        self.sim = Simulator(top.circuit)

    def run(self, bits: Sequence[int], key: Key,
            max_cycles: int | None = None) -> CycleModelRun:
        """Encrypt a whole message on the serial netlist."""
        top = self.top
        width = top.params.width
        block_bits = 2 * width
        if len(bits) % block_bits != 0:
            raise HardwareModelError(
                f"structural model consumes whole {block_bits}-bit blocks; "
                f"got {len(bits)} bits"
            )
        if len(key) != top.n_pairs:
            raise HardwareModelError(
                f"netlist was built for {top.n_pairs} key pairs, key has {len(key)}"
            )
        sim = self.sim
        sim.reset_state()
        run = CycleModelRun(n_bits=len(bits))
        blocks = [
            bits_to_int(list(bits[i : i + block_bits]))
            for i in range(0, len(bits), block_bits)
        ]
        if not blocks:
            return run
        if max_cycles is None:
            max_cycles = 64 + (16 * block_bits + 8) * len(blocks) + 4 * top.n_pairs

        block_index = 0
        sim.set_input("go", 1)
        sim.set_input("plaintext", blocks[0])
        sim.set_input("eof", 1 if len(blocks) == 1 else 0)
        sim.set_input("key_data", 0)

        while True:
            state_name = serial_decode(sim.peek(top.state))
            if state_name == "LKEY":
                pair = key.pairs[sim.peek(top.key_addr)]
                sim.set_input(
                    "key_data", pair.k1 | (pair.k2 << top.params.key_bits)
                )
            if sim.peek(top.ready):
                run.ready_cycles.append(sim.cycle)
                run.vectors.append(sim.peek(top.cipher))
            if sim.peek(top.done):
                break
            sim.tick()
            if sim.cycle > max_cycles:
                raise HardwareModelError(
                    f"serial netlist failed to finish within {max_cycles} "
                    f"cycles (stuck in {state_name})"
                )
            new_state = serial_decode(sim.peek(top.state))
            if new_state == "LMSG" and state_name == "SHIFT":
                block_index += 1
                sim.set_input("plaintext", blocks[block_index])
                sim.set_input("eof", 1 if block_index == len(blocks) - 1 else 0)
        run.total_cycles = sim.cycle
        sim.set_input("go", 0)
        return run


class YaeaHardwareDriver:
    """Drives one :class:`~repro.rtl.yaea_top.YaeaTop` netlist."""

    def __init__(self, top: YaeaTop | None = None, seed: int = 0xACE1):
        if top is None:
            top = build_yaea_top(seed=seed)
        self.top = top
        self.sim = Simulator(top.circuit)

    def run(self, bits: Sequence[int], max_cycles: int | None = None) -> CycleModelRun:
        """Encrypt a message, one ``width``-bit word per cycle."""
        top = self.top
        width = top.params.width
        sim = self.sim
        sim.reset_state()
        run = CycleModelRun(n_bits=len(bits))
        if not bits:
            return run
        words = []
        for i in range(0, len(bits), width):
            chunk = list(bits[i : i + width])
            chunk += [0] * (width - len(chunk))
            words.append(bits_to_int(chunk))
        if max_cycles is None:
            max_cycles = 16 + 4 * len(words)

        sim.set_input("go", 1)
        sim.set_input("eof", 0)
        word_index = 0
        sim.set_input("word_in", words[0])
        while True:
            in_encrypt = sim.peek(top.state) == 2
            if sim.peek(top.ready):
                run.ready_cycles.append(sim.cycle)
                run.vectors.append(sim.peek(top.cipher))
            if sim.peek(top.done):
                break
            if in_encrypt:
                sim.set_input("eof", 1 if word_index == len(words) - 1 else 0)
            sim.tick()
            if sim.cycle > max_cycles:
                raise HardwareModelError("stream netlist failed to finish")
            if in_encrypt and word_index < len(words) - 1:
                word_index += 1
                sim.set_input("word_in", words[word_index])
        run.total_cycles = sim.cycle
        sim.set_input("go", 0)
        return run
