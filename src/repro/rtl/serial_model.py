"""Cycle model of the earlier *serial* HHEA micro-architecture [SAEB04a].

This is the design the paper improves on: no location/data scrambling
(plain HHEA windows) and **one bit replaced per clock cycle**, so a key
pair with window width ``w`` costs ``1 + w`` cycles (one setup cycle to
latch the hiding vector plus ``w`` serial replacement cycles).  The cycle
count is therefore a deterministic function of the key — the throughput/
key dependency that section I calls "vulnerability in the security of the
implemented micro-architecture" and that
:mod:`repro.security.timing_attack` exploits to recover key spans.

The emitted vector stream is identical to the HHEA reference cipher in
framed mode; only the *timing* differs from the improved design.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.errors import HardwareModelError
from repro.core.key import Key, KeyPair
from repro.core.params import PAPER_PARAMS, VectorParams
from repro.hdl.wave import WaveTrace
from repro.rtl import states
from repro.rtl.cycle_model import CycleModelRun
from repro.util.bits import bits_to_int, mask
from repro.util.lfsr import Lfsr

__all__ = ["HheaSerialCycleModel", "SETUP", "SHIFT"]

#: Extra state names of the serial datapath (beyond Figure 1's six).
SETUP = "SETUP"
SHIFT = "SHIFT"


class HheaSerialCycleModel:
    """Serial-replacement HHEA processor model.

    Shares the load protocol of the improved design (``LMSG``/``LKEY``/
    ``LMSGCACHE``), then serialises each window: ``SETUP`` latches the
    hiding vector and the sorted key pair; ``SHIFT`` replaces one bit per
    cycle, emitting the vector and pulsing Ready after the last bit.
    """

    def __init__(self, key: Key, params: VectorParams = PAPER_PARAMS):
        self.key = key
        self.params = params
        self.width = params.width
        self.block_bits = 2 * params.width

    def run(
        self,
        bits: Sequence[int],
        seed: int = 0xACE1,
        source=None,
        record_trace: bool = False,
        max_cycles: int | None = None,
    ) -> CycleModelRun:
        """Drive a whole message; see :class:`CycleModelRun` for results."""
        vector_source = source if source is not None else Lfsr(self.width, seed=seed)
        run = CycleModelRun(n_bits=len(bits))
        trace = None
        if record_trace:
            trace = WaveTrace(
                [
                    ("state", 0),
                    ("buffer", self.width),
                    ("v", self.width),
                    ("bit_index", 4),
                    ("cipher", self.width),
                    ("ready", 1),
                ]
            )
            run.trace = trace
        if not bits:
            return run

        width = self.width
        n_bits = len(bits)
        if max_cycles is None:
            max_cycles = 64 + 16 * n_bits + 4 * len(self.key)

        cycle = 0
        ready = 0
        cipher = 0

        def emit(state: str, buffer: int, vector: int, bit_index: int) -> None:
            nonlocal cycle
            if trace is not None:
                trace.record(
                    state=state, buffer=buffer, v=vector,
                    bit_index=bit_index, cipher=cipher, ready=ready,
                )
            if ready:
                run.ready_cycles.append(cycle)
            cycle += 1
            if cycle > max_cycles:
                raise HardwareModelError("serial model exceeded its cycle budget")

        # --- load protocol (same shape as the improved design) ---------
        emit(states.INIT, 0, 0, 0)
        consumed = 0
        block_count = (n_bits + self.block_bits - 1) // self.block_bits
        first_block = True
        pair_index = 0
        for _ in range(block_count):
            emit(states.LMSG, 0, 0, 0)
            if first_block:
                for _ in range(len(self.key)):
                    emit(states.LKEY, 0, 0, 0)
                first_block = False
            else:
                emit(states.LKEY, 0, 0, 0)
            for _half in range(2):
                if consumed >= n_bits:
                    break
                half_len = min(width, n_bits - consumed)
                half_bits = list(bits[consumed : consumed + half_len])
                emit(states.LMSGCACHE, bits_to_int(
                    half_bits + [0] * (width - half_len)), 0, 0)
                done_in_half = 0
                while done_in_half < half_len:
                    raw = self.key.pair(pair_index)
                    pair = KeyPair(*sorted((raw.k1, raw.k2)))
                    vector = vector_source.next_word() & mask(width)
                    window = pair.k2 - pair.k1 + 1
                    budget = min(window, half_len - done_in_half)
                    buffer_val = bits_to_int(
                        half_bits[done_in_half:] + [0] * (width - (half_len - done_in_half))
                    )
                    emit(SETUP, buffer_val, vector, 0)
                    out = vector
                    for offset in range(budget):
                        j = pair.k1 + offset
                        message_bit = half_bits[done_in_half + offset]
                        out = (out & ~(1 << j)) | (message_bit << j)
                        is_last = offset == budget - 1
                        if is_last:
                            cipher = out
                            ready = 1
                        emit(SHIFT, buffer_val, out, offset)
                        if is_last:
                            run.vectors.append(out)
                            ready = 0
                    done_in_half += budget
                    consumed += budget
                    pair_index += 1
        emit(states.INIT, 0, 0, 0)
        run.total_cycles = cycle
        return run
