"""Structural top level of the YAEA-like stream design.

The measured counterpart of Table 1's YAEA row (see
:mod:`repro.rtl.yaea_like` for the substitution rationale): a leap-forward
LFSR keystream XORed with one full plaintext word per clock cycle.  Three
states suffice — ``INIT`` (wait for go), ``LKEY`` (one cycle of keystream
warm-up, mirroring the cycle model), ``ENCRYPT`` (one word per cycle until
``eof``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import PAPER_PARAMS, VectorParams
from repro.hdl.circuit import Circuit
from repro.hdl.signal import Bus
from repro.rtl.lfsr import LfsrPorts, build_lfsr

__all__ = ["YaeaTop", "build_yaea_top", "YAEA_STATES"]

#: State encodings of the stream design's FSM.
YAEA_STATES: dict[str, int] = {"INIT": 0, "LKEY": 1, "ENCRYPT": 2, "DONE": 3}


@dataclass
class YaeaTop:
    """The built stream circuit plus testbench handles."""

    circuit: Circuit
    params: VectorParams
    seed: int
    go: Bus
    word_in: Bus
    eof: Bus
    cipher: Bus
    ready: Bus
    done: Bus
    state: Bus
    lfsr: LfsrPorts


def build_yaea_top(
    params: VectorParams = PAPER_PARAMS,
    seed: int = 0xACE1,
) -> YaeaTop:
    """Elaborate the stream design into a gate-level circuit."""
    if seed == 0:
        raise ValueError("keystream seed must be non-zero")
    width = params.width
    c = Circuit("yaea_like_top")

    go = c.input_bus("go", 1)
    word_in = c.input_bus("word_in", width)
    eof = c.input_bus("eof", 1)

    state = c.bus("state.q", 2)
    decode = c.decoder(state, name="st.dec")
    in_init = decode[YAEA_STATES["INIT"]]
    in_lkey = decode[YAEA_STATES["LKEY"]]
    in_encrypt = decode[YAEA_STATES["ENCRYPT"]]
    in_done = decode[YAEA_STATES["DONE"]]

    def const_state(name: str) -> Bus:
        return c.const_bus(YAEA_STATES[name], 2)

    choices = [const_state("INIT")] * 4
    choices[YAEA_STATES["INIT"]] = c.mux_bus(
        go[0], const_state("INIT"), const_state("LKEY"), name="n.init")
    choices[YAEA_STATES["LKEY"]] = const_state("ENCRYPT")
    choices[YAEA_STATES["ENCRYPT"]] = c.mux_bus(
        eof[0], const_state("ENCRYPT"), const_state("DONE"), name="n.enc")
    choices[YAEA_STATES["DONE"]] = c.mux_bus(
        go[0], const_state("INIT"), const_state("DONE"), name="n.done")
    c.register_on(state, c.muxn(state, choices, name="n.mux"),
                  init=YAEA_STATES["INIT"])

    lfsr = build_lfsr(c, width, seed=seed, enable=in_encrypt)
    cipher_next = c.xor_bus(word_in, lfsr.next_word, name="ct")
    cipher = c.register(cipher_next, enable=in_encrypt, name="cipher.q")
    ready = c.register(Bus("ready.d", [in_encrypt]), name="ready.q")
    done_flag = c.register(Bus("done.d", [in_done]), name="done.q")

    c.set_output("cipher", cipher)
    c.set_output("ready", ready)
    done_out = Bus("done", [done_flag[0]])
    c.set_output("done", done_out)

    _ = (in_init, in_lkey)  # decoded for completeness/observability
    return YaeaTop(
        circuit=c,
        params=params,
        seed=seed,
        go=go,
        word_in=word_in,
        eof=eof,
        cipher=cipher,
        ready=ready,
        done=done_out,
        state=state,
        lfsr=lfsr,
    )
