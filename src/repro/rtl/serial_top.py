"""Structural top level of the *serial* HHEA micro-architecture [SAEB04a].

The baseline the paper improves on: plain HHEA embedding (no location or
data scrambling — the window is the sorted raw key pair) with one bit
replaced per clock.  Each key pair costs one ``SETUP`` cycle (sample the
hiding vector, point the bit counter at the window start) plus one
``SHIFT`` cycle per replaced bit, so the cycle count per output vector is
``1 + window_width`` — a deterministic function of the key, which is the
timing side channel :mod:`repro.security.timing_attack` exploits.

Shares the message-cache and key-cache builders with the improved design;
the alignment barrel rotators and the scrambler are absent, which is why
this design is smaller but far slower per bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import PAPER_PARAMS, VectorParams
from repro.hdl.circuit import Circuit
from repro.hdl.signal import Bus, Signal
from repro.rtl.comparator import build_sorter
from repro.rtl.key_cache import KeyCachePorts, build_key_cache
from repro.rtl.lfsr import LfsrPorts, build_lfsr
from repro.rtl.message_cache import MessageCachePorts, build_message_cache

__all__ = ["SerialTop", "build_serial_top", "SERIAL_STATES"]

#: State encodings of the serial design's FSM.
SERIAL_STATES: dict[str, int] = {
    "INIT": 0,
    "LMSG": 1,
    "LKEY": 2,
    "LMSGCACHE": 3,
    "SETUP": 4,
    "SHIFT": 5,
}

_DECODE = {code: name for name, code in SERIAL_STATES.items()}


def serial_decode(code: int) -> str:
    """State name for an encoding of the serial FSM."""
    return _DECODE[code]


@dataclass
class SerialTop:
    """The built serial circuit plus testbench handles."""

    circuit: Circuit
    params: VectorParams
    n_pairs: int
    seed: int
    go: Bus
    plaintext: Bus
    key_data: Bus
    eof: Bus
    cipher: Bus
    ready: Bus
    done: Bus
    key_addr: Bus
    state: Bus
    message_cache: MessageCachePorts
    key_cache: KeyCachePorts
    lfsr: LfsrPorts
    buffer: Bus
    bit_index: Bus


def build_serial_top(
    params: VectorParams = PAPER_PARAMS,
    n_pairs: int = 16,
    seed: int = 0xACE1,
) -> SerialTop:
    """Elaborate the serial HHEA design into a gate-level circuit."""
    if seed == 0:
        raise ValueError("LFSR seed must be non-zero")
    width = params.width
    key_bits = params.key_bits
    counter_bits = width.bit_length() + 1
    addr_bits = max(1, (n_pairs - 1).bit_length())
    c = Circuit("hhea_serial_top")

    go = c.input_bus("go", 1)
    plaintext = c.input_bus("plaintext", 2 * width)
    key_data = c.input_bus("key_data", 2 * key_bits)
    eof = c.input_bus("eof", 1)

    state = c.bus("state.q", 3)
    addr = c.bus("addr.q", addr_bits)
    key_full = c.bus("key_full.q", 1)
    half_sel = c.bus("half_sel.q", 1)
    bits_done = c.bus("bits_done.q", counter_bits)
    buffer = c.bus("buffer.q", width)
    v_reg = c.bus("v.q", width)
    bit_index = c.bus("j.q", key_bits)
    done = c.bus("done.q", 1)

    decode = c.decoder(state, name="st.dec")
    in_init = decode[SERIAL_STATES["INIT"]]
    in_lmsg = decode[SERIAL_STATES["LMSG"]]
    in_lkey = decode[SERIAL_STATES["LKEY"]]
    in_lmsgcache = decode[SERIAL_STATES["LMSGCACHE"]]
    in_setup = decode[SERIAL_STATES["SETUP"]]
    in_shift = decode[SERIAL_STATES["SHIFT"]]

    # ---- shared substrates --------------------------------------------
    message_cache = build_message_cache(c, plaintext, load=in_lmsg,
                                        half_sel=half_sel[0])
    key_write = c.gate("ANDN2", in_lkey, key_full[0], name="key_we")
    key_cache = build_key_cache(c, key_data, addr, key_write, n_pairs)
    lfsr = build_lfsr(c, width, seed=seed, enable=in_setup)
    sorter = build_sorter(c, key_cache.left, key_cache.right, name="raw")

    # ---- guards ----------------------------------------------------------
    addr_is_last = c.equals_const(addr, n_pairs - 1, name="addr_last")
    lkey_done = c.or_(key_full[0], addr_is_last, name="lkey_done")
    j_at_end = c.equals(bit_index, sorter.large, name="j_end")
    bits_next = c.increment(bits_done, name="bits.inc")
    log2_width = (width - 1).bit_length()
    half_done = c.or_(
        *[bits_next[b] for b in range(log2_width, counter_bits)], name="half_done"
    )
    window_end = c.and_(in_shift, c.or_(j_at_end, half_done, name="we.or"),
                        name="window_end")

    # ---- next state -------------------------------------------------------
    def const_state(name: str) -> Bus:
        return c.const_bus(SERIAL_STATES[name], 3)

    done_path = c.mux_bus(eof[0], const_state("LMSG"), const_state("INIT"),
                          name="n.done")
    last_path = c.mux_bus(half_sel[0], const_state("LMSGCACHE"), done_path,
                          name="n.last")
    half_path = c.mux_bus(half_done, const_state("SETUP"), last_path,
                          name="n.half")
    from_shift = c.mux_bus(window_end, const_state("SHIFT"), half_path,
                           name="n.shift")
    choices = [const_state("INIT")] * 8
    choices[SERIAL_STATES["INIT"]] = c.mux_bus(
        go[0], const_state("INIT"), const_state("LMSG"), name="n.init")
    choices[SERIAL_STATES["LMSG"]] = const_state("LKEY")
    choices[SERIAL_STATES["LKEY"]] = c.mux_bus(
        lkey_done, const_state("LKEY"), const_state("LMSGCACHE"), name="n.lkey")
    choices[SERIAL_STATES["LMSGCACHE"]] = const_state("SETUP")
    choices[SERIAL_STATES["SETUP"]] = const_state("SHIFT")
    choices[SERIAL_STATES["SHIFT"]] = from_shift
    c.register_on(state, c.muxn(state, choices, name="n.mux"),
                  init=SERIAL_STATES["INIT"])

    # ---- datapath registers -------------------------------------------------
    # Working buffer: load a half, then shift right one bit per SHIFT.
    shifted = Bus("buffer.shr", list(buffer.signals[1:]) + [c.const(0)])
    buffer_d = c.mux_bus(
        in_lmsgcache,
        c.mux_bus(in_shift, buffer, shifted, name="buf.sh"),
        message_cache.read_data,
        name="buf.d",
    )
    c.register_on(buffer, buffer_d)

    # Hiding vector register: SETUP samples the LFSR word, SHIFT replaces
    # the addressed bit with the next message bit.
    onehot_j = c.decoder(bit_index, name="j.dec")
    v_bits = []
    for i in range(width):
        if i < params.half:
            write_bit = c.and_(in_shift, onehot_j[i], name=f"v.wr{i}")
            replaced = c.mux(write_bit, v_reg[i], buffer[0], name=f"v.rep{i}")
        else:
            replaced = v_reg[i]
        v_bits.append(
            c.mux(in_setup, replaced, lfsr.next_word[i], name=f"v.d{i}")
        )
    c.register_on(v_reg, Bus("v.d", v_bits))

    # Bit counter j: k1 at SETUP, +1 per SHIFT.
    j_d = c.mux_bus(
        in_setup,
        c.mux_bus(in_shift, bit_index, c.increment(bit_index, name="j.inc"),
                  name="j.sh"),
        sorter.small,
        name="j.d",
    )
    c.register_on(bit_index, j_d)

    # bits_done: clear at LMSGCACHE, +1 per SHIFT.
    bits_d = c.mux_bus(
        in_lmsgcache,
        c.mux_bus(in_shift, bits_done, bits_next, name="bits.sh"),
        c.const_bus(0, counter_bits),
        name="bits.d",
    )
    c.register_on(bits_done, bits_d)

    # Address counter: +1 (wrapping) after LKEY writes and window ends.
    addr_step = c.or_(key_write, window_end, name="addr.step")
    addr_wrapped = c.mux_bus(
        addr_is_last, c.increment(addr, name="addr.inc"),
        c.const_bus(0, addr_bits), name="addr.wrap",
    )
    c.register_on(addr, c.mux_bus(addr_step, addr, addr_wrapped, name="addr.d"))

    key_full_set = c.and_(key_write, addr_is_last, name="kf.set")
    key_full_clr = c.and_(in_init, go[0], name="kf.clr")
    key_full_next = c.gate(
        "ANDN2", c.or_(key_full[0], key_full_set, name="kf.or"), key_full_clr,
        name="kf.d",
    )
    c.register_on(key_full, Bus("kf.db", [key_full_next]))

    toggle = c.and_(window_end, half_done, name="hs.tgl")
    half_toggled = c.mux(toggle, half_sel[0], c.not_(half_sel[0], name="hs.n"),
                         name="hs.mux")
    c.register_on(half_sel, Bus("hs.db", [
        c.gate("ANDN2", half_toggled, in_lmsg, name="hs.d")]))

    ready = c.register(Bus("ready.d", [window_end]), name="ready.q")
    done_set = c.and_(toggle, half_sel[0], eof[0], name="done.set")
    done_next = c.gate(
        "ANDN2", c.or_(done[0], done_set, name="done.or"), key_full_clr,
        name="done.d",
    )
    c.register_on(done, Bus("done.db", [done_next]))

    c.set_output("cipher", v_reg)
    c.set_output("ready", ready)
    done_out = Bus("done", [done[0]])
    c.set_output("done", done_out)
    c.set_output("key_addr", addr)

    return SerialTop(
        circuit=c,
        params=params,
        n_pairs=n_pairs,
        seed=seed,
        go=go,
        plaintext=plaintext,
        key_data=key_data,
        eof=eof,
        cipher=v_reg,
        ready=ready,
        done=done_out,
        key_addr=addr,
        state=state,
        message_cache=message_cache,
        key_cache=key_cache,
        lfsr=lfsr,
        buffer=buffer,
        bit_index=bit_index,
    )
