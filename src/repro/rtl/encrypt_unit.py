"""Structural Encryption Module and key scrambler (paper sections 3.5, II).

Two builders live here:

* :func:`build_scrambler` — the location-scrambling arithmetic performed
  during CIRC: slice the high half of the hiding vector at the sorted raw
  key positions, truncate, XOR with the smaller key, add the span modulo
  the half width, and sort the result (see
  :func:`repro.core.key.scramble_pair` for the golden model);

* :func:`build_encrypt_unit` — the parallel bit replacement performed
  during ENCRYPT: "a simple architecture of mere multiplexers that choose
  between the bits in the hiding vector and the ones in the scrambled
  plaintext stream.  The selects of the multiplexers are controlled by
  the scrambled key pair."  The window decode is a pair of thermometer
  codes (``j >= KN1`` and ``j <= KN2``) plus the frame-budget guard that
  keeps positions beyond the remaining message bits untouched — the
  hardware form of the pseudocode's end-of-file test.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdl.circuit import Circuit
from repro.hdl.signal import Bus, Signal
from repro.rtl.comparator import build_sorter

__all__ = ["ScramblerPorts", "build_scrambler", "build_encrypt_unit"]


@dataclass
class ScramblerPorts:
    """Handles exposed by the location scrambler."""

    kn_small: Bus
    """Smaller scrambled key (left-rotation amount)."""

    kn_large: Bus
    """Larger scrambled key."""

    k1_sorted: Bus
    """Sorted smaller *raw* key half (the data-scrambling operand)."""


def build_scrambler(
    circuit: Circuit,
    vector: Bus,
    key_left: Bus,
    key_right: Bus,
    name: str = "scram",
) -> ScramblerPorts:
    """Derive the scrambled window bounds from V and the raw key pair.

    Matches ``repro.core.key.scramble_pair`` bit-for-bit:

    1. sort the raw pair → ``(k1, k2)``;
    2. right-rotate the high half of V by ``k1`` so the slice
       ``V[k2+half .. k1+half]`` starts at bit 0;
    3. keep ``key_bits`` bits, masked to the slice width ``k2-k1+1``;
    4. ``kn1 = slice ^ k1``; ``kn2 = (kn1 + (k2-k1)) mod half``;
    5. sort ``(kn1, kn2)``.
    """
    width = vector.width
    half = width // 2
    key_bits = key_left.width
    if key_right.width != key_bits:
        raise ValueError("key halves must be the same width")
    if (1 << key_bits) != half:
        raise ValueError(
            f"{key_bits}-bit keys do not address a {half}-bit window region"
        )

    raw = build_sorter(circuit, key_left, key_right, name=f"{name}.raw")
    k1, k2 = raw.small, raw.large
    span, _ = circuit.subtractor(k2, k1, name=f"{name}.span")

    v_high = vector.field(width - 1, half)
    aligned = circuit.barrel_rotate_right(v_high, k1, name=f"{name}.alg")

    # Mask the truncated slice to its width: bit t survives when span >= t.
    masked_bits = [aligned[0]]
    for t in range(1, key_bits):
        ge_t = circuit.not_(
            circuit.less_than(span, circuit.const_bus(t, key_bits),
                              name=f"{name}.lt{t}"),
            name=f"{name}.ge{t}",
        )
        masked_bits.append(circuit.and_(aligned[t], ge_t, name=f"{name}.m{t}"))
    masked = Bus(f"{name}.slice", masked_bits)

    kn1 = circuit.xor_bus(masked, k1, name=f"{name}.kn1")
    kn2, _ = circuit.adder(kn1, span, name=f"{name}.kn2")  # carry drop = mod half
    scrambled = build_sorter(circuit, kn1, kn2, name=f"{name}.kn")
    return ScramblerPorts(
        kn_small=scrambled.small, kn_large=scrambled.large, k1_sorted=k1
    )


def build_encrypt_unit(
    circuit: Circuit,
    vector: Bus,
    buffer: Bus,
    kn_small: Bus,
    kn_large: Bus,
    k1: Bus,
    remaining: Bus,
    name: str = "enc",
) -> Bus:
    """The parallel replacement network; returns the next cipher word.

    ``vector`` is the latched hiding vector, ``buffer`` the left-rotated
    message half (bit ``KN1+t`` carries message bit ``t``), ``remaining``
    the count of message bits left in the half.  Replacement positions:
    ``KN1 <= j <= KN2`` **and** ``j - KN1 < remaining``; replaced value is
    ``buffer[j] XOR k1[(j - KN1) mod key_bits]``.
    """
    width = vector.width
    half = width // 2
    key_bits = kn_small.width

    # Thermometer decodes of the window bounds.
    onehot_small = circuit.decoder(kn_small, name=f"{name}.ohs")
    onehot_large = circuit.decoder(kn_large, name=f"{name}.ohl")
    ge_small: list[Signal] = []
    for j in range(half):
        if j == 0:
            ge_small.append(onehot_small[0])
        else:
            ge_small.append(
                circuit.or_(ge_small[j - 1], onehot_small[j], name=f"{name}.ge{j}")
            )
    le_large: list[Signal] = [None] * half  # type: ignore[list-item]
    for j in reversed(range(half)):
        if j == half - 1:
            le_large[j] = onehot_large[j]
        else:
            le_large[j] = circuit.or_(
                le_large[j + 1], onehot_large[j], name=f"{name}.le{j}"
            )

    # Budget guard: position j embeds only when j < KN1 + remaining.
    limit_width = remaining.width + 1
    kn_ext = Bus(
        f"{name}.knx",
        list(kn_small) + [circuit.const(0)] * (limit_width - key_bits),
    )
    rem_ext = Bus(
        f"{name}.remx",
        list(remaining) + [circuit.const(0)] * (limit_width - remaining.width),
    )
    limit, _ = circuit.adder(kn_ext, rem_ext, name=f"{name}.lim")
    high_any = circuit.or_(
        *[limit[b] for b in range(key_bits, limit_width)], name=f"{name}.hi"
    )
    onehot_limit = circuit.decoder(limit.field(key_bits - 1, 0), name=f"{name}.ohm")
    below_limit: list[Signal] = [None] * half  # type: ignore[list-item]
    gt: Signal = circuit.const(0)
    for j in reversed(range(half)):
        # low bits of limit exceed j  <=>  onehot_limit hits in (j, half)
        below_limit[j] = circuit.or_(gt, high_any, name=f"{name}.bl{j}")
        gt = circuit.or_(gt, onehot_limit[j], name=f"{name}.gt{j}")

    # Data-scrambling pattern: k1 bits repeated cyclically then rotated so
    # the q=0 bit lands on position KN1 (pattern[KN1+t] = k1[t mod kb]).
    base = Bus(f"{name}.pat0", [k1[t % key_bits] for t in range(half)])
    pattern = circuit.barrel_rotate_left(base, kn_small, name=f"{name}.pat")

    out_bits: list[Signal] = []
    for j in range(width):
        if j >= half:
            out_bits.append(vector[j])
            continue
        in_window = circuit.and_(
            ge_small[j], le_large[j], below_limit[j], name=f"{name}.w{j}"
        )
        embedded = circuit.xor_(buffer[j], pattern[j], name=f"{name}.x{j}")
        out_bits.append(
            circuit.mux(in_window, vector[j], embedded, name=f"{name}.c{j}")
        )
    return Bus(f"{name}.out", out_bits)
