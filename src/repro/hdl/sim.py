"""Event-driven, levelised logic simulator.

The classic two-step scheme used by production gate-level simulators:

1. **Levelise once.**  Every evaluable node (combinational gate or
   tristate group) gets a topological level — sources are primary inputs,
   constants and flip-flop outputs.  A failure to levelise is a
   combinational loop, reported as an error instead of oscillating.
2. **Propagate by level.**  A changed net schedules only its fanout
   nodes, into per-level buckets processed in ascending order.  Because a
   node's level strictly exceeds its drivers', one ascending sweep
   settles the network — no delta iteration, no glitches.

Clocking is synchronous-ideal: :meth:`Simulator.tick` samples every
flip-flop's next value from the settled network, commits them all at
once, then settles again.  This matches a single-clock FPGA design with
met timing, which is the regime the paper's reports describe.
"""

from __future__ import annotations

from repro.hdl.circuit import Circuit
from repro.hdl.gates import Gate, TristateGroup
from repro.hdl.signal import Bus, Signal

__all__ = ["Simulator", "CombinationalLoopError"]


class CombinationalLoopError(RuntimeError):
    """The netlist contains a cycle through combinational nodes."""


class Simulator:
    """Simulates one :class:`~repro.hdl.circuit.Circuit`."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        #: Number of clock edges applied so far.
        self.cycle = 0
        self._levelise()
        self._pending: list[set] = [set() for _ in range(self._n_levels)]
        self._settle_full()

    # ------------------------------------------------------------------
    # levelisation
    # ------------------------------------------------------------------

    def _levelise(self) -> None:
        nodes: list = list(self.circuit.gates) + list(self.circuit.tristate_groups)
        indegree: dict[int, int] = {}
        consumers: dict[int, list] = {}

        def node_inputs(node):
            if isinstance(node, TristateGroup):
                return node.input_signals()
            return node.inputs

        for node in nodes:
            count = 0
            for sig in node_inputs(node):
                driver = sig.driver
                if isinstance(driver, (Gate, TristateGroup)):
                    count += 1
                    consumers.setdefault(id(driver), []).append(node)
            indegree[id(node)] = count
            node.level = 0

        ready = [node for node in nodes if indegree[id(node)] == 0]
        ordered = 0
        while ready:
            node = ready.pop()
            ordered += 1
            for consumer in consumers.get(id(node), []):
                consumer.level = max(consumer.level, node.level + 1)
                indegree[id(consumer)] -= 1
                if indegree[id(consumer)] == 0:
                    ready.append(consumer)
        if ordered != len(nodes):
            stuck = [n for n in nodes if indegree[id(n)] > 0]
            names = ", ".join(repr(getattr(n, "output", n)) for n in stuck[:5])
            raise CombinationalLoopError(
                f"{len(stuck)} nodes form combinational loops (e.g. {names})"
            )
        self._n_levels = 1 + max((n.level for n in nodes), default=0)

    # ------------------------------------------------------------------
    # value propagation
    # ------------------------------------------------------------------

    def _schedule_fanout(self, sig: Signal) -> None:
        for node in sig.fanout:
            self._pending[node.level].add(node)

    def _settle(self) -> None:
        for level_nodes in self._pending:
            while level_nodes:
                node = level_nodes.pop()
                new_value = node.evaluate()
                out = node.output
                if out.value != new_value:
                    out.value = new_value
                    self._schedule_fanout(out)

    def _settle_full(self) -> None:
        """Evaluate every node once (initialisation after build)."""
        for node in self.circuit.gates:
            self._pending[node.level].add(node)
        for node in self.circuit.tristate_groups:
            self._pending[node.level].add(node)
        self._settle()

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------

    def set_input(self, name: str, value: int) -> None:
        """Drive a primary-input bus and settle the combinational network."""
        if name not in self.circuit.inputs:
            raise KeyError(
                f"no input {name!r}; have {sorted(self.circuit.inputs)}"
            )
        for sig in self.circuit.inputs[name].poke(value):
            self._schedule_fanout(sig)
        self._settle()

    def peek(self, bus: Bus | str) -> int:
        """Current value of a bus (by object or primary-port name)."""
        if isinstance(bus, str):
            if bus in self.circuit.outputs:
                bus = self.circuit.outputs[bus]
            elif bus in self.circuit.inputs:
                bus = self.circuit.inputs[bus]
            else:
                raise KeyError(f"no port named {bus!r}")
        return bus.value()

    def tick(self, cycles: int = 1) -> None:
        """Apply ``cycles`` synchronous clock edges."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        for _ in range(cycles):
            updates = []
            for ff in self.circuit.dffs:
                new_value = ff.next_value()
                if new_value != ff.q.value:
                    updates.append((ff.q, new_value))
            for q, new_value in updates:
                q.value = new_value
                self._schedule_fanout(q)
            self._settle()
            self.cycle += 1

    def reset_state(self) -> None:
        """Force every flip-flop back to its init value and settle.

        Equivalent to a global set/reset pulse (the FPGA's GSR net), used
        by testbenches to re-run a circuit without rebuilding it.
        """
        for ff in self.circuit.dffs:
            if ff.q.value != ff.init:
                ff.q.value = ff.init
                self._schedule_fanout(ff.q)
        self._settle()
        self.cycle = 0
