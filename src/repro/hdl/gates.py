"""The primitive cell library.

Three families of primitives exist, mirroring the resources of the
paper's Spartan-II target:

* **combinational gates** (:class:`Gate`) with fanin capped at
  :data:`MAX_FANIN` = 4 so every gate is trivially LUT-mappable — the
  circuit builder decomposes wider operations into trees;
* **D flip-flops** (:class:`Dff`) with optional clock enable and
  synchronous reset, the slice register resource;
* **tristate buffers** (:class:`Tbuf`) grouped on shared nets by
  :class:`TristateGroup`, the TBUF/long-line resource that the paper's
  design summary reports separately (206 TBUFs).

Gate behaviour is a pure function of input values; all evaluation
functions live in :data:`GATE_EVAL` so the simulator, the LUT mapper's
truth-table extractor and the netlist checker share one definition.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.hdl.signal import Signal

__all__ = ["MAX_FANIN", "Gate", "Dff", "Tbuf", "TristateGroup", "GATE_EVAL", "GATE_ARITY"]

#: Hard fanin bound for combinational gates: the 4-input LUT of the
#: Spartan-II slice.  The builder rejects wider gates at construction.
MAX_FANIN = 4


def _mux2(sel: int, a: int, b: int) -> int:
    """2:1 multiplexer: ``a`` when sel=0, ``b`` when sel=1."""
    return b if sel else a


#: kind -> evaluation function over input bit values (in declared order).
GATE_EVAL: dict[str, Callable[..., int]] = {
    "CONST0": lambda: 0,
    "CONST1": lambda: 1,
    "BUF": lambda a: a,
    "NOT": lambda a: 1 - a,
    "AND2": lambda a, b: a & b,
    "AND3": lambda a, b, c: a & b & c,
    "AND4": lambda a, b, c, d: a & b & c & d,
    "OR2": lambda a, b: a | b,
    "OR3": lambda a, b, c: a | b | c,
    "OR4": lambda a, b, c, d: a | b | c | d,
    "NAND2": lambda a, b: 1 - (a & b),
    "NOR2": lambda a, b: 1 - (a | b),
    "XOR2": lambda a, b: a ^ b,
    "XOR3": lambda a, b, c: a ^ b ^ c,
    "XNOR2": lambda a, b: 1 - (a ^ b),
    "MUX2": _mux2,
    "ANDN2": lambda a, b: a & (1 - b),  # a AND NOT b: carry/borrow helper
}

#: kind -> required number of inputs (derived once, used for validation).
GATE_ARITY: dict[str, int] = {
    kind: fn.__code__.co_argcount for kind, fn in GATE_EVAL.items()
}


class Gate:
    """One combinational primitive instance."""

    __slots__ = ("kind", "inputs", "output", "level", "index", "_eval")

    def __init__(self, kind: str, inputs: Sequence[Signal], output: Signal, index: int):
        if kind not in GATE_EVAL:
            raise ValueError(f"unknown gate kind {kind!r}")
        arity = GATE_ARITY[kind]
        if len(inputs) != arity:
            raise ValueError(f"{kind} needs {arity} inputs, got {len(inputs)}")
        if arity > MAX_FANIN:
            raise ValueError(f"{kind} exceeds LUT fanin bound {MAX_FANIN}")
        self.kind = kind
        self.inputs = list(inputs)
        self.output = output
        #: Topological level, assigned by the simulator's levelizer.
        self.level = -1
        #: Dense id within the circuit's gate list.
        self.index = index
        self._eval = GATE_EVAL[kind]

    def evaluate(self) -> int:
        """Output value implied by the current input values."""
        return self._eval(*(sig.value for sig in self.inputs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ins = ",".join(s.name for s in self.inputs)
        return f"{self.kind}({ins})->{self.output.name}"


class Dff:
    """D flip-flop with optional clock enable and synchronous reset.

    Update rule on the active clock edge::

        q' = 0        if reset is asserted
        q' = d        if enable is asserted (or absent)
        q' = q        otherwise

    Reset dominates enable, matching the Spartan-II slice FF.
    """

    __slots__ = ("d", "q", "enable", "reset", "init", "index")

    def __init__(self, d: Signal, q: Signal, enable: Signal | None,
                 reset: Signal | None, init: int, index: int):
        if init not in (0, 1):
            raise ValueError(f"init must be 0 or 1, got {init}")
        self.d = d
        self.q = q
        self.enable = enable
        self.reset = reset
        self.init = init
        self.index = index

    def next_value(self) -> int:
        """The value q will take on the coming clock edge."""
        if self.reset is not None and self.reset.value:
            return 0
        if self.enable is None or self.enable.value:
            return self.d.value
        return self.q.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DFF({self.d.name}->{self.q.name})"


class Tbuf:
    """One tristate buffer: drives ``input`` onto the group net when
    ``enable`` is high, floats otherwise."""

    __slots__ = ("input", "enable", "index")

    def __init__(self, input_: Signal, enable: Signal, index: int):
        self.input = input_
        self.enable = enable
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TBUF({self.input.name} if {self.enable.name})"


class TristateGroup:
    """All tristate buffers sharing one resolved net.

    The design contract is one-hot enables.  When no buffer drives, the
    net keeps its previous value (a weak-keeper model, which is how the
    Xilinx long lines with pull-ups behave for reads of an idle bus).
    When more than one drives with conflicting values the group raises —
    that is a genuine design bug the simulator must not paper over.
    """

    __slots__ = ("output", "buffers", "level", "index")

    def __init__(self, output: Signal, index: int):
        self.output = output
        self.buffers: list[Tbuf] = []
        self.level = -1
        self.index = index

    def evaluate(self) -> int:
        """Resolved value of the shared net under the current inputs."""
        driving = [t for t in self.buffers if t.enable.value]
        if not driving:
            return self.output.value  # keeper: retain previous value
        first = driving[0].input.value
        for other in driving[1:]:
            if other.input.value != first:
                raise BusContentionError(
                    f"tristate net {self.output.name!r}: "
                    f"{len(driving)} simultaneous drivers with conflicting values"
                )
        return first

    def input_signals(self) -> list[Signal]:
        """Every signal whose change can alter the resolved value."""
        signals = []
        for t in self.buffers:
            signals.append(t.input)
            signals.append(t.enable)
        return signals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TristateGroup({self.output.name}, {len(self.buffers)} drivers)"


class BusContentionError(RuntimeError):
    """Two enabled tristate drivers disagreed on a shared net's value."""
