"""Gate-level hardware modelling substrate.

The paper's micro-architecture was entered in Xilinx Foundation and
simulated with its logic simulator; this package is our stand-in for that
toolchain (DESIGN.md section 4).  It provides:

* :mod:`repro.hdl.signal` — single-bit nets and multi-bit buses;
* :mod:`repro.hdl.gates` — the primitive cell library (fanin-bounded
  logic gates, D flip-flops, tristate buffers);
* :mod:`repro.hdl.circuit` — the structural builder with word-level
  helpers (adders, comparators, barrel rotators, tristate buses);
* :mod:`repro.hdl.sim` — an event-driven, levelised logic simulator;
* :mod:`repro.hdl.netlist` — netlist statistics, text dumps and the DAG
  views consumed by the FPGA CAD flow;
* :mod:`repro.hdl.vcd` / :mod:`repro.hdl.wave` — VCD and ASCII waveform
  writers for the simulation figures.
"""

from repro.hdl.circuit import Circuit
from repro.hdl.gates import Dff, Gate, Tbuf
from repro.hdl.netlist import NetlistStats, netlist_stats, netlist_text
from repro.hdl.signal import Bus, Signal
from repro.hdl.sim import Simulator
from repro.hdl.vcd import VcdWriter
from repro.hdl.wave import WaveTrace, render_wave

__all__ = [
    "Circuit",
    "Dff",
    "Gate",
    "Tbuf",
    "NetlistStats",
    "netlist_stats",
    "netlist_text",
    "Bus",
    "Signal",
    "Simulator",
    "VcdWriter",
    "WaveTrace",
    "render_wave",
]
