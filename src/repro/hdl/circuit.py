"""Structural circuit builder.

A :class:`Circuit` accumulates signals, gates, flip-flops and tristate
groups, and offers word-level constructors (adders, comparators, barrel
rotators, one-hot decoders, tristate buses) that decompose into the
fanin-bounded primitive library of :mod:`repro.hdl.gates`.  The RTL
package builds the entire MHHEA micro-architecture through this API, so
the resulting netlist is genuinely gate-level and feeds the FPGA CAD flow
without any translation step.

Conventions:

* all buses are little-endian (``bus[0]`` = LSB);
* constant-distance rotations are free (rewiring), variable rotations
  cost one 2:1 mux per bit per stage — exactly the paper's
  "multiplexers are used for n-bit rotations" (section 3.2);
* every constructor returns freshly created output signals/buses and
  never mutates its operands.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.hdl.gates import Dff, Gate, MAX_FANIN, Tbuf, TristateGroup
from repro.hdl.signal import Bus, Signal
from repro.util.bits import check_uint

__all__ = ["Circuit"]


class Circuit:
    """A structural netlist under construction."""

    def __init__(self, name: str):
        self.name = name
        self.signals: list[Signal] = []
        self.gates: list[Gate] = []
        self.dffs: list[Dff] = []
        self.tristate_groups: list[TristateGroup] = []
        self.inputs: dict[str, Bus] = {}
        self.outputs: dict[str, Bus] = {}
        self._const_cache: dict[int, Signal] = {}
        self._name_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # net management
    # ------------------------------------------------------------------

    def _unique(self, stem: str) -> str:
        count = self._name_counts.get(stem, 0)
        self._name_counts[stem] = count + 1
        return stem if count == 0 else f"{stem}.{count}"

    def signal(self, name: str = "n") -> Signal:
        """Create one new net with a unique name."""
        sig = Signal(self._unique(name), len(self.signals))
        self.signals.append(sig)
        return sig

    def bus(self, name: str, width: int) -> Bus:
        """Create a new internal bus of fresh nets."""
        if width <= 0:
            raise ValueError(f"bus width must be positive, got {width}")
        return Bus(name, [self.signal(f"{name}[{i}]") for i in range(width)])

    def input_bus(self, name: str, width: int) -> Bus:
        """Declare a primary-input bus (driven from the testbench)."""
        if name in self.inputs:
            raise ValueError(f"duplicate input {name!r}")
        bus = self.bus(name, width)
        for sig in bus:
            sig.is_input = True
        self.inputs[name] = bus
        return bus

    def set_output(self, name: str, bus: Bus) -> Bus:
        """Declare an existing bus as a primary output."""
        if name in self.outputs:
            raise ValueError(f"duplicate output {name!r}")
        self.outputs[name] = bus
        return bus

    def const(self, value: int) -> Signal:
        """The shared constant-0 or constant-1 net."""
        if value not in (0, 1):
            raise ValueError(f"constant must be 0 or 1, got {value}")
        if value not in self._const_cache:
            sig = self.signal(f"const{value}")
            gate = Gate("CONST1" if value else "CONST0", [], sig, len(self.gates))
            sig.driver = gate
            sig.value = value
            self.gates.append(gate)
            self._const_cache[value] = sig
        return self._const_cache[value]

    def const_bus(self, value: int, width: int) -> Bus:
        """A bus hard-wired to ``value``."""
        check_uint(value, width, "constant bus value")
        return Bus(
            f"const{value:#x}",
            [self.const((value >> i) & 1) for i in range(width)],
        )

    # ------------------------------------------------------------------
    # single-bit gates
    # ------------------------------------------------------------------

    def gate(self, kind: str, *inputs: Signal, name: str = "n") -> Signal:
        """Instantiate one primitive; returns its output net."""
        out = self.signal(name)
        g = Gate(kind, list(inputs), out, len(self.gates))
        out.driver = g
        self.gates.append(g)
        for sig in inputs:
            sig.fanout.append(g)
        return out

    def buf(self, a: Signal, name: str = "buf") -> Signal:
        """Identity buffer (used to rename/isolate nets)."""
        return self.gate("BUF", a, name=name)

    def not_(self, a: Signal, name: str = "not") -> Signal:
        """Logical NOT."""
        return self.gate("NOT", a, name=name)

    def and_(self, *inputs: Signal, name: str = "and") -> Signal:
        """AND of 1..n inputs, decomposed into a tree of AND2..AND4."""
        return self._tree({2: "AND2", 3: "AND3", 4: "AND4"}, list(inputs), name)

    def or_(self, *inputs: Signal, name: str = "or") -> Signal:
        """OR of 1..n inputs, decomposed into a tree of OR2..OR4."""
        return self._tree({2: "OR2", 3: "OR3", 4: "OR4"}, list(inputs), name)

    def xor_(self, *inputs: Signal, name: str = "xor") -> Signal:
        """XOR of 1..n inputs, decomposed into a tree of XOR2/XOR3."""
        return self._tree({2: "XOR2", 3: "XOR3"}, list(inputs), name)

    def mux(self, sel: Signal, a: Signal, b: Signal, name: str = "mux") -> Signal:
        """2:1 mux: ``a`` when sel=0, ``b`` when sel=1."""
        return self.gate("MUX2", sel, a, b, name=name)

    def _tree(self, kinds: dict[int, str], inputs: list[Signal], name: str) -> Signal:
        if not inputs:
            raise ValueError("gate tree needs at least one input")
        level = list(inputs)
        widest = max(kinds)
        while len(level) > 1:
            next_level: list[Signal] = []
            i = 0
            while i < len(level):
                chunk = level[i : i + widest]
                if len(chunk) == 1:
                    next_level.append(chunk[0])
                else:
                    next_level.append(self.gate(kinds[len(chunk)], *chunk, name=name))
                i += widest
            level = next_level
        return level[0]

    # ------------------------------------------------------------------
    # word-level combinational helpers
    # ------------------------------------------------------------------

    def not_bus(self, a: Bus, name: str = "notb") -> Bus:
        """Bitwise NOT of a bus."""
        return Bus(name, [self.not_(s, name=f"{name}[{i}]") for i, s in enumerate(a)])

    def xor_bus(self, a: Bus, b: Bus, name: str = "xorb") -> Bus:
        """Bitwise XOR of two equal-width buses."""
        self._check_widths(a, b)
        return Bus(
            name,
            [self.xor_(x, y, name=f"{name}[{i}]") for i, (x, y) in enumerate(zip(a, b))],
        )

    def and_bus(self, a: Bus, b: Bus, name: str = "andb") -> Bus:
        """Bitwise AND of two equal-width buses."""
        self._check_widths(a, b)
        return Bus(
            name,
            [self.and_(x, y, name=f"{name}[{i}]") for i, (x, y) in enumerate(zip(a, b))],
        )

    def or_bus(self, a: Bus, b: Bus, name: str = "orb") -> Bus:
        """Bitwise OR of two equal-width buses."""
        self._check_widths(a, b)
        return Bus(
            name,
            [self.or_(x, y, name=f"{name}[{i}]") for i, (x, y) in enumerate(zip(a, b))],
        )

    def mux_bus(self, sel: Signal, a: Bus, b: Bus, name: str = "muxb") -> Bus:
        """Word-level 2:1 mux (``a`` when sel=0)."""
        self._check_widths(a, b)
        return Bus(
            name,
            [self.mux(sel, x, y, name=f"{name}[{i}]") for i, (x, y) in enumerate(zip(a, b))],
        )

    def muxn(self, sel: Bus, choices: Sequence[Bus], name: str = "muxn") -> Bus:
        """N:1 word mux as a balanced tree of 2:1 stages.

        ``len(choices)`` must equal ``2 ** sel.width``; choice ``k`` is
        selected when the select bus carries value ``k``.
        """
        if len(choices) != (1 << sel.width):
            raise ValueError(
                f"muxn needs {1 << sel.width} choices for a {sel.width}-bit select, "
                f"got {len(choices)}"
            )
        layer = list(choices)
        for stage, sel_bit in enumerate(sel):
            layer = [
                self.mux_bus(sel_bit, layer[2 * i], layer[2 * i + 1],
                             name=f"{name}.s{stage}.{i}")
                for i in range(len(layer) // 2)
            ]
        return Bus(name, list(layer[0]))

    def equals_const(self, a: Bus, value: int, name: str = "eqc") -> Signal:
        """1 when the bus carries exactly ``value``."""
        check_uint(value, a.width, "comparison constant")
        literals = [
            sig if (value >> i) & 1 else self.not_(sig, name=f"{name}.n{i}")
            for i, sig in enumerate(a)
        ]
        return self.and_(*literals, name=name)

    def equals(self, a: Bus, b: Bus, name: str = "eq") -> Signal:
        """1 when two buses carry the same value."""
        self._check_widths(a, b)
        xnors = [
            self.gate("XNOR2", x, y, name=f"{name}.b{i}")
            for i, (x, y) in enumerate(zip(a, b))
        ]
        return self.and_(*xnors, name=name)

    def adder(self, a: Bus, b: Bus, cin: Signal | None = None,
              name: str = "add") -> tuple[Bus, Signal]:
        """Ripple-carry adder; returns (sum bus, carry out)."""
        self._check_widths(a, b)
        carry = cin if cin is not None else self.const(0)
        sums: list[Signal] = []
        for i, (x, y) in enumerate(zip(a, b)):
            axb = self.xor_(x, y, name=f"{name}.p{i}")
            sums.append(self.xor_(axb, carry, name=f"{name}.s{i}"))
            gen = self.and_(x, y, name=f"{name}.g{i}")
            prop = self.and_(axb, carry, name=f"{name}.t{i}")
            carry = self.or_(gen, prop, name=f"{name}.c{i}")
        return Bus(name, sums), carry

    def subtractor(self, a: Bus, b: Bus, name: str = "sub") -> tuple[Bus, Signal]:
        """Ripple-borrow subtractor ``a - b``; returns (difference, borrow).

        The borrow output doubles as the unsigned ``a < b`` flag, which is
        how the comparator module of the micro-architecture is built.
        """
        self._check_widths(a, b)
        borrow = self.const(0)
        diffs: list[Signal] = []
        for i, (x, y) in enumerate(zip(a, b)):
            axb = self.xor_(x, y, name=f"{name}.p{i}")
            diffs.append(self.xor_(axb, borrow, name=f"{name}.d{i}"))
            b_and_not_a = self.gate("ANDN2", y, x, name=f"{name}.k{i}")
            keep = self.gate("ANDN2", borrow, axb, name=f"{name}.m{i}")
            borrow = self.or_(b_and_not_a, keep, name=f"{name}.b{i}")
        return Bus(name, diffs), borrow

    def less_than(self, a: Bus, b: Bus, name: str = "lt") -> Signal:
        """Unsigned ``a < b`` (the borrow of ``a - b``)."""
        _, borrow = self.subtractor(a, b, name=name)
        return borrow

    def increment(self, a: Bus, name: str = "inc") -> Bus:
        """``a + 1`` with the carry dropped (wrap-around counter step)."""
        one = self.const_bus(1, a.width)
        total, _ = self.adder(a, one, name=name)
        return total

    def rotate_left_const(self, a: Bus, amount: int, name: str = "rolc") -> Bus:
        """Rotation by a constant: pure rewiring, zero gates."""
        amount %= a.width
        order = [a[(i - amount) % a.width] for i in range(a.width)]
        return Bus(f"{name}{amount}", order)

    def barrel_rotate_left(self, a: Bus, amount: Bus, name: str = "rol") -> Bus:
        """Variable left rotation: one mux-per-bit stage per select bit.

        Stage ``s`` rotates by ``2**s`` when ``amount[s]`` is set; with a
        ``log2(width)``-bit amount this is the full barrel rotator of the
        message-alignment module, and each stage is a single LUT level —
        "the circulate operation takes only one clock cycle" because the
        whole rotator is combinational.  A narrower amount bus simply
        yields a rotator covering ``0 .. 2**amount.width - 1``, which is
        all the alignment module needs (left rotations never exceed the
        key range).
        """
        current = a
        for stage, sel_bit in enumerate(amount):
            shift = 1 << stage
            if shift >= a.width:
                break
            rotated = self.rotate_left_const(current, shift, name=f"{name}.w{stage}")
            current = self.mux_bus(sel_bit, current, rotated, name=f"{name}.s{stage}")
        return Bus(name, list(current))

    def barrel_rotate_right(self, a: Bus, amount: Bus, name: str = "ror") -> Bus:
        """Variable right rotation via mux stages (mirror of the left)."""
        current = a
        for stage, sel_bit in enumerate(amount):
            shift = 1 << stage
            if shift >= a.width:
                break
            rotated = self.rotate_left_const(
                current, a.width - shift, name=f"{name}.w{stage}"
            )
            current = self.mux_bus(sel_bit, current, rotated, name=f"{name}.s{stage}")
        return Bus(name, list(current))

    def decoder(self, addr: Bus, enable: Signal | None = None, name: str = "dec") -> Bus:
        """One-hot decoder: output ``k`` is high when ``addr == k``.

        With ``enable`` given, all outputs are gated by it — the classic
        write-enable decode for register files and tristate buses.
        """
        outputs = []
        for value in range(1 << addr.width):
            hit = self.equals_const(addr, value, name=f"{name}.{value}")
            if enable is not None:
                hit = self.and_(hit, enable, name=f"{name}.{value}e")
            outputs.append(hit)
        return Bus(name, outputs)

    # ------------------------------------------------------------------
    # sequential elements
    # ------------------------------------------------------------------

    def dff(self, d: Signal, enable: Signal | None = None,
            reset: Signal | None = None, init: int = 0, name: str = "q") -> Signal:
        """One D flip-flop; returns the Q net."""
        q = self.signal(name)
        self.dff_on(q, d, enable, reset, init)
        return q

    def dff_on(self, q: Signal, d: Signal, enable: Signal | None = None,
               reset: Signal | None = None, init: int = 0) -> None:
        """Attach a flip-flop that drives an *existing* bare net ``q``.

        This is how feedback loops are closed: create the Q nets first
        (:meth:`bus`), build the combinational logic that reads them,
        then bind each Q to its computed D.
        """
        if q.driver is not None:
            raise ValueError(f"net {q.name!r} already has a driver")
        ff = Dff(d, q, enable, reset, init, len(self.dffs))
        q.driver = ff
        q.value = init
        self.dffs.append(ff)

    def register_on(self, q: Bus, d: Bus, enable: Signal | None = None,
                    reset: Signal | None = None, init: int = 0) -> None:
        """Bus-wide :meth:`dff_on` (close a word-level feedback loop)."""
        self._check_widths(q, d)
        check_uint(init, q.width, "register init")
        for i, (q_sig, d_sig) in enumerate(zip(q, d)):
            self.dff_on(q_sig, d_sig, enable, reset, (init >> i) & 1)

    def register(self, d: Bus, enable: Signal | None = None,
                 reset: Signal | None = None, init: int = 0,
                 name: str = "reg") -> Bus:
        """A bank of flip-flops over a whole bus."""
        check_uint(init, d.width, "register init")
        return Bus(
            name,
            [
                self.dff(bit, enable, reset, (init >> i) & 1, name=f"{name}[{i}]")
                for i, bit in enumerate(d)
            ],
        )

    # ------------------------------------------------------------------
    # tristate buses
    # ------------------------------------------------------------------

    def tristate_bus(self, name: str, width: int) -> Bus:
        """A bus of shared nets, each resolved from tristate drivers."""
        nets = []
        for i in range(width):
            sig = self.signal(f"{name}[{i}]")
            group = TristateGroup(sig, len(self.tristate_groups))
            sig.driver = group
            self.tristate_groups.append(group)
            nets.append(sig)
        return Bus(name, nets)

    def tbuf_drive(self, data: Bus, enable: Signal, net: Bus) -> None:
        """Attach one tristate driver per bit of ``net``.

        ``net`` must have been created by :meth:`tristate_bus`.  Each bit
        costs one TBUF resource, which is how the design summary's TBUF
        count arises.
        """
        self._check_widths(data, net)
        for data_sig, net_sig in zip(data, net):
            group = net_sig.driver
            if not isinstance(group, TristateGroup):
                raise ValueError(f"{net_sig.name!r} is not a tristate net")
            t = Tbuf(data_sig, enable, sum(len(g.buffers) for g in self.tristate_groups))
            group.buffers.append(t)
            data_sig.fanout.append(group)
            enable.fanout.append(group)

    # ------------------------------------------------------------------

    def n_tbufs(self) -> int:
        """Total tristate buffers instantiated (one per driver per bit)."""
        return sum(len(g.buffers) for g in self.tristate_groups)

    @staticmethod
    def _check_widths(a: Bus, b: Bus) -> None:
        if a.width != b.width:
            raise ValueError(
                f"bus width mismatch: {a.name!r} is {a.width}, {b.name!r} is {b.width}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Circuit({self.name!r}: {len(self.gates)} gates, "
            f"{len(self.dffs)} dffs, {self.n_tbufs()} tbufs)"
        )
