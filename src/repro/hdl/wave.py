"""ASCII timing-diagram renderer.

The paper's simulation section is four screenshots of the Xilinx logic
simulator (Figs 5–8).  Our equivalent is textual: a :class:`WaveTrace`
records named values cycle by cycle (from either the behavioural cycle
model or the gate-level simulator), and :func:`render_wave` lays them out
as one row per signal with hex bus values and drawn single-bit waves::

    cycle        0    1    2    3
    state        INIT LMSG LKEY LKEY
    plaintext    ---- ABCD ABCD ABCD
    ready        ____/~~~~

Traces are also the data behind the VCD export and the waveform
regression tests, so the figures are asserted, not just printed.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.hdl.vcd import VcdWriter

__all__ = ["WaveTrace", "render_wave"]


class WaveTrace:
    """A per-cycle table of named signal values."""

    def __init__(self, signals: Sequence[tuple[str, int]]):
        """``signals`` is an ordered list of (name, width-in-bits) pairs;
        width 0 marks a *symbolic* signal (e.g. an FSM state name)."""
        if not signals:
            raise ValueError("a trace needs at least one signal")
        self.widths: dict[str, int] = {}
        self.order: list[str] = []
        for name, width in signals:
            if name in self.widths:
                raise ValueError(f"duplicate signal {name!r}")
            self.widths[name] = width
            self.order.append(name)
        self.rows: list[dict[str, int | str]] = []

    def record(self, **values: int | str) -> None:
        """Append one cycle of values; every declared signal is required."""
        missing = set(self.order) - set(values)
        if missing:
            raise ValueError(f"missing signals in record: {sorted(missing)}")
        extra = set(values) - set(self.order)
        if extra:
            raise ValueError(f"undeclared signals in record: {sorted(extra)}")
        self.rows.append(dict(values))

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list[int | str]:
        """All values of one signal across cycles."""
        if name not in self.widths:
            raise KeyError(f"no signal {name!r}")
        return [row[name] for row in self.rows]

    def at(self, cycle: int, name: str) -> int | str:
        """Value of ``name`` at ``cycle``."""
        return self.rows[cycle][name]

    def find(self, name: str, value: int | str, start: int = 0) -> int:
        """First cycle >= ``start`` where ``name`` equals ``value``; -1 if none."""
        for cycle in range(start, len(self.rows)):
            if self.rows[cycle][name] == value:
                return cycle
        return -1

    def to_vcd(self, timescale: str = "10ns") -> str:
        """Export the numeric signals as a VCD document.

        Symbolic signals (width 0) are skipped — VCD has no string type
        in the subset common viewers support.
        """
        writer = VcdWriter(timescale=timescale)
        numeric = [name for name in self.order if self.widths[name] > 0]
        for name in numeric:
            writer.declare(name, self.widths[name])
        for cycle, row in enumerate(self.rows):
            writer.sample(cycle, {name: int(row[name]) for name in numeric})
        return writer.render()


def _format_value(value: int | str, width: int, cell: int) -> str:
    if width == 0:
        return str(value)[:cell].ljust(cell)
    hex_digits = (width + 3) // 4
    return f"{int(value):0{hex_digits}X}".rjust(cell)[:cell].ljust(cell)


def render_wave(
    trace: WaveTrace,
    first: int = 0,
    last: int | None = None,
    signals: Sequence[str] | None = None,
) -> str:
    """Render a cycle range of a trace as an ASCII timing diagram."""
    if last is None:
        last = len(trace) - 1
    if not 0 <= first <= last < len(trace):
        raise ValueError(
            f"cycle range [{first}, {last}] invalid for a {len(trace)}-cycle trace"
        )
    names = list(signals) if signals is not None else list(trace.order)
    for name in names:
        if name not in trace.widths:
            raise KeyError(f"no signal {name!r}")

    cycles = list(range(first, last + 1))
    label_pad = max(len("cycle"), max(len(n) for n in names)) + 2

    cells: dict[str, int] = {}
    for name in names:
        width = trace.widths[name]
        if width == 1:
            cells[name] = 1
        elif width == 0:
            longest = max((len(str(trace.at(c, name))) for c in cycles), default=1)
            cells[name] = max(longest, 4)
        else:
            cells[name] = max((width + 3) // 4, 4)

    column = max(cells.values()) + 1
    header = "cycle".ljust(label_pad) + "".join(
        str(c).rjust(column - 1).ljust(column) for c in cycles
    )
    lines = [header]
    for name in names:
        width = trace.widths[name]
        row = [name.ljust(label_pad)]
        previous_bit: int | None = None
        for cycle in cycles:
            value = trace.at(cycle, name)
            if width == 1:
                bit = int(value)
                if previous_bit is None or previous_bit == bit:
                    glyph = "~" if bit else "_"
                else:
                    glyph = "/" if bit else "\\"
                row.append((glyph * 1).ljust(column, "~" if bit else "_"))
                previous_bit = bit
            else:
                row.append(_format_value(value, width, column - 1) + " ")
        lines.append("".join(row).rstrip())
    return "\n".join(lines)
