"""Single-bit nets and multi-bit buses.

A :class:`Signal` is one net: it has a current logic value, at most one
driver (a gate, flip-flop, tristate group or primary input) and a fanout
list used by the event-driven simulator.  A :class:`Bus` is an ordered
little-endian collection of signals (``bus[0]`` is the LSB, matching the
paper's location-zero-is-LSB convention).

Values are plain ints 0/1.  There is no X/Z propagation: flip-flops reset
to defined values and tristate groups are checked for driver conflicts,
so the model never needs unknowns — a deliberate simplification that
keeps simulation exact and fast.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.util.bits import check_uint

__all__ = ["Signal", "Bus"]


class Signal:
    """One single-bit net."""

    __slots__ = ("name", "value", "driver", "fanout", "index", "is_input")

    def __init__(self, name: str, index: int):
        self.name = name
        #: Current simulated logic value (0 or 1).
        self.value = 0
        #: The gate/flip-flop/tristate-group driving this net, or ``None``
        #: for primary inputs and constants.
        self.driver = None
        #: Gates that read this net (filled in by the circuit builder).
        self.fanout: list = []
        #: Dense id assigned by the circuit; used as an array index.
        self.index = index
        #: True for primary inputs (set via :meth:`Simulator.set_input`).
        self.is_input = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name}={self.value})"


class Bus:
    """An ordered, little-endian group of signals."""

    __slots__ = ("name", "signals")

    def __init__(self, name: str, signals: Sequence[Signal]):
        if not signals:
            raise ValueError(f"bus {name!r} must have at least one signal")
        self.name = name
        self.signals = list(signals)

    @property
    def width(self) -> int:
        """Number of bits in the bus."""
        return len(self.signals)

    def __len__(self) -> int:
        return len(self.signals)

    def __iter__(self) -> Iterator[Signal]:
        return iter(self.signals)

    def __getitem__(self, index):
        """Single signal for int index; a sub-:class:`Bus` for slices."""
        if isinstance(index, slice):
            return Bus(f"{self.name}[{index.start}:{index.stop}]", self.signals[index])
        return self.signals[index]

    def value(self) -> int:
        """Pack the current bit values into an integer (bit 0 = LSB)."""
        word = 0
        for i, sig in enumerate(self.signals):
            word |= sig.value << i
        return word

    def field(self, high: int, low: int) -> "Bus":
        """Sub-bus ``[high down to low]`` inclusive, paper notation."""
        if high < low or low < 0 or high >= self.width:
            raise ValueError(
                f"field [{high}:{low}] out of range for {self.width}-bit bus {self.name!r}"
            )
        return Bus(f"{self.name}[{high}:{low}]", self.signals[low : high + 1])

    def poke(self, value: int) -> list[Signal]:
        """Force the bus bits to ``value``; returns the signals that changed.

        Only legal on primary-input buses — the simulator enforces this,
        this method just writes values.
        """
        check_uint(value, self.width, f"value for bus {self.name!r}")
        changed = []
        for i, sig in enumerate(self.signals):
            bit = (value >> i) & 1
            if sig.value != bit:
                sig.value = bit
                changed.append(sig)
        return changed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bus({self.name}[{self.width}]={self.value():#x})"
