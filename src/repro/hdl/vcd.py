"""Value-change-dump (VCD) writer.

Produces standard IEEE-1364 VCD that GTKWave and friends open directly,
so the reproduction's waveforms (paper Figs 5–8) can be inspected with
ordinary tooling rather than only through the ASCII renderer.

Usage::

    writer = VcdWriter(timescale="10ns")
    writer.declare("plaintext", 32)
    writer.declare("state", 3)
    ...
    writer.sample(cycle, {"plaintext": 0xABCD1234, "state": 1})
    text = writer.render()
"""

from __future__ import annotations

__all__ = ["VcdWriter"]

# Printable identifier characters per the VCD grammar.
_ID_ALPHABET = "".join(chr(c) for c in range(33, 127))


class VcdWriter:
    """Accumulates samples and renders a VCD document string."""

    def __init__(self, timescale: str = "10ns", module: str = "mhhea"):
        self.timescale = timescale
        self.module = module
        self._vars: dict[str, tuple[str, int]] = {}
        self._samples: list[tuple[int, dict[str, int]]] = []
        self._last_time: int | None = None

    def declare(self, name: str, width: int) -> None:
        """Register a variable before the first sample."""
        if self._samples:
            raise RuntimeError("declare() must precede the first sample()")
        if name in self._vars:
            raise ValueError(f"duplicate VCD variable {name!r}")
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        ident = self._identifier(len(self._vars))
        self._vars[name] = (ident, width)

    def sample(self, time: int, values: dict[str, int]) -> None:
        """Record values at ``time`` (monotonically non-decreasing)."""
        if self._last_time is not None and time < self._last_time:
            raise ValueError(f"time went backwards: {time} < {self._last_time}")
        unknown = set(values) - set(self._vars)
        if unknown:
            raise KeyError(f"undeclared VCD variables: {sorted(unknown)}")
        self._samples.append((time, dict(values)))
        self._last_time = time

    def render(self) -> str:
        """Produce the complete VCD document."""
        lines = [
            "$date reproduction run $end",
            "$version repro.hdl.vcd $end",
            f"$timescale {self.timescale} $end",
            f"$scope module {self.module} $end",
        ]
        for name, (ident, width) in self._vars.items():
            kind = "wire" if width == 1 else "reg"
            lines.append(f"$var {kind} {width} {ident} {name} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")

        previous: dict[str, int] = {}
        for time, values in self._samples:
            changes = []
            for name, value in values.items():
                if previous.get(name) != value:
                    changes.append(self._format_change(name, value))
                    previous[name] = value
            if changes:
                lines.append(f"#{time}")
                lines.extend(changes)
        return "\n".join(lines) + "\n"

    def write(self, path: str) -> None:
        """Render and write to ``path``."""
        with open(path, "w", encoding="ascii") as handle:
            handle.write(self.render())

    def _format_change(self, name: str, value: int) -> str:
        ident, width = self._vars[name]
        if value < 0 or value >= (1 << width):
            raise ValueError(f"{name}={value} does not fit in {width} bits")
        if width == 1:
            return f"{value}{ident}"
        return f"b{value:0{width}b} {ident}"

    @staticmethod
    def _identifier(index: int) -> str:
        base = len(_ID_ALPHABET)
        chars = []
        index += 1
        while index:
            index, digit = divmod(index - 1, base)
            chars.append(_ID_ALPHABET[digit])
        return "".join(reversed(chars))
