"""Netlist statistics, text dumps and CAD-facing DAG views.

The FPGA flow consumes circuits through this module rather than poking at
:class:`~repro.hdl.circuit.Circuit` internals:

* :func:`netlist_stats` — the raw resource inventory (gate histogram,
  flip-flops, tristate buffers, I/O bits) that seeds the design summary;
* :func:`netlist_text` — a human-readable structural dump, our analogue
  of the paper's circuit diagrams (Figs 11–14);
* :func:`combinational_dag` — the gate-level DAG between *mapping
  boundaries* (primary I/O, flip-flop pins, tristate pins) in topological
  order, which is exactly what the FlowMap mapper needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hdl.circuit import Circuit
from repro.hdl.gates import Gate, TristateGroup
from repro.hdl.signal import Signal

__all__ = ["NetlistStats", "netlist_stats", "netlist_text", "combinational_dag", "MappingDag"]


@dataclass(frozen=True)
class NetlistStats:
    """Resource inventory of one circuit."""

    name: str
    n_signals: int
    n_gates: int
    gate_histogram: dict[str, int]
    n_dffs: int
    n_tbufs: int
    n_tristate_nets: int
    n_input_bits: int
    n_output_bits: int

    @property
    def n_io_bits(self) -> int:
        """Total bonded-I/O bits (inputs + outputs), the IOB demand."""
        return self.n_input_bits + self.n_output_bits


def netlist_stats(circuit: Circuit) -> NetlistStats:
    """Compute the :class:`NetlistStats` of a circuit."""
    histogram: dict[str, int] = {}
    for gate in circuit.gates:
        histogram[gate.kind] = histogram.get(gate.kind, 0) + 1
    return NetlistStats(
        name=circuit.name,
        n_signals=len(circuit.signals),
        n_gates=len(circuit.gates),
        gate_histogram=dict(sorted(histogram.items())),
        n_dffs=len(circuit.dffs),
        n_tbufs=circuit.n_tbufs(),
        n_tristate_nets=len(circuit.tristate_groups),
        n_input_bits=sum(b.width for b in circuit.inputs.values()),
        n_output_bits=sum(b.width for b in circuit.outputs.values()),
    )


def netlist_text(circuit: Circuit, max_gates: int | None = None) -> str:
    """Render a structural dump: ports, registers, gates, tristate nets.

    This is the reproduction's stand-in for the paper's appendix circuit
    diagrams — the full connectivity, one instance per line.
    """
    stats = netlist_stats(circuit)
    lines = [f"circuit {circuit.name}"]
    for name, bus in circuit.inputs.items():
        lines.append(f"  input  {name}[{bus.width}]")
    for name, bus in circuit.outputs.items():
        lines.append(f"  output {name}[{bus.width}]")
    lines.append(
        f"  ; {stats.n_gates} gates, {stats.n_dffs} dffs, {stats.n_tbufs} tbufs"
    )
    for ff in circuit.dffs:
        extras = []
        if ff.enable is not None:
            extras.append(f"ce={ff.enable.name}")
        if ff.reset is not None:
            extras.append(f"sr={ff.reset.name}")
        suffix = (" " + " ".join(extras)) if extras else ""
        lines.append(f"  dff  {ff.q.name} <= {ff.d.name}{suffix}")
    shown = circuit.gates if max_gates is None else circuit.gates[:max_gates]
    for gate in shown:
        ins = ", ".join(s.name for s in gate.inputs)
        lines.append(f"  {gate.kind.lower():6s} {gate.output.name} <= {ins}")
    if max_gates is not None and len(circuit.gates) > max_gates:
        lines.append(f"  ; ... {len(circuit.gates) - max_gates} more gates")
    for group in circuit.tristate_groups:
        for t in group.buffers:
            lines.append(
                f"  tbuf  {group.output.name} <= {t.input.name} when {t.enable.name}"
            )
    return "\n".join(lines)


@dataclass
class MappingDag:
    """The combinational DAG between sequential/IO boundaries.

    ``nodes``
        Gates in topological order (excludes constants — they become
        free inputs to the mapper).
    ``sources``
        Signals that logic cones may *start* from: primary inputs,
        flip-flop Q pins, tristate-group outputs and constants.
    ``sinks``
        Signals whose values must exist as mapped nets: primary outputs,
        flip-flop D/CE/SR pins and tristate data/enable pins.
    """

    nodes: list[Gate] = field(default_factory=list)
    sources: list[Signal] = field(default_factory=list)
    sinks: list[Signal] = field(default_factory=list)


def combinational_dag(circuit: Circuit) -> MappingDag:
    """Extract the mapper-facing DAG from a circuit.

    Requires a levelised circuit (gate ``level`` fields set), which the
    simulator's constructor guarantees; the FPGA flow levelises via a
    throwaway :class:`~repro.hdl.sim.Simulator` when necessary.
    """
    dag = MappingDag()
    seen_sources: set[int] = set()

    def add_source(sig: Signal) -> None:
        if id(sig) not in seen_sources:
            seen_sources.add(id(sig))
            dag.sources.append(sig)

    for bus in circuit.inputs.values():
        for sig in bus:
            add_source(sig)
    for ff in circuit.dffs:
        add_source(ff.q)
    for group in circuit.tristate_groups:
        add_source(group.output)

    const_kinds = ("CONST0", "CONST1")
    for gate in sorted(circuit.gates, key=lambda g: g.level):
        if gate.kind in const_kinds:
            add_source(gate.output)
        else:
            dag.nodes.append(gate)

    seen_sinks: set[int] = set()

    def add_sink(sig: Signal) -> None:
        if id(sig) not in seen_sinks:
            seen_sinks.add(id(sig))
            dag.sinks.append(sig)

    for bus in circuit.outputs.values():
        for sig in bus:
            add_sink(sig)
    for ff in circuit.dffs:
        add_sink(ff.d)
        if ff.enable is not None:
            add_sink(ff.enable)
        if ff.reset is not None:
            add_sink(ff.reset)
    for group in circuit.tristate_groups:
        for t in group.buffers:
            add_sink(t.input)
            add_sink(t.enable)
    return dag
