"""Exception hierarchy for the reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  Subclasses separate the three
failure domains a caller can actually handle differently: bad key
material, malformed cipher payloads, and exhausted cover/vector sources.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "KeyError_",
    "CipherFormatError",
    "CoverExhaustedError",
    "HardwareModelError",
    "FlowError",
    "SessionError",
    "HandshakeError",
    "ReplayError",
]


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class KeyError_(ReproError):
    """Invalid key material (range, length, parse failures).

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`KeyError` while keeping the obvious name.
    """


class CipherFormatError(ReproError):
    """A ciphertext container or vector stream is malformed or truncated."""


class CoverExhaustedError(ReproError):
    """The steganographic cover ran out of capacity for the message."""


class HardwareModelError(ReproError):
    """An RTL model was driven outside its contract (protocol misuse)."""


class FlowError(ReproError):
    """The FPGA CAD flow could not complete (capacity, unroutable, ...)."""


class SessionError(ReproError):
    """A secure-link session was misused or exhausted (see repro.net)."""


class HandshakeError(SessionError):
    """The peers could not agree on a link configuration or key."""


class ReplayError(SessionError):
    """A received packet's sequence number was already accepted."""
