"""Exception hierarchy for the reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  Subclasses separate the three
failure domains a caller can actually handle differently: bad key
material, malformed cipher payloads, and exhausted cover/vector sources.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ReproKeyError",
    "KeyError_",
    "CipherFormatError",
    "CoverExhaustedError",
    "HardwareModelError",
    "FlowError",
    "SessionError",
    "HandshakeError",
    "KexError",
    "TenantRevokedError",
    "ReplayError",
    "UnknownEngineError",
]


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ReproKeyError(ReproError):
    """Invalid key material (range, length, parse failures).

    Historically exported as ``KeyError_`` (trailing underscore to avoid
    shadowing the builtin :class:`KeyError`); that alias is kept for
    compatibility but deprecated — new code should catch
    :class:`ReproKeyError`.
    """


#: Deprecated alias for :class:`ReproKeyError`; kept so existing
#: ``except KeyError_`` handlers keep working.
KeyError_ = ReproKeyError


class CipherFormatError(ReproError):
    """A ciphertext container or vector stream is malformed or truncated."""


class CoverExhaustedError(ReproError):
    """The steganographic cover ran out of capacity for the message."""


class HardwareModelError(ReproError):
    """An RTL model was driven outside its contract (protocol misuse)."""


class FlowError(ReproError):
    """The FPGA CAD flow could not complete (capacity, unroutable, ...)."""


class SessionError(ReproError):
    """A secure-link session was misused or exhausted (see repro.net)."""


class HandshakeError(SessionError):
    """The peers could not agree on a link configuration or key."""


class KexError(HandshakeError):
    """The key-exchange phase failed (see repro.kex).

    Raised for malformed kex frames, contributory-behaviour failures
    (an all-zero X25519 shared secret from a low-order public key),
    confirmation-MAC mismatches, rejected resumption tickets, and
    downgrade attempts.  Subclassing :class:`HandshakeError` keeps
    handlers written against the pre-kex link working unchanged.
    """


class TenantRevokedError(KexError):
    """A tenant's key branch is revoked or expired (see repro.kex.keyring).

    Raised wherever a derivation for that tenant is attempted — which
    includes the middle of a responder handshake, since the auth secret
    is resolved per tenant from the ClientHello — so admission layers
    (the relay) can map it to a typed rejection rather than a generic
    handshake failure.  ``tenant_id`` carries the 16-byte wire form.
    """

    def __init__(self, message: str, *, tenant_id: bytes = b""):
        super().__init__(message)
        self.tenant_id = tenant_id


class ReplayError(SessionError):
    """A received packet's sequence number was already accepted."""


class UnknownEngineError(SessionError, ValueError):
    """An engine name is not present in the engine registry.

    Raised eagerly wherever an engine selector enters the system — the
    :class:`repro.api.Codec` constructor,
    :meth:`repro.net.session.SessionConfig.validate`, the CLI
    ``--engine`` flag and every core entry point that still accepts a
    name — and its message always lists the registered engines.

    The multiple inheritance is deliberate compatibility glue: before
    the registry existed, a bad engine name surfaced as a plain
    :class:`ValueError` from the core layer and as a
    :class:`SessionError` from the link layer, so handlers written
    against either keep working.
    """
