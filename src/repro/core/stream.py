"""Packet container for (M)HHEA ciphertext.

The paper positions the micro-architecture for "packet-level encryption"
on high-speed links (section VI).  This module defines the wire format a
software peer of that hardware would speak: a fixed 22-byte header
followed by the hiding vectors, little-endian, with a CRC-16 over the
header and payload.  The header carries exactly the non-secret metadata
decryption needs — algorithm, vector width, message bit count — plus the
RNG nonce for auditability.

Wire layout (all multi-byte fields little-endian)::

    offset  size  field
    0       4     magic  b"MHEA"
    4       1     version (currently 2)
    5       1     algorithm: 1 = MHHEA, 0 = plain HHEA
    6       1     vector width in bits
    7       1     flags (reserved, must be zero)
    8       4     nonce (LFSR seed used by the sender)
    12      4     message length in bits
    16      4     vector count
    20      2     CRC-16/CCITT-FALSE of header (with this field zeroed)
                  plus payload
    22      ...   payload: vector_count * width/8 bytes

Version 2 extended the CRC from payload-only to header-plus-payload:
the secure link (repro.net) derives replay-window state from the nonce
field, so header corruption must be as detectable as payload corruption
(DESIGN.md section 5).
"""

from __future__ import annotations

import struct
import warnings
from concurrent.futures import Executor
from dataclasses import dataclass, replace
from typing import Sequence

from repro.core import engines as _engines
from repro.core.errors import CipherFormatError
from repro.core.key import Key
from repro.core.params import VectorParams
from repro.obs import core as _obs
from repro.util.bits import mask
from repro.util.crc import crc16_ccitt
from repro.util.lfsr import Lfsr

__all__ = [
    "MAGIC",
    "VERSION",
    "ALGORITHM_HHEA",
    "ALGORITHM_MHHEA",
    "NONCE_MAX",
    "PacketHeader",
    "validate_nonce",
    "verify_packet",
    "encrypt_packet",
    "decrypt_packet",
    "encrypt_packets",
    "decrypt_packets",
    "split_packets",
]

MAGIC = b"MHEA"
VERSION = 2
ALGORITHM_HHEA = 0
ALGORITHM_MHHEA = 1

_HEADER = struct.Struct("<4sBBBBIIIH")
HEADER_SIZE = _HEADER.size

#: Largest nonce the 32-bit header field can carry.
NONCE_MAX = 0xFFFFFFFF


def _algorithm_name(algorithm: int) -> str:
    """Map a wire algorithm id onto the registry's algorithm name."""
    return _engines.MHHEA if algorithm == ALGORITHM_MHHEA else _engines.HHEA


def _resolve_engine(engine) -> "_engines.Engine":
    """Resolve an ``engine=`` argument; deprecation shim for names.

    ``None`` means the library default and an
    :class:`~repro.core.engines.Engine` instance is the resolved-caller
    path (what :class:`repro.api.Codec` and the session layer pass) —
    both silent.  A *string* is the legacy stringly-typed selector:
    still honoured, still byte-identical on the wire, but it emits one
    :class:`DeprecationWarning` per call pointing at the facade.
    Unknown names raise
    :class:`~repro.core.errors.UnknownEngineError` eagerly.
    """
    if engine is None or isinstance(engine, _engines.Engine):
        return _engines.get_engine(engine)
    backend = _engines.get_engine(engine)  # eager UnknownEngineError
    warnings.warn(
        "passing engine= by name to repro.core.stream entry points is "
        "deprecated; bind the engine once in a repro.api.Codec (or pass "
        "the object from repro.core.engines.get_engine)",
        DeprecationWarning, stacklevel=3,
    )
    return backend


def validate_nonce(nonce: int, width: int) -> int:
    """Check that ``nonce`` is usable for a ``width``-bit hiding vector.

    The full nonce discipline lives in DESIGN.md section 4; the wire-level
    rules enforced here are:

    * it must be a positive integer that fits the 32-bit header field
      (values are rejected rather than silently truncated), and
    * its low ``width`` bits must not all be zero — the LFSR seed is the
      nonce reduced modulo ``2**width``, and the all-zero state would
      freeze the generator.

    Returns the nonce unchanged so callers can validate inline.  Raises
    :class:`CipherFormatError` (not a bare :class:`ValueError` from deep
    inside the LFSR) so link code can handle it uniformly.
    """
    if not isinstance(nonce, int) or isinstance(nonce, bool):
        raise CipherFormatError(
            f"nonce must be an int, got {type(nonce).__name__}"
        )
    if not 0 < nonce <= NONCE_MAX:
        raise CipherFormatError(
            f"nonce {nonce:#x} does not fit the 32-bit header field "
            f"(must be 1..{NONCE_MAX:#x})"
        )
    if nonce & mask(width) == 0:
        raise CipherFormatError(
            f"nonce {nonce:#x} reduces to zero modulo 2**{width} and would "
            f"seed the {width}-bit LFSR with its frozen all-zero state"
        )
    return nonce


@dataclass(frozen=True)
class PacketHeader:
    """Decoded header of one ciphertext packet."""

    algorithm: int
    width: int
    nonce: int
    n_bits: int
    n_vectors: int
    crc: int

    @property
    def payload_size(self) -> int:
        """Payload length in bytes implied by the header."""
        return self.n_vectors * (self.width // 8)

    def pack(self) -> bytes:
        """Serialise to the 22-byte wire header."""
        return _HEADER.pack(
            MAGIC, VERSION, self.algorithm, self.width, 0,
            self.nonce, self.n_bits, self.n_vectors, self.crc,
        )

    @classmethod
    def unpack(cls, blob: bytes) -> "PacketHeader":
        """Parse and validate the wire header."""
        if len(blob) < HEADER_SIZE:
            raise CipherFormatError(
                f"packet too short for header: {len(blob)} < {HEADER_SIZE}"
            )
        magic, version, algorithm, width, flags, nonce, n_bits, n_vectors, crc = (
            _HEADER.unpack_from(blob)
        )
        if magic != MAGIC:
            raise CipherFormatError(f"bad magic {magic!r}")
        if version != VERSION:
            raise CipherFormatError(f"unsupported version {version}")
        if algorithm not in (ALGORITHM_HHEA, ALGORITHM_MHHEA):
            raise CipherFormatError(f"unknown algorithm id {algorithm}")
        if flags != 0:
            raise CipherFormatError(f"reserved flags set: {flags:#x}")
        if width == 0 or width % 8 != 0:
            raise CipherFormatError(f"vector width {width} is not a whole byte count")
        return cls(algorithm, width, nonce, n_bits, n_vectors, crc)


def _packet_crc(header: PacketHeader, payload: bytes) -> int:
    """CRC-16 over the whole packet with the CRC field itself zeroed.

    Covering the header (not just the payload) matters to the link
    layer: the receive side derives its replay window from the nonce
    field, so a flipped nonce bit must fail the checksum instead of
    silently shifting the window (DESIGN.md section 5).

    The CRC is chained (header first, then payload continued from the
    header's register state) rather than computed over a concatenation:
    ``payload`` may be a zero-copy :class:`memoryview` from the framing
    layer, and ``bytes + memoryview`` would both copy and ``TypeError``.
    """
    return crc16_ccitt(payload, init=crc16_ccitt(replace(header, crc=0).pack()))


#: Vector sizes with a native struct format (covers every power-of-two
#: width up to 64); other byte-multiple widths fall back to the loop.
_STRUCT_CODES = {1: "B", 2: "H", 4: "I", 8: "Q"}


def _vectors_to_payload(vectors: tuple[int, ...] | list[int], width: int) -> bytes:
    step = width // 8
    code = _STRUCT_CODES.get(step)
    if code is not None:
        return struct.pack(f"<{len(vectors)}{code}", *vectors)
    out = bytearray()
    for vector in vectors:
        out += vector.to_bytes(step, "little")
    return bytes(out)


def _payload_to_vectors(payload: bytes, width: int) -> list[int]:
    step = width // 8
    if len(payload) % step != 0:
        raise CipherFormatError(
            f"payload length {len(payload)} not a multiple of vector size {step}"
        )
    code = _STRUCT_CODES.get(step)
    if code is not None:
        return list(struct.unpack(f"<{len(payload) // step}{code}", payload))
    return [
        int.from_bytes(payload[i : i + step], "little")
        for i in range(0, len(payload), step)
    ]


def encrypt_packet(
    plaintext: bytes,
    key: Key,
    nonce: int = 0xACE1,
    algorithm: int = ALGORITHM_MHHEA,
    engine: "str | _engines.Engine | None" = None,
) -> bytes:
    """Encrypt ``plaintext`` into one self-describing packet.

    ``nonce`` seeds the hiding-vector LFSR; it must satisfy
    :func:`validate_nonce` and must never repeat between packets encrypted
    under the same key — vector reuse degrades the hiding exactly as IV
    reuse does for a stream cipher.  DESIGN.md section 4 specifies the
    discipline once; :class:`repro.net.session.Session` automates it for
    link traffic.

    ``engine`` selects the implementation through the registry
    (:mod:`repro.core.engines`): ``None`` is the library default, an
    :class:`~repro.core.engines.Engine` instance is used as-is, and a
    name is the deprecated legacy spelling (one
    :class:`DeprecationWarning`; prefer binding a
    :class:`repro.api.Codec`).  Every engine emits byte-identical wire
    packets, so mixed-engine links interoperate freely.
    """
    backend = _resolve_engine(engine)
    registry = _obs.get_registry()
    start = registry.clock() if registry.enabled else 0.0
    params = key.params
    if params.width % 8 != 0:
        raise CipherFormatError(
            f"packet format requires byte-multiple vector widths, got {params.width}"
        )
    if algorithm not in (ALGORITHM_HHEA, ALGORITHM_MHHEA):
        raise CipherFormatError(f"unknown algorithm id {algorithm}")
    validate_nonce(nonce, params.width)
    source = Lfsr(params.width, seed=nonce)
    n_bits = len(plaintext) * 8
    vectors = backend.embed_bytes(key, _algorithm_name(algorithm), params,
                                  plaintext, source)
    payload = _vectors_to_payload(vectors, params.width)
    header = PacketHeader(
        algorithm=algorithm,
        width=params.width,
        nonce=nonce,
        n_bits=n_bits,
        n_vectors=len(vectors),
        crc=0,
    )
    header = replace(header, crc=_packet_crc(header, payload))
    packet = header.pack() + payload
    if registry.enabled:
        registry.counter("repro_engine_ops_total",
                         engine=backend.name, op="encrypt").inc()
        registry.histogram("repro_engine_op_seconds",
                           engine=backend.name,
                           op="encrypt").observe(registry.clock() - start)
    return packet


def verify_packet(packet: bytes) -> PacketHeader:
    """Structurally validate one packet without decrypting it.

    Parses the header, checks the payload-length bookkeeping and the
    CRC-16 over header plus payload; returns the parsed header.  This is
    the integrity half of :func:`decrypt_packet`, split out so the
    framing layer (``FrameDecoder(verify_crc=True)``) can refuse to emit
    a damaged frame without holding any key material.

    ``packet`` may be any bytes-like object; the zero-copy receive path
    hands in memoryviews and nothing here materialises them.
    """
    header = PacketHeader.unpack(packet)
    _verify_parsed(packet, header)
    return header


def _verify_parsed(packet: bytes, header: PacketHeader) -> None:
    """The integrity half of :func:`verify_packet` after header parsing.

    Split out so the batched session decrypt path — which already parsed
    the header for replay-window admission — does not parse it twice.
    """
    if header.n_bits % 8 != 0:
        # encrypt_packet only ever writes whole bytes; catching the
        # violation here keeps decrypt_packet's error contract uniform
        # (CipherFormatError) and skips the doomed extraction entirely.
        raise CipherFormatError(
            f"header n_bits {header.n_bits} is not a whole byte count"
        )
    payload = packet[HEADER_SIZE : HEADER_SIZE + header.payload_size]
    if len(payload) != header.payload_size:
        raise CipherFormatError(
            f"truncated payload: have {len(payload)}, header says {header.payload_size}"
        )
    if len(packet) > HEADER_SIZE + header.payload_size:
        raise CipherFormatError("trailing bytes after payload")
    actual_crc = _packet_crc(header, payload)
    if actual_crc != header.crc:
        raise CipherFormatError(
            f"packet CRC mismatch: header {header.crc:#06x}, computed {actual_crc:#06x}"
        )


def _extract_verified(packet: bytes, header: PacketHeader, key: Key,
                      backend: "_engines.Engine") -> bytes:
    """Extraction half of :func:`decrypt_packet`, after verification.

    Shared by the single-packet path and the session batch path; the
    caller guarantees ``header`` came from ``packet`` and the packet
    passed :func:`verify_packet`'s checks.
    """
    params = key.params
    if header.width != params.width:
        raise CipherFormatError(
            f"packet uses {header.width}-bit vectors but key is for {params.width}"
        )
    payload = packet[HEADER_SIZE : HEADER_SIZE + header.payload_size]
    vectors = _payload_to_vectors(payload, header.width)
    return backend.extract_bytes(key, _algorithm_name(header.algorithm),
                                 params, vectors, header.n_bits)


def decrypt_packet(packet: bytes, key: Key,
                   engine: "str | _engines.Engine | None" = None) -> bytes:
    """Decrypt one packet produced by :func:`encrypt_packet`.

    Raises :class:`CipherFormatError` on any structural damage: bad magic,
    truncation, CRC mismatch, or a width that disagrees with the key's
    parameter set.  ``engine`` selects the implementation exactly as for
    :func:`encrypt_packet`; any engine decrypts any engine's output.
    """
    backend = _resolve_engine(engine)
    registry = _obs.get_registry()
    start = registry.clock() if registry.enabled else 0.0
    header = verify_packet(packet)
    plaintext = _extract_verified(packet, header, key, backend)
    if registry.enabled:
        registry.counter("repro_engine_ops_total",
                         engine=backend.name, op="decrypt").inc()
        registry.histogram("repro_engine_op_seconds",
                           engine=backend.name,
                           op="decrypt").observe(registry.clock() - start)
    return plaintext


def _encrypt_one(job: tuple) -> bytes:
    """Executor-shippable helper for :func:`encrypt_packets`.

    Top level (hence picklable) so batch entry points work with process
    pools as well as thread pools; the job tuple carries everything.
    """
    payload, key, nonce, algorithm, engine = job
    return encrypt_packet(payload, key, nonce=nonce, algorithm=algorithm,
                          engine=engine)


def _decrypt_one(job: tuple) -> bytes:
    """Executor-shippable helper for :func:`decrypt_packets`."""
    packet, key, engine = job
    return decrypt_packet(packet, key, engine=engine)


def encrypt_packets(
    payloads: Sequence[bytes],
    key: Key,
    nonces: Sequence[int],
    algorithm: int = ALGORITHM_MHHEA,
    engine: "str | _engines.Engine | None" = None,
    executor: Executor | None = None,
) -> list[bytes]:
    """Encrypt many payloads into packets, optionally on an executor.

    The batch analogue of :func:`encrypt_packet`: payload ``i`` is
    encrypted under ``nonces[i]`` and results keep input order.  With
    ``executor=None`` the loop runs inline; any
    :class:`concurrent.futures.Executor` (thread or process pool) can be
    passed to fan the packets out — results are byte-identical either
    way, since each packet is an independent pure function of its
    inputs.  For long-lived process pools with per-worker schedule
    caching and crash recovery, prefer
    :class:`repro.parallel.EncryptionPool` /
    :class:`repro.parallel.ParallelCodec`, which avoid re-shipping the
    key with every job.

    Raises :class:`ValueError` when ``payloads`` and ``nonces`` differ
    in length, plus everything :func:`encrypt_packet` raises (nonce
    validation happens per packet, inside the jobs).
    """
    backend = _resolve_engine(engine)
    if len(payloads) != len(nonces):
        raise ValueError(
            f"{len(payloads)} payloads but {len(nonces)} nonces"
        )
    jobs = [(payload, key, nonce, algorithm, backend)
            for payload, nonce in zip(payloads, nonces)]
    if executor is None:
        return [_encrypt_one(job) for job in jobs]
    return list(executor.map(_encrypt_one, jobs))


def decrypt_packets(
    packets: Sequence[bytes],
    key: Key,
    engine: "str | _engines.Engine | None" = None,
    executor: Executor | None = None,
) -> list[bytes]:
    """Decrypt many packets, optionally on an executor; order-preserving.

    The batch analogue of :func:`decrypt_packet`, with the same executor
    semantics as :func:`encrypt_packets`.  Any structural or CRC failure
    in any packet propagates as :class:`CipherFormatError`.
    """
    backend = _resolve_engine(engine)
    jobs = [(packet, key, backend) for packet in packets]
    if executor is None:
        return [_decrypt_one(job) for job in jobs]
    return list(executor.map(_decrypt_one, jobs))


def split_packets(stream: bytes) -> list[bytes]:
    """Split a byte stream of back-to-back packets into individual packets.

    This is what a receiver does on a framed link: parse each header,
    consume the advertised payload, repeat.  Raises
    :class:`CipherFormatError` if the stream ends mid-packet.
    """
    packets: list[bytes] = []
    offset = 0
    while offset < len(stream):
        header = PacketHeader.unpack(stream[offset:])
        end = offset + HEADER_SIZE + header.payload_size
        if end > len(stream):
            raise CipherFormatError(
                f"stream ends mid-packet at offset {offset} (need {end - len(stream)} more bytes)"
            )
        packets.append(stream[offset:end])
        offset = end
    return packets
