"""Parameter set of the (M)HHEA family.

The paper evaluates a 16-bit hiding vector but explicitly sells the
architecture as parametric: "A design that allows the size of the hiding
vector registers to be varied.  Accordingly, a variable level of data
security can be obtained" (section VI).  :class:`VectorParams` captures
that degree of freedom once so the cipher, the RTL models and the width
sweep benchmark (experiment E15) all derive the same geometry:

* the vector is ``width`` bits;
* replacement windows live in the *low half*, locations
  ``0 .. width//2 - 1``;
* the *high half* supplies the location-scrambling bits and is never
  overwritten, which is what makes decryption possible;
* key values are ``key_bits``-wide integers indexing the low half
  (``key_bits = log2(width//2)``, 3 bits for the paper's 16-bit vector);
* the data-scrambling index ``q`` cycles modulo ``key_bits``
  (the pseudocode's ``q := q mod 3``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["VectorParams", "PAPER_PARAMS"]


@dataclass(frozen=True)
class VectorParams:
    """Geometry of the hiding vector and key space.

    Parameters
    ----------
    width:
        Hiding-vector width in bits.  Must be a power of two, at least 4,
        so the low half is a power of two and key values pack exactly.
    """

    width: int = 16

    def __post_init__(self) -> None:
        if self.width < 4:
            raise ValueError(f"vector width must be >= 4, got {self.width}")
        if self.width & (self.width - 1):
            raise ValueError(f"vector width must be a power of two, got {self.width}")

    @property
    def half(self) -> int:
        """Size of the replacement region (and of the scramble region)."""
        return self.width // 2

    @property
    def key_bits(self) -> int:
        """Width of one key integer: ``log2(half)`` (3 for the paper)."""
        return self.half.bit_length() - 1

    @property
    def key_max(self) -> int:
        """Largest legal key value (7 for the paper)."""
        return self.half - 1

    @property
    def max_window(self) -> int:
        """Widest possible replacement window (8 bits for the paper)."""
        return self.half

    @property
    def scramble_low(self) -> int:
        """Lowest bit index of the scramble region (8 for the paper)."""
        return self.half

    def expected_window(self) -> float:
        """Expected *raw* window width ``E[|K1-K2|] + 1`` for uniform keys.

        For the paper's 3-bit keys this is 2.625 + 1 = 3.625 bits.  The
        paper's Table 1 instead charges the architecture the *maximum*
        window (8 bits) per output; see ``repro.analysis.throughput`` for
        the three accounting conventions.
        """
        n = self.half
        total = sum(abs(i - j) for i in range(n) for j in range(n))
        return total / (n * n) + 1.0

    def __str__(self) -> str:
        return f"VectorParams(width={self.width}, key_bits={self.key_bits})"


#: The exact configuration evaluated in the paper: 16-bit hiding vector,
#: 3-bit key integers, up to 8-bit replacement windows.
PAPER_PARAMS = VectorParams(width=16)
