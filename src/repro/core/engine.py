"""Shared embed/extract engine for the hiding-cipher family.

HHEA and MHHEA differ only in two policy points:

* how a key pair plus the current hiding vector produce the replacement
  window (*location policy* — identity for HHEA, scrambled for MHHEA), and
* which bit each message bit is XORed with before embedding (*data
  policy* — zero for HHEA, the cycling key bit ``K1[q]`` for MHHEA).

Everything else — vector sequencing, round-robin key pairs, EOF handling,
trace recording — is common and lives here exactly once, so the two
ciphers cannot drift apart.  The policies are plain callables, which also
lets tests inject pathological policies to probe the engine's invariants.

Framing
-------
The pseudocode treats the message as one flat bit stream; the hardware
splits it into 16-bit halves, and a replacement window is truncated when
the current half runs out (the remaining window positions keep their
random vector bits, exactly like the pseudocode's end-of-file guard).
``frame_bits`` selects between the two semantics: ``None`` is the flat
pseudocode, ``16`` reproduces the micro-architecture bit-for-bit.  Both
sides of a link must simply agree — the trade-off is documented in
DESIGN.md section 2.

This module is the *reference* engine: one bit per inner-loop iteration,
optimised for being obviously faithful to the pseudocode.  The
word-level production engine lives in :mod:`repro.core.fastpath` and is
pinned to this implementation by the differential conformance suite
(``tests/core/test_fastpath_equiv.py``, DESIGN.md section 8).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Protocol

from repro.core.errors import CipherFormatError
from repro.core.key import Key, KeyPair
from repro.core.params import VectorParams
from repro.core.trace import TraceRecorder, VectorTrace
from repro.util.bits import check_uint

__all__ = ["VectorSource", "WindowPolicy", "DataBitPolicy", "embed_stream", "extract_stream"]


class VectorSource(Protocol):
    """Anything that can supply fresh hiding vectors (LFSR, cover, ...)."""

    def next_word(self) -> int:  # pragma: no cover - protocol stub
        """Produce the next ``width``-bit hiding vector."""
        ...


#: Maps (sorted key pair, hiding vector, params) -> inclusive window bounds.
WindowPolicy = Callable[[KeyPair, int, VectorParams], tuple[int, int]]

#: Maps (sorted key pair, cycling index q) -> the scramble bit for position q.
DataBitPolicy = Callable[[KeyPair, int], int]


def _check_frame_bits(frame_bits: int | None) -> None:
    if frame_bits is not None and frame_bits <= 0:
        raise ValueError(f"frame_bits must be positive or None, got {frame_bits}")


def embed_stream(
    bits: Sequence[int],
    key: Key,
    source: VectorSource,
    window_policy: WindowPolicy,
    data_bit_policy: DataBitPolicy,
    params: VectorParams,
    trace: TraceRecorder | None = None,
    frame_bits: int | None = None,
) -> list[int]:
    """Embed a message bit stream into a sequence of hiding vectors.

    Faithful to the paper's pseudocode: one fresh vector per iteration,
    key pairs cycled ``i mod L``, window bits replaced in ascending
    location order, per-window scramble index ``q`` restarting at zero,
    and the final vector left partially random once the message ends
    (the ``if M[m] != EOF`` guard).  With ``frame_bits`` set, the same
    end-of-stream truncation also applies every ``frame_bits`` message
    bits, matching the hardware's buffer reloads.

    Returns the list of emitted vectors; an empty message yields an empty
    list, matching the ``while`` loop's entry condition.
    """
    _check_frame_bits(frame_bits)
    vectors: list[int] = []
    m = 0
    i = 0
    total = len(bits)
    frame_left = frame_bits if frame_bits is not None else total
    while m < total:
        pair = key.pair(i).sorted()
        vector = check_uint(source.next_word(), params.width, "hiding vector")
        kn1, kn2 = window_policy(pair, vector, params)
        _validate_window(kn1, kn2, params)
        budget = min(kn2 - kn1 + 1, frame_left, total - m)
        out = vector
        q = 0
        for offset in range(budget):
            j = kn1 + offset
            q %= params.key_bits
            bit = bits[m]
            if bit not in (0, 1):
                raise ValueError(f"message bit {m} is {bit!r}, expected 0 or 1")
            scrambled = bit ^ _check_data_bit(data_bit_policy(pair, q), q)
            out = (out & ~(1 << j)) | (scrambled << j)
            m += 1
            q += 1
        frame_left -= budget
        if frame_left == 0 and frame_bits is not None:
            frame_left = frame_bits
        vectors.append(out)
        if trace is not None:
            trace.add(
                VectorTrace(
                    iteration=i,
                    pair_index=i % len(key),
                    k1=pair.k1,
                    k2=pair.k2,
                    vector_in=vector,
                    kn1=kn1,
                    kn2=kn2,
                    m_start=m - budget,
                    bits_consumed=budget,
                    vector_out=out,
                )
            )
        i += 1
    return vectors


def extract_stream(
    vectors: Sequence[int],
    key: Key,
    n_bits: int,
    window_policy: WindowPolicy,
    data_bit_policy: DataBitPolicy,
    params: VectorParams,
    trace: TraceRecorder | None = None,
    strict: bool = True,
    frame_bits: int | None = None,
) -> list[int]:
    """Recover ``n_bits`` message bits from a hiding-vector sequence.

    Decryption never needs the RNG: the window policy only reads the
    scramble half of each vector, which the embedder is guaranteed never
    to overwrite (windows live in the low half by construction — see
    :class:`repro.core.params.VectorParams`).  ``frame_bits`` must match
    the value used at embed time.

    With ``strict=True`` (the default) the vector count must be exactly
    what the message length implies: truncated or trailing ciphertext
    raises :class:`CipherFormatError`.
    """
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    _check_frame_bits(frame_bits)
    bits: list[int] = []
    frame_left = frame_bits if frame_bits is not None else n_bits
    i = 0
    for vector in vectors:
        if len(bits) >= n_bits:
            if strict:
                raise CipherFormatError(
                    f"trailing ciphertext: message complete after {i} vectors "
                    f"but {len(vectors)} were supplied"
                )
            break
        pair = key.pair(i).sorted()
        check_uint(vector, params.width, "ciphertext vector")
        kn1, kn2 = window_policy(pair, vector, params)
        _validate_window(kn1, kn2, params)
        budget = min(kn2 - kn1 + 1, frame_left, n_bits - len(bits))
        q = 0
        for offset in range(budget):
            j = kn1 + offset
            q %= params.key_bits
            raw = (vector >> j) & 1
            bits.append(raw ^ _check_data_bit(data_bit_policy(pair, q), q))
            q += 1
        frame_left -= budget
        if frame_left == 0 and frame_bits is not None:
            frame_left = frame_bits
        if trace is not None:
            trace.add(
                VectorTrace(
                    iteration=i,
                    pair_index=i % len(key),
                    k1=pair.k1,
                    k2=pair.k2,
                    vector_in=vector,
                    kn1=kn1,
                    kn2=kn2,
                    m_start=len(bits) - budget,
                    bits_consumed=budget,
                    vector_out=vector,
                )
            )
        i += 1
    if len(bits) < n_bits:
        raise CipherFormatError(
            f"truncated ciphertext: recovered {len(bits)} of {n_bits} message bits"
        )
    return bits


def _validate_window(kn1: int, kn2: int, params: VectorParams) -> None:
    """Guard the engine against a broken window policy.

    Raises :class:`CipherFormatError` — not a bare :class:`ValueError` —
    so a pathological policy can never silently corrupt a stream and so
    callers handle it through the same hierarchy as any other malformed
    ciphertext.  The fast engine (:mod:`repro.core.fastpath`) enforces
    the identical contract.
    """
    if not 0 <= kn1 <= kn2 <= params.key_max:
        raise CipherFormatError(
            f"window policy produced illegal window [{kn1}, {kn2}] "
            f"for {params.width}-bit vectors"
        )


def _check_data_bit(bit: int, q: int) -> int:
    """Guard against a data policy that returns a non-bit (would corrupt
    neighbouring vector positions when shifted into place)."""
    if bit not in (0, 1):
        raise CipherFormatError(
            f"data-bit policy returned {bit!r} for q={q}, expected 0 or 1"
        )
    return bit
