"""The paper's primary contribution: the (M)HHEA cipher family.

Public surface:

* :class:`repro.core.mhhea.MhheaCipher` — the modified algorithm
  (location + data scrambling), the subject of the paper;
* :class:`repro.core.hhea.HheaCipher` — the unscrambled baseline the
  paper improves on;
* :class:`repro.core.key.Key` — key schedules (up to 16 pairs of small
  integers);
* :class:`repro.core.params.VectorParams` — hiding-vector geometry
  (the paper's configuration is :data:`repro.core.params.PAPER_PARAMS`);
* :mod:`repro.core.stream` — the packet container for link-level use
  (single and batch entry points, the latter executor-aware);
* :mod:`repro.core.fastpath` — the word-level fast engine
  (:class:`repro.core.fastpath.BatchCodec` for batched packet
  workloads);
* :mod:`repro.core.engines` — the pluggable engine registry that makes
  ``"reference"``, ``"fast"`` and future backends interchangeable
  plugins (resolved once by :class:`repro.api.Codec`, validated eagerly
  with :class:`repro.core.errors.UnknownEngineError`).

Scaling beyond one core lives one layer up in :mod:`repro.parallel`
(sharded blobs, worker pools), which builds exclusively on this
package's public surface.
"""

from repro.core.engines import (
    Engine,
    get_engine,
    register_engine,
    registered_engines,
)
from repro.core.errors import (
    CipherFormatError,
    CoverExhaustedError,
    FlowError,
    HardwareModelError,
    KeyError_,
    ReproError,
    ReproKeyError,
    UnknownEngineError,
)
from repro.core.fastpath import BatchCodec
from repro.core.hhea import HheaCipher
from repro.core.key import Key, KeyPair, scramble_pair
from repro.core.mhhea import EncryptedMessage, MhheaCipher
from repro.core.params import PAPER_PARAMS, VectorParams
from repro.core.trace import TraceRecorder, VectorTrace

__all__ = [
    "CipherFormatError",
    "CoverExhaustedError",
    "FlowError",
    "HardwareModelError",
    "KeyError_",
    "ReproError",
    "ReproKeyError",
    "UnknownEngineError",
    "Engine",
    "get_engine",
    "register_engine",
    "registered_engines",
    "BatchCodec",
    "HheaCipher",
    "Key",
    "KeyPair",
    "scramble_pair",
    "EncryptedMessage",
    "MhheaCipher",
    "PAPER_PARAMS",
    "VectorParams",
    "TraceRecorder",
    "VectorTrace",
]
