"""Word-level bit-parallel engine for the hiding-cipher family.

:mod:`repro.core.engine` walks the message one bit at a time — faithful
to the paper's pseudocode, but far below what the algorithm allows in
software, exactly as the paper's serial reference was far below its FPGA
core.  This module is the software analogue of that hardware speedup: a
second, *bit-identical* implementation of the embed/extract engine that
operates on packed integers.

How it gets its speed (DESIGN.md section 8):

* **Packed messages** — the plaintext is one Python big integer with the
  canonical LSB-first bit order of :func:`repro.util.bits.bytes_to_bits`
  (bit ``m`` of the stream is bit ``m`` of ``int.from_bytes(data,
  "little")``), so a whole replacement window is one shift-and-mask.
* **Compiled key schedules** — each key pair is pre-sorted once into a
  *pair program*: the scramble-slice offset and mask for the location
  scramble, and the data-scramble bits of ``K1`` tiled into a
  ``max_window``-wide word, so embedding a window is a single XOR.
* **Leap-table LFSR** — hiding vectors come from
  :class:`repro.util.lfsr.LeapLfsr`, which jumps the register a whole
  word per table lookup instead of ``width`` single-bit steps.

Equivalence argument: the per-vector state of both engines is
``(pair index, vector source state, message cursor, frame_left)``.  Both
consume one vector per iteration from the same source sequence (the leap
tables are sampled from the reference :class:`~repro.util.lfsr.Lfsr`
itself), compute the same window (the mod-``half`` wrap is one
conditional subtract since ``kn1, span < half``), and consume the same
``budget = min(window, frame_left, remaining)`` bits; replacing the
reference's per-bit read-XOR-write loop with one masked word XOR is the
identity ``(chunk ^ scramble) & m == XOR of the per-bit scrambles``.
The differential suite (``tests/core/test_fastpath_equiv.py``) pins the
two engines together over thousands of randomised cases.

Engine selection is threaded through the stack as an
``engine="reference" | "fast"`` parameter: :mod:`repro.core.mhhea` /
:mod:`repro.core.hhea` (``encrypt_bits`` / ``decrypt_bits``),
:mod:`repro.core.stream` (``encrypt_packet`` / ``decrypt_packet``),
:class:`repro.net.session.SessionConfig` and the CLI.  Both engines
produce byte-identical wire packets, so the choice is purely local —
peers never need to agree on it.
"""

from __future__ import annotations

import weakref
from collections.abc import Sequence

from repro.core.errors import CipherFormatError
from repro.core.key import Key
from repro.core.params import VectorParams
from repro.obs import core as _obs
from repro.util.bits import bits_to_int, check_uint, mask
from repro.util.lfsr import LeapLfsr, Lfsr

__all__ = [
    "ENGINES",
    "DEFAULT_ENGINE",
    "HHEA",
    "MHHEA",
    "check_engine",
    "FastSchedule",
    "schedule_for",
    "embed_stream",
    "extract_stream",
    "BatchCodec",
]

#: The two built-in engine implementations.  Third-party backends are
#: added through :func:`repro.core.engines.register_engine`; use
#: :func:`repro.core.engines.registered_engines` for the live list.
ENGINES = ("reference", "fast")

#: Library-wide default; the CLI defaults to ``"fast"`` instead.
DEFAULT_ENGINE = "reference"

#: Algorithm names accepted by :func:`schedule_for`.
MHHEA = "mhhea"
HHEA = "hhea"

# Window modes of a compiled schedule.
_W_SCRAMBLED = 0  # MHHEA: window displaced by the vector's scramble half
_W_FIXED = 1      # HHEA: the sorted pair itself
_W_CALLABLE = 2   # injected policy (tests); validated per vector


def check_engine(engine: str) -> str:
    """Validate an engine selector against the registry; returns it unchanged.

    Kept as the historical core-layer validation hook; since the engine
    registry (:mod:`repro.core.engines`) took over selection, this is a
    thin delegate that raises
    :class:`~repro.core.errors.UnknownEngineError` (a
    :class:`ValueError` subclass, so pre-registry handlers keep
    working) naming the registered engines.
    """
    from repro.core import engines as _engines

    if isinstance(engine, _engines.Engine):
        return engine.name
    return _engines.check_engine_name(engine)


def _check_frame_bits(frame_bits: int | None) -> None:
    if frame_bits is not None and frame_bits <= 0:
        raise ValueError(f"frame_bits must be positive or None, got {frame_bits}")


def _tile_scramble(bits: Sequence[int], params: VectorParams) -> int:
    """Tile the ``key_bits`` per-``q`` scramble bits across a full window.

    The engine restarts ``q`` at zero for every window and reduces it
    modulo ``key_bits``, so the scramble pattern seen by any window is a
    prefix of this fixed tiling — one precomputed word replaces one
    policy call per message bit.
    """
    word = 0
    for q in range(params.max_window):
        word |= bits[q % params.key_bits] << q
    return word


def _vector_supply(source, width: int):
    """Per-vector word supplier; table-driven when ``source`` is a plain Lfsr.

    For a plain :class:`~repro.util.lfsr.Lfsr` no wider than the engine
    (wider registers must go through the checked path so they fail
    exactly like the reference engine), the supplier advances a
    :class:`~repro.util.lfsr.LeapLfsr` clone and writes the word back
    into ``source.state`` — ``next_word`` leaves the register equal to
    the word it returns, so the caller's source stays in exactly the
    state the reference engine would have left it in.  Any other source
    is consulted one ``next_word()`` at a time, range-checked like the
    reference engine does.
    """
    if source.__class__ is Lfsr and source.width <= width:
        leap = LeapLfsr.from_lfsr(source)
        leap_word = leap.next_word

        def supply() -> int:
            word = leap_word()
            source.state = word
            return word

        return supply

    def supply() -> int:
        return check_uint(source.next_word(), width, "hiding vector")

    return supply


class FastSchedule:
    """A key schedule compiled for word-level embedding/extraction.

    Built once per (key, algorithm, params) by :func:`schedule_for` (and
    cached there), then reused across every packet — this is what makes
    :class:`BatchCodec` cheap.  Messages travel as packed integers: bit
    ``m`` of the stream is bit ``m`` of the integer.
    """

    __slots__ = ("params", "width", "half", "_mode", "_progs", "_masks",
                 "_window_policy", "_read_span", "__weakref__")

    def __init__(self, key: Key, params: VectorParams, mode: int,
                 window_policy=None, data_bit_policy=None):
        self.params = params
        self.width = params.width
        self.half = params.half
        self._mode = mode
        self._window_policy = window_policy
        self._masks = tuple(mask(i) for i in range(params.max_window + 1))
        # Bytes that always cover one window read at any bit offset:
        # max_window bits plus up to 7 offset bits.
        self._read_span = (params.max_window + 7) // 8 + 1
        progs = []
        for pair in key.pairs:
            s = pair.sorted()
            span = s.k2 - s.k1
            if mode == _W_SCRAMBLED:
                slice_low = s.k1 + params.scramble_low
                slice_mask = mask(span + 1)
                scramble_bits = [(s.k1 >> q) & 1 for q in range(params.key_bits)]
            elif mode == _W_FIXED:
                slice_low = slice_mask = 0
                scramble_bits = [0] * params.key_bits
            else:
                slice_low = slice_mask = 0
                scramble_bits = []
                for q in range(params.key_bits):
                    bit = data_bit_policy(s, q)
                    if bit not in (0, 1):
                        raise CipherFormatError(
                            f"data-bit policy returned {bit!r} for q={q}, "
                            f"expected 0 or 1"
                        )
                    scramble_bits.append(bit)
            scramble = _tile_scramble(scramble_bits, params)
            progs.append((s.k1, s.k2, span, slice_low, slice_mask, scramble, s))
        self._progs = tuple(progs)

    # -- packed-integer core ----------------------------------------------

    def embed_words(self, message: int, n_bits: int, source,
                    frame_bits: int | None = None) -> list[int]:
        """Embed the low ``n_bits`` of packed ``message`` into fresh vectors."""
        if message < 0 or message >> max(n_bits, 0):
            raise ValueError(
                f"message has bits set beyond the declared {n_bits}"
            )
        return self._embed_buffer(message.to_bytes((n_bits + 7) // 8, "little"),
                                  n_bits, source, frame_bits)

    def _embed_buffer(self, buf: bytes, n_bits: int, source,
                      frame_bits: int | None) -> list[int]:
        """The embed hot loop over an LSB-first byte buffer.

        A window is at most ``max_window`` bits, so any window read fits
        in a ``_read_span``-byte slice of the buffer — one
        ``int.from_bytes`` per vector, never a shift of the whole
        message (big-integer shifts are O(message), which would make the
        loop quadratic).
        """
        if n_bits < 0:
            raise ValueError(f"n_bits must be non-negative, got {n_bits}")
        _check_frame_bits(frame_bits)
        progs = self._progs
        n_pairs = len(progs)
        masks = self._masks
        half = self.half
        kmask = half - 1
        span_bytes = self._read_span
        mode = self._mode
        policy = self._window_policy
        params = self.params
        from_bytes = int.from_bytes
        supply = _vector_supply(source, self.width)
        vectors: list[int] = []
        append = vectors.append
        m = 0
        i = 0
        frame_left = frame_bits if frame_bits is not None else n_bits
        while m < n_bits:
            k1, k2, span, slice_low, slice_mask, scramble, pair = progs[i % n_pairs]
            vector = supply()
            if mode == _W_SCRAMBLED:
                kn1 = (((vector >> slice_low) & slice_mask) ^ k1) & kmask
                kn2 = kn1 + span
                if kn2 >= half:
                    kn1, kn2 = kn2 - half, kn1
            elif mode == _W_FIXED:
                kn1, kn2 = k1, k2
            else:
                kn1, kn2 = policy(pair, vector, params)
                if not 0 <= kn1 <= kn2 <= kmask:
                    raise CipherFormatError(
                        f"window policy produced illegal window [{kn1}, {kn2}] "
                        f"for {self.width}-bit vectors"
                    )
            budget = kn2 - kn1 + 1
            if budget > frame_left:
                budget = frame_left
            remaining = n_bits - m
            if budget > remaining:
                budget = remaining
            bmask = masks[budget]
            byte = m >> 3
            chunk = (from_bytes(buf[byte : byte + span_bytes], "little")
                     >> (m & 7)) & bmask
            window = (chunk ^ scramble) & bmask
            append((vector & ~(bmask << kn1)) | (window << kn1))
            m += budget
            frame_left -= budget
            if frame_left == 0 and frame_bits is not None:
                frame_left = frame_bits
            i += 1
        return vectors

    def extract_words(self, vectors: Sequence[int], n_bits: int,
                      strict: bool = True,
                      frame_bits: int | None = None) -> int:
        """Recover ``n_bits`` message bits as one packed integer."""
        return int.from_bytes(
            self._extract_buffer(vectors, n_bits, strict, frame_bits), "little"
        )

    def _extract_buffer(self, vectors: Sequence[int], n_bits: int,
                        strict: bool, frame_bits: int | None) -> bytearray:
        """The extract hot loop; returns the LSB-first byte buffer.

        Recovered windows accumulate in a small integer that is flushed
        to the output buffer 64 bits at a time, so no operation ever
        touches more than a couple of machine words — the mirror image
        of :meth:`_embed_buffer`'s windowed reads.
        """
        if n_bits < 0:
            raise ValueError(f"n_bits must be non-negative, got {n_bits}")
        _check_frame_bits(frame_bits)
        progs = self._progs
        n_pairs = len(progs)
        masks = self._masks
        half = self.half
        kmask = half - 1
        wmask = mask(self.width)
        mode = self._mode
        policy = self._window_policy
        params = self.params
        out = bytearray()
        acc = 0
        acc_bits = 0
        got = 0
        i = 0
        frame_left = frame_bits if frame_bits is not None else n_bits
        for vector in vectors:
            if got >= n_bits:
                if strict:
                    raise CipherFormatError(
                        f"trailing ciphertext: message complete after {i} "
                        f"vectors but {len(vectors)} were supplied"
                    )
                break
            if vector.__class__ is not int or not 0 <= vector <= wmask:
                check_uint(vector, self.width, "ciphertext vector")
            k1, k2, span, slice_low, slice_mask, scramble, pair = progs[i % n_pairs]
            if mode == _W_SCRAMBLED:
                kn1 = (((vector >> slice_low) & slice_mask) ^ k1) & kmask
                kn2 = kn1 + span
                if kn2 >= half:
                    kn1, kn2 = kn2 - half, kn1
            elif mode == _W_FIXED:
                kn1, kn2 = k1, k2
            else:
                kn1, kn2 = policy(pair, vector, params)
                if not 0 <= kn1 <= kn2 <= kmask:
                    raise CipherFormatError(
                        f"window policy produced illegal window [{kn1}, {kn2}] "
                        f"for {self.width}-bit vectors"
                    )
            budget = kn2 - kn1 + 1
            if budget > frame_left:
                budget = frame_left
            remaining = n_bits - got
            if budget > remaining:
                budget = remaining
            acc |= (((vector >> kn1) ^ scramble) & masks[budget]) << acc_bits
            acc_bits += budget
            if acc_bits >= 64:
                out += (acc & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
                acc >>= 64
                acc_bits -= 64
            got += budget
            frame_left -= budget
            if frame_left == 0 and frame_bits is not None:
                frame_left = frame_bits
            i += 1
        if got < n_bits:
            raise CipherFormatError(
                f"truncated ciphertext: recovered {got} of {n_bits} message bits"
            )
        out += acc.to_bytes((n_bits + 7) // 8 - len(out), "little")
        return out

    # -- bit-list and bytes adapters ---------------------------------------

    def embed_bits(self, bits: Sequence[int], source,
                   frame_bits: int | None = None) -> list[int]:
        """Drop-in for the reference engine's bit-list embed interface."""
        return self.embed_words(bits_to_int(bits), len(bits), source, frame_bits)

    def extract_bits(self, vectors: Sequence[int], n_bits: int,
                     strict: bool = True,
                     frame_bits: int | None = None) -> list[int]:
        """Drop-in for the reference engine's bit-list extract interface."""
        buf = self._extract_buffer(vectors, n_bits, strict, frame_bits)
        return [(buf[k >> 3] >> (k & 7)) & 1 for k in range(n_bits)]

    def embed_bytes(self, data: bytes, source,
                    frame_bits: int | None = None) -> list[int]:
        """Embed bytes without ever materialising a per-bit list."""
        return self._embed_buffer(data, len(data) * 8, source, frame_bits)

    def extract_bytes(self, vectors: Sequence[int], n_bits: int,
                      strict: bool = True,
                      frame_bits: int | None = None) -> bytes:
        """Recover a byte string; ``n_bits`` must be a multiple of 8."""
        if n_bits >= 0 and n_bits % 8 != 0:
            raise ValueError(f"bit count {n_bits} is not a multiple of 8")
        return bytes(self._extract_buffer(vectors, n_bits, strict, frame_bits))


#: Compiled schedules, keyed weakly on the Key: a schedule (which embeds
#: key-derived material) lives exactly as long as its Key does, so the
#: session layer's rekey ratchet really retires old epoch keys instead
#: of leaving them pinned in a global LRU for the process lifetime.
_SCHEDULES: "weakref.WeakKeyDictionary[Key, dict]" = weakref.WeakKeyDictionary()


def schedule_for(key: Key, algorithm: str,
                 params: VectorParams) -> FastSchedule:
    """The compiled (and cached) schedule for one of the built-in ciphers.

    ``algorithm`` is :data:`MHHEA` or :data:`HHEA`.  Caching is what
    amortises compilation across packets: every packet of a session hits
    the same (key, algorithm, params) triple.
    """
    if algorithm == MHHEA:
        mode = _W_SCRAMBLED
    elif algorithm == HHEA:
        mode = _W_FIXED
    else:
        raise ValueError(
            f"algorithm must be {MHHEA!r} or {HHEA!r}, got {algorithm!r}"
        )
    per_key = _SCHEDULES.get(key)
    if per_key is None:
        per_key = _SCHEDULES[key] = {}
    schedule = per_key.get((algorithm, params))
    if schedule is None:
        schedule = per_key[(algorithm, params)] = FastSchedule(key, params, mode)
    return schedule


def embed_stream(bits: Sequence[int], key: Key, source, window_policy,
                 data_bit_policy, params: VectorParams,
                 frame_bits: int | None = None) -> list[int]:
    """Generic-policy fast embed, mirroring :func:`repro.core.engine.embed_stream`.

    The window policy is consulted once per vector (it may read the
    vector); the data policy is assumed pure in ``(pair, q)`` and is
    compiled into per-pair scramble words — both built-in policies are.
    Pathological policies raise :class:`CipherFormatError` as in the
    reference engine, with one deliberate strictness difference: the
    data policy is validated *eagerly* over every ``q`` at compile time,
    so a policy that is broken only for a ``q`` the message would never
    reach still fails here (the reference only checks bits it consumes).
    Trace recording is reference-only.
    """
    schedule = FastSchedule(key, params, _W_CALLABLE, window_policy,
                            data_bit_policy)
    return schedule.embed_bits(bits, source, frame_bits)


def extract_stream(vectors: Sequence[int], key: Key, n_bits: int,
                   window_policy, data_bit_policy, params: VectorParams,
                   strict: bool = True,
                   frame_bits: int | None = None) -> list[int]:
    """Generic-policy fast extract, mirroring :func:`repro.core.engine.extract_stream`."""
    schedule = FastSchedule(key, params, _W_CALLABLE, window_policy,
                            data_bit_policy)
    return schedule.extract_bits(vectors, n_bits, strict, frame_bits)


class BatchCodec:
    """Encrypt/decrypt many payloads under one compiled key schedule.

    The per-packet cost of the fast path is dominated by the cipher loop
    itself once the schedule is compiled; this wrapper pins one schedule
    (and one engine choice) for a whole batch so callers — the secure
    link, bulk file encryption, benchmarks — don't re-negotiate anything
    per packet.  Nonce discipline stays the caller's job exactly as for
    :func:`repro.core.stream.encrypt_packet`; pass distinct nonces.
    """

    def __init__(self, key: Key, algorithm: int | None = None,
                 engine: str = "fast"):
        from repro.core import engines as _engines
        from repro.core import stream  # deferred: stream imports this module

        self._stream = stream
        self.key = key
        self.algorithm = (stream.ALGORITHM_MHHEA if algorithm is None
                          else algorithm)
        if self.algorithm not in (stream.ALGORITHM_HHEA, stream.ALGORITHM_MHHEA):
            raise CipherFormatError(f"unknown algorithm id {algorithm}")
        #: Resolved engine backend; ``engine`` accepts a registry name or
        #: an :class:`repro.core.engines.Engine` instance.
        self.backend = _engines.get_engine(engine)
        self.engine = self.backend.name
        if self.engine == "fast":
            name = MHHEA if self.algorithm == stream.ALGORITHM_MHHEA else HHEA
            schedule_for(key, name, key.params)  # compile once, up front

    def encrypt_many(self, payloads: Sequence[bytes],
                     nonces: Sequence[int]) -> list[bytes]:
        """One packet per payload; ``nonces`` must pair up one-to-one."""
        packets = self._stream.encrypt_packets(payloads, self.key, nonces,
                                               algorithm=self.algorithm,
                                               engine=self.backend)
        _obs.get_registry().counter("repro_batch_payloads_total",
                                    op="encrypt").inc(len(packets))
        return packets

    def decrypt_many(self, packets: Sequence[bytes]) -> list[bytes]:
        """Decrypt a batch of packets produced under the same key."""
        payloads = self._stream.decrypt_packets(packets, self.key,
                                                engine=self.backend)
        _obs.get_registry().counter("repro_batch_payloads_total",
                                    op="decrypt").inc(len(payloads))
        return payloads
