"""Key material for the (M)HHEA family.

The key is a matrix ``K[L][2]`` of ``L <= 16`` pairs of small integers
(3-bit each for the paper's 16-bit vector).  Pairs are consumed round
robin (``i mod L``) and each pair is pre-sorted before use — the
pseudocode's first swap step.  This module owns:

* :class:`KeyPair` — one sorted-on-demand pair;
* :class:`Key` — the full schedule with parsing, serialisation,
  generation and validation;
* the *location scrambling* arithmetic (:func:`scramble_pair`) shared by
  the reference cipher, the decryptor and both RTL models, so the
  non-obvious truncation semantics live in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import KeyError_
from repro.core.params import PAPER_PARAMS, VectorParams
from repro.util.bits import check_uint, extract_field, mask
from repro.util.rng import make_rng

__all__ = ["KeyPair", "Key", "scramble_pair", "MAX_PAIRS"]

#: The key cache buffers "the whole 16 three-bit key pairs" (section 3.3).
MAX_PAIRS = 16


@dataclass(frozen=True)
class KeyPair:
    """One key pair ``(k1, k2)`` as stored, i.e. possibly unsorted."""

    k1: int
    k2: int

    def validate(self, params: VectorParams) -> None:
        """Raise :class:`KeyError_` unless both halves are in range."""
        for name, value in (("k1", self.k1), ("k2", self.k2)):
            if not isinstance(value, int) or isinstance(value, bool):
                raise KeyError_(f"{name} must be an int, got {type(value).__name__}")
            if not 0 <= value <= params.key_max:
                raise KeyError_(
                    f"{name}={value} out of range 0..{params.key_max} "
                    f"for {params.width}-bit vectors"
                )

    def sorted(self) -> "KeyPair":
        """The pair with ``k1 <= k2`` — the algorithm's first swap step."""
        if self.k1 <= self.k2:
            return self
        return KeyPair(self.k2, self.k1)

    @property
    def span(self) -> int:
        """Raw window width ``|k2 - k1| + 1`` before location scrambling."""
        return abs(self.k2 - self.k1) + 1


class Key:
    """A full (M)HHEA key schedule of up to :data:`MAX_PAIRS` pairs."""

    def __init__(self, pairs: list[KeyPair] | list[tuple[int, int]],
                 params: VectorParams = PAPER_PARAMS):
        if not pairs:
            raise KeyError_("key must contain at least one pair")
        if len(pairs) > MAX_PAIRS:
            raise KeyError_(f"key has {len(pairs)} pairs; the key cache holds {MAX_PAIRS}")
        normalised: list[KeyPair] = []
        for entry in pairs:
            pair = entry if isinstance(entry, KeyPair) else KeyPair(*entry)
            pair.validate(params)
            normalised.append(pair)
        self.pairs: tuple[KeyPair, ...] = tuple(normalised)
        self.params = params

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Key):
            return NotImplemented
        return self.pairs == other.pairs and self.params == other.params

    def __hash__(self) -> int:
        return hash((self.pairs, self.params))

    def pair(self, i: int) -> KeyPair:
        """Pair used on iteration ``i``: round-robin ``i mod L``."""
        return self.pairs[i % len(self.pairs)]

    # -- serialisation ----------------------------------------------------

    def to_hex(self) -> str:
        """Serialise as colon-separated hex nibble pairs, e.g. ``03:25:71``.

        Each pair packs as two hex digits ``k1 k2``; only valid while
        ``key_bits <= 4`` (vector width <= 32), which covers every
        configuration the RTL supports.
        """
        if self.params.key_bits > 4:
            raise KeyError_("hex serialisation supports key_bits <= 4")
        return ":".join(f"{p.k1:x}{p.k2:x}" for p in self.pairs)

    @classmethod
    def from_hex(cls, text: str, params: VectorParams = PAPER_PARAMS) -> "Key":
        """Parse the :meth:`to_hex` format."""
        text = text.strip()
        if not text:
            raise KeyError_("empty key string")
        pairs = []
        for i, token in enumerate(text.split(":")):
            token = token.strip()
            if len(token) != 2:
                raise KeyError_(f"pair {i}: expected two hex digits, got {token!r}")
            try:
                pairs.append(KeyPair(int(token[0], 16), int(token[1], 16)))
            except ValueError as exc:
                raise KeyError_(f"pair {i}: invalid hex {token!r}") from exc
        return cls(pairs, params)

    def to_bytes(self) -> bytes:
        """One byte per pair, ``k1`` in the high nibble."""
        if self.params.key_bits > 4:
            raise KeyError_("byte serialisation supports key_bits <= 4")
        return bytes((p.k1 << 4) | p.k2 for p in self.pairs)

    @classmethod
    def from_bytes(cls, blob: bytes, params: VectorParams = PAPER_PARAMS) -> "Key":
        """Inverse of :meth:`to_bytes`."""
        if not blob:
            raise KeyError_("empty key blob")
        return cls([KeyPair(b >> 4, b & 0xF) for b in blob], params)

    # -- generation -------------------------------------------------------

    @classmethod
    def generate(cls, seed: int, n_pairs: int = MAX_PAIRS,
                 params: VectorParams = PAPER_PARAMS) -> "Key":
        """Deterministically generate a key schedule from ``seed``."""
        if not 1 <= n_pairs <= MAX_PAIRS:
            raise KeyError_(f"n_pairs must be 1..{MAX_PAIRS}, got {n_pairs}")
        rng = make_rng(seed)
        pairs = [
            KeyPair(rng.randrange(params.half), rng.randrange(params.half))
            for _ in range(n_pairs)
        ]
        return cls(pairs, params)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Key({len(self.pairs)} pairs, width={self.params.width})"


def scramble_pair(pair: KeyPair, vector: int, params: VectorParams = PAPER_PARAMS
                  ) -> tuple[int, int]:
    """Location scrambling: derive the window ``(kn1, kn2)`` from V.

    Implements, for the sorted pair ``k1 <= k2``::

        KN1 = (V[k2 + half .. k1 + half] XOR k1)  truncated to key_bits
        KN2 = (KN1 + (k2 - k1)) mod half
        if KN1 > KN2: swap

    The truncation is the hardware semantics — KN1 is a ``key_bits``-wide
    register — and is what the paper's Fig. 8 worked example shows
    (V=0xCA06, K=(0,3): slice ``010b`` → KN1=2, KN2=5).  Note the slice is
    ``k2 - k1 + 1`` bits wide *before* truncation.

    Because of the mod-``half`` wraparound, the scrambled window width
    ``kn2 - kn1 + 1`` can differ from the raw span ``k2 - k1 + 1``; both
    encryptor and decryptor recompute it from the (never overwritten)
    scramble half of V, so they always agree.
    """
    check_uint(vector, params.width, "vector")
    s = pair.sorted()
    low = s.k1 + params.scramble_low
    high = s.k2 + params.scramble_low
    slice_bits = extract_field(vector, high, low)
    kn1 = (slice_bits ^ s.k1) & mask(params.key_bits)
    kn2 = (kn1 + (s.k2 - s.k1)) % params.half
    if kn1 > kn2:
        kn1, kn2 = kn2, kn1
    return kn1, kn2
