"""Structured trace records emitted by the reference ciphers.

A trace is the reference-model analogue of a logic-analyser capture: one
:class:`VectorTrace` per emitted hiding vector, recording every
intermediate value of the algorithm.  The waveform examples, the model
equivalence tests and the security analyses all consume these records
instead of re-deriving intermediates, so there is a single source of
truth for "what happened on iteration i".
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["VectorTrace", "TraceRecorder"]


@dataclass(frozen=True)
class VectorTrace:
    """Everything the algorithm computed for one hiding vector."""

    iteration: int
    """Global iteration counter ``i`` (0-based)."""

    pair_index: int
    """Which key pair was used (``i mod L``)."""

    k1: int
    """Sorted smaller key half actually used for scrambling."""

    k2: int
    """Sorted larger key half."""

    vector_in: int
    """Hiding vector V as produced by the RNG / cover source."""

    kn1: int
    """Lower scrambled window bound (equals ``k1`` for plain HHEA)."""

    kn2: int
    """Upper scrambled window bound (equals ``k2`` for plain HHEA)."""

    m_start: int
    """Index of the first message bit consumed by this vector."""

    bits_consumed: int
    """How many message bits this vector embedded (may be < window width
    on the final, partially filled vector)."""

    vector_out: int
    """The emitted ciphertext vector."""

    @property
    def window_width(self) -> int:
        """Full window width ``kn2 - kn1 + 1`` (capacity, not usage)."""
        return self.kn2 - self.kn1 + 1


@dataclass
class TraceRecorder:
    """Accumulates :class:`VectorTrace` records during a cipher run.

    Pass an instance as the ``trace`` argument of the encrypt/decrypt
    entry points; it is deliberately append-only so analyses can trust
    the order.
    """

    records: list[VectorTrace] = field(default_factory=list)

    def add(self, record: VectorTrace) -> None:
        """Append one record (called by the cipher engine)."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index: int) -> VectorTrace:
        return self.records[index]

    def total_bits(self) -> int:
        """Total message bits embedded across all records."""
        return sum(r.bits_consumed for r in self.records)

    def mean_window(self) -> float:
        """Mean scrambled-window width — feeds the throughput analysis."""
        if not self.records:
            raise ValueError("trace is empty")
        return sum(r.window_width for r in self.records) / len(self.records)
