"""The Modified Hybrid Hiding Encryption Algorithm — reference model.

This is the paper's primary contribution (section II pseudocode), pinned
to the semantics established by the Fig. 8 worked example; see DESIGN.md
section 2 for the derivation.  Relative to plain HHEA, MHHEA adds two
scrambling steps that defeat the constant chosen-plaintext attack:

* **location scrambling** — the replacement window is displaced by bits
  of the hiding vector itself (:func:`repro.core.key.scramble_pair`);
* **data scrambling** — each embedded bit is XORed with a cycling bit of
  the smaller key half (``V[j] = M[m] XOR K1[q]``, ``q = 0,1,2,0,...``).

The functional API (:func:`encrypt_bits` / :func:`decrypt_bits`) works on
bit streams and is what the RTL equivalence tests target; the
:class:`MhheaCipher` class wraps it with a bytes interface and manages
the hiding-vector source.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core import engine as _engine
from repro.core import engines as _engines
from repro.core.key import Key, KeyPair, scramble_pair
from repro.core.params import PAPER_PARAMS, VectorParams
from repro.core.trace import TraceRecorder
from repro.util.bits import bits_to_bytes, bytes_to_bits
from repro.util.lfsr import Lfsr

__all__ = ["encrypt_bits", "decrypt_bits", "MhheaCipher", "EncryptedMessage"]


def _window_policy(pair: KeyPair, vector: int, params: VectorParams) -> tuple[int, int]:
    """MHHEA location policy: the full scramble of section II."""
    return scramble_pair(pair, vector, params)


def _data_bit_policy(pair: KeyPair, q: int) -> int:
    """MHHEA data policy: bit ``q`` of the sorted smaller key half."""
    return (pair.k1 >> q) & 1


def encrypt_bits(
    bits: Sequence[int],
    key: Key,
    source: _engine.VectorSource,
    params: VectorParams = PAPER_PARAMS,
    trace: TraceRecorder | None = None,
    frame_bits: int | None = None,
    engine: "str | _engines.Engine | None" = None,
) -> list[int]:
    """Encrypt a message bit stream into a list of hiding vectors.

    ``source`` supplies one fresh ``params.width``-bit vector per key
    pair — an :class:`repro.util.lfsr.Lfsr` for encryption proper, or a
    cover adapter for steganography.  ``frame_bits=16`` reproduces the
    micro-architecture's half-buffer framing bit-for-bit; ``None`` is the
    paper's flat pseudocode.  ``engine="fast"`` selects the bit-parallel
    word engine (:mod:`repro.core.fastpath`) — bit-identical output,
    differentially tested; trace recording always uses the reference.
    """
    backend = _engines.get_engine(engine)
    if trace is not None:
        # Trace recording is reference-only: the per-bit stream engine is
        # the one implementation whose intermediate state matches the
        # paper's pseudocode step for step.
        return _engine.embed_stream(
            bits, key, source, _window_policy, _data_bit_policy, params,
            trace, frame_bits=frame_bits,
        )
    return backend.embed_bits(key, _engines.MHHEA, params, bits, source,
                              frame_bits)


def decrypt_bits(
    vectors: Sequence[int],
    key: Key,
    n_bits: int,
    params: VectorParams = PAPER_PARAMS,
    trace: TraceRecorder | None = None,
    strict: bool = True,
    frame_bits: int | None = None,
    engine: "str | _engines.Engine | None" = None,
) -> list[int]:
    """Recover ``n_bits`` message bits from ciphertext vectors.

    No random source is needed: the scramble half of every vector
    survives embedding intact, so the receiver recomputes each window
    exactly as the sender did.  ``frame_bits`` must match encryption;
    ``engine`` selects the implementation as in :func:`encrypt_bits`.
    """
    backend = _engines.get_engine(engine)
    if trace is not None:
        # Reference-only trace path, mirroring encrypt_bits.
        return _engine.extract_stream(
            vectors, key, n_bits, _window_policy, _data_bit_policy, params,
            trace, strict, frame_bits,
        )
    return backend.extract_bits(key, _engines.MHHEA, params, vectors, n_bits,
                                strict, frame_bits)


@dataclass(frozen=True)
class EncryptedMessage:
    """A self-describing ciphertext: vectors plus the message bit count.

    The bit count is *not secret* (it leaks through ciphertext length in
    any embedding scheme); it is required for decryption because the
    final vector may be only partially filled.
    """

    vectors: tuple[int, ...]
    n_bits: int
    width: int

    def __post_init__(self) -> None:
        if self.n_bits < 0:
            raise ValueError("n_bits must be non-negative")

    @property
    def expansion(self) -> float:
        """Ciphertext-to-plaintext size ratio (the hiding overhead)."""
        if self.n_bits == 0:
            return 0.0
        return len(self.vectors) * self.width / self.n_bits


class MhheaCipher:
    """Bytes-level MHHEA encryptor/decryptor.

    Example
    -------
    >>> from repro.core.key import Key
    >>> cipher = MhheaCipher(Key.generate(seed=7))
    >>> ct = cipher.encrypt(b"attack at dawn", seed=0xACE1)
    >>> cipher.decrypt(ct)
    b'attack at dawn'
    """

    def __init__(self, key: Key, params: VectorParams = PAPER_PARAMS,
                 engine: "str | _engines.Engine | None" = None):
        if key.params != params:
            raise ValueError(
                f"key was built for {key.params} but cipher uses {params}"
            )
        self.key = key
        self.params = params
        #: Resolved engine backend (registry lookup happens here, once).
        self.backend = _engines.get_engine(engine)
        self.engine = self.backend.name

    def encrypt(
        self,
        plaintext: bytes,
        seed: int = 0xACE1,
        source: _engine.VectorSource | None = None,
        trace: TraceRecorder | None = None,
    ) -> EncryptedMessage:
        """Encrypt bytes; ``seed`` initialises the LFSR hiding-vector RNG.

        ``seed`` plays the role of a nonce: it is not secret, but reusing
        it with the same key reuses the vector sequence.  Pass ``source``
        to override the RNG entirely (steganographic covers).
        """
        if source is None:
            source = Lfsr(self.params.width, seed=seed)
        if trace is None:
            # Engine-native bytes path (the fast engine never builds a
            # per-bit list here).
            vectors = self.backend.embed_bytes(self.key, _engines.MHHEA,
                                               self.params, plaintext, source)
            return EncryptedMessage(tuple(vectors), len(plaintext) * 8,
                                    self.params.width)
        bits = bytes_to_bits(plaintext)
        vectors = encrypt_bits(bits, self.key, source, self.params, trace)
        return EncryptedMessage(tuple(vectors), len(bits), self.params.width)

    def decrypt(self, message: EncryptedMessage,
                trace: TraceRecorder | None = None) -> bytes:
        """Recover the plaintext bytes from an :class:`EncryptedMessage`."""
        if message.width != self.params.width:
            raise ValueError(
                f"ciphertext uses {message.width}-bit vectors, "
                f"cipher is configured for {self.params.width}"
            )
        if trace is None:
            return self.backend.extract_bytes(self.key, _engines.MHHEA,
                                              self.params, message.vectors,
                                              message.n_bits)
        bits = decrypt_bits(
            message.vectors, self.key, message.n_bits, self.params, trace,
        )
        return bits_to_bytes(bits)
