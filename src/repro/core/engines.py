"""The pluggable engine registry behind every cipher entry point.

The paper's whole point is *one* cipher with interchangeable
implementations — the FPGA micro-architecture and the software model
compute the same function.  This reproduction accumulated the same
shape in software: the per-bit reference engine
(:mod:`repro.core.engine`) and the word-level fast engine
(:mod:`repro.core.fastpath`) emit byte-identical wire packets.  What
used to select between them was a stringly-typed ``engine="reference"
| "fast"`` keyword threaded through eight modules; this module replaces
that with a registry:

* :func:`register_engine` — add a named :class:`Engine` factory (the
  built-ins ``"reference"`` and ``"fast"`` are registered at import);
* :func:`get_engine` — resolve a selector (name, ``None`` for the
  default, or an :class:`Engine` instance passed through) exactly once;
* :func:`check_engine_name` / :func:`registered_engines` — eager
  validation that fails with
  :class:`~repro.core.errors.UnknownEngineError` naming every
  registered engine, instead of failing deep inside the fast path.

Callers hold a resolved :class:`Engine` object (usually inside a
:class:`repro.api.Codec`) and never re-negotiate the choice per packet.
A new backend is a plugin: implement :meth:`Engine.embed_bits` /
:meth:`Engine.extract_bits` (the byte-level hooks have default
adapters), register a factory, and every layer — packet codec, sharded
pipeline, secure link, CLI — can select it by name.  The registry is
keyed by name only; engines must stay pure functions of ``(key,
algorithm, params, message, source)`` so that every registered engine
is wire-compatible with every other.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.errors import UnknownEngineError
from repro.core.key import Key
from repro.core.params import VectorParams
from repro.util.bits import bits_to_bytes, bytes_to_bits

__all__ = [
    "MHHEA",
    "HHEA",
    "ALGORITHM_NAMES",
    "DEFAULT_ENGINE_NAME",
    "Engine",
    "ReferenceEngine",
    "FastEngine",
    "register_engine",
    "get_engine",
    "engine_name",
    "check_engine_name",
    "registered_engines",
]

#: Algorithm names shared with :mod:`repro.core.fastpath`.
MHHEA = "mhhea"
HHEA = "hhea"

#: The algorithm selectors every engine must accept.
ALGORITHM_NAMES = (MHHEA, HHEA)

#: Name resolved when a caller passes no engine selector at all.
DEFAULT_ENGINE_NAME = "reference"


def _check_algorithm(algorithm: str) -> str:
    if algorithm not in ALGORITHM_NAMES:
        raise ValueError(
            f"algorithm must be one of {ALGORITHM_NAMES}, got {algorithm!r}"
        )
    return algorithm


class Engine:
    """One interchangeable implementation of the hiding-cipher family.

    Subclasses implement the bit-level hooks; the byte-level hooks have
    default adapters so a minimal plugin is two methods.  All engines
    must compute the same function — the registry models *how* the
    cipher runs, never *what* it computes — so a conforming backend is
    byte-identical on the wire to the reference model (the differential
    suite pins the built-ins together; register your own and reuse it).
    """

    #: Registry name; set by subclasses.
    name = "?"

    def embed_bits(self, key: Key, algorithm: str, params: VectorParams,
                   bits: Sequence[int], source,
                   frame_bits: int | None = None) -> list[int]:
        """Embed a message bit stream into fresh hiding vectors."""
        raise NotImplementedError

    def extract_bits(self, key: Key, algorithm: str, params: VectorParams,
                     vectors: Sequence[int], n_bits: int,
                     strict: bool = True,
                     frame_bits: int | None = None) -> list[int]:
        """Recover ``n_bits`` message bits from ``vectors``."""
        raise NotImplementedError

    def embed_bytes(self, key: Key, algorithm: str, params: VectorParams,
                    data: bytes, source) -> list[int]:
        """Byte-string embed; default adapter over :meth:`embed_bits`."""
        return self.embed_bits(key, algorithm, params,
                               bytes_to_bits(data), source)

    def extract_bytes(self, key: Key, algorithm: str, params: VectorParams,
                      vectors: Sequence[int], n_bits: int) -> bytes:
        """Byte-string extract; default adapter over :meth:`extract_bits`."""
        return bits_to_bytes(
            self.extract_bits(key, algorithm, params, vectors, n_bits)
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def _policy_module(algorithm: str):
    """The algorithm module carrying the reference window/data policies.

    Imported lazily: :mod:`repro.core.mhhea` / :mod:`repro.core.hhea`
    import this module at top level, so the reverse edge must not run at
    import time.
    """
    _check_algorithm(algorithm)
    if algorithm == MHHEA:
        from repro.core import mhhea as module
    else:
        from repro.core import hhea as module
    return module


class ReferenceEngine(Engine):
    """The per-bit golden model (paper pseudocode, trace-capable)."""

    name = "reference"

    def embed_bits(self, key, algorithm, params, bits, source,
                   frame_bits=None):
        """Embed via the generic per-bit stream engine."""
        from repro.core import engine as _engine

        module = _policy_module(algorithm)
        return _engine.embed_stream(
            bits, key, source, module._window_policy, module._data_bit_policy,
            params, frame_bits=frame_bits,
        )

    def extract_bits(self, key, algorithm, params, vectors, n_bits,
                     strict=True, frame_bits=None):
        """Extract via the generic per-bit stream engine."""
        from repro.core import engine as _engine

        module = _policy_module(algorithm)
        return _engine.extract_stream(
            vectors, key, n_bits, module._window_policy,
            module._data_bit_policy, params, strict=strict,
            frame_bits=frame_bits,
        )


class FastEngine(Engine):
    """The word-level bit-parallel engine (compiled key schedules)."""

    name = "fast"

    @staticmethod
    def _schedule(key, algorithm, params):
        from repro.core import fastpath

        _check_algorithm(algorithm)
        return fastpath.schedule_for(key, algorithm, params)

    def embed_bits(self, key, algorithm, params, bits, source,
                   frame_bits=None):
        """Embed on the compiled (and cached) schedule."""
        return self._schedule(key, algorithm, params).embed_bits(
            bits, source, frame_bits)

    def extract_bits(self, key, algorithm, params, vectors, n_bits,
                     strict=True, frame_bits=None):
        """Extract on the compiled (and cached) schedule."""
        return self._schedule(key, algorithm, params).extract_bits(
            vectors, n_bits, strict, frame_bits)

    def embed_bytes(self, key, algorithm, params, data, source):
        """Packed-buffer embed — never materialises a per-bit list."""
        return self._schedule(key, algorithm, params).embed_bytes(
            data, source)

    def extract_bytes(self, key, algorithm, params, vectors, n_bits):
        """Packed-buffer extract — never materialises a per-bit list."""
        return self._schedule(key, algorithm, params).extract_bytes(
            vectors, n_bits)


#: Engine factories by name; instances are built once and cached.
_FACTORIES: dict[str, Callable[[], Engine]] = {}
_INSTANCES: dict[str, Engine] = {}


def register_engine(name: str, factory: Callable[[], Engine], *,
                    replace: bool = False) -> None:
    """Register ``factory`` as the builder of engine ``name``.

    ``factory`` is called lazily — once, on the first
    :func:`get_engine` resolution — and must return an
    :class:`Engine`.  Re-registering an existing name raises
    :class:`ValueError` unless ``replace=True`` (tests and downstream
    forks may shadow a built-in deliberately; doing so by accident is
    almost certainly a bug).
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"engine name must be a non-empty string, got {name!r}")
    if name in _FACTORIES and not replace:
        raise ValueError(
            f"engine {name!r} is already registered; pass replace=True to "
            f"shadow it deliberately"
        )
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def registered_engines() -> tuple[str, ...]:
    """The registered engine names, in registration order."""
    return tuple(_FACTORIES)


def check_engine_name(name: str) -> str:
    """Validate an engine *name* eagerly; returns it unchanged.

    Raises :class:`~repro.core.errors.UnknownEngineError` naming every
    registered engine — the single failure shape for bad selectors,
    wherever they enter the system.
    """
    if name not in _FACTORIES:
        raise UnknownEngineError(
            f"unknown engine {name!r}; registered engines: "
            f"{', '.join(registered_engines())}"
        )
    return name


def get_engine(engine: "str | Engine | None" = None) -> Engine:
    """Resolve an engine selector to its :class:`Engine` instance.

    ``None`` resolves to :data:`DEFAULT_ENGINE_NAME`; an
    :class:`Engine` instance passes through untouched (the no-warning
    path resolved callers use); a name is looked up in the registry,
    raising :class:`~repro.core.errors.UnknownEngineError` for
    unregistered ones.  Resolution is meant to happen *once*, at
    :class:`repro.api.Codec` construction — not per packet.
    """
    if engine is None:
        engine = DEFAULT_ENGINE_NAME
    if isinstance(engine, Engine):
        return engine
    check_engine_name(engine)
    instance = _INSTANCES.get(engine)
    if instance is None:
        instance = _INSTANCES[engine] = _FACTORIES[engine]()
    return instance


def engine_name(engine: "str | Engine | None" = None) -> str:
    """The registry name of a selector (validated, never resolved twice).

    The inverse convenience of :func:`get_engine` for call sites that
    must *serialise* the choice — process-pool jobs pickle the name, not
    the instance.
    """
    if isinstance(engine, Engine):
        return engine.name
    if engine is None:
        return DEFAULT_ENGINE_NAME
    return check_engine_name(engine)


register_engine(ReferenceEngine.name, ReferenceEngine)
register_engine(FastEngine.name, FastEngine)
