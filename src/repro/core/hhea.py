"""Plain HHEA — the unscrambled baseline ([SHAAR03], [SAEB04a]).

The original Hybrid Hiding Encryption Algorithm embeds message bits at the
*raw* key locations: the window is simply the sorted key pair and the bits
go in unmodified.  The paper's section II motivates MHHEA by two
weaknesses of this baseline, both of which this module exists to exhibit:

* with a constant chosen plaintext (e.g. all zeros) the embedded window is
  visible against the random vector, leaking the key locations
  (demonstrated in :mod:`repro.security.chosen_plaintext`);
* the serial FPGA implementation's cycle count depends on the window
  width, leaking key information through throughput (demonstrated in
  :mod:`repro.security.timing_attack` against
  :mod:`repro.rtl.serial_model`).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core import engine as _engine
from repro.core import engines as _engines
from repro.core.key import Key, KeyPair
from repro.core.params import PAPER_PARAMS, VectorParams
from repro.core.trace import TraceRecorder
from repro.util.bits import bits_to_bytes, bytes_to_bits
from repro.util.lfsr import Lfsr

__all__ = ["encrypt_bits", "decrypt_bits", "HheaCipher"]


def _window_policy(pair: KeyPair, vector: int, params: VectorParams) -> tuple[int, int]:
    """HHEA location policy: the sorted pair itself, no scrambling."""
    sorted_pair = pair.sorted()
    return sorted_pair.k1, sorted_pair.k2


def _data_bit_policy(pair: KeyPair, q: int) -> int:
    """HHEA data policy: message bits are embedded unmodified."""
    return 0


def encrypt_bits(
    bits: Sequence[int],
    key: Key,
    source: _engine.VectorSource,
    params: VectorParams = PAPER_PARAMS,
    trace: TraceRecorder | None = None,
    frame_bits: int | None = None,
    engine: "str | _engines.Engine | None" = None,
) -> list[int]:
    """Embed a message bit stream at the raw key locations.

    ``engine="fast"`` selects the word-level engine
    (:mod:`repro.core.fastpath`); output is bit-identical and trace
    recording always falls back to the reference implementation.
    """
    backend = _engines.get_engine(engine)
    if trace is not None:
        # Trace recording is reference-only: the per-bit stream engine is
        # the one implementation whose intermediate state matches the
        # paper's pseudocode step for step.
        return _engine.embed_stream(
            bits, key, source, _window_policy, _data_bit_policy, params,
            trace, frame_bits=frame_bits,
        )
    return backend.embed_bits(key, _engines.HHEA, params, bits, source,
                              frame_bits)


def decrypt_bits(
    vectors: Sequence[int],
    key: Key,
    n_bits: int,
    params: VectorParams = PAPER_PARAMS,
    trace: TraceRecorder | None = None,
    strict: bool = True,
    frame_bits: int | None = None,
    engine: "str | _engines.Engine | None" = None,
) -> list[int]:
    """Extract ``n_bits`` message bits from the raw key locations."""
    backend = _engines.get_engine(engine)
    if trace is not None:
        # Reference-only trace path, mirroring encrypt_bits.
        return _engine.extract_stream(
            vectors, key, n_bits, _window_policy, _data_bit_policy, params,
            trace, strict, frame_bits,
        )
    return backend.extract_bits(key, _engines.HHEA, params, vectors, n_bits,
                                strict, frame_bits)


@dataclass(frozen=True)
class _Message:
    vectors: tuple[int, ...]
    n_bits: int
    width: int


class HheaCipher:
    """Bytes-level HHEA encryptor/decryptor (baseline for comparisons)."""

    def __init__(self, key: Key, params: VectorParams = PAPER_PARAMS,
                 engine: "str | _engines.Engine | None" = None):
        if key.params != params:
            raise ValueError(
                f"key was built for {key.params} but cipher uses {params}"
            )
        self.key = key
        self.params = params
        #: Resolved engine backend (registry lookup happens here, once).
        self.backend = _engines.get_engine(engine)
        self.engine = self.backend.name

    def encrypt(
        self,
        plaintext: bytes,
        seed: int = 0xACE1,
        source: _engine.VectorSource | None = None,
        trace: TraceRecorder | None = None,
    ) -> _Message:
        """Encrypt bytes with a seeded LFSR hiding-vector source."""
        if source is None:
            source = Lfsr(self.params.width, seed=seed)
        if trace is None:
            # Engine-native bytes path (the fast engine never builds a
            # per-bit list here).
            vectors = self.backend.embed_bytes(self.key, _engines.HHEA,
                                               self.params, plaintext, source)
            return _Message(tuple(vectors), len(plaintext) * 8,
                            self.params.width)
        bits = bytes_to_bits(plaintext)
        vectors = encrypt_bits(bits, self.key, source, self.params, trace)
        return _Message(tuple(vectors), len(bits), self.params.width)

    def decrypt(self, message: _Message, trace: TraceRecorder | None = None) -> bytes:
        """Recover the plaintext bytes."""
        if message.width != self.params.width:
            raise ValueError(
                f"ciphertext uses {message.width}-bit vectors, "
                f"cipher is configured for {self.params.width}"
            )
        if trace is None:
            return self.backend.extract_bytes(self.key, _engines.HHEA,
                                              self.params, message.vectors,
                                              message.n_bits)
        bits = decrypt_bits(
            message.vectors, self.key, message.n_bits, self.params, trace,
        )
        return bits_to_bytes(bits)
