"""Low-level substrates shared by every other package.

``repro.util.bits``
    Bit-exact integer helpers (rotations, slices, (de)serialisation) with
    the paper's bit-numbering convention: *location zero is the least
    significant bit*.

``repro.util.lfsr``
    Software linear feedback shift registers used both as the reference
    hiding-vector generator and as the golden model for the RTL LFSR.

``repro.util.rng``
    Deterministic pseudo-random helpers for workloads and tests.
"""

from repro.util.bits import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    extract_field,
    insert_field,
    int_to_bits,
    mask,
    parity,
    popcount,
    rotl,
    rotr,
)
from repro.util.lfsr import GaloisLfsr, Lfsr, PRIMITIVE_TAPS, max_period

__all__ = [
    "bits_to_bytes",
    "bits_to_int",
    "bytes_to_bits",
    "extract_field",
    "insert_field",
    "int_to_bits",
    "mask",
    "parity",
    "popcount",
    "rotl",
    "rotr",
    "GaloisLfsr",
    "Lfsr",
    "PRIMITIVE_TAPS",
    "max_period",
]
