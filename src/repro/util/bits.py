"""Bit-exact integer helpers.

Every routine in this module works on plain non-negative integers and uses
the paper's convention throughout: **bit location 0 is the least
significant bit** ("Note that the location zero refers to the least
significant bit", Farouk & Saeb, section IV).

The helpers deliberately validate their inputs: the cipher, the RTL models
and the CAD flow all funnel through these functions, so a silent width
error here would corrupt everything downstream.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = [
    "mask",
    "check_uint",
    "rotl",
    "rotr",
    "extract_field",
    "insert_field",
    "int_to_bits",
    "bits_to_int",
    "bytes_to_bits",
    "bits_to_bytes",
    "popcount",
    "parity",
    "hamming_distance",
    "reverse_bits",
    "chunk_bits",
]


def mask(width: int) -> int:
    """Return an all-ones integer of ``width`` bits (``width >= 0``)."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def check_uint(value: int, width: int, name: str = "value") -> int:
    """Validate that ``value`` is an unsigned integer fitting in ``width`` bits.

    Returns the value unchanged so it can be used inline::

        self.vector = check_uint(vector, self.width, "vector")
    """
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    if value > mask(width):
        raise ValueError(
            f"{name}={value:#x} does not fit in {width} bits (max {mask(width):#x})"
        )
    return value


def rotl(value: int, amount: int, width: int) -> int:
    """Rotate ``value`` left by ``amount`` within a ``width``-bit word.

    ``amount`` may be any non-negative integer; it is reduced modulo
    ``width``.  This mirrors the "Circulate Message Left by KeyL-bits"
    operation of the message-alignment module (paper Fig. 3b).
    """
    check_uint(value, width, "value")
    if width == 0:
        return 0
    if amount < 0:
        raise ValueError(f"rotation amount must be non-negative, got {amount}")
    amount %= width
    if amount == 0:
        return value
    return ((value << amount) | (value >> (width - amount))) & mask(width)


def rotr(value: int, amount: int, width: int) -> int:
    """Rotate ``value`` right by ``amount`` within a ``width``-bit word.

    Mirrors "Circulate Message Right by (KeyR+1)-bits" (paper Fig. 3c).
    """
    if width == 0:
        return 0
    if amount < 0:
        raise ValueError(f"rotation amount must be non-negative, got {amount}")
    return rotl(value, (width - (amount % width)) % width, width)


def extract_field(value: int, high: int, low: int) -> int:
    """Return bits ``high`` down to ``low`` of ``value`` (inclusive).

    Implements the paper's ``V[a down to b]`` notation, e.g. the location
    scramble ``V[K2+8 down to K1+8]``.
    """
    if high < low:
        raise ValueError(f"high ({high}) must be >= low ({low})")
    if low < 0:
        raise ValueError(f"low must be non-negative, got {low}")
    return (value >> low) & mask(high - low + 1)


def insert_field(value: int, field: int, high: int, low: int) -> int:
    """Return ``value`` with bits ``high..low`` replaced by ``field``.

    This is the parallel bit-replacement step of the encryption module:
    the hiding-vector bits in the window are overwritten by the scrambled
    message bits in a single operation.
    """
    if high < low:
        raise ValueError(f"high ({high}) must be >= low ({low})")
    if low < 0:
        raise ValueError(f"low must be non-negative, got {low}")
    width = high - low + 1
    check_uint(field, width, "field")
    cleared = value & ~(mask(width) << low)
    return cleared | (field << low)


def int_to_bits(value: int, width: int) -> list[int]:
    """Expand ``value`` into a list of ``width`` bits, index 0 = LSB."""
    check_uint(value, width, "value")
    return [(value >> i) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Pack a bit sequence (index 0 = LSB) back into an integer."""
    value = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bit {i} is {bit!r}, expected 0 or 1")
        value |= bit << i
    return value


def bytes_to_bits(data: bytes) -> list[int]:
    """Serialise bytes into a flat bit stream, LSB-first within each byte.

    This is the canonical message-bit order of the reproduction: the
    pseudocode consumes the plaintext as a bit stream ``M[0], M[1], ...``
    and the micro-architecture keeps "the bits yet to be encrypted" at the
    least-significant end of the message buffer, so LSB-first is the order
    in which hardware and reference model agree.
    """
    out: list[int] = []
    for byte in data:
        for i in range(8):
            out.append((byte >> i) & 1)
    return out


def bits_to_bytes(bits: Sequence[int]) -> bytes:
    """Inverse of :func:`bytes_to_bits`; ``len(bits)`` must be a multiple of 8."""
    if len(bits) % 8 != 0:
        raise ValueError(f"bit count {len(bits)} is not a multiple of 8")
    out = bytearray()
    for offset in range(0, len(bits), 8):
        out.append(bits_to_int(bits[offset : offset + 8]))
    return bytes(out)


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError(f"popcount of negative value {value}")
    return value.bit_count()


def parity(value: int) -> int:
    """XOR of all bits of ``value`` (0 or 1) — the LFSR feedback function."""
    return popcount(value) & 1


def hamming_distance(a: int, b: int) -> int:
    """Number of differing bits between two non-negative integers."""
    if a < 0 or b < 0:
        raise ValueError("hamming_distance requires non-negative integers")
    return popcount(a ^ b)


def reverse_bits(value: int, width: int) -> int:
    """Mirror a ``width``-bit word (bit 0 swaps with bit ``width-1``)."""
    check_uint(value, width, "value")
    result = 0
    for i in range(width):
        if value & (1 << i):
            result |= 1 << (width - 1 - i)
    return result


def chunk_bits(bits: Iterable[int], size: int) -> list[list[int]]:
    """Split a bit stream into consecutive chunks of at most ``size`` bits.

    The final chunk may be shorter; this is how the stream layer carves a
    message into the 16-bit halves consumed by the message cache.
    """
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    chunks: list[list[int]] = []
    current: list[int] = []
    for bit in bits:
        current.append(bit)
        if len(current) == size:
            chunks.append(current)
            current = []
    if current:
        chunks.append(current)
    return chunks
