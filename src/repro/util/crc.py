"""CRC-16/CCITT-FALSE, bit-serial reference implementation.

The packet container (:mod:`repro.core.stream`) protects its payload with
this CRC so corrupted links are detected before extraction garbles the
message silently — the paper pitches the architecture for "packet-level
encryption", and a packet format without an integrity check would be a
toy.  The bit-serial formulation doubles as the golden model for the
(optional) CRC hardware exercises in the HDL tests.
"""

from __future__ import annotations

__all__ = ["crc16_ccitt", "Crc16"]

_POLY = 0x1021


def crc16_ccitt(data: bytes, init: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE of ``data`` (poly 0x1021, MSB-first, init 0xFFFF)."""
    crc = init & 0xFFFF
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ _POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


class Crc16:
    """Incremental CRC-16/CCITT-FALSE for streaming use."""

    def __init__(self, init: int = 0xFFFF):
        self._crc = init & 0xFFFF

    def update(self, data: bytes) -> "Crc16":
        """Absorb more bytes; returns self for chaining."""
        self._crc = crc16_ccitt(data, init=self._crc)
        return self

    @property
    def value(self) -> int:
        """Current CRC value."""
        return self._crc
