"""CRC-16/CCITT-FALSE: table-driven production form + bit-serial golden model.

The packet container (:mod:`repro.core.stream`) protects its payload with
this CRC so corrupted links are detected before extraction garbles the
message silently — the paper pitches the architecture for "packet-level
encryption", and a packet format without an integrity check would be a
toy.

Two implementations live here on purpose, mirroring the engine split of
:mod:`repro.core.engine` / :mod:`repro.core.fastpath`:

* :func:`crc16_ccitt_bitserial` — the bit-serial formulation, one
  polynomial step per message bit.  It doubles as the golden model for
  the (optional) CRC hardware exercises in the HDL tests.
* :func:`crc16_ccitt` — the form every caller uses.  CRC-16/CCITT-FALSE
  is exactly the XMODEM/binhex polynomial run with init ``0xFFFF``, so
  production delegates to :func:`binascii.crc_hqx` (a C loop — the CRC
  covers every wire byte, which made the pure-Python table loop a
  measurable share of the link hot path).  The 256-entry table form is
  kept as :func:`crc16_ccitt_table`; ``tests/util`` cross-checks all
  three implementations.

Both accept any bytes-like object (``bytes``, ``bytearray``,
``memoryview``) so the zero-copy framing path can checksum views
without materialising them.
"""

from __future__ import annotations

from binascii import crc_hqx as _crc_hqx

__all__ = ["crc16_ccitt", "crc16_ccitt_table", "crc16_ccitt_bitserial", "Crc16"]

_POLY = 0x1021


def crc16_ccitt_bitserial(data: bytes, init: int = 0xFFFF) -> int:
    """Bit-serial CRC-16/CCITT-FALSE (poly 0x1021, MSB-first, init 0xFFFF)."""
    crc = init & 0xFFFF
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ _POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


#: One polynomial-division step per *byte*: the table entry for the top
#: byte of the register is exactly eight bit-serial steps, sampled from
#: the golden model above.
_TABLE = tuple(crc16_ccitt_bitserial(bytes([b]), init=0) for b in range(256))


def crc16_ccitt_table(data: bytes, init: int = 0xFFFF) -> int:
    """Byte-at-a-time table CRC-16/CCITT-FALSE (pure-Python form)."""
    crc = init & 0xFFFF
    table = _TABLE
    for byte in memoryview(data):
        crc = ((crc << 8) & 0xFF00) ^ table[(crc >> 8) ^ byte]
    return crc


def crc16_ccitt(data: bytes, init: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE of ``data`` (poly 0x1021, MSB-first, init 0xFFFF)."""
    return _crc_hqx(data, init & 0xFFFF)


class Crc16:
    """Incremental CRC-16/CCITT-FALSE for streaming use."""

    def __init__(self, init: int = 0xFFFF):
        self._crc = init & 0xFFFF

    def update(self, data: bytes) -> "Crc16":
        """Absorb more bytes; returns self for chaining."""
        self._crc = crc16_ccitt(data, init=self._crc)
        return self

    @property
    def value(self) -> int:
        """Current CRC value."""
        return self._crc
