"""Linear feedback shift registers.

The paper's random-number-generator module is "designed using Linear
Feedback Shift Register (LFSR) with primitive feedback polynomial to
ensure a maximal-length sequence" (section 3.6).  This module provides the
software golden model: a Fibonacci LFSR, a Galois variant, a table of
primitive taps for the widths the parametric architecture supports, and a
leap-forward matrix stepper that advances the register several bits per
call the way the hardware produces a whole 16-bit vector per key pair.

All registers shift toward the LSB and feed back into the MSB, so after
``width`` single-bit steps the register content is a completely fresh
word; :meth:`Lfsr.next_word` relies on that.
"""

from __future__ import annotations

from functools import lru_cache

from repro.util.bits import mask, parity

__all__ = ["PRIMITIVE_TAPS", "Lfsr", "GaloisLfsr", "LeapLfsr", "max_period",
           "taps_to_mask", "fibonacci_mask"]

# Primitive polynomial taps (1-indexed bit positions, MSB first) for every
# register width the parametric hiding vector supports.  Source: standard
# primitive-trinomial/pentanomial tables (Xilinx XAPP 052 convention).
# ``x^16 + x^14 + x^13 + x^11 + 1`` is the classic 16-bit choice and the
# default hiding-vector generator of this reproduction.
PRIMITIVE_TAPS: dict[int, tuple[int, ...]] = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 6, 4, 1),
    13: (13, 4, 3, 1),
    14: (14, 5, 3, 1),
    15: (15, 14),
    16: (16, 14, 13, 11),
    17: (17, 14),
    18: (18, 11),
    19: (19, 6, 2, 1),
    20: (20, 17),
    24: (24, 23, 22, 17),
    32: (32, 22, 2, 1),
    64: (64, 63, 61, 60),
}


def taps_to_mask(taps: tuple[int, ...], width: int) -> int:
    """Galois toggle mask: polynomial term ``x^t`` maps to bit ``t - 1``."""
    feedback = 0
    for tap in taps:
        if not 1 <= tap <= width:
            raise ValueError(f"tap {tap} out of range for width {width}")
        feedback |= 1 << (tap - 1)
    return feedback


def fibonacci_mask(taps: tuple[int, ...], width: int) -> int:
    """Feedback mask for the right-shifting Fibonacci form.

    With the register shifting toward the LSB, polynomial term ``x^t``
    reads the bit that entered ``t`` shifts ago, i.e. bit ``width - t``
    (the classic ``lfsr >> 0 ^ lfsr >> 2 ^ ...`` formulation).
    """
    feedback = 0
    for tap in taps:
        if not 1 <= tap <= width:
            raise ValueError(f"tap {tap} out of range for width {width}")
        feedback |= 1 << (width - tap)
    return feedback


def max_period(width: int) -> int:
    """Period of a maximal-length ``width``-bit LFSR: ``2**width - 1``."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return (1 << width) - 1


class Lfsr:
    """Fibonacci LFSR: XOR of the tapped bits shifts into the MSB.

    Parameters
    ----------
    width:
        Register width in bits.
    seed:
        Initial state; must be non-zero (the all-zero state is the single
        fixed point of the recurrence and would freeze the generator).
    taps:
        1-indexed tap positions; defaults to the primitive taps for
        ``width`` from :data:`PRIMITIVE_TAPS`.
    """

    def __init__(self, width: int = 16, seed: int = 0xACE1, taps: tuple[int, ...] | None = None):
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        if taps is None:
            if width not in PRIMITIVE_TAPS:
                raise ValueError(
                    f"no default primitive taps for width {width}; pass taps explicitly"
                )
            taps = PRIMITIVE_TAPS[width]
        self.width = width
        self.taps = tuple(sorted(taps, reverse=True))
        self._feedback_mask = fibonacci_mask(taps, width)
        seed &= mask(width)
        if seed == 0:
            raise ValueError("seed must be non-zero for an LFSR")
        self.state = seed

    def step(self) -> int:
        """Advance one bit; return the bit shifted out of the LSB."""
        out = self.state & 1
        fb = parity(self.state & self._feedback_mask)
        self.state = (self.state >> 1) | (fb << (self.width - 1))
        return out

    def next_word(self) -> int:
        """Advance ``width`` bits and return the fresh register content.

        This models the hardware behaviour of producing one whole hiding
        vector per key pair: by the time the encryption module samples V,
        the register has shifted a full word.
        """
        for _ in range(self.width):
            self.step()
        return self.state

    def next_bits(self, count: int) -> list[int]:
        """Return the next ``count`` output bits (LSB stream)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.step() for _ in range(count)]

    def peek(self) -> int:
        """Current register content without advancing."""
        return self.state

    def copy(self) -> "Lfsr":
        """Independent clone with identical state (used by decryptors)."""
        clone = Lfsr(self.width, seed=1, taps=self.taps)
        clone.state = self.state
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Lfsr(width={self.width}, state={self.state:#06x}, taps={self.taps})"


@lru_cache(maxsize=None)
def _leap_tables(width: int, taps: tuple[int, ...]
                 ) -> tuple[tuple[int, tuple[int, ...]], ...]:
    """Byte-indexed XOR tables that jump an LFSR ``width`` steps at once.

    The Fibonacci recurrence is linear over GF(2), so the state after
    ``width`` single-bit steps is a constant matrix applied to the state.
    The matrix is *sampled from the reference* :class:`Lfsr` — one basis
    probe per register bit — which is what makes :class:`LeapLfsr`
    equivalent by construction rather than by re-derivation.  The basis
    columns are then folded into one 256-entry table per state byte, so a
    whole fresh word costs ``ceil(width / 8)`` lookups and XORs.

    Returns ``((shift, table), ...)``; the next state is the XOR over all
    chunks of ``table[(state >> shift) & (len(table) - 1)]``.
    """
    basis = []
    for j in range(width):
        probe = Lfsr(width, seed=1 << j, taps=taps)
        probe.next_word()
        basis.append(probe.state)
    chunks = []
    for low in range(0, width, 8):
        size = min(8, width - low)
        table = [0] * (1 << size)
        for value in range(1, 1 << size):
            lsb = value & -value
            table[value] = table[value ^ lsb] ^ basis[low + lsb.bit_length() - 1]
        chunks.append((low, tuple(table)))
    return tuple(chunks)


class LeapLfsr:
    """Leap-forward stepper emitting exactly :meth:`Lfsr.next_word`'s sequence.

    This is the batched hiding-vector generator of the fast engine
    (:mod:`repro.core.fastpath`): instead of ``width`` single-bit steps
    per vector it applies the precomputed ``width``-step transition
    matrix as a handful of table lookups (see :func:`_leap_tables`).
    It deliberately has no ``step`` method — it moves in whole words.
    """

    def __init__(self, width: int = 16, seed: int = 0xACE1,
                 taps: tuple[int, ...] | None = None):
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        if taps is None:
            if width not in PRIMITIVE_TAPS:
                raise ValueError(
                    f"no default primitive taps for width {width}; pass taps explicitly"
                )
            taps = PRIMITIVE_TAPS[width]
        self.width = width
        self.taps = tuple(sorted(taps, reverse=True))
        seed &= mask(width)
        if seed == 0:
            raise ValueError("seed must be non-zero for an LFSR")
        self.state = seed
        self._chunks = _leap_tables(width, self.taps)

    @classmethod
    def from_lfsr(cls, lfsr: Lfsr) -> "LeapLfsr":
        """A leap stepper continuing exactly where ``lfsr`` stands."""
        return cls(lfsr.width, seed=lfsr.state, taps=lfsr.taps)

    def next_word(self) -> int:
        """Advance ``width`` bits in one leap; return the fresh word."""
        state = self.state
        word = 0
        for shift, table in self._chunks:
            word ^= table[(state >> shift) & (len(table) - 1)]
        self.state = word
        return word

    def words(self, count: int) -> list[int]:
        """The next ``count`` words as a list (batch form of :meth:`next_word`)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        state = self.state
        chunks = self._chunks
        out = []
        append = out.append
        for _ in range(count):
            word = 0
            for shift, table in chunks:
                word ^= table[(state >> shift) & (len(table) - 1)]
            state = word
            append(word)
        self.state = state
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LeapLfsr(width={self.width}, state={self.state:#06x})"


class GaloisLfsr:
    """Galois-configuration LFSR producing the same maximal sequence class.

    Included because the RTL offers both configurations (one XOR gate per
    tap instead of a tap-wide parity tree); tests verify both run at the
    full ``2**width - 1`` period for the default polynomials.
    """

    def __init__(self, width: int = 16, seed: int = 0xACE1, taps: tuple[int, ...] | None = None):
        if taps is None:
            if width not in PRIMITIVE_TAPS:
                raise ValueError(
                    f"no default primitive taps for width {width}; pass taps explicitly"
                )
            taps = PRIMITIVE_TAPS[width]
        self.width = width
        self.taps = tuple(sorted(taps, reverse=True))
        self._feedback_mask = taps_to_mask(taps, width)
        seed &= mask(width)
        if seed == 0:
            raise ValueError("seed must be non-zero for an LFSR")
        self.state = seed

    def step(self) -> int:
        """Advance one bit; return the bit shifted out of the LSB."""
        out = self.state & 1
        self.state >>= 1
        if out:
            self.state ^= self._feedback_mask
        return out

    def next_word(self) -> int:
        """Advance ``width`` bits and return the fresh register content."""
        for _ in range(self.width):
            self.step()
        return self.state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GaloisLfsr(width={self.width}, state={self.state:#06x})"
