"""Deterministic pseudo-random helpers for workloads and tests.

Everything in the benchmark harness must be reproducible run-to-run, so no
module ever touches the global :mod:`random` state; generators are always
constructed from explicit seeds via this module.
"""

from __future__ import annotations

import random

__all__ = ["make_rng", "random_bytes", "random_word", "SplitMix64"]


def make_rng(seed: int) -> random.Random:
    """A private :class:`random.Random` seeded deterministically."""
    return random.Random(seed)


def random_bytes(seed: int, count: int) -> bytes:
    """``count`` reproducible pseudo-random bytes for workload payloads."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return bytes(make_rng(seed).getrandbits(8) for _ in range(count))


def random_word(seed: int, width: int) -> int:
    """One reproducible ``width``-bit word."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return make_rng(seed).getrandbits(width)


class SplitMix64:
    """Tiny, fast, statistically solid 64-bit mixer.

    Used where many independent streams are needed cheaply (e.g. one
    stream per net in the placement annealer) without the construction
    cost of :class:`random.Random`.
    """

    _MASK = (1 << 64) - 1

    def __init__(self, seed: int):
        self._state = seed & self._MASK

    def next(self) -> int:
        """Next 64-bit output."""
        self._state = (self._state + 0x9E3779B97F4A7C15) & self._MASK
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & self._MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & self._MASK
        return z ^ (z >> 31)

    def below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)``."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self.next() % bound

    def uniform(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self.next() / (1 << 64)
