"""Per-session and aggregate link counters.

The ZTEX "Inouttraffic" framework around the descrypt cracker showed that
a hardware cipher core is only as fast as the accounting around it —
buffers, checksums and packet IDs are where a link either proves its
throughput or silently loses it.  This module is the software equivalent
for the secure link: every :class:`repro.net.session.Session` owns a
:class:`SessionMetrics`, the server aggregates them in a
:class:`MetricsRegistry`, and ``benchmarks/bench_net.py`` reports the
resulting Mbps next to the paper's hardware Table 1 numbers.

The clock is injectable so tests (and deterministic benchmarks) can pin
elapsed time instead of depending on the wall clock.

This layer is now a facade over :mod:`repro.obs`: the plain
``metrics.tx.packets``-style counters stay (cheap, always on, the wire
tests read them directly), and when observability is enabled every
``record_*`` call mirrors into the process-wide registry as
``repro_session_*`` series and typed ``repro.net.session`` log events.
Registries also learned to forget: :meth:`MetricsRegistry.remove` folds
a closed session into retired aggregates so a long-lived server does
not grow a dict entry per connection forever.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import Callable

from repro.obs import core as _obs
from repro.obs.logs import log_event

__all__ = ["DirectionCounters", "SessionMetrics", "MetricsRegistry"]


@dataclass
class DirectionCounters:
    """Counters for one traffic direction of one session."""

    packets: int = 0
    payload_bytes: int = 0
    wire_bytes: int = 0
    crc_failures: int = 0
    replays: int = 0
    gaps: int = 0
    rekeys: int = 0

    def add(self, other: "DirectionCounters") -> None:
        """Accumulate ``other`` into this instance (for aggregation)."""
        for spec in fields(self):
            setattr(self, spec.name,
                    getattr(self, spec.name) + getattr(other, spec.name))

    @property
    def overhead_ratio(self) -> float:
        """Wire bytes per payload byte (framing overhead); 0 when idle."""
        if self.payload_bytes == 0:
            return 0.0
        return self.wire_bytes / self.payload_bytes


class SessionMetrics:
    """Counters plus timing for one duplex session.

    ``tx`` counts what this side encrypted and sent, ``rx`` what it
    received and accepted.  Rates use an injectable monotonic ``clock``
    (defaults to :func:`time.perf_counter`).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._start = clock()
        self._last_activity = self._start
        self.tx = DirectionCounters()
        self.rx = DirectionCounters()

    def elapsed(self) -> float:
        """Seconds since the session started (never zero)."""
        return max(self._clock() - self._start, 1e-9)

    def idle(self) -> float:
        """Seconds since the last ``record_*`` call (0 for a new session)."""
        return max(self._clock() - self._last_activity, 0.0)

    # -- recording (the session halves call these on the hot path) ---------

    def _touch(self) -> None:
        self._last_activity = self._clock()

    def record_tx(self, payload_bytes: int, wire_bytes: int) -> None:
        """Account one encrypted-and-sent packet."""
        self.tx.packets += 1
        self.tx.payload_bytes += payload_bytes
        self.tx.wire_bytes += wire_bytes
        self._touch()
        registry = _obs.get_registry()
        if registry.enabled:
            registry.counter("repro_session_packets_total",
                             direction="tx").inc()
            registry.counter("repro_session_payload_bytes_total",
                             direction="tx").inc(payload_bytes)
            registry.counter("repro_session_wire_bytes_total",
                             direction="tx").inc(wire_bytes)

    def record_rx(self, payload_bytes: int, wire_bytes: int,
                  gap: int = 0) -> None:
        """Account one received-and-accepted packet (``gap`` = skipped seqs)."""
        self.rx.packets += 1
        self.rx.payload_bytes += payload_bytes
        self.rx.wire_bytes += wire_bytes
        if gap:
            self.rx.gaps += gap
        self._touch()
        registry = _obs.get_registry()
        if registry.enabled:
            registry.counter("repro_session_packets_total",
                             direction="rx").inc()
            registry.counter("repro_session_payload_bytes_total",
                             direction="rx").inc(payload_bytes)
            registry.counter("repro_session_wire_bytes_total",
                             direction="rx").inc(wire_bytes)
            if gap:
                registry.counter("repro_link_drops_total",
                                 reason="gap").inc(gap)
                log_event("repro.net.session", "session.gap", gap=gap)

    def record_replay(self, seq: int | None = None) -> None:
        """Account one replayed/stale sequence number (packet rejected)."""
        self.rx.replays += 1
        self._touch()
        registry = _obs.get_registry()
        if registry.enabled:
            registry.counter("repro_link_drops_total", reason="replay").inc()
            log_event("repro.net.session", "session.replay", level=30,
                      seq=seq)

    def record_crc_failure(self) -> None:
        """Account one integrity/decode failure (packet rejected)."""
        self.rx.crc_failures += 1
        self._touch()
        registry = _obs.get_registry()
        if registry.enabled:
            registry.counter("repro_link_drops_total", reason="crc").inc()
            log_event("repro.net.session", "session.crc_failure", level=30)

    def record_rekey(self, direction: str, count: int = 1) -> None:
        """Account ``count`` epoch-key ratchets for ``direction``."""
        self._direction(direction).rekeys += count
        self._touch()
        registry = _obs.get_registry()
        if registry.enabled:
            registry.counter("repro_session_rekeys_total",
                             direction=direction).inc(count)

    def mbps(self, direction: str = "rx") -> float:
        """Payload megabits per second for ``direction`` (``tx``/``rx``)."""
        counters = self._direction(direction)
        return counters.payload_bytes * 8 / self.elapsed() / 1e6

    def wire_mbps(self, direction: str = "rx") -> float:
        """Wire (header + payload) megabits per second."""
        counters = self._direction(direction)
        return counters.wire_bytes * 8 / self.elapsed() / 1e6

    def _direction(self, direction: str) -> DirectionCounters:
        if direction == "tx":
            return self.tx
        if direction == "rx":
            return self.rx
        raise ValueError(f"direction must be 'tx' or 'rx', got {direction!r}")

    def snapshot(self) -> dict:
        """Plain-dict view (stable keys, suitable for JSON or asserts)."""
        out = {"elapsed_s": self.elapsed()}
        for name, counters in (("tx", self.tx), ("rx", self.rx)):
            for spec in fields(counters):
                out[f"{name}_{spec.name}"] = getattr(counters, spec.name)
            out[f"{name}_mbps"] = self.mbps(name)
        return out

    def render(self, title: str = "session") -> str:
        """Human-readable two-row summary table."""
        head = (f"{title:<12} {'pkts':>8} {'payload B':>11} {'wire B':>11} "
                f"{'Mbps':>8} {'crc':>5} {'replay':>6} {'gaps':>5} {'rekey':>5}")
        rows = [head]
        for name, counters in (("tx", self.tx), ("rx", self.rx)):
            rows.append(
                f"  {name:<10} {counters.packets:>8} "
                f"{counters.payload_bytes:>11} {counters.wire_bytes:>11} "
                f"{self.mbps(name):>8.2f} {counters.crc_failures:>5} "
                f"{counters.replays:>6} {counters.gaps:>5} {counters.rekeys:>5}"
            )
        return "\n".join(rows)


class MetricsRegistry:
    """Aggregates the per-session metrics of a server (or client pool).

    Live sessions sit in :attr:`sessions`; when a connection closes the
    server calls :meth:`remove`, which folds that session's counters
    into retired ``(tx, rx)`` aggregates and drops the dict entry.
    :meth:`aggregate` therefore stays lifetime-accurate while the dict
    stays bounded by the number of *concurrent* links — previously it
    grew one entry per connection forever.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self.sessions: dict[str, SessionMetrics] = {}
        self._retired_tx = DirectionCounters()
        self._retired_rx = DirectionCounters()
        self._retired_count = 0

    def session(self, name: str) -> SessionMetrics:
        """Create (or return) the metrics slot for ``name``."""
        if name not in self.sessions:
            self.sessions[name] = SessionMetrics(self._clock)
        return self.sessions[name]

    def remove(self, name: str) -> None:
        """Retire session ``name``: fold its counters into the lifetime
        aggregates and free its slot.  Unknown names are a no-op (a
        connection may die before earning a metrics slot)."""
        metrics = self.sessions.pop(name, None)
        if metrics is None:
            return
        self._retired_tx.add(metrics.tx)
        self._retired_rx.add(metrics.rx)
        self._retired_count += 1

    def evict_idle(self, idle_s: float) -> list[str]:
        """Retire every session idle for at least ``idle_s`` seconds.

        Returns the retired names.  For transports with no close signal
        (UDP) or embedders that never call :meth:`remove`."""
        stale = [name for name, metrics in self.sessions.items()
                 if metrics.idle() >= idle_s]
        for name in stale:
            self.remove(name)
        return stale

    @property
    def retired_count(self) -> int:
        """How many sessions have been retired via :meth:`remove`."""
        return self._retired_count

    @property
    def total_sessions(self) -> int:
        """Lifetime session count: live slots plus retired ones."""
        return len(self.sessions) + self._retired_count

    def aggregate(self) -> tuple[DirectionCounters, DirectionCounters]:
        """Summed ``(tx, rx)`` counters across live *and* retired sessions."""
        tx, rx = DirectionCounters(), DirectionCounters()
        tx.add(self._retired_tx)
        rx.add(self._retired_rx)
        for metrics in self.sessions.values():
            tx.add(metrics.tx)
            rx.add(metrics.rx)
        return tx, rx

    def render(self) -> str:
        """All live sessions plus retired and total rows."""
        if not self.sessions and not self._retired_count:
            return "no sessions"
        parts = [metrics.render(name)
                 for name, metrics in sorted(self.sessions.items())]
        if self._retired_count:
            parts.append(
                f"{'retired':<12} {self._retired_count} sessions, "
                f"tx {self._retired_tx.packets} pkts / "
                f"{self._retired_tx.payload_bytes} B, "
                f"rx {self._retired_rx.packets} pkts / "
                f"{self._retired_rx.payload_bytes} B"
            )
        tx, rx = self.aggregate()
        parts.append(
            f"{'total':<12} tx {tx.packets} pkts / {tx.payload_bytes} B, "
            f"rx {rx.packets} pkts / {rx.payload_bytes} B, "
            f"{rx.crc_failures} crc fail, {rx.replays} replays, "
            f"{rx.rekeys} rekeys"
        )
        return "\n".join(parts)
