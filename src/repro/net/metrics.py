"""Per-session and aggregate link counters.

The ZTEX "Inouttraffic" framework around the descrypt cracker showed that
a hardware cipher core is only as fast as the accounting around it —
buffers, checksums and packet IDs are where a link either proves its
throughput or silently loses it.  This module is the software equivalent
for the secure link: every :class:`repro.net.session.Session` owns a
:class:`SessionMetrics`, the server aggregates them in a
:class:`MetricsRegistry`, and ``benchmarks/bench_net.py`` reports the
resulting Mbps next to the paper's hardware Table 1 numbers.

The clock is injectable so tests (and deterministic benchmarks) can pin
elapsed time instead of depending on the wall clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import Callable

__all__ = ["DirectionCounters", "SessionMetrics", "MetricsRegistry"]


@dataclass
class DirectionCounters:
    """Counters for one traffic direction of one session."""

    packets: int = 0
    payload_bytes: int = 0
    wire_bytes: int = 0
    crc_failures: int = 0
    replays: int = 0
    gaps: int = 0
    rekeys: int = 0

    def add(self, other: "DirectionCounters") -> None:
        """Accumulate ``other`` into this instance (for aggregation)."""
        for spec in fields(self):
            setattr(self, spec.name,
                    getattr(self, spec.name) + getattr(other, spec.name))

    @property
    def overhead_ratio(self) -> float:
        """Wire bytes per payload byte (framing overhead); 0 when idle."""
        if self.payload_bytes == 0:
            return 0.0
        return self.wire_bytes / self.payload_bytes


class SessionMetrics:
    """Counters plus timing for one duplex session.

    ``tx`` counts what this side encrypted and sent, ``rx`` what it
    received and accepted.  Rates use an injectable monotonic ``clock``
    (defaults to :func:`time.perf_counter`).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._start = clock()
        self.tx = DirectionCounters()
        self.rx = DirectionCounters()

    def elapsed(self) -> float:
        """Seconds since the session started (never zero)."""
        return max(self._clock() - self._start, 1e-9)

    def mbps(self, direction: str = "rx") -> float:
        """Payload megabits per second for ``direction`` (``tx``/``rx``)."""
        counters = self._direction(direction)
        return counters.payload_bytes * 8 / self.elapsed() / 1e6

    def wire_mbps(self, direction: str = "rx") -> float:
        """Wire (header + payload) megabits per second."""
        counters = self._direction(direction)
        return counters.wire_bytes * 8 / self.elapsed() / 1e6

    def _direction(self, direction: str) -> DirectionCounters:
        if direction == "tx":
            return self.tx
        if direction == "rx":
            return self.rx
        raise ValueError(f"direction must be 'tx' or 'rx', got {direction!r}")

    def snapshot(self) -> dict:
        """Plain-dict view (stable keys, suitable for JSON or asserts)."""
        out = {"elapsed_s": self.elapsed()}
        for name, counters in (("tx", self.tx), ("rx", self.rx)):
            for spec in fields(counters):
                out[f"{name}_{spec.name}"] = getattr(counters, spec.name)
            out[f"{name}_mbps"] = self.mbps(name)
        return out

    def render(self, title: str = "session") -> str:
        """Human-readable two-row summary table."""
        head = (f"{title:<12} {'pkts':>8} {'payload B':>11} {'wire B':>11} "
                f"{'Mbps':>8} {'crc':>5} {'replay':>6} {'gaps':>5} {'rekey':>5}")
        rows = [head]
        for name, counters in (("tx", self.tx), ("rx", self.rx)):
            rows.append(
                f"  {name:<10} {counters.packets:>8} "
                f"{counters.payload_bytes:>11} {counters.wire_bytes:>11} "
                f"{self.mbps(name):>8.2f} {counters.crc_failures:>5} "
                f"{counters.replays:>6} {counters.gaps:>5} {counters.rekeys:>5}"
            )
        return "\n".join(rows)


class MetricsRegistry:
    """Aggregates the per-session metrics of a server (or client pool)."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self.sessions: dict[str, SessionMetrics] = {}

    def session(self, name: str) -> SessionMetrics:
        """Create (or return) the metrics slot for ``name``."""
        if name not in self.sessions:
            self.sessions[name] = SessionMetrics(self._clock)
        return self.sessions[name]

    def aggregate(self) -> tuple[DirectionCounters, DirectionCounters]:
        """Summed ``(tx, rx)`` counters across every session."""
        tx, rx = DirectionCounters(), DirectionCounters()
        for metrics in self.sessions.values():
            tx.add(metrics.tx)
            rx.add(metrics.rx)
        return tx, rx

    def render(self) -> str:
        """All sessions plus a totals row."""
        if not self.sessions:
            return "no sessions"
        parts = [metrics.render(name)
                 for name, metrics in sorted(self.sessions.items())]
        tx, rx = self.aggregate()
        parts.append(
            f"{'total':<12} tx {tx.packets} pkts / {tx.payload_bytes} B, "
            f"rx {rx.packets} pkts / {rx.payload_bytes} B, "
            f"{rx.crc_failures} crc fail, {rx.replays} replays, "
            f"{rx.rekeys} rekeys"
        )
        return "\n".join(parts)
