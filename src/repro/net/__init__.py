"""``repro.net`` — the asyncio transport of the secure-link subsystem.

Turns the standalone packet codec of :mod:`repro.core.stream` into a
working encrypted link, the deployment the paper targets ("packet-level
encryption" on high-speed data-communication networks, section VI):

* :mod:`repro.net.session` — nonce schedules, per-direction key
  ratcheting and replay detection (the stateful discipline the codec
  itself leaves to its caller);
* :mod:`repro.net.framing` — incremental TCP-style frame extraction and
  the hello/handshake frame;
* :mod:`repro.net.server` / :mod:`repro.net.client` — asyncio peers
  built as thin adapters over the sans-IO
  :class:`repro.link.LinkProtocol` state machine, with concurrent
  sessions, worker-pool offload and bounded-queue backpressure;
* :mod:`repro.net.metrics` — the counters ``benchmarks/bench_net.py``
  turns into link-throughput numbers comparable with the paper's
  Table 1.

The protocol logic itself (handshake sequencing, framing, session
crypto, replay windows) lives in :mod:`repro.link`; this package only
moves bytes with asyncio.  Exports resolve lazily so that importing the
session/framing layers — which the sans-IO core builds on — never drags
in asyncio (enforced by ``tests/link/test_sans_io.py``).

Wire and handshake formats are specified in DESIGN.md sections 4–6.
"""

__all__ = [
    "Frame",
    "FrameDecoder",
    "Hello",
    "MetricsRegistry",
    "SecureLinkClient",
    "SecureLinkServer",
    "Session",
    "SessionConfig",
    "SessionMetrics",
]

#: Where each lazy re-export really lives.
_EXPORTS = {
    "SecureLinkClient": "repro.net.client",
    "Frame": "repro.net.framing",
    "FrameDecoder": "repro.net.framing",
    "Hello": "repro.net.framing",
    "MetricsRegistry": "repro.net.metrics",
    "SessionMetrics": "repro.net.metrics",
    "SecureLinkServer": "repro.net.server",
    "Session": "repro.net.session",
    "SessionConfig": "repro.net.session",
    "key_fingerprint": "repro.net.session",
}


#: Submodules reachable as ``repro.net.<name>`` attributes — the eager
#: era bound them as an import side effect; the lazy loader keeps that.
_SUBMODULES = frozenset({"client", "framing", "metrics", "server",
                         "session"})


def __getattr__(name: str):
    """PEP 562 lazy loader: import the defining module on first use."""
    import importlib

    if name in _SUBMODULES:
        return importlib.import_module(f"{__name__}.{name}")
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: later lookups skip __getattr__
    return value


def __dir__() -> list[str]:
    """Advertise the lazy re-exports alongside real module globals."""
    return sorted(set(globals()) | set(__all__) | set(_EXPORTS)
                  | _SUBMODULES)
