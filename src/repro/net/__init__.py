"""``repro.net`` — the secure-link subsystem.

Turns the standalone packet codec of :mod:`repro.core.stream` into a
working encrypted link, the deployment the paper targets ("packet-level
encryption" on high-speed data-communication networks, section VI):

* :mod:`repro.net.session` — nonce schedules, per-direction key
  ratcheting and replay detection (the stateful discipline the codec
  itself leaves to its caller);
* :mod:`repro.net.framing` — incremental TCP-style frame extraction and
  the hello/handshake frame;
* :mod:`repro.net.server` / :mod:`repro.net.client` — asyncio peers with
  handshake, concurrent sessions and bounded-queue backpressure;
* :mod:`repro.net.metrics` — the counters ``benchmarks/bench_net.py``
  turns into link-throughput numbers comparable with the paper's
  Table 1.

Wire and handshake formats are specified in DESIGN.md sections 4–6.
"""

from repro.net.client import SecureLinkClient
from repro.net.framing import Frame, FrameDecoder, Hello
from repro.net.metrics import MetricsRegistry, SessionMetrics
from repro.net.server import SecureLinkServer
from repro.net.session import Session, SessionConfig, key_fingerprint

__all__ = [
    "Frame",
    "FrameDecoder",
    "Hello",
    "MetricsRegistry",
    "SecureLinkClient",
    "SecureLinkServer",
    "Session",
    "SessionConfig",
    "SessionMetrics",
]
