"""Asyncio secure-link server (echo/relay side of the link).

A thin transport adapter: all protocol logic — handshake sequencing,
framing, session crypto, replay windows — lives in the sans-IO
:class:`repro.link.LinkProtocol`; this module only moves that machine's
bytes over asyncio streams.  One :class:`SecureLinkServer` accepts any
number of concurrent clients.  Each connection gets its own protocol
instance (namespaced by the client's session id, so working keys and
nonce schedules never collide across connections) and its own bounded
reply queue: the reader coroutine stops pulling bytes off the socket
while the queue is full, which propagates backpressure to the client
through TCP instead of buffering without limit — the lesson of the ZTEX
link layer, which throttled the host rather than drop candidates.

The default handler echoes payloads back, which is exactly what the
round-trip benchmarks need; pass any ``bytes -> bytes`` callable (sync
or async) to relay or transform instead.
"""

from __future__ import annotations

import asyncio
import inspect
import warnings
from dataclasses import replace
from typing import Awaitable, Callable

from repro.core.errors import ReproError
from repro.link.events import (
    HandshakeComplete,
    LinkClosed,
    PacketReceived,
    PayloadReceived,
    ProtocolError,
)
from repro.link.protocol import LinkProtocol, _resolve_root
from repro.net.metrics import MetricsRegistry
from repro.net.session import SessionConfig
from repro.obs import core as _obs
from repro.obs.logs import log_event
from repro.parallel.pool import EncryptionPool

__all__ = ["SecureLinkServer", "DEFAULT_QUEUE_DEPTH"]

#: Replies a connection may have in flight before its reader stalls.
DEFAULT_QUEUE_DEPTH = 32

#: Socket read granularity (bytes per ``reader.read`` call).
_READ_CHUNK = 1 << 16

Handler = Callable[[bytes], "bytes | Awaitable[bytes]"]


def _echo(payload: bytes) -> bytes:
    """The default handler: send every payload straight back."""
    return payload


class SecureLinkServer:
    """Concurrent multi-session server speaking the secure-link protocol.

    Usage::

        async with SecureLinkServer(root_key, port=0) as server:
            ...  # server.port is the bound port
        # exiting the context closes the listener and drains connections

    Protocol errors on one connection (bad handshake, damaged frames,
    replays) close that connection and are recorded in :attr:`errors`;
    they never take the listener down.

    ``metrics_port`` (non-None) starts a
    :class:`repro.obs.MetricsEndpoint` next to the listener: ``GET
    /metrics`` serves the process-wide obs registry as Prometheus text
    and ``GET /healthz`` reports listener/connection health.  Pass ``0``
    to bind an ephemeral port (read it back from
    ``server.metrics_endpoint.port``).

    ``metrics_eviction_s`` paces a background sweep that retires
    metrics slots idle for at least that long (folding their counters
    into the lifetime aggregates) — the guard against a wedged
    connection pinning its slot forever.  ``0`` disables the sweep.
    """

    def __init__(self, root, host: str = "127.0.0.1", port: int = 0,
                 config: SessionConfig | None = None,
                 handler: Handler = _echo,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 engine: str | None = None,
                 metrics_port: int | None = None,
                 kex=None,
                 metrics_eviction_s: float = 600.0):
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if metrics_eviction_s < 0:
            raise ValueError(
                f"metrics_eviction_s must be >= 0, got {metrics_eviction_s}"
            )
        root, config = _resolve_root(root, config)
        self._kex = kex
        self._root = root
        self._host = host
        self._requested_port = port
        config = config or SessionConfig()
        if engine is not None:
            # Legacy convenience override: the cipher engine is a purely
            # local choice (packets are byte-identical), never handshake
            # policy.  Prefer binding it in a Codec / SessionConfig.
            from repro.core.engines import check_engine_name

            check_engine_name(engine)  # eager UnknownEngineError
            warnings.warn(
                "the engine= override on SecureLinkServer/SecureLinkClient "
                "is deprecated; bind the engine in a repro.api.Codec (or "
                "SessionConfig) instead",
                DeprecationWarning, stacklevel=2,
            )
            config = replace(config, engine=engine)
        self._config = config
        self._config.validate(root.params.width)
        self._handler = handler
        self._queue_depth = queue_depth
        self._pool: EncryptionPool | None = None
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._next_peer = 0
        self.metrics = MetricsRegistry()
        self.errors: list[str] = []
        self._metrics_port = metrics_port
        self._metrics_eviction_s = metrics_eviction_s
        self._eviction_task: asyncio.Task | None = None
        #: The live :class:`repro.obs.MetricsEndpoint` (``metrics_port``
        #: given and the server started), else ``None``.
        self.metrics_endpoint = None

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket; sets :attr:`port`.

        Also (re)starts the shared cipher pool when the config asks for
        ``parallel_workers``: one pool serves every connection, so
        payloads of at least ``parallel_threshold`` bytes run on worker
        processes and the event loop stays free for other connections
        while big transfers grind.
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        if self._config.parallel_workers > 0 and self._pool is None:
            self._pool = EncryptionPool(self._config.parallel_workers,
                                        engine=self._config.engine)
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._requested_port
        )
        if self._metrics_port is not None:
            from repro.obs.http import MetricsEndpoint

            self.metrics_endpoint = MetricsEndpoint(
                host=self._host, port=self._metrics_port,
                health=self._health)
            await self.metrics_endpoint.start()
        if self._metrics_eviction_s > 0:
            # Periodic MetricsRegistry.evict_idle: connections normally
            # retire their own slot on close, but a wedged connection
            # (half-open TCP, a peer that never progresses) would pin
            # its entry forever — this sweep bounds the registry by
            # *recently active* links on long-running servers.
            self._eviction_task = asyncio.create_task(self._evict_loop())

    async def _evict_loop(self) -> None:
        interval = self._metrics_eviction_s
        while True:
            await asyncio.sleep(interval)
            evicted = self.metrics.evict_idle(interval)
            if evicted and _obs.get_registry().enabled:
                log_event("repro.net.server", "server.metrics_evicted",
                          sessions=len(evicted))

    def _health(self) -> dict:
        """The ``/healthz`` document for the metrics endpoint."""
        return {
            "status": "ok" if self._server is not None else "closed",
            "active_links": len(self._connections),
            "sessions": self.metrics.total_sessions,
            "errors": len(self.errors),
        }

    @property
    def port(self) -> int:
        """The bound TCP port (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop accepting, cancel live connections, wait for teardown."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._server = None
        if self._eviction_task is not None:
            self._eviction_task.cancel()
            await asyncio.gather(self._eviction_task, return_exceptions=True)
            self._eviction_task = None
        if self.metrics_endpoint is not None:
            await self.metrics_endpoint.close()
            self.metrics_endpoint = None
        if self._pool is not None:
            # Non-blocking: a synchronous join would stall the event
            # loop (and every other connection) on in-flight jobs.
            self._pool.close(wait=False)
            self._pool = None  # a later start() builds a fresh one

    async def serve_forever(self) -> None:
        """Block until cancelled (for CLI use)."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def __aenter__(self) -> "SecureLinkServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- per-connection machinery -----------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        name = f"peer-{self._next_peer}"
        self._next_peer += 1
        registry = _obs.get_registry()
        registry.counter("repro_server_accepts_total").inc()
        active = registry.gauge(
            "repro_server_active_links",
            help="Connections currently being served.")
        active.inc()
        try:
            await self._run_connection(name, reader, writer)
        except asyncio.CancelledError:
            pass
        except ReproError as exc:
            self.errors.append(f"{name}: {exc}")
            registry.counter("repro_server_errors_total",
                             kind=type(exc).__name__).inc()
            if registry.enabled:
                log_event("repro.net.server", "server.connection_error",
                          level=30, peer=name,
                          error=type(exc).__name__, detail=str(exc))
        except (ConnectionError, asyncio.IncompleteReadError) as exc:
            self.errors.append(f"{name}: connection lost ({exc})")
            registry.counter("repro_server_errors_total",
                             kind="connection_lost").inc()
        finally:
            # The transport is always released — handshake failure,
            # protocol damage or clean EOF alike; leaking the socket of
            # a failed connection would exhaust descriptors under churn.
            self._connections.discard(task)
            active.dec()
            # Retire the metrics slot: its counters fold into the
            # registry's lifetime aggregates, so the dict is bounded by
            # concurrent (not lifetime) connections.
            self.metrics.remove(name)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _run_connection(self, name: str, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        # The sans-IO machine owns the whole protocol; with a pool bound
        # it hands packets over undecrypted (PacketReceived) so the
        # cipher work can be awaited on worker processes.
        proto = LinkProtocol(
            self._root, "responder", config=self._config,
            metrics=lambda: self.metrics.session(name),
            decrypt_payloads=self._pool is None,
            kex=self._kex,
        )
        queue: asyncio.Queue = asyncio.Queue(self._queue_depth)
        sender = asyncio.create_task(self._send_replies(queue, proto, writer))
        try:
            closed = False
            while not closed:
                chunk = await reader.read(_READ_CHUNK)
                events = (proto.receive_eof() if not chunk
                          else proto.receive_data(chunk))
                if proto.bytes_to_send:
                    # The hello reply, queued by the machine during
                    # handshake completion — flushed before any payload
                    # reply can possibly be enqueued below.
                    writer.write(proto.data_to_send())
                    await writer.drain()
                for event in events:
                    if isinstance(event, ProtocolError):
                        raise event.error
                    if isinstance(event, LinkClosed):
                        closed = True
                        break
                    if isinstance(event, HandshakeComplete):
                        continue
                    if isinstance(event, PacketReceived):
                        payload = await proto.session.decrypt_async(
                            event.packet, self._pool)
                    else:  # PayloadReceived (machine decrypted inline)
                        payload = event.payload
                    result = self._handler(payload)
                    if inspect.isawaitable(result):
                        result = await result
                    # Bounded queue: blocks here (and therefore stops
                    # reading the socket) when the writer falls behind.
                    await self._enqueue(queue, result, sender)
                if not chunk:
                    break
            await self._enqueue(queue, None, sender)
            await sender
        finally:
            if not sender.done():
                sender.cancel()
                await asyncio.gather(sender, return_exceptions=True)

    @staticmethod
    async def _enqueue(queue: asyncio.Queue, item, sender: asyncio.Task) -> None:
        """Put ``item`` without deadlocking on a dead reply writer.

        If the sender task has failed, nothing will ever drain the queue
        and a plain ``queue.put`` on a full queue would block forever
        (leaking the connection task and socket); racing the put against
        the sender surfaces the writer's failure instead.
        """
        put = asyncio.ensure_future(queue.put(item))
        done, _ = await asyncio.wait({put, sender},
                                     return_when=asyncio.FIRST_COMPLETED)
        if put in done:
            return
        put.cancel()
        await asyncio.gather(put, return_exceptions=True)
        await sender  # raises the writer's failure...
        raise ConnectionError("reply writer exited before the stream ended")

    async def _send_replies(self, queue: asyncio.Queue, proto: LinkProtocol,
                            writer: asyncio.StreamWriter) -> None:
        while True:
            batch = [await queue.get()]
            # Coalesce every reply already waiting: the machine queues
            # them all, then one write+drain flushes the burst — one
            # syscall round per wakeup instead of one per payload.
            while True:
                try:
                    batch.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            finished = False
            for payload in batch:
                if payload is None:
                    finished = True
                    break
                if self._pool is not None:
                    proto.send_packet(await proto.session.encrypt_async(
                        payload, self._pool))
                else:
                    proto.send_payload(payload)
            if proto.bytes_to_send:
                writer.write(proto.data_to_send())
                await writer.drain()
            if finished:
                break
