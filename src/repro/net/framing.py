"""Incremental stream framing for the secure link.

:func:`repro.core.stream.split_packets` assumes the whole byte stream is
already in hand; a TCP peer instead sees arbitrary chunks — half a
header here, three packets and a bit there.  :class:`FrameDecoder` is
the streaming replacement: feed it chunks as they arrive and it yields
complete frames, carrying partial state across calls.  It understands
the two frame kinds on the wire (DESIGN.md section 6):

* ``hello`` — the fixed-size handshake frame (:class:`Hello`), magic
  ``b"MHLO"``;
* ``packet`` — one ciphertext packet in the
  :mod:`repro.core.stream` container format, magic ``b"MHEA"``;
* ``kex`` — one hello-v2 key-exchange message
  (:mod:`repro.kex.wire`), magic ``b"MKX2"``, used only while a
  negotiated handshake runs ahead of the classic hello.

The decoder enforces an oversized-payload ceiling (a corrupted length
field must not make a receiver buffer gigabytes) and, optionally,
resynchronises after junk by scanning for the next magic — the classic
framed-link recovery strategy, with every skipped byte accounted.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.errors import CipherFormatError
from repro.core.stream import (
    ALGORITHM_HHEA,
    ALGORITHM_MHHEA,
    HEADER_SIZE,
    MAGIC,
    PacketHeader,
    verify_packet,
)
from repro.kex.wire import (
    KEX_MAGIC,
    KEX_PREFIX_SIZE,
    kex_frame_size,
    unpack_record as _unpack_kex_record,
)
from repro.util.crc import crc16_ccitt

__all__ = [
    "HELLO_MAGIC",
    "HELLO_SIZE",
    "HELLO_VERSION",
    "Hello",
    "Frame",
    "FrameDecoder",
]

HELLO_MAGIC = b"MHLO"
HELLO_VERSION = 1

# magic, version, algorithm, width, flags, session id, key fingerprint,
# rekey interval, CRC-16 over all preceding bytes (little-endian).
_HELLO = struct.Struct("<4sBBBB8s8sIH")
HELLO_SIZE = _HELLO.size

#: Default ceiling for one frame's payload; see DESIGN.md section 6.
MAX_PAYLOAD_DEFAULT = 1 << 20


@dataclass(frozen=True)
class Hello:
    """The handshake frame both peers exchange before any ciphertext.

    Carries everything the link must agree on — algorithm, vector width,
    rekey interval — plus the 8-byte session id that namespaces this
    connection's derived keys and the root-key fingerprint that proves
    both ends hold the same secret without revealing it.
    """

    algorithm: int
    width: int
    session_id: bytes
    fingerprint: bytes
    rekey_interval: int

    def pack(self) -> bytes:
        """Serialise to the fixed-size wire frame, CRC included."""
        body = _HELLO.pack(
            HELLO_MAGIC, HELLO_VERSION, self.algorithm, self.width, 0,
            self.session_id, self.fingerprint, self.rekey_interval, 0,
        )[:-2]
        return body + crc16_ccitt(body).to_bytes(2, "little")

    @classmethod
    def unpack(cls, blob: bytes) -> "Hello":
        """Parse and validate one wire hello frame."""
        if len(blob) < HELLO_SIZE:
            raise CipherFormatError(
                f"hello frame too short: {len(blob)} < {HELLO_SIZE}"
            )
        (magic, version, algorithm, width, flags, session_id, fingerprint,
         rekey_interval, crc) = _HELLO.unpack_from(blob)
        if magic != HELLO_MAGIC:
            raise CipherFormatError(f"bad hello magic {magic!r}")
        if version != HELLO_VERSION:
            raise CipherFormatError(f"unsupported hello version {version}")
        if flags != 0:
            raise CipherFormatError(f"reserved hello flags set: {flags:#x}")
        if algorithm not in (ALGORITHM_HHEA, ALGORITHM_MHHEA):
            raise CipherFormatError(f"unknown algorithm id {algorithm}")
        if width == 0 or width % 8 != 0:
            raise CipherFormatError(
                f"hello width {width} is not a whole byte count"
            )
        actual = crc16_ccitt(blob[: HELLO_SIZE - 2])
        if actual != crc:
            raise CipherFormatError(
                f"hello CRC mismatch: frame {crc:#06x}, computed {actual:#06x}"
            )
        return cls(algorithm, width, session_id, fingerprint, rekey_interval)


@dataclass(frozen=True)
class Frame:
    """One complete wire frame: its kind plus the raw bytes.

    ``raw`` is a read-only bytes-like object — on the zero-copy decode
    path it is a :class:`memoryview` into the decoder's drain buffer
    rather than a fresh ``bytes`` copy.  It compares equal to the
    equivalent ``bytes`` and every parser accepts it as-is; call
    ``bytes(frame.raw)`` only where a real ``bytes`` object is required
    (pickling to a worker pool, long-term retention).  See
    :class:`FrameDecoder` for the view-lifetime contract.
    """

    kind: str  # "hello", "packet" or "kex"
    raw: "bytes | memoryview"

    def hello(self) -> Hello:
        """Parse a ``hello`` frame (raises on a ``packet`` frame)."""
        if self.kind != "hello":
            raise CipherFormatError(f"frame is a {self.kind}, not a hello")
        return Hello.unpack(self.raw)

    def header(self) -> PacketHeader:
        """Parse a ``packet`` frame's header (raises on a ``hello``)."""
        if self.kind != "packet":
            raise CipherFormatError(f"frame is a {self.kind}, not a packet")
        return PacketHeader.unpack(self.raw)


class FrameDecoder:
    """Chunk-at-a-time frame extractor for a TCP-style byte stream.

    Parameters
    ----------
    max_payload:
        Reject (or skip, under ``resync``) any packet frame advertising a
        payload larger than this, before buffering it.
    resync:
        With ``False`` (the default, right for trusted transports like a
        local TCP connection) any unrecognised magic raises
        :class:`CipherFormatError` immediately.  With ``True`` the
        decoder scans forward for the next magic instead, counting the
        discarded bytes in :attr:`bytes_skipped` — the recovery mode for
        lossy or damaged transports.
    verify_crc:
        With ``False`` (the default) framing only *delimits* packet
        frames — the payload CRC is the decryptor's job, so a payload
        bit flip still yields one complete (but doomed) frame.  With
        ``True`` the decoder runs the full packet CRC before emitting: a
        damaged packet raises (or, under ``resync``, is skipped like
        junk), so no frame with a bad CRC is ever returned.  Hello
        frames are always fully CRC-checked.

    A raised framing error is fatal for the stream: frames decoded
    earlier in the same ``feed`` call are discarded with it, because on
    a reliable transport junk means the peers have lost framing and no
    later byte can be trusted.

    **Zero-copy operation and view lifetimes.**  The decoder keeps one
    immutable ``bytes`` buffer and a head offset instead of a mutable
    ``bytearray``: when nothing is pending, ``feed`` *adopts* the chunk
    as the buffer outright (no copy at all); when a partial frame is
    carried over, only that pending tail is copied once to prepend it to
    the new chunk.  Emitted :class:`Frame` objects carry
    :class:`memoryview` slices of the owning buffer — one owner per
    drain, never a per-frame copy.  Because owners are immutable and are
    *replaced* (not resized) on compaction, emitted views stay valid
    forever: they simply keep their owning buffer alive.  The flip side
    is that retaining one small frame pins its whole drain buffer in
    memory — consumers that hold frames beyond the current receive call
    should copy with ``bytes(frame.raw)`` (the link protocol does this
    for ``PacketReceived`` events, which may outlive the drain and cross
    process-pool boundaries).
    """

    #: Bytes of possible magic prefix preserved while resynchronising.
    _TAIL = 3

    def __init__(self, max_payload: int = MAX_PAYLOAD_DEFAULT,
                 resync: bool = False, verify_crc: bool = False):
        if max_payload < 1:
            raise ValueError(f"max_payload must be >= 1, got {max_payload}")
        self.max_payload = max_payload
        self.resync = resync
        self.verify_crc = verify_crc
        self.bytes_skipped = 0
        self.frames_decoded = 0
        self._buf: bytes = b""
        self._head = 0
        self._view = memoryview(b"")

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet framed."""
        return len(self._buf) - self._head

    def feed(self, chunk: bytes) -> list[Frame]:
        """Absorb ``chunk`` and return every frame it completes."""
        if self._head >= len(self._buf):
            # Nothing pending: adopt the chunk as the owning buffer.
            self._buf = chunk if type(chunk) is bytes else bytes(chunk)
        else:
            # Compact: one copy of the pending tail, never of past frames.
            self._buf = self._buf[self._head:] + chunk
        self._head = 0
        self._view = memoryview(self._buf)
        frames: list[Frame] = []
        while True:
            before = self._head
            frame = self._try_next()
            if frame is not None:
                frames.append(frame)
            elif self._head == before:
                # Neither a frame nor resync progress: wait for more bytes.
                break
        return frames

    def finish(self) -> None:
        """Assert the stream ended on a frame boundary.

        Call when the transport signals EOF; raises
        :class:`CipherFormatError` if bytes of an incomplete frame remain.
        """
        if self.pending:
            raise CipherFormatError(
                f"stream ended mid-frame with {self.pending} bytes pending"
            )

    def reset(self, count_skipped: bool = False) -> None:
        """Drop any pending bytes and return to the empty state.

        Datagram-mode links reuse one decoder across datagrams: after a
        drop decision the leftover bytes of the bad datagram must not
        bleed into the next one.  With ``count_skipped=True`` the
        discarded pending bytes are added to :attr:`bytes_skipped`, so
        drop accounting stays truthful across reuse.  Cumulative
        counters (:attr:`frames_decoded`, :attr:`bytes_skipped`) are
        never reset.
        """
        if count_skipped:
            self.bytes_skipped += self.pending
        self._buf = b""
        self._head = 0
        self._view = memoryview(b"")

    # -- internals --------------------------------------------------------

    def _try_next(self) -> Frame | None:
        buf, head = self._buf, self._head
        if len(buf) - head < len(MAGIC):
            return None
        if buf.startswith(MAGIC, head):
            return self._try_packet()
        if buf.startswith(HELLO_MAGIC, head):
            return self._try_hello()
        if buf.startswith(KEX_MAGIC, head):
            return self._try_kex()
        if not self.resync:
            raise CipherFormatError(
                f"cannot frame stream: unknown magic {buf[head:head + 4]!r}"
            )
        self._skip_to_magic()
        return None

    def _try_packet(self) -> Frame | None:
        buf, head = self._buf, self._head
        if len(buf) - head < HEADER_SIZE:
            return None
        header = self._parse(PacketHeader.unpack,
                             self._view[head:head + HEADER_SIZE])
        if header is None:
            return None
        if header.payload_size > self.max_payload:
            message = (
                f"packet advertises {header.payload_size}-byte payload, "
                f"over the {self.max_payload}-byte limit"
            )
            if self.resync:
                self._discard(1)
                self._skip_to_magic()
                return None
            raise CipherFormatError(message)
        total = HEADER_SIZE + header.payload_size
        if len(buf) - head < total:
            return None
        if self.verify_crc:
            if self._parse(verify_packet, self._view[head:head + total]) is None:
                return None
        return self._emit("packet", total)

    def _try_hello(self) -> Frame | None:
        buf, head = self._buf, self._head
        if len(buf) - head < HELLO_SIZE:
            return None
        if self._parse(Hello.unpack, self._view[head:head + HELLO_SIZE]) is None:
            return None
        return self._emit("hello", HELLO_SIZE)

    def _try_kex(self) -> Frame | None:
        buf, head = self._buf, self._head
        if len(buf) - head < KEX_PREFIX_SIZE:
            return None
        # kex_frame_size raises on an oversized body; route that through
        # the shared junk policy (fatal, or skip under resync).
        total = self._parse(kex_frame_size, buf[head:head + KEX_PREFIX_SIZE])
        if total is None:
            return None
        if len(buf) - head < total:
            return None
        if self._parse(_unpack_kex_record,
                       self._view[head:head + total]) is None:
            return None
        return self._emit("kex", total)

    def _parse(self, parser, blob):
        """Run ``parser``; under resync, treat failures as junk to skip."""
        try:
            return parser(blob)
        except CipherFormatError:
            if not self.resync:
                raise
            self._discard(1)
            self._skip_to_magic()
            return None

    def _emit(self, kind: str, size: int) -> Frame:
        start = self._head
        self._head = start + size
        self.frames_decoded += 1
        return Frame(kind, self._view[start:start + size])

    def _discard(self, count: int) -> None:
        self._head += count
        self.bytes_skipped += count

    def _skip_to_magic(self) -> None:
        """Drop bytes until a magic (or a possible magic prefix) leads."""
        buf, head = self._buf, self._head
        candidates = [position for position in
                      (buf.find(MAGIC, head), buf.find(HELLO_MAGIC, head),
                       buf.find(KEX_MAGIC, head))
                      if position >= 0]
        if candidates:
            self._discard(min(candidates) - head)
            return
        # No full magic in view: keep a short tail that could be the
        # start of one split across chunks, drop the rest.
        keep = 0
        for length in range(min(self._TAIL, len(buf) - head), 0, -1):
            tail = buf[len(buf) - length:]
            if (MAGIC.startswith(tail) or HELLO_MAGIC.startswith(tail)
                    or KEX_MAGIC.startswith(tail)):
                keep = length
                break
        self._discard(len(buf) - head - keep)
