"""Incremental stream framing for the secure link.

:func:`repro.core.stream.split_packets` assumes the whole byte stream is
already in hand; a TCP peer instead sees arbitrary chunks — half a
header here, three packets and a bit there.  :class:`FrameDecoder` is
the streaming replacement: feed it chunks as they arrive and it yields
complete frames, carrying partial state across calls.  It understands
the two frame kinds on the wire (DESIGN.md section 6):

* ``hello`` — the fixed-size handshake frame (:class:`Hello`), magic
  ``b"MHLO"``;
* ``packet`` — one ciphertext packet in the
  :mod:`repro.core.stream` container format, magic ``b"MHEA"``.

The decoder enforces an oversized-payload ceiling (a corrupted length
field must not make a receiver buffer gigabytes) and, optionally,
resynchronises after junk by scanning for the next magic — the classic
framed-link recovery strategy, with every skipped byte accounted.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.errors import CipherFormatError
from repro.core.stream import (
    ALGORITHM_HHEA,
    ALGORITHM_MHHEA,
    HEADER_SIZE,
    MAGIC,
    PacketHeader,
    verify_packet,
)
from repro.util.crc import crc16_ccitt

__all__ = [
    "HELLO_MAGIC",
    "HELLO_SIZE",
    "HELLO_VERSION",
    "Hello",
    "Frame",
    "FrameDecoder",
]

HELLO_MAGIC = b"MHLO"
HELLO_VERSION = 1

# magic, version, algorithm, width, flags, session id, key fingerprint,
# rekey interval, CRC-16 over all preceding bytes (little-endian).
_HELLO = struct.Struct("<4sBBBB8s8sIH")
HELLO_SIZE = _HELLO.size

#: Default ceiling for one frame's payload; see DESIGN.md section 6.
MAX_PAYLOAD_DEFAULT = 1 << 20


@dataclass(frozen=True)
class Hello:
    """The handshake frame both peers exchange before any ciphertext.

    Carries everything the link must agree on — algorithm, vector width,
    rekey interval — plus the 8-byte session id that namespaces this
    connection's derived keys and the root-key fingerprint that proves
    both ends hold the same secret without revealing it.
    """

    algorithm: int
    width: int
    session_id: bytes
    fingerprint: bytes
    rekey_interval: int

    def pack(self) -> bytes:
        """Serialise to the fixed-size wire frame, CRC included."""
        body = _HELLO.pack(
            HELLO_MAGIC, HELLO_VERSION, self.algorithm, self.width, 0,
            self.session_id, self.fingerprint, self.rekey_interval, 0,
        )[:-2]
        return body + crc16_ccitt(body).to_bytes(2, "little")

    @classmethod
    def unpack(cls, blob: bytes) -> "Hello":
        """Parse and validate one wire hello frame."""
        if len(blob) < HELLO_SIZE:
            raise CipherFormatError(
                f"hello frame too short: {len(blob)} < {HELLO_SIZE}"
            )
        (magic, version, algorithm, width, flags, session_id, fingerprint,
         rekey_interval, crc) = _HELLO.unpack_from(blob)
        if magic != HELLO_MAGIC:
            raise CipherFormatError(f"bad hello magic {magic!r}")
        if version != HELLO_VERSION:
            raise CipherFormatError(f"unsupported hello version {version}")
        if flags != 0:
            raise CipherFormatError(f"reserved hello flags set: {flags:#x}")
        if algorithm not in (ALGORITHM_HHEA, ALGORITHM_MHHEA):
            raise CipherFormatError(f"unknown algorithm id {algorithm}")
        if width == 0 or width % 8 != 0:
            raise CipherFormatError(
                f"hello width {width} is not a whole byte count"
            )
        actual = crc16_ccitt(blob[: HELLO_SIZE - 2])
        if actual != crc:
            raise CipherFormatError(
                f"hello CRC mismatch: frame {crc:#06x}, computed {actual:#06x}"
            )
        return cls(algorithm, width, session_id, fingerprint, rekey_interval)


@dataclass(frozen=True)
class Frame:
    """One complete wire frame: its kind plus the raw bytes."""

    kind: str  # "hello" or "packet"
    raw: bytes

    def hello(self) -> Hello:
        """Parse a ``hello`` frame (raises on a ``packet`` frame)."""
        if self.kind != "hello":
            raise CipherFormatError(f"frame is a {self.kind}, not a hello")
        return Hello.unpack(self.raw)

    def header(self) -> PacketHeader:
        """Parse a ``packet`` frame's header (raises on a ``hello``)."""
        if self.kind != "packet":
            raise CipherFormatError(f"frame is a {self.kind}, not a packet")
        return PacketHeader.unpack(self.raw)


class FrameDecoder:
    """Chunk-at-a-time frame extractor for a TCP-style byte stream.

    Parameters
    ----------
    max_payload:
        Reject (or skip, under ``resync``) any packet frame advertising a
        payload larger than this, before buffering it.
    resync:
        With ``False`` (the default, right for trusted transports like a
        local TCP connection) any unrecognised magic raises
        :class:`CipherFormatError` immediately.  With ``True`` the
        decoder scans forward for the next magic instead, counting the
        discarded bytes in :attr:`bytes_skipped` — the recovery mode for
        lossy or damaged transports.
    verify_crc:
        With ``False`` (the default) framing only *delimits* packet
        frames — the payload CRC is the decryptor's job, so a payload
        bit flip still yields one complete (but doomed) frame.  With
        ``True`` the decoder runs the full packet CRC before emitting: a
        damaged packet raises (or, under ``resync``, is skipped like
        junk), so no frame with a bad CRC is ever returned.  Hello
        frames are always fully CRC-checked.

    A raised framing error is fatal for the stream: frames decoded
    earlier in the same ``feed`` call are discarded with it, because on
    a reliable transport junk means the peers have lost framing and no
    later byte can be trusted.
    """

    #: Bytes of possible magic prefix preserved while resynchronising.
    _TAIL = 3

    def __init__(self, max_payload: int = MAX_PAYLOAD_DEFAULT,
                 resync: bool = False, verify_crc: bool = False):
        if max_payload < 1:
            raise ValueError(f"max_payload must be >= 1, got {max_payload}")
        self.max_payload = max_payload
        self.resync = resync
        self.verify_crc = verify_crc
        self.bytes_skipped = 0
        self.frames_decoded = 0
        self._buffer = bytearray()

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet framed."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> list[Frame]:
        """Absorb ``chunk`` and return every frame it completes."""
        self._buffer += chunk
        frames: list[Frame] = []
        while True:
            before = len(self._buffer)
            frame = self._try_next()
            if frame is not None:
                frames.append(frame)
            elif len(self._buffer) == before:
                # Neither a frame nor resync progress: wait for more bytes.
                break
        return frames

    def finish(self) -> None:
        """Assert the stream ended on a frame boundary.

        Call when the transport signals EOF; raises
        :class:`CipherFormatError` if bytes of an incomplete frame remain.
        """
        if self._buffer:
            raise CipherFormatError(
                f"stream ended mid-frame with {len(self._buffer)} bytes pending"
            )

    # -- internals --------------------------------------------------------

    def _try_next(self) -> Frame | None:
        buf = self._buffer
        if len(buf) < len(MAGIC):
            return None
        magic = bytes(buf[: len(MAGIC)])
        if magic == MAGIC:
            return self._try_packet()
        if magic == HELLO_MAGIC:
            return self._try_hello()
        if not self.resync:
            raise CipherFormatError(
                f"cannot frame stream: unknown magic {magic!r}"
            )
        self._skip_to_magic()
        return None

    def _try_packet(self) -> Frame | None:
        buf = self._buffer
        if len(buf) < HEADER_SIZE:
            return None
        header = self._parse(PacketHeader.unpack, bytes(buf[:HEADER_SIZE]))
        if header is None:
            return None
        if header.payload_size > self.max_payload:
            message = (
                f"packet advertises {header.payload_size}-byte payload, "
                f"over the {self.max_payload}-byte limit"
            )
            if self.resync:
                self._discard(1)
                self._skip_to_magic()
                return None
            raise CipherFormatError(message)
        total = HEADER_SIZE + header.payload_size
        if len(buf) < total:
            return None
        if self.verify_crc:
            if self._parse(verify_packet, bytes(buf[:total])) is None:
                return None
        return self._emit("packet", total)

    def _try_hello(self) -> Frame | None:
        buf = self._buffer
        if len(buf) < HELLO_SIZE:
            return None
        if self._parse(Hello.unpack, bytes(buf[:HELLO_SIZE])) is None:
            return None
        return self._emit("hello", HELLO_SIZE)

    def _parse(self, parser, blob):
        """Run ``parser``; under resync, treat failures as junk to skip."""
        try:
            return parser(blob)
        except CipherFormatError:
            if not self.resync:
                raise
            self._discard(1)
            self._skip_to_magic()
            return None

    def _emit(self, kind: str, size: int) -> Frame:
        raw = bytes(self._buffer[:size])
        del self._buffer[:size]
        self.frames_decoded += 1
        return Frame(kind, raw)

    def _discard(self, count: int) -> None:
        del self._buffer[:count]
        self.bytes_skipped += count

    def _skip_to_magic(self) -> None:
        """Drop bytes until a magic (or a possible magic prefix) leads."""
        buf = self._buffer
        candidates = [position for position in
                      (buf.find(MAGIC), buf.find(HELLO_MAGIC))
                      if position >= 0]
        if candidates:
            self._discard(min(candidates))
            return
        # No full magic in view: keep a short tail that could be the
        # start of one split across chunks, drop the rest.
        keep = 0
        for length in range(min(self._TAIL, len(buf)), 0, -1):
            tail = bytes(buf[-length:])
            if MAGIC.startswith(tail) or HELLO_MAGIC.startswith(tail):
                keep = length
                break
        self._discard(len(buf) - keep)
