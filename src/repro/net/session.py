"""Secure-link sessions: nonce schedules, key ratcheting, replay windows.

The packet codec (:mod:`repro.core.stream`) leaves the hard stateful
questions to its caller: which nonce to use next, when to change keys,
and how a receiver tells a fresh packet from a replayed one.  This module
answers them once, in one place, per DESIGN.md sections 4 and 5:

* **Nonce schedule** — per-direction sequence numbers map bijectively
  onto header nonces via :func:`nonce_for_seq`, skipping the values whose
  low ``width`` bits are zero (they would freeze the LFSR).  A sender can
  therefore never reuse a nonce, and a receiver can recover the sequence
  number from the (authentic-by-CRC) header alone.
* **Key ratchet** — every direction of every session works under its own
  key, derived from the shared root key, the session id and the epoch
  number.  After ``rekey_interval`` packets the epoch advances, which
  keeps the number of vectors exposed under one key far below the LFSR
  period.  Both ends derive the same schedule with no extra signalling,
  and the epoch of a packet is a pure function of its sequence number, so
  rekeying survives packet loss.
* **Replay / reordering detection** — sequence numbers must strictly
  increase; a duplicate or stale number raises
  :class:`~repro.core.errors.ReplayError` before any decryption work, and
  skipped numbers are counted as gaps in the session metrics.

The nonce-reuse hazard itself is documented once in DESIGN.md section 4,
linked from both :func:`repro.core.stream.encrypt_packet` and
:class:`Session`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core import engines as _engines
from repro.core.errors import ReplayError, SessionError
from repro.core.fastpath import DEFAULT_ENGINE
from repro.core.key import Key
from repro.core.stream import (
    ALGORITHM_HHEA,
    ALGORITHM_MHHEA,
    NONCE_MAX,
    PacketHeader,
    _extract_verified,
    _verify_parsed,
    decrypt_packet,
    encrypt_packet,
)
from repro.obs import core as _obs
from repro.net.framing import MAX_PAYLOAD_DEFAULT
from repro.net.metrics import SessionMetrics
from repro.util.lfsr import max_period

# repro.parallel.pool (EncryptionPool, encrypt_job, decrypt_job) is
# imported lazily inside the batch/async methods: pulling in the
# process-pool machinery drags multiprocessing (and thus the socket
# module) into every importer, which would break the sans-IO guarantee
# of repro.link — this module is part of its import closure.
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.pool import EncryptionPool

__all__ = [
    "DEFAULT_REKEY_INTERVAL",
    "DEFAULT_PARALLEL_THRESHOLD",
    "MAX_PAYLOAD_DEFAULT",
    "SessionConfig",
    "Session",
    "nonce_for_seq",
    "seq_for_nonce",
    "derive_epoch_key",
    "key_fingerprint",
]

#: Packets per direction before the key ratchets forward (DESIGN.md §5).
DEFAULT_REKEY_INTERVAL = 1024

#: Smallest plaintext (bytes) worth shipping to a worker process.  Below
#: this the pickle/IPC round trip costs more than the cipher work saved.
DEFAULT_PARALLEL_THRESHOLD = 32 * 1024

#: Direction labels mixed into the per-direction key derivation.
_LABEL_I2R = b"i->r"
_LABEL_R2I = b"r->i"


def nonce_for_seq(seq: int, width: int) -> int:
    """Header nonce for sequence number ``seq`` (0-based) on one direction.

    The map is ``seq + 1`` with every multiple of ``2**width`` skipped,
    because those values reduce to the frozen all-zero LFSR seed (see
    :func:`repro.core.stream.validate_nonce`).  It is a strict-monotonic
    bijection, so distinct sequence numbers can never collide on a nonce.
    Raises :class:`SessionError` once the 32-bit nonce field is exhausted.
    """
    if seq < 0:
        raise SessionError(f"sequence number must be non-negative, got {seq}")
    nonce = seq + 1 + seq // ((1 << width) - 1)
    if nonce > NONCE_MAX:
        raise SessionError(
            f"nonce space exhausted at sequence {seq}: the 32-bit header "
            f"field cannot address more packets on this direction"
        )
    return nonce


def seq_for_nonce(nonce: int, width: int) -> int:
    """Inverse of :func:`nonce_for_seq` (receiver side).

    Raises :class:`SessionError` for nonces a conforming sender can never
    emit (zero, out of field range, or reducing to the zero LFSR state).
    """
    if not 0 < nonce <= NONCE_MAX:
        raise SessionError(f"nonce {nonce:#x} outside the 32-bit field")
    if nonce & ((1 << width) - 1) == 0:
        raise SessionError(
            f"nonce {nonce:#x} is a multiple of 2**{width}; no conforming "
            f"sender emits it"
        )
    return nonce - 1 - (nonce >> width)


def key_fingerprint(key: Key) -> bytes:
    """8-byte public fingerprint of a root key for handshake comparison.

    Deliberately one-way (SHA-256 based) so the hello frame can prove key
    agreement without putting key material on the wire.
    """
    material = b"mhhea-net-fp\x00" + bytes([key.params.width]) + key.to_bytes()
    return hashlib.sha256(material).digest()[:8]


def derive_epoch_key(root: Key, session_id: bytes, label: bytes,
                     epoch: int) -> Key:
    """Key for ``epoch`` of one direction of one session.

    Mixes the root key bytes, the 8-byte session id, the direction label
    and the epoch counter through SHA-256 and expands the digest into a
    fresh schedule with the same geometry as the root.  Distinct sessions
    and distinct directions therefore never share working keys even
    though they share the long-lived root, which is what makes the
    per-direction nonce schedules safe link-wide.
    """
    if epoch < 0:
        raise SessionError(f"epoch must be non-negative, got {epoch}")
    material = (b"mhhea-net-epoch\x00" + bytes([root.params.width])
                + root.to_bytes() + session_id + label
                + epoch.to_bytes(8, "little"))
    seed = int.from_bytes(hashlib.sha256(material).digest()[:8], "little")
    return Key.generate(seed=seed, n_pairs=len(root), params=root.params)


@dataclass(frozen=True)
class SessionConfig:
    """Link policy both peers must agree on (checked in the handshake).

    ``engine``, ``parallel_workers`` and ``parallel_threshold`` are the
    *local* knobs: they select the cipher implementation
    (``"reference"`` or ``"fast"``, see :mod:`repro.core.fastpath`) and
    the process-pool offload policy for this endpoint only.  All
    settings of these knobs emit byte-identical packets, so they are
    deliberately absent from the hello frame — peers may mix freely.

    ``parallel_workers > 0`` makes :class:`~repro.net.server.SecureLinkServer`
    and :class:`~repro.net.client.SecureLinkClient` start an
    :class:`~repro.parallel.pool.EncryptionPool` and offload the cipher
    work of any payload of at least ``parallel_threshold`` plaintext
    bytes to it, keeping the event loop responsive and spreading large
    transfers across cores.
    """

    algorithm: int = ALGORITHM_MHHEA
    rekey_interval: int = DEFAULT_REKEY_INTERVAL
    max_payload: int = MAX_PAYLOAD_DEFAULT
    engine: str = DEFAULT_ENGINE
    parallel_workers: int = 0
    parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD

    def validate(self, width: int) -> None:
        """Raise :class:`SessionError` on a policy the link cannot honour."""
        if self.parallel_workers < 0:
            raise SessionError(
                f"parallel_workers must be >= 0, got {self.parallel_workers}"
            )
        if self.parallel_threshold < 1:
            raise SessionError(
                f"parallel_threshold must be >= 1, got {self.parallel_threshold}"
            )
        if self.algorithm not in (ALGORITHM_HHEA, ALGORITHM_MHHEA):
            raise SessionError(f"unknown algorithm id {self.algorithm}")
        # Eager registry validation: UnknownEngineError subclasses
        # SessionError, so pre-registry handlers keep working.
        _engines.check_engine_name(self.engine)
        if self.rekey_interval < 1:
            raise SessionError(
                f"rekey_interval must be >= 1, got {self.rekey_interval}"
            )
        if self.rekey_interval > max_period(width):
            raise SessionError(
                f"rekey_interval {self.rekey_interval} exceeds the "
                f"{width}-bit LFSR period {max_period(width)}; one epoch "
                f"would repeat hiding-vector streams (DESIGN.md §4)"
            )
        if self.max_payload < 1:
            raise SessionError(
                f"max_payload must be >= 1, got {self.max_payload}"
            )

    def max_wire_payload(self, width: int) -> int:
        """Ceiling for one packet's *wire* payload, for frame decoders.

        ``max_payload`` caps the plaintext a sender accepts; the hiding
        cipher then expands it — in the worst case every message bit
        costs one whole ``width``-bit vector (a single-bit replacement
        window), i.e. ``width`` wire bytes per plaintext byte.  A
        receiver must therefore frame up to this bound or it would
        reject legal packets from a conforming peer.
        """
        return self.max_payload * width


class _SendHalf:
    """Outbound direction: owns the sequence counter and epoch key."""

    def __init__(self, root: Key, session_id: bytes, label: bytes,
                 config: SessionConfig, metrics: SessionMetrics):
        self._root = root
        self._session_id = session_id
        self._label = label
        self._config = config
        self._metrics = metrics
        self._backend = _engines.get_engine(config.engine)
        self._next_seq = 0
        self._epoch = 0
        self._key = derive_epoch_key(root, session_id, label, 0)

    @property
    def next_seq(self) -> int:
        """Sequence number the next encrypt will consume."""
        return self._next_seq

    def _check_payload(self, payload: bytes) -> None:
        if len(payload) > self._config.max_payload:
            raise SessionError(
                f"payload of {len(payload)} bytes exceeds the session "
                f"limit of {self._config.max_payload}"
            )

    def _advance_epoch(self, epoch: int) -> None:
        """Ratchet the send key forward to ``epoch`` (counted in metrics)."""
        if epoch != self._epoch:
            self._key = derive_epoch_key(self._root, self._session_id,
                                         self._label, epoch)
            self._epoch = epoch
            self._metrics.record_rekey("tx")

    def _account(self, payload: bytes, packet: bytes) -> None:
        self._metrics.record_tx(len(payload), len(packet))

    def encrypt(self, payload: bytes) -> bytes:
        self._check_payload(payload)
        seq = self._next_seq
        self._advance_epoch(seq // self._config.rekey_interval)
        nonce = nonce_for_seq(seq, self._root.params.width)
        packet = encrypt_packet(payload, self._key, nonce=nonce,
                                algorithm=self._config.algorithm,
                                engine=self._backend)
        self._next_seq = seq + 1
        self._account(payload, packet)
        return packet

    def _plan(self, payloads) -> list[tuple[bytes, Key, int, int]]:
        """Precompute ``(payload, epoch key, nonce, epoch)`` for a batch.

        Pure with respect to session state: nothing is committed, so a
        validation failure anywhere in the batch leaves the sequence
        counter and ratchet untouched (all-or-nothing).
        """
        for payload in payloads:
            self._check_payload(payload)
        width = self._root.params.width
        interval = self._config.rekey_interval
        epoch_keys = {self._epoch: self._key}
        plan = []
        for offset, payload in enumerate(payloads):
            seq = self._next_seq + offset
            epoch = seq // interval
            key = epoch_keys.get(epoch)
            if key is None:
                key = epoch_keys[epoch] = derive_epoch_key(
                    self._root, self._session_id, self._label, epoch)
            plan.append((payload, key, nonce_for_seq(seq, width), epoch))
        return plan

    def encrypt_batch(self, payloads,
                      pool: EncryptionPool | None = None) -> list[bytes]:
        """Encrypt a batch, offloading large payloads to ``pool``.

        Wire output (packets, nonces, rekey points) is byte-identical to
        calling :meth:`encrypt` once per payload; only the execution
        strategy differs.  Payloads of at least
        ``config.parallel_threshold`` bytes fan out across the pool,
        smaller ones run inline.
        """
        plan = self._plan(payloads)
        config = self._config
        packets: list[bytes | None] = [None] * len(plan)
        jobs: list[tuple] = []
        job_slots: list[int] = []
        for i, (payload, key, nonce, _) in enumerate(plan):
            if pool is not None and len(payload) >= config.parallel_threshold:
                jobs.append((key, payload, nonce, config.algorithm,
                             config.engine))
                job_slots.append(i)
            else:
                packets[i] = encrypt_packet(payload, key, nonce=nonce,
                                            algorithm=config.algorithm,
                                            engine=self._backend)
        if jobs:
            from repro.parallel.pool import encrypt_job

            for slot, packet in zip(job_slots, pool.run_jobs(encrypt_job,
                                                             jobs)):
                packets[slot] = packet
        for (payload, key, _, epoch), packet in zip(plan, packets):
            if epoch != self._epoch:
                self._key = key
                self._epoch = epoch
                self._metrics.record_rekey("tx")
            self._next_seq += 1
            self._account(payload, packet)
        return packets

    async def encrypt_async(self, payload: bytes,
                            pool: EncryptionPool | None) -> bytes:
        """Encrypt one payload, awaiting the pool for large ones.

        The sequence number is reserved synchronously, before the first
        await, so several calls may be in flight concurrently — the
        caller's only obligation is to *start* them in send order and
        write the resulting packets in that same order (the link's
        writer coroutine pipelines exactly this way).  If an offloaded
        job fails, its sequence number stays consumed: nonces are never
        reused, failed or not (DESIGN.md §4).
        """
        self._check_payload(payload)
        config = self._config
        seq = self._next_seq
        self._advance_epoch(seq // config.rekey_interval)
        key = self._key
        nonce = nonce_for_seq(seq, self._root.params.width)
        self._next_seq = seq + 1
        if pool is not None and len(payload) >= config.parallel_threshold:
            from repro.parallel.pool import encrypt_job

            packet = await pool.run_async(
                encrypt_job, key, payload, nonce, config.algorithm,
                config.engine)
        else:
            packet = encrypt_packet(payload, key, nonce=nonce,
                                    algorithm=config.algorithm,
                                    engine=self._backend)
        self._account(payload, packet)
        return packet


class _RecvHalf:
    """Inbound direction: replay window, gap accounting, epoch tracking."""

    def __init__(self, root: Key, session_id: bytes, label: bytes,
                 config: SessionConfig, metrics: SessionMetrics):
        self._root = root
        self._session_id = session_id
        self._label = label
        self._config = config
        self._metrics = metrics
        self._backend = _engines.get_engine(config.engine)
        self._last_seq = -1
        self._epoch = 0
        self._key = derive_epoch_key(root, session_id, label, 0)

    @property
    def last_seq(self) -> int:
        """Highest sequence number accepted so far (-1 before any)."""
        return self._last_seq

    def _admit(self, packet: bytes) -> tuple[int, PacketHeader, Key]:
        """Header checks and replay gate; returns sequence, header, key.

        Runs *before* any decryption work so damaged, replayed or
        misconfigured packets are rejected cheaply.  The returned key is
        derived for the *packet's* epoch but not stored: no receiver
        state — replay window, epoch, cached key — moves until the
        packet authenticates in :meth:`_commit`.  (A corrupted nonce can
        spell an arbitrary epoch; committing its key pre-verification
        would let one flipped bit ratchet the receiver's state around
        and poison the rekey counters with wild excursions.)
        """
        header = PacketHeader.unpack(packet)
        width = self._root.params.width
        if header.width != width:
            raise SessionError(
                f"peer sent {header.width}-bit vectors on a {width}-bit link"
            )
        if header.algorithm != self._config.algorithm:
            raise SessionError(
                f"peer switched to algorithm {header.algorithm} mid-session"
            )
        seq = seq_for_nonce(header.nonce, width)
        if seq <= self._last_seq:
            self._metrics.record_replay(seq)
            raise ReplayError(
                f"sequence {seq} already accepted (last was {self._last_seq})"
                f" — replayed or reordered packet"
            )
        epoch = seq // self._config.rekey_interval
        key = self._key
        if epoch != self._epoch:
            key = derive_epoch_key(self._root, self._session_id,
                                   self._label, epoch)
        return seq, header, key

    def _commit(self, seq: int, packet: bytes, payload: bytes,
                key: Key) -> None:
        """Advance replay window, epoch and key; account one packet.

        Committed sequence numbers are strictly increasing, so the
        committed epoch is monotone and ``rx.rekeys`` counts exactly the
        epochs genuine traffic crossed — never a corrupted nonce's.
        """
        epoch = seq // self._config.rekey_interval
        if epoch != self._epoch:
            self._metrics.record_rekey("rx", epoch - self._epoch)
            self._epoch = epoch
            self._key = key
        gap = seq - self._last_seq - 1
        self._last_seq = seq
        self._metrics.record_rx(len(payload), len(packet), gap=gap)

    def decrypt(self, packet: bytes) -> bytes:
        seq, _, key = self._admit(packet)
        try:
            payload = decrypt_packet(packet, key, engine=self._backend)
        except Exception:
            # Structural/CRC damage: count it, leave the replay window
            # untouched so a valid retransmission of this sequence number
            # is still acceptable.
            self._metrics.record_crc_failure()
            raise
        self._commit(seq, packet, payload, key)
        return payload

    def decrypt_batch(self, packets, accepted=None) -> list[bytes]:
        """Decrypt consecutive packets with amortised bookkeeping.

        Semantically identical to calling :meth:`decrypt` once per
        packet — same replay gating, same epoch ratcheting, same error
        types in the same order — but the hot-path overheads are paid
        once per batch instead of once per packet: the header is parsed
        a single time (admission reuses it for verification and
        extraction) and the engine-op observability update covers the
        whole batch.

        Commits are per packet, not transactional: packets before a
        failure stay accepted (their replay-window slots are consumed,
        exactly as sequential calls would leave them).  Pass a list as
        ``accepted`` to receive ``(payload, seq)`` for each committed
        packet even when a later one raises — the link protocol uses
        this to emit events for the accepted prefix of a damaged burst.
        """
        backend = self._backend
        registry = _obs.get_registry()
        start = registry.clock() if registry.enabled else 0.0
        done = 0
        payloads: list[bytes] = []
        try:
            for packet in packets:
                seq, header, key = self._admit(packet)
                try:
                    _verify_parsed(packet, header)
                    payload = _extract_verified(packet, header, key, backend)
                except Exception:
                    self._metrics.record_crc_failure()
                    raise
                self._commit(seq, packet, payload, key)
                payloads.append(payload)
                if accepted is not None:
                    accepted.append((payload, seq))
                done += 1
        finally:
            if done and registry.enabled:
                registry.counter("repro_engine_ops_total",
                                 engine=backend.name, op="decrypt").inc(done)
                registry.histogram(
                    "repro_engine_op_seconds", engine=backend.name,
                    op="decrypt").observe(registry.clock() - start)
        return payloads

    async def decrypt_async(self, packet: bytes,
                            pool: EncryptionPool | None) -> bytes:
        """Decrypt one packet, awaiting the pool for large ones.

        The replay gate and header checks run synchronously before the
        await; the plaintext size advertised by the header
        (``n_bits // 8``) decides offload against
        ``config.parallel_threshold``.  Awaits on one direction must be
        serialised by the caller (the link's single reader coroutine
        does), or replay-window commits could interleave.
        """
        seq, header, key = self._admit(packet)
        offload = (pool is not None
                   and header.n_bits // 8 >= self._config.parallel_threshold)
        try:
            if offload:
                from repro.parallel.pool import decrypt_job

                payload = await pool.run_async(
                    decrypt_job, key, packet, self._config.engine)
            else:
                payload = decrypt_packet(packet, key, engine=self._backend)
        except Exception:
            self._metrics.record_crc_failure()
            raise
        self._commit(seq, packet, payload, key)
        return payload


class Session:
    """One duplex secure-link endpoint.

    A session binds a shared root :class:`~repro.core.key.Key`, an 8-byte
    session id (normally minted by the initiator and echoed in the
    handshake) and a :class:`SessionConfig` into two independent simplex
    directions, each with its own derived key, nonce schedule and replay
    window.  ``role`` decides which direction label this endpoint sends
    on: the ``"initiator"`` sends initiator-to-responder traffic, the
    ``"responder"`` the reverse, so two correctly-paired endpoints never
    draw nonces from the same (key, direction) space — the nonce-reuse
    hazard of DESIGN.md section 4 is structurally impossible as long as
    session ids are unique per connection.
    """

    ROLES = ("initiator", "responder")

    def __init__(self, root, role: str, session_id: bytes,
                 config: SessionConfig | None = None,
                 metrics: SessionMetrics | None = None):
        if not isinstance(root, Key):
            # A repro.api.Codec (duck-typed: importing repro.api here
            # would be circular).  The codec supplies both the root key
            # and — unless the caller overrides it — the link policy.
            codec, root = root, root.key
            if config is None:
                config = codec.session_config()
        if role not in self.ROLES:
            raise SessionError(f"role must be one of {self.ROLES}, got {role!r}")
        if len(root) == 0:
            # Caught here, not deep inside derive_epoch_key: a hollow key
            # would otherwise surface as a confusing KeyError_ from the
            # epoch-key generator on the first send.
            raise SessionError(
                "root key has no pairs; per-direction key derivation needs "
                "at least one key pair"
            )
        if len(session_id) != 8:
            raise SessionError(
                f"session id must be 8 bytes, got {len(session_id)}"
            )
        params = root.params
        if params.width % 8 != 0:
            raise SessionError(
                f"link sessions need byte-multiple vector widths, got {params.width}"
            )
        if params.key_bits > 4:
            raise SessionError(
                f"link sessions need serialisable keys (key_bits <= 4); "
                f"{params.width}-bit vectors use {params.key_bits}"
            )
        self._config = config or SessionConfig()
        self._config.validate(params.width)
        self.role = role
        self.session_id = session_id
        self.metrics = metrics if metrics is not None else SessionMetrics()
        send_label, recv_label = (
            (_LABEL_I2R, _LABEL_R2I) if role == "initiator"
            else (_LABEL_R2I, _LABEL_I2R)
        )
        self._send = _SendHalf(root, session_id, send_label, self._config,
                               self.metrics)
        self._recv = _RecvHalf(root, session_id, recv_label, self._config,
                               self.metrics)

    @property
    def config(self) -> SessionConfig:
        """The (validated) link policy this session runs under."""
        return self._config

    @property
    def next_send_seq(self) -> int:
        """Sequence number the next :meth:`encrypt` call will consume."""
        return self._send.next_seq

    @property
    def last_recv_seq(self) -> int:
        """Highest sequence number accepted so far (-1 before any)."""
        return self._recv.last_seq

    def encrypt(self, payload: bytes) -> bytes:
        """Encrypt ``payload`` into the next outbound packet.

        Consumes one sequence number (and its nonce) per call and
        ratchets the send key at epoch boundaries.  Raises
        :class:`SessionError` if the payload exceeds
        ``config.max_payload`` or the nonce space is exhausted.
        """
        return self._send.encrypt(payload)

    def encrypt_batch(self, payloads,
                      pool: EncryptionPool | None = None) -> list[bytes]:
        """Encrypt many payloads at once, optionally across a pool.

        Byte-identical to calling :meth:`encrypt` in a loop — sequence
        numbers, nonces and epoch ratchets are planned up front, then
        payloads of at least ``config.parallel_threshold`` bytes fan out
        over ``pool`` (an :class:`~repro.parallel.pool.EncryptionPool`)
        while smaller ones run inline.  Validation is all-or-nothing: an
        oversized payload or nonce exhaustion raises
        :class:`SessionError` before any session state changes.
        """
        return self._send.encrypt_batch(payloads, pool)

    async def encrypt_async(self, payload: bytes,
                            pool: EncryptionPool | None = None) -> bytes:
        """Asyncio variant of :meth:`encrypt` that can offload to ``pool``.

        Offload happens when the payload is at least
        ``config.parallel_threshold`` bytes; otherwise (or with
        ``pool=None``) this is just :meth:`encrypt`.  Sequence numbers
        are reserved synchronously at call time, so calls may overlap in
        flight — start them in send order and write the packets in that
        order (the secure-link writer pipelines up to ``workers + 1``).
        """
        return await self._send.encrypt_async(payload, pool)

    async def decrypt_async(self, packet: bytes,
                            pool: EncryptionPool | None = None) -> bytes:
        """Asyncio variant of :meth:`decrypt` that can offload to ``pool``.

        Replay and header checks always run inline before the await;
        only the cipher work itself moves to the pool, and only when the
        header advertises at least ``config.parallel_threshold``
        plaintext bytes.  Error contract matches :meth:`decrypt`.
        """
        return await self._recv.decrypt_async(packet, pool)

    def decrypt(self, packet: bytes) -> bytes:
        """Authenticate ordering, decrypt, and account one inbound packet.

        Raises :class:`~repro.core.errors.ReplayError` for duplicated or
        reordered sequence numbers, :class:`SessionError` for packets that
        contradict the negotiated link parameters, and
        :class:`~repro.core.errors.CipherFormatError` for structural or
        CRC damage (counted in ``metrics.rx.crc_failures``).
        """
        return self._recv.decrypt(packet)

    def decrypt_batch(self, packets, accepted: list | None = None) -> list[bytes]:
        """Decrypt a run of consecutive inbound packets in one call.

        The batch analogue of :meth:`decrypt`, with identical semantics
        and error contract but amortised per-packet bookkeeping (one
        header parse per packet instead of two, one observability update
        per batch) — the link protocol's receive path feeds every
        consecutive run of ciphertext frames through here.  Packets
        decrypted before a mid-batch failure remain committed to the
        replay window, exactly as sequential :meth:`decrypt` calls would
        leave them; pass a list as ``accepted`` to collect the
        ``(payload, seq)`` prefix that survived.
        """
        return self._recv.decrypt_batch(packets, accepted)
