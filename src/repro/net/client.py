"""Asyncio secure-link client.

A thin transport adapter over the sans-IO
:class:`repro.link.LinkProtocol`: the machine mints the hello, parses
the reply, frames the stream and runs the session crypto; this module
moves its bytes over an asyncio connection and offers two traffic
shapes:

* :meth:`SecureLinkClient.request` — one payload out, one reply back;
  the simple RPC shape.
* :meth:`SecureLinkClient.send_all` — pipelined: a writer task streams
  every payload while the reader collects replies, so the link stays
  full instead of idling one round-trip per packet.  This is the shape
  `benchmarks/bench_net.py` measures.

Backpressure is inherited from the transport: the writer awaits
``drain()`` after every packet, so a stalled server (its bounded reply
queue full) slows the client down instead of ballooning buffers.
"""

from __future__ import annotations

import asyncio
import os
import warnings
from collections import deque
from dataclasses import replace

from repro.core.errors import ReproError, SessionError
from repro.link.events import (
    HandshakeComplete,
    LinkClosed,
    PacketReceived,
    PayloadReceived,
    ProtocolError,
)
from repro.link.protocol import LinkProtocol, _resolve_root
from repro.net.metrics import SessionMetrics
from repro.net.session import Session, SessionConfig
from repro.obs import core as _obs
from repro.parallel.pool import EncryptionPool

__all__ = ["SecureLinkClient"]

_READ_CHUNK = 1 << 16

#: Queued frame bytes that trigger a flush on the inline write path.
#: Coalescing keeps one write+drain per burst instead of one per
#: payload while bounding how much ciphertext sits in the machine.
_WRITE_BUDGET = 1 << 18


class SecureLinkClient:
    """One secure-link connection from the initiator side.

    Usage::

        async with SecureLinkClient(root_key, port=server.port) as client:
            reply = await client.request(b"payload")

    ``session_id`` is minted from :func:`os.urandom` unless given
    explicitly (tests pass a fixed one for determinism).
    """

    def __init__(self, root, host: str = "127.0.0.1", port: int = 0,
                 config: SessionConfig | None = None,
                 session_id: bytes | None = None,
                 engine: str | None = None, *,
                 kex=None):
        if root is not None:
            root, config = _resolve_root(root, config)
        elif kex is None:
            raise SessionError("a root key is required without a kex config")
        self._kex = kex
        self._root = root
        self._host = host
        self._port = port
        config = config or SessionConfig()
        if engine is not None:
            # Legacy local cipher-engine override; never handshake policy.
            from repro.core.engines import check_engine_name

            check_engine_name(engine)  # eager UnknownEngineError
            warnings.warn(
                "the engine= override on SecureLinkServer/SecureLinkClient "
                "is deprecated; bind the engine in a repro.api.Codec (or "
                "SessionConfig) instead",
                DeprecationWarning, stacklevel=2,
            )
            config = replace(config, engine=engine)
        self._config = config
        self._config.validate(root.params.width if root is not None
                              else kex.params.width)
        self._session_id = session_id if session_id is not None else os.urandom(8)
        self._pool: EncryptionPool | None = None
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._proto: LinkProtocol | None = None
        self._events: deque = deque()
        self.session: Session | None = None

    @property
    def metrics(self) -> SessionMetrics:
        """This connection's session counters (tx/rx, Mbps, rekeys).

        Raises :class:`SessionError` before :meth:`connect` completes;
        stays readable after :meth:`close` for post-run reporting.
        """
        if self.session is None:
            raise SessionError("client not connected")
        return self.session.metrics

    @property
    def kex_mode(self) -> str | None:
        """The negotiated handshake mode (``None`` before connect)."""
        return self._proto.kex_mode if self._proto is not None else None

    @property
    def issued_ticket(self):
        """The resumption ticket the server issued, if any."""
        return self._proto.issued_ticket if self._proto is not None else None

    @property
    def fingerprint(self) -> bytes | None:
        """The session root key's fingerprint (kex: post-handshake)."""
        return self._proto.fingerprint if self._proto is not None else None

    # -- lifecycle --------------------------------------------------------

    async def connect(self) -> None:
        """Open the connection and complete the hello exchange.

        Also (re)starts the cipher pool when the config asks for
        ``parallel_workers`` — including after a failed or closed
        earlier attempt, so a retried ``connect()`` keeps its offload.
        The writer and reader coroutines offload independently, so
        encrypt and decrypt of big transfers overlap on separate
        workers.
        """
        if self.session is not None:
            raise SessionError("client already connected")
        if self._config.parallel_workers > 0 and self._pool is None:
            self._pool = EncryptionPool(self._config.parallel_workers,
                                        engine=self._config.engine)
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )
        try:
            self._proto = LinkProtocol(
                self._root, "initiator", config=self._config,
                session_id=self._session_id,
                decrypt_payloads=self._pool is None,
                kex=self._kex,
            )
            self._events.clear()
            self._writer.write(self._proto.data_to_send())  # our opener
            await self._writer.drain()
            while self._proto.handshaking:
                chunk = await self._reader.read(_READ_CHUNK)
                events = (self._proto.receive_eof() if not chunk
                          else self._proto.receive_data(chunk))
                for event in events:
                    if isinstance(event, ProtocolError):
                        raise event.error
                    if not isinstance(event, HandshakeComplete):
                        # Traffic that rode in with the hello reply is
                        # kept for the reader, never dropped.
                        self._events.append(event)
                if self._proto.bytes_to_send:
                    # Multi-round exchanges (the kex phase) queue
                    # replies mid-handshake; flush before reading on.
                    self._writer.write(self._proto.data_to_send())
                    await self._writer.drain()
            self.session = self._proto.session
            _obs.get_registry().counter("repro_client_connects_total").inc()
        except BaseException:
            # A failed handshake must not leak the open socket: __aexit__
            # never runs when __aenter__ raises.
            await self.close()
            raise

    async def close(self) -> None:
        """Close the transport (the session object stays readable)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
            self._writer = None
            self._reader = None
        if self._proto is not None:
            self._proto.close()
        if self._pool is not None:
            self._pool.close(wait=False)  # never block the event loop
            self._pool = None

    async def __aenter__(self) -> "SecureLinkClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- traffic ----------------------------------------------------------

    async def request(self, payload: bytes) -> bytes:
        """Send one payload and wait for its reply."""
        replies = await self.send_all([payload])
        return replies[0]

    async def send_all(self, payloads: list[bytes],
                       ) -> list[bytes]:
        """Pipeline ``payloads`` out and collect one reply for each.

        Replies arrive in order (TCP ordering plus the server's per-
        connection processing loop), so the result aligns index-for-index
        with the input.  A protocol failure mid-stream closes the
        transport before re-raising — a broken link is unrecoverable, so
        the socket is never left dangling for a caller that skips the
        context manager.
        """
        if self.session is None or self._writer is None:
            raise SessionError("client not connected")
        writer_task = asyncio.create_task(self._write_payloads(payloads))
        try:
            replies = await self._read_replies(len(payloads))
        except (ReproError, OSError):
            if not writer_task.done():
                writer_task.cancel()
            await asyncio.gather(writer_task, return_exceptions=True)
            await self.close()
            raise
        finally:
            if not writer_task.done():
                writer_task.cancel()
            await asyncio.gather(writer_task, return_exceptions=True)
        # Surface a writer failure even if the reader saw a clean close.
        if writer_task.done() and not writer_task.cancelled():
            writer_task.result()
        return replies

    async def _write_payloads(self, payloads: list[bytes]) -> None:
        """Stream every payload, keeping the worker pool saturated.

        Without a pool the sans-IO machine encrypts inline and this is a
        plain feed-and-drain loop.  With a pool, up to ``workers + 1``
        encrypt jobs are kept in flight and the finished packets are
        handed to the machine strictly in task creation order — asyncio
        steps tasks in FIFO creation order, so sequence numbers are
        reserved in that same order and the wire order matches the
        serial path exactly.
        """
        if self._pool is None:
            # Inline-cipher path: let frames pile up in the machine and
            # flush in bursts — one write+drain per _WRITE_BUDGET of
            # ciphertext instead of one per payload.  The server's
            # batched receive path then decrypts each burst through
            # Session.decrypt_batch (docs/net.md, "Link-layer
            # performance").
            for payload in payloads:
                self._proto.send_payload(payload)
                if self._proto.bytes_to_send >= _WRITE_BUDGET:
                    self._writer.write(self._proto.data_to_send())
                    await self._writer.drain()
            if self._proto.bytes_to_send:
                self._writer.write(self._proto.data_to_send())
                await self._writer.drain()
            return
        window = self._pool.workers + 1
        in_flight: list[asyncio.Task] = []

        async def ship(task: asyncio.Task) -> None:
            self._proto.send_packet(await task)
            self._writer.write(self._proto.data_to_send())
            await self._writer.drain()

        try:
            for payload in payloads:
                in_flight.append(asyncio.ensure_future(
                    self.session.encrypt_async(payload, self._pool)))
                if len(in_flight) >= window:
                    await ship(in_flight.pop(0))
            while in_flight:
                await ship(in_flight.pop(0))
        finally:
            for task in in_flight:
                task.cancel()
            if in_flight:
                await asyncio.gather(*in_flight, return_exceptions=True)

    async def _read_replies(self, count: int) -> list[bytes]:
        replies: list[bytes] = []
        while len(replies) < count:
            while self._events and len(replies) < count:
                event = self._events.popleft()
                if isinstance(event, ProtocolError):
                    raise event.error
                if isinstance(event, LinkClosed):
                    raise SessionError(
                        f"server closed the link after {len(replies)} of "
                        f"{count} replies"
                    )
                if isinstance(event, PacketReceived):
                    replies.append(await self.session.decrypt_async(
                        event.packet, self._pool))
                elif isinstance(event, PayloadReceived):
                    replies.append(event.payload)
            if len(replies) >= count:
                break
            chunk = await self._reader.read(_READ_CHUNK)
            if not chunk:
                events = self._proto.receive_eof()
                if not events:
                    raise SessionError(
                        f"server closed the link after {len(replies)} of "
                        f"{count} replies"
                    )
                self._events.extend(events)
            else:
                self._events.extend(self._proto.receive_data(chunk))
        return replies
