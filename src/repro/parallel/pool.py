"""Process-pool plumbing for the sharded encryption pipeline.

The fast engine (:mod:`repro.core.fastpath`) saturates one core; the
paper's north star — line-rate packet encryption for "heavy traffic"
links — needs all of them.  This module owns the *worker* side of that
scale-out:

* **Long-lived workers** — one :class:`concurrent.futures.ProcessPoolExecutor`
  whose processes survive across batches, so schedule compilation and
  interpreter start-up are paid once per worker, not once per chunk.
* **Fork-safe schedule warmup** — the pool initializer compiles the
  :class:`~repro.core.fastpath.BatchCodec` for the pipeline key before
  the first chunk arrives.  Warmup runs in the *child* after the worker
  process starts, so it is correct under every multiprocessing start
  method (``fork``, ``spawn``, ``forkserver``); nothing relies on
  schedules compiled in the parent surviving a fork.
* **Per-worker codec cache** — session traffic ratchets keys per epoch,
  so workers keep a small bounded cache of compiled codecs keyed by
  ``(key, algorithm, engine)`` instead of assuming one key per pool.
* **Worker-death recovery** — a killed worker poisons a
  ``ProcessPoolExecutor`` (every in-flight future raises
  :class:`~concurrent.futures.process.BrokenProcessPool`).
  :meth:`EncryptionPool.run_jobs` rebuilds the pool and re-runs exactly
  the failed jobs; if the rebuilt pool dies too, the remaining jobs run
  inline so a batch always completes with correct output.

Job functions (:func:`encrypt_job`, :func:`decrypt_job`) are plain
module-level functions of picklable arguments, which is what makes them
submittable under any start method.  They are pure: byte-identical
results regardless of which worker (or the parent, on fallback) runs
them — the property the differential suite in ``tests/parallel`` pins.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Sequence

from repro.core import engines as _engines
from repro.core.fastpath import BatchCodec
from repro.core.key import Key
from repro.obs import core as _obs
from repro.obs.logs import log_event

__all__ = [
    "EncryptionPool",
    "encrypt_job",
    "decrypt_job",
    "warm_worker",
]

#: Compiled codecs a single worker process keeps alive at once.  Epoch
#: ratchets retire keys, so an unbounded cache would pin dead key
#: material; eight covers both directions of a few concurrent sessions.
MAX_CACHED_CODECS = 8

#: Pool rebuilds attempted per batch before falling back to inline
#: execution in the parent process.
MAX_POOL_RESTARTS = 1

# Per-process codec cache.  Lives in the *worker* interpreter; the
# parent's copy is only used by the inline fallback path.
_CODECS: dict[tuple[Key, int | None, str], BatchCodec] = {}


def _codec_for(key: Key, algorithm: int | None, engine: str) -> BatchCodec:
    """The cached compiled codec for one (key, algorithm, engine) triple.

    ``algorithm=None`` is normalised to the :class:`BatchCodec` default
    before keying, so warmup, encrypt jobs and decrypt jobs (which pass
    ``None`` — the packet header names the algorithm) all share one
    cache entry per key.
    """
    if algorithm is None:
        from repro.core.stream import ALGORITHM_MHHEA

        algorithm = ALGORITHM_MHHEA
    entry = _CODECS.get((key, algorithm, engine))
    if entry is None:
        while len(_CODECS) >= MAX_CACHED_CODECS:
            _CODECS.pop(next(iter(_CODECS)))
        entry = _CODECS[(key, algorithm, engine)] = BatchCodec(
            key, algorithm, engine=engine
        )
    return entry


def warm_worker(key: Key | None, algorithm: int | None, engine: str) -> None:
    """Pool initializer: compile the pipeline schedule before any job.

    Runs once inside each fresh worker process.  ``key=None`` skips the
    warmup (the net layer's pools serve per-epoch derived keys that are
    not known at pool construction; their workers compile on first use).
    """
    if key is not None:
        _codec_for(key, algorithm, engine)


def encrypt_job(key: Key, payload: bytes, nonce: int,
                algorithm: int | None, engine: str) -> bytes:
    """Encrypt one chunk into one packet (pure; runs in a worker)."""
    return _codec_for(key, algorithm, engine).encrypt_many(
        [payload], [nonce])[0]


def decrypt_job(key: Key, packet: bytes, engine: str) -> bytes:
    """Decrypt one packet back to its chunk (pure; runs in a worker)."""
    return _codec_for(key, None, engine).decrypt_many([packet])[0]


class EncryptionPool:
    """A resilient process pool dedicated to cipher work.

    Wraps :class:`~concurrent.futures.ProcessPoolExecutor` with the three
    things the encryption pipeline needs and the stdlib pool does not
    give: schedule warmup at worker start, ordered fan-out with
    worker-death recovery (:meth:`run_jobs`), and an asyncio-friendly
    single-job path (:meth:`run_async`) for the secure link.

    One pool may be shared by any number of codecs and sessions; jobs
    carry their own key material.  Close it with :meth:`close` or use it
    as a context manager.
    """

    def __init__(self, workers: int, *, key: Key | None = None,
                 algorithm: int | None = None, engine: str = "fast",
                 mp_context=None):
        """Start ``workers`` processes, warmed for ``key`` if given.

        ``engine`` selects the cipher implementation the *warmup*
        compiles (jobs still name their own engine); ``mp_context`` is a
        :mod:`multiprocessing` context for tests that need a specific
        start method.  Raises :class:`ValueError` for ``workers < 1``.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._workers = workers
        self._key = key
        self._algorithm = algorithm
        # Normalised to the registry *name*: initargs must pickle, and
        # the name re-resolves identically inside every worker.
        self._engine = _engines.engine_name(engine)
        self._mp_context = mp_context
        self._lock = threading.Lock()
        self._restarts = 0
        self._executor: ProcessPoolExecutor | None = None
        self._start_executor()

    def _start_executor(self) -> None:
        self._executor = ProcessPoolExecutor(
            max_workers=self._workers,
            mp_context=self._mp_context,
            initializer=warm_worker,
            initargs=(self._key, self._algorithm, self._engine),
        )

    @property
    def workers(self) -> int:
        """The worker-process count this pool was sized for."""
        return self._workers

    @property
    def restarts(self) -> int:
        """How many times the pool has been rebuilt after worker death."""
        return self._restarts

    @property
    def executor(self) -> ProcessPoolExecutor:
        """The live executor (for ``loop.run_in_executor`` integration)."""
        if self._executor is None:
            raise RuntimeError("pool is closed")
        return self._executor

    def submit(self, fn, /, *args) -> Future:
        """Submit one picklable job; thin passthrough to the executor."""
        return self.executor.submit(fn, *args)

    def restart(self, broken: ProcessPoolExecutor | None = None) -> None:
        """Replace a (possibly broken) executor with a fresh warm pool.

        ``broken`` is the executor the caller observed failing: if
        another caller already replaced it (concurrent recoveries racing
        on the same worker death), the restart is a no-op — shutting
        down the *fresh* pool here would cancel the first caller's
        already-resubmitted retries.
        """
        with self._lock:
            if broken is not None and self._executor is not broken:
                return
            old, self._executor = self._executor, None
            if old is not None:
                old.shutdown(wait=False, cancel_futures=True)
            self._start_executor()
            self._restarts += 1
            _obs.get_registry().counter("repro_pool_restarts_total").inc()
            log_event("repro.parallel.pool", "pool.restart", level=30,
                      restarts=self._restarts)

    def run_jobs(self, fn, jobs: Sequence[tuple]) -> list:
        """Run ``fn(*job)`` for every job; ordered results, crash-proof.

        All jobs are submitted at once (the executor load-balances across
        workers) and results are returned in job order.  A job that
        raises an ordinary exception (say :class:`CipherFormatError`)
        propagates immediately — that is a caller bug, not an
        infrastructure failure.  Jobs lost to a dying worker are detected
        via :class:`BrokenProcessPool`, the pool is rebuilt (at most
        :data:`MAX_POOL_RESTARTS` times per call), and only the lost jobs
        are re-run; beyond the restart budget they run inline in the
        calling process, so the batch still completes byte-identically.
        """
        registry = _obs.get_registry()
        start = registry.clock() if registry.enabled else 0.0
        inline_jobs = 0
        results: list = [None] * len(jobs)
        pending = list(enumerate(jobs))
        restarts_left = MAX_POOL_RESTARTS
        while pending:
            lost: list[tuple[int, tuple]] = []
            executor = self.executor
            try:
                futures = {executor.submit(fn, *job): index
                           for index, job in pending}
            except BrokenProcessPool:
                # The pool was already poisoned (submit itself refuses):
                # every pending job needs the recovery path.  Any futures
                # created before the refusal are broken too and re-run —
                # jobs are pure, so recomputation is harmless.
                lost = pending
            else:
                wait(futures)
                for future, index in futures.items():
                    try:
                        results[index] = future.result()
                    except BrokenProcessPool:
                        lost.append((index, jobs[index]))
            if not lost:
                break
            if restarts_left > 0:
                restarts_left -= 1
                self.restart(broken=executor)
                pending = lost
            else:
                for index, job in lost:
                    results[index] = fn(*job)
                inline_jobs = len(lost)
                break
        if registry.enabled and jobs:
            registry.counter("repro_pool_jobs_total",
                             mode="pool").inc(len(jobs) - inline_jobs)
            if inline_jobs:
                registry.counter("repro_pool_jobs_total",
                                 mode="inline").inc(inline_jobs)
            registry.histogram("repro_pool_batch_seconds").observe(
                registry.clock() - start)
        return results

    async def run_async(self, fn, /, *args):
        """Await one job from asyncio without blocking the event loop.

        Used by the secure link to keep the loop responsive while cipher
        work runs in a worker.  Applies the same recovery ladder as
        :meth:`run_jobs`: one pool rebuild, then inline execution.
        """
        import asyncio

        loop = asyncio.get_running_loop()
        registry = _obs.get_registry()
        start = registry.clock() if registry.enabled else 0.0
        mode = "pool"
        executor = self.executor
        try:
            result = await loop.run_in_executor(executor, fn, *args)
        except BrokenProcessPool:
            self.restart(broken=executor)
            executor = self.executor
            try:
                result = await loop.run_in_executor(executor, fn, *args)
            except BrokenProcessPool:
                self.restart(broken=executor)
                # Last resort still keeps the loop responsive: the job
                # runs on the default thread pool, not the coroutine.
                mode = "inline"
                result = await loop.run_in_executor(None, fn, *args)
        if registry.enabled:
            registry.counter("repro_pool_jobs_total", mode=mode).inc()
            registry.histogram("repro_pool_job_seconds").observe(
                registry.clock() - start)
        return result

    def close(self, wait: bool = True) -> None:
        """Shut the workers down; idempotent.

        ``wait=False`` returns immediately (pending jobs cancelled, the
        worker processes reaped in the background) — what async callers
        need, since a blocking join would stall the event loop for as
        long as the slowest in-flight cipher job.
        """
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=wait, cancel_futures=True)
                self._executor = None

    def __enter__(self) -> "EncryptionPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
