"""``repro.parallel`` — the sharded multi-worker encryption pipeline.

The fast engine made one core ~7x faster; this package scales the hot
path across cores while keeping the wire format bit-for-bit stable:

* :mod:`repro.parallel.pool` — :class:`EncryptionPool`, a resilient
  process pool with fork-safe schedule warmup, a per-worker compiled
  codec cache, and worker-death recovery;
* :mod:`repro.parallel.pipeline` — :class:`ParallelCodec`, chunked
  encryption of large payloads into back-to-back packet blobs with
  deterministic nonces and ordered reassembly.

Layering: this package depends only on :mod:`repro.core`; the secure
link (:mod:`repro.net`) sits above it and offloads per-packet cipher
work through the same pool (``SessionConfig(parallel_workers=...,
parallel_threshold=...)``).  Chunk framing and the byte-identity
argument are specified in DESIGN.md section 9.
"""

from repro.parallel.pipeline import (
    DEFAULT_BASE_NONCE,
    DEFAULT_CHUNK_SIZE,
    ParallelCodec,
    chunk_nonces,
    chunk_payload,
)
from repro.parallel.pool import EncryptionPool, decrypt_job, encrypt_job

__all__ = [
    "DEFAULT_BASE_NONCE",
    "DEFAULT_CHUNK_SIZE",
    "EncryptionPool",
    "ParallelCodec",
    "chunk_nonces",
    "chunk_payload",
    "decrypt_job",
    "encrypt_job",
]
