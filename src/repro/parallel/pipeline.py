"""Sharded encryption of large payloads: chunking, fan-out, reassembly.

The packet codec (:mod:`repro.core.stream`) encrypts one payload into
one packet with one nonce — inherently serial, because the hiding
vectors of a packet are one continuous LFSR stream.  This module scales
*around* that constraint instead of breaking it: a large payload is
split into fixed-size chunks, each chunk becomes an ordinary
self-describing packet under its own nonce, the chunks are encrypted on
a process pool, and the packets are concatenated **in chunk order**.
DESIGN.md section 9 specifies the framing and the byte-identity
argument; the short version:

* **Chunk framing** — the blob is nothing but back-to-back standard
  packets, so :func:`repro.core.stream.split_packets` recovers the chunk
  boundaries with no extra container format, and a single-chunk blob is
  *exactly* ``encrypt_packet(payload, key, nonce=base_nonce)``.
* **Deterministic nonces** — chunk ``i`` uses the ``i``-th valid nonce
  at or after ``base_nonce`` (:func:`chunk_nonces`), a pure function of
  ``(base_nonce, i, width)``.  No worker ever chooses a nonce.
* **Ordered reassembly** — results are placed by chunk index, never by
  completion order, so the blob is byte-identical no matter how many
  workers ran or how they interleaved (including zero workers: the
  inline path runs the very same per-chunk calls in a loop).

Byte-identity across worker counts *and* across engines is pinned by
the differential suite in ``tests/parallel/test_pipeline.py``.
"""

from __future__ import annotations

import warnings

from repro.core import engines as _engines
from repro.core.errors import CipherFormatError
from repro.core.fastpath import BatchCodec
from repro.core.key import Key
from repro.core.stream import NONCE_MAX, split_packets
from repro.obs import core as _obs
from repro.parallel.pool import EncryptionPool, decrypt_job, encrypt_job
from repro.util.bits import mask

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_BASE_NONCE",
    "chunk_nonces",
    "chunk_payload",
    "ParallelCodec",
]

#: Plaintext bytes per chunk (and per packet) in a sharded blob.  64 KiB
#: keeps per-chunk schedule/compile overhead negligible while giving a
#: 1 MiB payload 16 chunks to spread across workers.
DEFAULT_CHUNK_SIZE = 1 << 16

#: Default first-chunk nonce, matching ``encrypt_packet``'s default.
DEFAULT_BASE_NONCE = 0xACE1


def chunk_nonces(base_nonce: int, count: int, width: int) -> list[int]:
    """The ``count`` packet nonces of a sharded blob, starting at ``base_nonce``.

    Chunk 0 uses ``base_nonce`` itself — which must therefore be a valid
    packet nonce, exactly as for ``encrypt_packet`` (an invalid base is
    *rejected*, never silently replaced).  Later chunks walk upward,
    skipping every value whose low ``width`` bits are zero (those would
    seed the hiding-vector LFSR with its frozen all-zero state, see
    :func:`repro.core.stream.validate_nonce`).  The result is strictly
    increasing, so chunk nonces never collide within a blob; the caller
    still owns the cross-blob discipline of DESIGN.md section 4 — leave
    ``count`` nonces of headroom before the next blob under the same
    key.  Raises :class:`CipherFormatError` if ``base_nonce`` is not a
    valid nonce or the walk would leave the 32-bit field.
    """
    low = mask(width)
    if not 0 < base_nonce <= NONCE_MAX:
        raise CipherFormatError(
            f"base nonce {base_nonce:#x} outside the 32-bit header field"
        )
    if base_nonce & low == 0:
        raise CipherFormatError(
            f"base nonce {base_nonce:#x} reduces to zero modulo 2**{width} "
            f"and would freeze the LFSR (same rule as validate_nonce)"
        )
    nonces: list[int] = []
    nonce = base_nonce
    for _ in range(count):
        while nonce & low == 0:
            nonce += 1
        if nonce > NONCE_MAX:
            raise CipherFormatError(
                f"nonce space exhausted: {count} chunks starting at "
                f"{base_nonce:#x} overrun the 32-bit header field"
            )
        nonces.append(nonce)
        nonce += 1
    return nonces


def chunk_payload(payload: bytes, chunk_size: int) -> list[bytes]:
    """Split ``payload`` into ``chunk_size``-byte chunks (last one short).

    An empty payload yields one empty chunk, so every blob contains at
    least one packet and decryption can distinguish "empty payload"
    from "no blob at all".
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if not payload:
        return [b""]
    return [payload[i:i + chunk_size]
            for i in range(0, len(payload), chunk_size)]


class ParallelCodec:
    """Encrypt/decrypt large payloads as sharded multi-packet blobs.

    The single-payload analogue of :class:`~repro.core.fastpath.BatchCodec`:
    one key, one compiled schedule, many chunks.  With ``workers=0``
    everything runs inline in the calling process; with ``workers=N`` an
    :class:`~repro.parallel.pool.EncryptionPool` (schedule warmup
    included) is started lazily on the first multi-chunk blob and chunks
    fan out across it — sub-chunk payloads never pay the process-spawn
    cost.  Either way the wire bytes are identical — worker count is a
    purely local throughput knob, exactly like the ``engine`` selector.

    Usage::

        with ParallelCodec(key, workers=4) as codec:
            blob = codec.encrypt_blob(payload)
            assert codec.decrypt_blob(blob) == payload

    A pool can also be shared: pass ``pool=`` an existing
    :class:`EncryptionPool` and the codec will use (but never close) it.
    """

    def __init__(self, key: Key, workers: int = 0, *,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 algorithm: int | None = None,
                 engine: "str | _engines.Engine | None" = None,
                 pool: EncryptionPool | None = None):
        """Compile the schedule; remember ``workers`` for lazy pool start.

        ``algorithm`` is a packet-format algorithm id
        (:data:`~repro.core.stream.ALGORITHM_MHHEA` by default) and
        ``engine`` the cipher implementation — ``None`` keeps the
        historical ``"fast"`` default, an
        :class:`~repro.core.engines.Engine` instance is the resolved
        path :class:`repro.api.Codec` uses, and a name is the
        deprecated legacy spelling (one :class:`DeprecationWarning`,
        unchanged wire bytes).  Raises :class:`ValueError` for a
        non-positive ``chunk_size``, a negative ``workers`` count, or
        (as :class:`~repro.core.errors.UnknownEngineError`) an
        unregistered engine name.
        """
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if isinstance(engine, str):
            backend = _engines.get_engine(engine)  # eager UnknownEngineError
            warnings.warn(
                "passing engine= by name to ParallelCodec is deprecated; "
                "bind the engine once in a repro.api.Codec (or pass the "
                "object from repro.core.engines.get_engine)",
                DeprecationWarning, stacklevel=2,
            )
        else:
            backend = _engines.get_engine("fast" if engine is None else engine)
        self.key = key
        self.chunk_size = chunk_size
        self.engine = backend.name
        # BatchCodec validates the algorithm id and pre-compiles the
        # schedule for the inline/single-chunk path.
        self._codec = BatchCodec(key, algorithm, engine=backend)
        self.algorithm = self._codec.algorithm
        self._workers = workers
        self._own_pool = False
        self._pool: EncryptionPool | None = pool

    @property
    def pool(self) -> EncryptionPool | None:
        """The pool chunks fan out to (``None`` means fully inline).

        Owned pools start *lazily* on the first multi-chunk blob, so a
        ``workers=N`` codec that only ever sees sub-chunk payloads never
        pays the process-spawn cost; until then this reads ``None``.
        """
        return self._pool

    def _fan_out_pool(self) -> EncryptionPool | None:
        """The pool to use for a multi-chunk blob, started on demand."""
        if self._pool is None and self._workers > 0:
            self._pool = EncryptionPool(self._workers, key=self.key,
                                        algorithm=self.algorithm,
                                        engine=self.engine)
            self._own_pool = True
        return self._pool

    def encrypt_blob(self, payload: bytes,
                     base_nonce: int = DEFAULT_BASE_NONCE) -> bytes:
        """Encrypt ``payload`` into a sharded blob of chunk packets.

        The result is deterministic in ``(payload, key, algorithm,
        base_nonce, chunk_size)`` — worker count and engine never change
        a byte.  For payloads of at most one chunk it equals
        ``encrypt_packet(payload, key, nonce=base_nonce)`` exactly.
        """
        chunks = chunk_payload(payload, self.chunk_size)
        nonces = chunk_nonces(base_nonce, len(chunks),
                              self.key.params.width)
        pool = self._fan_out_pool() if len(chunks) > 1 else None
        if pool is None:
            packets = self._codec.encrypt_many(chunks, nonces)
        else:
            jobs = [(self.key, chunk, nonce, self.algorithm, self.engine)
                    for chunk, nonce in zip(chunks, nonces)]
            packets = pool.run_jobs(encrypt_job, jobs)
        _obs.get_registry().counter("repro_blob_chunks_total",
                                    op="encrypt").inc(len(chunks))
        return b"".join(packets)

    def decrypt_blob(self, blob: bytes) -> bytes:
        """Decrypt a sharded blob back to the original payload.

        Accepts any back-to-back packet stream under this codec's key —
        including a plain single ``encrypt_packet`` output — and
        reassembles chunks in stream order.  Raises
        :class:`CipherFormatError` for an empty blob, a stream that ends
        mid-packet, or any per-packet structural/CRC damage.
        """
        packets = split_packets(blob)
        if not packets:
            raise CipherFormatError("empty blob: no packets to decrypt")
        pool = self._fan_out_pool() if len(packets) > 1 else None
        if pool is None:
            chunks = self._codec.decrypt_many(packets)
        else:
            jobs = [(self.key, packet, self.engine) for packet in packets]
            chunks = pool.run_jobs(decrypt_job, jobs)
        _obs.get_registry().counter("repro_blob_chunks_total",
                                    op="decrypt").inc(len(packets))
        return b"".join(chunks)

    def close(self) -> None:
        """Stop the pool if this codec started it; idempotent."""
        if self._own_pool and self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ParallelCodec":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
