"""``repro.api`` — the unified :class:`Codec` facade.

The paper contributes one cipher with interchangeable implementations;
this module gives the reproduction one front door with interchangeable
backends.  A :class:`Codec` binds everything that used to be re-threaded
through every call — root :class:`~repro.core.key.Key` (and therefore
:class:`~repro.core.params.VectorParams`), the engine backend resolved
once from the registry (:mod:`repro.core.engines`), the packet policy
(algorithm id, chunk size, nonce defaults) and an optional
:class:`~repro.parallel.pool.EncryptionPool` — and then exposes the
whole lifecycle:

* :meth:`Codec.encrypt` / :meth:`Codec.decrypt` — one self-describing
  packet (the :mod:`repro.core.stream` wire format, byte-identical);
* :meth:`Codec.encrypt_packets` / :meth:`Codec.decrypt_packets` —
  ordered batches, fanned across the pool when one is bound;
* :meth:`Codec.seal_blob` / :meth:`Codec.open_blob` — chunked
  multi-packet blobs for large payloads (the :mod:`repro.parallel`
  framing, byte-identical for every worker count);
* :meth:`Codec.link` — a sans-IO :class:`repro.link.LinkProtocol`
  bound to the codec's link policy, for custom transports;
* :func:`connect` / :func:`serve` — secure-link endpoints whose session
  policy derives from the codec, on any transport
  (``"tcp"`` asyncio, ``"sync"`` blocking sockets, ``"udp"`` datagrams,
  ``"memory"`` in-process).

Resource ownership is explicit: a codec that *starts* a pool (because
``workers > 0``) owns it and releases it on :meth:`Codec.close` /
``with``-exit; a pool *passed in* is shared and never closed.  Wire
compatibility is a hard invariant — every path through the facade emits
bytes identical to the legacy entry points, pinned by the differential
suite in ``tests/test_api.py``.
"""

from __future__ import annotations

import warnings
from typing import Sequence

from repro.core import engines as _engines
from repro.core.errors import CipherFormatError, UnknownEngineError
from repro.core.key import Key
from repro.obs import core as _obs
from repro.core.stream import (
    ALGORITHM_HHEA,
    ALGORITHM_MHHEA,
    HEADER_SIZE,
    PacketHeader,
    decrypt_packet,
    encrypt_packet,
)
from repro.kex.handshake import KexConfig, kex_auth_secret
from repro.kex.hkdf import hkdf_expand
from repro.kex.tickets import TicketVault
from repro.link.protocol import LinkProtocol
from repro.net.client import SecureLinkClient
from repro.net.server import DEFAULT_QUEUE_DEPTH, SecureLinkServer
from repro.net.session import (
    DEFAULT_PARALLEL_THRESHOLD,
    DEFAULT_REKEY_INTERVAL,
    MAX_PAYLOAD_DEFAULT,
    SessionConfig,
)
from repro.parallel.pipeline import (
    DEFAULT_BASE_NONCE,
    DEFAULT_CHUNK_SIZE,
    ParallelCodec,
)
from repro.parallel.pool import EncryptionPool, decrypt_job, encrypt_job

__all__ = [
    "Codec",
    "open_codec",
    "connect",
    "serve",
    "relay_serve",
]

#: Accepted spellings of the packet-format algorithm selector.
_ALGORITHM_IDS = {
    "mhhea": ALGORITHM_MHHEA,
    "hhea": ALGORITHM_HHEA,
    ALGORITHM_MHHEA: ALGORITHM_MHHEA,
    ALGORITHM_HHEA: ALGORITHM_HHEA,
}


def _algorithm_id(algorithm) -> int:
    """Normalise ``"mhhea"``/``"hhea"``/wire id to the wire id."""
    try:
        return _ALGORITHM_IDS[algorithm]
    except (KeyError, TypeError):
        raise CipherFormatError(
            f"algorithm must be 'mhhea', 'hhea' or a wire id "
            f"({ALGORITHM_MHHEA}/{ALGORITHM_HHEA}), got {algorithm!r}"
        ) from None


class Codec:
    """Key + params + engine + packet policy + pool, bound once.

    Construction resolves and validates everything eagerly: the key (a
    :class:`~repro.core.key.Key` or its ``keygen`` hex form), the engine
    (registry name, :class:`~repro.core.engines.Engine` instance, or
    ``None`` for the library default — unknown names raise
    :class:`~repro.core.errors.UnknownEngineError` listing the
    registered engines), the algorithm (``"mhhea"``/``"hhea"`` or the
    wire id) and the pool policy.  After that, no call on the facade
    re-negotiates anything.

    Usage::

        with Codec(key, engine="fast", workers=4) as codec:
            packet = codec.encrypt(b"one payload", nonce=0x5EED)
            blob = codec.seal_blob(big_payload)
            assert codec.open_blob(blob) == big_payload

    ``workers=0`` (the default) runs everything inline.  ``workers=N``
    starts an :class:`~repro.parallel.pool.EncryptionPool` lazily on
    first use and owns it; passing ``pool=`` shares an existing pool
    (never closed by this codec).  Either way the wire bytes are
    identical — pooling, like the engine, is a purely local throughput
    knob.
    """

    def __init__(self, key, *,
                 algorithm="mhhea",
                 engine: "str | _engines.Engine | None" = None,
                 workers: int = 0,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
                 rekey_interval: int = DEFAULT_REKEY_INTERVAL,
                 max_payload: int = MAX_PAYLOAD_DEFAULT,
                 pool: EncryptionPool | None = None):
        if isinstance(key, str):
            key = Key.from_hex(key)
        if not isinstance(key, Key):
            raise TypeError(
                f"key must be a repro.core.key.Key or its hex form, "
                f"got {type(key).__name__}"
            )
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.key = key
        self.algorithm = _algorithm_id(algorithm)
        #: The resolved engine backend (an Engine instance, never a name).
        self.engine = _engines.get_engine(engine)
        if workers > 0 or pool is not None:
            # Pool jobs serialise the engine by *name* and re-resolve it
            # inside each worker, so a pooled codec needs the name
            # registered — checked here, eagerly, not on the first
            # fanned-out call.
            try:
                _engines.check_engine_name(self.engine.name)
            except UnknownEngineError:
                raise UnknownEngineError(
                    f"engine {self.engine.name!r} is not registered; pooled "
                    f"codecs re-resolve the engine by name inside worker "
                    f"processes, so register_engine({self.engine.name!r}, "
                    f"...) first (or stay inline with workers=0)"
                ) from None
        self.workers = workers
        self.chunk_size = chunk_size
        self.parallel_threshold = parallel_threshold
        self.rekey_interval = rekey_interval
        self.max_payload = max_payload
        self._shared_pool = pool
        self._own_pool: EncryptionPool | None = None
        self._closed = False
        # The inline blob codec; pooling is managed here, lazily, and a
        # pooled sibling is built (once) the first time a pool exists.
        self._blobs = ParallelCodec(key, chunk_size=chunk_size,
                                    algorithm=self.algorithm,
                                    engine=self.engine)
        self._pooled_blobs: ParallelCodec | None = None

    # -- introspection ----------------------------------------------------

    @property
    def engine_name(self) -> str:
        """Registry name of the resolved engine backend."""
        return self.engine.name

    @property
    def params(self):
        """The hiding-vector geometry bound through the key."""
        return self.key.params

    @property
    def pool(self) -> EncryptionPool | None:
        """The bound pool, if any (shared, or owned-and-started)."""
        return self._shared_pool if self._shared_pool is not None else self._own_pool

    def _check_open(self) -> None:
        """Uniform use-after-close guard for every crypto entry point.

        Checked on inline paths too — a closed codec must fail the same
        way regardless of payload size, not only once a pool would
        engage.
        """
        if self._closed:
            raise RuntimeError("codec is closed")

    def _count_op(self, op: str, n: int = 1) -> None:
        """Mirror one facade operation into the obs registry (no-op cheap)."""
        _obs.get_registry().counter("repro_codec_ops_total", op=op).inc(n)

    def _fan_out_pool(self) -> EncryptionPool | None:
        """The pool batch work fans out to, starting an owned one lazily."""
        if self._shared_pool is not None:
            return self._shared_pool
        if self._own_pool is None and self.workers > 0:
            self._own_pool = EncryptionPool(self.workers, key=self.key,
                                            algorithm=self.algorithm,
                                            engine=self.engine_name)
        return self._own_pool

    def session_config(self) -> SessionConfig:
        """The link policy this codec implies (for :func:`connect`/:func:`serve`).

        Engine, pool sizing and packet policy all come from the codec, so
        a server and client built from equal codecs always shake hands.
        """
        return SessionConfig(algorithm=self.algorithm,
                             rekey_interval=self.rekey_interval,
                             max_payload=self.max_payload,
                             engine=self.engine_name,
                             parallel_workers=self.workers,
                             parallel_threshold=self.parallel_threshold)

    def link(self, role: str, session_id: bytes | None = None, *,
             metrics=None, datagram: bool = False,
             kex=None, ticket=None) -> LinkProtocol:
        """A sans-IO :class:`~repro.link.LinkProtocol` bound to this codec.

        The machine speaks this codec's whole link policy (key,
        algorithm, engine, rekey interval, payload ceiling) and performs
        no I/O: feed received bytes with ``receive_data``, dispatch on
        the returned events, drain ``data_to_send`` into any transport.
        ``role`` is ``"initiator"`` or ``"responder"``; ``datagram=True``
        selects the one-frame-per-datagram mode (see docs/net.md).  The
        protocol captures the policy at call time and runs standalone —
        closing the codec later does not invalidate it.

        ``kex`` selects the handshake family: ``None`` / ``"psk"`` for
        the classic pre-shared hello, ``"ecdh"`` for the authenticated
        hello-v2 exchange (authentication secret derived from this
        codec's key; responders also seal resumption tickets), or a
        full :class:`repro.kex.KexConfig`.  ``ticket`` is a client's
        :class:`repro.kex.ResumptionTicket` from an earlier session.
        """
        self._check_open()
        side = "serve" if role == "responder" else "connect"
        return LinkProtocol(self.key, role, config=self.session_config(),
                            session_id=session_id, metrics=metrics,
                            datagram=datagram,
                            kex=_resolve_kex(self, side, kex, ticket))

    # -- single packets ---------------------------------------------------

    def encrypt(self, payload: bytes, nonce: int = DEFAULT_BASE_NONCE) -> bytes:
        """Encrypt one payload into one self-describing packet.

        Byte-identical to ``stream.encrypt_packet(payload, key, nonce,
        algorithm, engine)``; the nonce discipline (never reuse under
        one key) stays the caller's job exactly as there — or use
        :func:`connect`/:func:`serve`, which automate it per session.
        """
        self._check_open()
        self._count_op("encrypt")
        return encrypt_packet(payload, self.key, nonce=nonce,
                              algorithm=self.algorithm, engine=self.engine)

    def decrypt(self, packet: bytes) -> bytes:
        """Decrypt one packet (any engine's output; CRC-checked)."""
        self._check_open()
        self._count_op("decrypt")
        return decrypt_packet(packet, self.key, engine=self.engine)

    # -- ordered batches --------------------------------------------------

    def encrypt_packets(self, payloads: Sequence[bytes],
                        nonces: Sequence[int]) -> list[bytes]:
        """Encrypt many payloads, order-preserving, pool-accelerated.

        Payload ``i`` is encrypted under ``nonces[i]``.  With a bound
        pool and more than one payload the packets fan out across
        workers; the result is byte-identical either way.  Raises
        :class:`ValueError` on a payload/nonce length mismatch.
        """
        self._check_open()
        self._count_op("encrypt_packets")
        if len(payloads) != len(nonces):
            raise ValueError(
                f"{len(payloads)} payloads but {len(nonces)} nonces"
            )
        pool = self._fan_out_pool() if len(payloads) > 1 else None
        if pool is None:
            return [self.encrypt(payload, nonce)
                    for payload, nonce in zip(payloads, nonces)]
        jobs = [(self.key, payload, nonce, self.algorithm, self.engine_name)
                for payload, nonce in zip(payloads, nonces)]
        return pool.run_jobs(encrypt_job, jobs)

    def decrypt_packets(self, packets: Sequence[bytes]) -> list[bytes]:
        """Decrypt many packets, order-preserving, pool-accelerated."""
        self._check_open()
        self._count_op("decrypt_packets")
        pool = self._fan_out_pool() if len(packets) > 1 else None
        if pool is None:
            return [self.decrypt(packet) for packet in packets]
        jobs = [(self.key, packet, self.engine_name) for packet in packets]
        return pool.run_jobs(decrypt_job, jobs)

    # -- chunked blobs ----------------------------------------------------

    def seal_blob(self, payload: bytes,
                  base_nonce: int = DEFAULT_BASE_NONCE) -> bytes:
        """Encrypt a payload of any size into a chunked multi-packet blob.

        The :mod:`repro.parallel` framing: back-to-back standard packets
        of at most ``chunk_size`` plaintext bytes each, deterministic
        chunk nonces walking up from ``base_nonce``.  Payloads of at
        most one chunk produce exactly ``encrypt(payload, base_nonce)``,
        and the bytes never depend on the pool.
        """
        self._check_open()
        self._count_op("seal_blob")
        if len(payload) <= self.chunk_size:
            return self._blobs.encrypt_blob(payload, base_nonce)
        return self._blob_codec().encrypt_blob(payload, base_nonce)

    def open_blob(self, blob: bytes) -> bytes:
        """Decrypt a blob (or a plain single packet) back to its payload."""
        self._check_open()
        self._count_op("open_blob")
        # Single-packet blobs decrypt inline: spawning worker processes
        # for one chunk is pure overhead (mirror of seal_blob's
        # small-payload shortcut).  The header parse is cheap and any
        # damage fails identically on the inline path below.
        if (not blob
                or HEADER_SIZE + PacketHeader.unpack(blob).payload_size
                >= len(blob)):
            return self._blobs.decrypt_blob(blob)
        return self._blob_codec().decrypt_blob(blob)

    def _blob_codec(self) -> ParallelCodec:
        """The blob codec to use right now: pooled when a pool exists."""
        pool = self._fan_out_pool()
        if pool is None:
            return self._blobs
        if self._pooled_blobs is None or self._pooled_blobs.pool is not pool:
            self._pooled_blobs = ParallelCodec(
                self.key, chunk_size=self.chunk_size,
                algorithm=self.algorithm, engine=self.engine, pool=pool)
        return self._pooled_blobs

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Release the owned pool, if one was started; idempotent.

        Shared pools (``pool=`` at construction) are left running — the
        caller who built them owns them.
        """
        self._closed = True
        if self._own_pool is not None:
            self._own_pool.close()
            self._own_pool = None

    def __enter__(self) -> "Codec":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        pool = "shared" if self._shared_pool is not None else self.workers
        return (f"<Codec engine={self.engine_name!r} "
                f"algorithm={self.algorithm} width={self.params.width} "
                f"workers={pool}>")


def open_codec(key, **options) -> Codec:
    """Build a :class:`Codec`; the facade's front door.

    ``key`` is a :class:`~repro.core.key.Key` or its ``keygen`` hex
    form; ``options`` are the :class:`Codec` keyword arguments.  Named
    ``open_*`` deliberately: the codec may own OS resources (the worker
    pool), so treat it like a file —

    ::

        with open_codec("03:25:71:46", engine="fast") as codec:
            blob = codec.seal_blob(payload)
    """
    return Codec(key, **options)


def _codec_for_link(endpoint: str, codec, engine, parallel_workers) -> Codec:
    """Normalise :func:`connect`/:func:`serve` input to a bound codec."""
    legacy = {name: value
              for name, value in (("engine", engine),
                                  ("parallel_workers", parallel_workers))
              if value is not None}
    if isinstance(codec, Codec):
        if legacy:
            raise TypeError(
                f"{endpoint}() got a Codec plus legacy keyword(s) "
                f"{sorted(legacy)}; bind those options in the Codec instead"
            )
        return codec
    if legacy:
        warnings.warn(
            f"building a link from legacy keyword(s) {sorted(legacy)} is "
            f"deprecated; pass {endpoint}(open_codec(key, ...)) instead",
            DeprecationWarning, stacklevel=3,
        )
    return Codec(codec, engine=legacy.get("engine"),
                 workers=legacy.get("parallel_workers", 0))


#: Transport selectors accepted by :func:`connect` / :func:`serve`.
_TRANSPORTS = ("tcp", "udp", "sync", "memory")


def _check_transport(transport: str) -> None:
    """Reject unknown transport names with one actionable message."""
    if transport not in _TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}: expected one of "
            f"{', '.join(repr(name) for name in _TRANSPORTS)}"
        )


def _resolve_kex(bound, side: str, kex, ticket=None) -> "KexConfig | None":
    """Normalise the public ``kex=`` spelling to a :class:`KexConfig`.

    ``None`` / ``"psk"`` select the classic pre-shared hello (returns
    ``None`` — the wire-pinned path).  ``"ecdh"`` builds a config from
    the bound codec's key: the authentication secret is derived from
    the key (so the handshake is as trustworthy as the key it
    bootstraps from, and adds forward secrecy on top), servers get a
    ticket vault sealed under a key-derived secret, clients may offer
    ``ticket``.  A full :class:`repro.kex.KexConfig` passes through
    (with ``ticket`` merged in, if given).
    """
    if kex is None or kex == "psk":
        if ticket is not None:
            raise ValueError("a resumption ticket requires kex='ecdh'")
        return None
    if isinstance(kex, KexConfig):
        if ticket is not None:
            from dataclasses import replace as _replace

            kex = _replace(kex, ticket=ticket)
        return kex
    if kex != "ecdh":
        raise ValueError(
            f"unknown kex selector {kex!r}: expected 'ecdh', 'psk', "
            f"or a repro.kex.KexConfig"
        )
    auth = kex_auth_secret(bound.key)
    common = dict(auth_secret=auth, params=bound.key.params,
                  n_pairs=len(bound.key))
    if side == "serve":
        vault = TicketVault(hkdf_expand(auth, b"mhhea-kex ticket vault", 32))
        return KexConfig(modes=("ecdh", "resume", "psk"), tickets=vault,
                         **common)
    return KexConfig(modes=("ecdh", "resume"), ticket=ticket, **common)


def connect(codec, host: str = "127.0.0.1", port: int = 0, *,
            transport: str = "tcp",
            session_id: bytes | None = None,
            server=None,
            engine: str | None = None,
            parallel_workers: int | None = None,
            kex=None, ticket=None):
    """A secure-link client speaking this codec's policy (initiator side).

    ``codec`` is a :class:`Codec` (or a key / hex key, from which a
    default codec is built; the ``engine=``/``parallel_workers=``
    keywords exist only for that legacy spelling and emit one
    :class:`DeprecationWarning`).  ``transport`` picks the adapter, all
    of which drive the same :class:`~repro.link.LinkProtocol` and are
    therefore wire-compatible with every ``serve`` transport but
    ``"memory"``:

    * ``"tcp"`` (default) — the asyncio
      :class:`~repro.net.client.SecureLinkClient`, returned
      *unconnected*; drive it as an async context manager::

          async with connect(codec, port=server.port) as client:
              reply = await client.request(b"payload")

    * ``"sync"`` — a blocking-socket
      :class:`~repro.link.SyncLinkClient` (plain ``with``, no event
      loop);
    * ``"udp"`` — a best-effort datagram
      :class:`~repro.link.UdpLinkClient`;
    * ``"memory"`` — an in-process connection to the
      :class:`~repro.link.MemoryLinkServer` passed as ``server=``
      (``host``/``port`` are meaningless and ignored).

    The non-asyncio transports run cipher work inline and reject codecs
    built with ``workers > 0``.

    ``kex`` / ``ticket`` select the handshake family exactly as on
    :meth:`Codec.link`: ``kex="ecdh"`` runs the authenticated hello-v2
    exchange (deriving the session's root key), ``ticket`` offers a
    :class:`repro.kex.ResumptionTicket` from an earlier connection.
    The datagram ``"udp"`` transport cannot carry the multi-round
    exchange (and has nowhere to store tickets) and rejects ``kex``.
    """
    _check_transport(transport)
    bound = _codec_for_link("connect", codec, engine, parallel_workers)
    kex_config = _resolve_kex(bound, "connect", kex, ticket)
    if kex_config is not None and transport == "udp":
        raise ValueError(
            "kex='ecdh' requires a stream transport (tcp, sync or "
            "memory); the udp transport is datagram-only and has no "
            "ticket support"
        )
    if transport == "memory":
        if server is None:
            raise ValueError(
                "connect(transport='memory') needs the memory server: "
                "pass serve(codec, transport='memory') as server="
            )
        # The caller's codec is the *client's* side of the handshake:
        # a key or policy mismatch with the server fails here exactly
        # like it would over a socket, never silently.
        return server.connect(session_id=session_id, root=bound.key,
                              config=bound.session_config(),
                              kex=kex_config)
    if server is not None:
        raise ValueError(
            f"the server= argument only applies to transport='memory', "
            f"not {transport!r}"
        )
    if transport == "sync":
        from repro.link.sync import SyncLinkClient

        return SyncLinkClient(bound.key, host=host, port=port,
                              config=bound.session_config(),
                              session_id=session_id, kex=kex_config)
    if transport == "udp":
        from repro.link.udp import UdpLinkClient

        return UdpLinkClient(bound.key, host=host, port=port,
                             config=bound.session_config(),
                             session_id=session_id)
    return SecureLinkClient(bound.key, host=host, port=port,
                            config=bound.session_config(),
                            session_id=session_id, kex=kex_config)


def serve(codec, host: str = "127.0.0.1", port: int = 0, *,
          transport: str = "tcp",
          handler=None, queue_depth: int = DEFAULT_QUEUE_DEPTH,
          engine: str | None = None,
          parallel_workers: int | None = None,
          metrics_port: int | None = None,
          kex=None):
    """A secure-link server speaking this codec's policy (responder side).

    Accepts the same ``codec`` spellings as :func:`connect`, and the
    same ``transport`` names:

    * ``"tcp"`` (default) — the asyncio
      :class:`~repro.net.server.SecureLinkServer`, returned unstarted;
      drive it as an async context manager (``port=0`` binds a free
      port, read ``server.port``)::

          async with serve(codec, port=0) as server:
              ...

    * ``"sync"`` — a threaded blocking-socket
      :class:`~repro.link.SyncLinkServer` (plain ``with``);
    * ``"udp"`` — a datagram :class:`~repro.link.UdpLinkServer`, one
      replay-windowed session per peer address;
    * ``"memory"`` — a socket-free
      :class:`~repro.link.MemoryLinkServer` whose clients come from
      ``connect(codec, transport="memory", server=...)``.

    ``handler`` receives each decrypted payload and returns the reply;
    ``None`` selects the echo handler the round-trip benchmarks
    measure.  Async handlers (and ``queue_depth``) apply to the asyncio
    transport only; the others take sync callables and run cipher work
    inline (codecs with ``workers > 0`` are rejected).

    ``metrics_port`` (asyncio transport only) starts a
    :class:`repro.obs.MetricsEndpoint` beside the listener serving
    ``GET /metrics`` (Prometheus text) and ``GET /healthz``; ``0``
    binds an ephemeral port.
    """
    _check_transport(transport)
    if metrics_port is not None and transport != "tcp":
        raise ValueError(
            f"metrics_port requires transport='tcp', got {transport!r}"
        )
    bound = _codec_for_link("serve", codec, engine, parallel_workers)
    kex_config = _resolve_kex(bound, "serve", kex)
    if kex_config is not None and transport == "udp":
        raise ValueError(
            "kex='ecdh' requires a stream transport (tcp, sync or "
            "memory); the udp transport is datagram-only and has no "
            "ticket support"
        )
    if transport == "memory":
        from repro.link.memory import MemoryLinkServer

        return MemoryLinkServer(bound.key, config=bound.session_config(),
                                handler=handler, kex=kex_config)
    if transport == "sync":
        from repro.link.sync import SyncLinkServer

        return SyncLinkServer(bound.key, host=host, port=port,
                              config=bound.session_config(),
                              handler=handler, kex=kex_config)
    if transport == "udp":
        from repro.link.udp import UdpLinkServer

        return UdpLinkServer(bound.key, host=host, port=port,
                             config=bound.session_config(),
                             handler=handler)
    extra = {} if handler is None else {"handler": handler}
    return SecureLinkServer(bound.key, host=host, port=port,
                            config=bound.session_config(),
                            queue_depth=queue_depth,
                            metrics_port=metrics_port, kex=kex_config,
                            **extra)


def relay_serve(keyring, host: str = "127.0.0.1", port: int = 0, *,
                config=None, metrics_port: int | None = None,
                poll_interval_s: float = 1.0):
    """A multi-tenant relay/hub terminating many secure links.

    Unlike :func:`serve` — one pre-shared codec, one handler — the
    relay authenticates every connection to a *tenant* through a
    :class:`~repro.kex.TenantKeyring` and routes decrypted payloads
    between links that joined the same ``(tenant, channel)`` group,
    under the admission/shedding policy of a
    :class:`~repro.relay.RelayConfig`.  ``keyring`` is the fleet
    :class:`~repro.kex.TenantKeyring` or the raw fleet-root bytes (>=16
    bytes, from which one is built).

    Returns an unstarted :class:`~repro.relay.RelayServer`; drive it as
    an async context manager exactly like :func:`serve`'s default
    transport::

        async with relay_serve(keyring, port=0) as relay:
            ...  # relay.port is bound, relay.core.stats() is live

    ``metrics_port`` starts the Prometheus/healthz endpoint beside the
    listener; ``poll_interval_s`` paces the deadline sweep (handshake
    and idle timeouts, metrics idle eviction).
    """
    from repro.kex.keyring import TenantKeyring
    from repro.relay.server import RelayServer

    if isinstance(keyring, (bytes, bytearray)):
        keyring = TenantKeyring(bytes(keyring))
    return RelayServer(keyring, host=host, port=port, config=config,
                       metrics_port=metrics_port,
                       poll_interval_s=poll_interval_s)
