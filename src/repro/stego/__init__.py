"""Steganographic operation of the micro-architecture.

The paper's section VI: "if the random vector is loaded with multimedia
cover data, one can immediately realize that the micro-architecture is
used for hiding as well as scrambling data", and the same hardware "can
also be combined with the Steganographic Shuffler (STS) [SAEB04b] for
shuffled-type steganography".

* :mod:`repro.stego.cover` — cover-backed hiding-vector source, the
  embed/extract pair, capacity accounting and distortion metrics;
* :mod:`repro.stego.shuffler` — a keyed STS-style block shuffler layered
  on top of the vector stream.
"""

from repro.stego.cover import (
    CoverVectorSource,
    StegoObject,
    cover_capacity_bits,
    embed_in_cover,
    extract_from_cover,
    mean_distortion,
)
from repro.stego.shuffler import Shuffler

__all__ = [
    "CoverVectorSource",
    "StegoObject",
    "cover_capacity_bits",
    "embed_in_cover",
    "extract_from_cover",
    "mean_distortion",
    "Shuffler",
]
