"""STS-style keyed shuffler ([SAEB04b] companion design).

The paper notes the micro-architecture "can also be combined with the
Steganographic Shuffler (STS) for shuffled-type steganography": after
embedding, the order of the output vectors is permuted under a key so an
observer cannot even rely on vector order.  The shuffler here is the
software model of that companion block: a Fisher–Yates permutation driven
by a keyed LFSR, applied blockwise so streaming works, and exactly
invertible by the receiver.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.util.lfsr import Lfsr

__all__ = ["Shuffler"]


class Shuffler:
    """Keyed, blockwise, invertible sequence shuffler."""

    def __init__(self, key_seed: int, block: int = 16):
        """``key_seed`` drives the permutation stream; ``block`` is the
        shuffle granularity in elements (the STS buffer depth)."""
        if key_seed == 0:
            raise ValueError("key_seed must be non-zero (LFSR-driven)")
        if block < 2:
            raise ValueError(f"block must be at least 2, got {block}")
        self.key_seed = key_seed
        self.block = block

    def _permutation(self, lfsr: Lfsr, length: int) -> list[int]:
        order = list(range(length))
        for i in range(length - 1, 0, -1):
            j = lfsr.next_word() % (i + 1)
            order[i], order[j] = order[j], order[i]
        return order

    def shuffle(self, items: Sequence) -> list:
        """Permute ``items`` blockwise under the key."""
        lfsr = Lfsr(16, seed=self.key_seed)
        out: list = []
        for start in range(0, len(items), self.block):
            chunk = list(items[start : start + self.block])
            order = self._permutation(lfsr, len(chunk))
            out.extend(chunk[index] for index in order)
        return out

    def unshuffle(self, items: Sequence) -> list:
        """Invert :meth:`shuffle` (same key, same block size)."""
        lfsr = Lfsr(16, seed=self.key_seed)
        out: list = []
        for start in range(0, len(items), self.block):
            chunk = list(items[start : start + self.block])
            order = self._permutation(lfsr, len(chunk))
            restored = [None] * len(chunk)
            for position, index in enumerate(order):
                restored[index] = chunk[position]
            out.extend(restored)
        return out
