"""Cover-data steganography.

Instead of LFSR noise, the hiding vectors come from *cover data* — any
byte stream (audio samples, bitmap rows, ...).  The embedder overwrites
only the key-selected window bits of each vector, so the cover survives
with bounded distortion and the receiver extracts the message from the
stego object with the key alone (the scramble half of every vector is
untouched by construction, exactly as in encryption mode).

Capacity accounting is conservative: each ``width``-bit cover word
carries at least one and at most ``width//2`` message bits depending on
the key and the cover's own scramble bits, so
:func:`cover_capacity_bits` reports the guaranteed floor and
:func:`embed_in_cover` raises :class:`CoverExhaustedError` if the actual
run exceeds the cover.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import mhhea
from repro.core.errors import CoverExhaustedError
from repro.core.key import Key
from repro.core.params import PAPER_PARAMS, VectorParams
from repro.core.trace import TraceRecorder
from repro.util.bits import bits_to_bytes, bytes_to_bits, hamming_distance

__all__ = [
    "CoverVectorSource",
    "StegoObject",
    "cover_capacity_bits",
    "embed_in_cover",
    "extract_from_cover",
    "mean_distortion",
]


class CoverVectorSource:
    """Adapts a byte string into a sequence of ``width``-bit vectors."""

    def __init__(self, cover: bytes, width: int = 16):
        if width % 8 != 0 or width == 0:
            raise ValueError(
                f"cover vector width must be a whole number of bytes, got {width}"
            )
        if not cover:
            raise CoverExhaustedError("cover data is empty")
        self.width = width
        self._bytes_per_word = width // 8
        self._cover = cover
        self._pos = 0

    def words_available(self) -> int:
        """How many more vectors the remaining cover can supply."""
        return (len(self._cover) - self._pos) // self._bytes_per_word

    def words_consumed(self) -> int:
        """How many vectors have been drawn so far."""
        return self._pos // self._bytes_per_word

    def next_word(self) -> int:
        """Consume the next ``width`` bits of cover, little-endian."""
        end = self._pos + self._bytes_per_word
        if end > len(self._cover):
            raise CoverExhaustedError(
                f"cover exhausted after {self.words_consumed()} vectors"
            )
        word = int.from_bytes(self._cover[self._pos : end], "little")
        self._pos = end
        return word


@dataclass(frozen=True)
class StegoObject:
    """A cover with a message embedded in it."""

    data: bytes
    """The stego bytes: modified cover followed by the untouched tail."""

    n_bits: int
    """Message length in bits (needed for extraction)."""

    n_vectors: int
    """How many cover words were used for embedding."""

    width: int


def cover_capacity_bits(cover: bytes, key: Key,
                        params: VectorParams = PAPER_PARAMS) -> int:
    """Guaranteed embeddable bits: one per cover word (worst case).

    The true capacity depends on the scrambled windows, which depend on
    the cover content itself; one bit per vector is the hard floor
    (``KN1 == KN2`` windows), so a message within this bound always fits.
    """
    words = len(cover) // (params.width // 8)
    del key  # capacity floor is key-independent; kept for API symmetry
    return words


def embed_in_cover(message: bytes, cover: bytes, key: Key,
                   params: VectorParams = PAPER_PARAMS,
                   trace: TraceRecorder | None = None) -> StegoObject:
    """Hide ``message`` inside ``cover`` under ``key``.

    Returns the stego object; raises :class:`CoverExhaustedError` when
    the cover runs out of words before the message is fully embedded.
    """
    source = CoverVectorSource(cover, params.width)
    bits = bytes_to_bits(message)
    vectors = mhhea.encrypt_bits(bits, key, source, params, trace)
    step = params.width // 8
    used = len(vectors) * step
    out = bytearray()
    for vector in vectors:
        out += vector.to_bytes(step, "little")
    out += cover[used:]
    return StegoObject(
        data=bytes(out), n_bits=len(bits), n_vectors=len(vectors),
        width=params.width,
    )


def extract_from_cover(stego: StegoObject, key: Key,
                       params: VectorParams = PAPER_PARAMS) -> bytes:
    """Recover the message from a stego object with the key alone."""
    if stego.width != params.width:
        raise ValueError(
            f"stego object uses {stego.width}-bit vectors, "
            f"params say {params.width}"
        )
    step = params.width // 8
    payload = stego.data[: stego.n_vectors * step]
    vectors = [
        int.from_bytes(payload[i : i + step], "little")
        for i in range(0, len(payload), step)
    ]
    bits = mhhea.decrypt_bits(vectors, key, stego.n_bits, params)
    return bits_to_bytes(bits)


def mean_distortion(cover: bytes, stego: StegoObject,
                    params: VectorParams = PAPER_PARAMS) -> float:
    """Mean changed bits per *used* cover word (embedding distortion).

    For MHHEA this is bounded by the window width and in practice sits
    near half the mean window (each embedded bit flips its cover bit
    with probability one half) — the quantitative form of the paper's
    "hiding as well as scrambling data".
    """
    step = params.width // 8
    used = stego.n_vectors * step
    if used == 0:
        return 0.0
    changed = 0
    for offset in range(0, used, step):
        a = int.from_bytes(cover[offset : offset + step], "little")
        b = int.from_bytes(stego.data[offset : offset + step], "little")
        changed += hamming_distance(a, b)
    return changed / stego.n_vectors
