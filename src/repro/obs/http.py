"""Opt-in asyncio HTTP endpoint serving /metrics and /healthz.

:class:`MetricsEndpoint` is a tiny HTTP/1.0 responder (GET only, three
routes) built directly on ``asyncio.start_server`` — no http.server, no
third-party framework — so a Prometheus scraper or a ``curl`` can read
a live :class:`~repro.obs.core.ObsRegistry`:

* ``GET /metrics`` — Prometheus text exposition (0.0.4);
* ``GET /metrics.json`` — the JSON snapshot;
* ``GET /healthz`` — a JSON health document from an injectable callable.

This module imports asyncio and therefore lives OUTSIDE the sans-IO
import closure: :mod:`repro.obs` loads it lazily (PEP 562), and the
sans-IO gate in ``tests/link/test_sans_io.py`` stays true.

:func:`http_get` is the matching blocking client used by the
``repro stats`` CLI subcommand (plain sockets, no urllib ceremony).
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Callable

from repro.obs.core import get_registry
from repro.obs.logs import log_event

__all__ = ["MetricsEndpoint", "http_get"]

_MAX_REQUEST = 8192
_CONTENT_TYPES = {
    "/metrics": "text/plain; version=0.0.4; charset=utf-8",
    "/metrics.json": "application/json",
    "/healthz": "application/json",
}


class MetricsEndpoint:
    """An asyncio HTTP server exposing one registry's metrics and health.

    ``registry=None`` (the default) resolves the process-wide registry
    *per request*, so an endpoint started before ``obs.enable()`` picks
    up the live registry once enabled.  ``health`` is a zero-argument
    callable returning a JSON-able dict for ``/healthz`` (default:
    ``{"status": "ok"}``).

    Usable as an async context manager; ``port`` is the bound port
    (pass ``port=0`` to let the OS pick).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 registry=None,
                 health: Callable[[], dict] | None = None):
        self.host = host
        self.port = port
        self.registry = registry
        self.health = health
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> "MetricsEndpoint":
        """Bind and start serving; updates :attr:`port` with the real one."""
        if self._server is not None:
            raise RuntimeError("endpoint already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        log_event("repro.obs", "endpoint.start", host=self.host,
                  port=self.port)
        return self

    async def close(self) -> None:
        """Stop serving (idempotent)."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    async def __aenter__(self) -> "MetricsEndpoint":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def _registry(self):
        return self.registry if self.registry is not None else get_registry()

    def _respond(self, path: str) -> tuple[int, str, str]:
        if path == "/metrics":
            return 200, _CONTENT_TYPES[path], self._registry().render_prometheus()
        if path == "/metrics.json":
            return 200, _CONTENT_TYPES[path], json.dumps(
                self._registry().snapshot(), sort_keys=True)
        if path == "/healthz":
            health = self.health() if self.health is not None else {"status": "ok"}
            return 200, _CONTENT_TYPES[path], json.dumps(health, sort_keys=True)
        return 404, "text/plain; charset=utf-8", f"no route {path}\n"

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=10.0)
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                asyncio.TimeoutError, ConnectionError):
            writer.close()
            return
        if len(request) > _MAX_REQUEST:
            writer.close()
            return
        try:
            method, target, _ = request.split(b"\r\n", 1)[0].split(b" ", 2)
        except ValueError:
            method, target = b"", b"/"
        path = target.decode("latin-1").split("?", 1)[0]
        if method != b"GET":
            status, ctype, body = 405, "text/plain; charset=utf-8", "GET only\n"
        else:
            status, ctype, body = self._respond(path)
        reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}
        payload = body.encode("utf-8")
        writer.write(
            f"HTTP/1.0 {status} {reason.get(status, 'OK')}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1") + payload
        )
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def http_get(host: str, port: int, path: str = "/metrics",
             timeout: float = 5.0) -> tuple[int, str]:
    """Blocking one-shot GET against a :class:`MetricsEndpoint`.

    Returns ``(status_code, body_text)``.  Used by ``repro stats``; kept
    deliberately dumb (HTTP/1.0, Connection: close, read to EOF).
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(
            f"GET {path} HTTP/1.0\r\nHost: {host}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1"))
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks)
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].split(b" ")
    status = int(status_line[1]) if len(status_line) > 1 else 0
    return status, body.decode("utf-8", "replace")
