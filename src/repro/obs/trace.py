"""Span-based tracing: nested, named timings over the obs registry.

A :class:`Span` is a context manager that measures its body with the
registry's injectable clock, records the duration into the
``repro_span_seconds{span=...}`` histogram, and tracks lexical nesting
through a thread-local stack so ``span("link.handshake")`` inside
``span("server.connection")`` knows its parent and depth.  Finished
spans also emit a DEBUG-level structured log event on the
``repro.trace`` logger (see :mod:`repro.obs.logs`).

When observability is disabled, :func:`span` returns the shared no-op
context manager — no clock reads, no stack pushes.
"""

from __future__ import annotations

import threading

from repro.obs.core import NULL_INSTRUMENT, get_registry
from repro.obs.logs import log_event

__all__ = ["Span", "span", "current_span"]

_stack = threading.local()


def _span_stack() -> list:
    stack = getattr(_stack, "spans", None)
    if stack is None:
        stack = _stack.spans = []
    return stack


class Span:
    """One named, timed region; nests lexically within the active span.

    Use through :func:`span` (or ``registry.span(name)``)::

        with obs.span("link.handshake") as hs:
            ...
        print(hs.duration, hs.depth)

    Attributes are populated on exit: ``duration`` (seconds by the
    registry clock), ``parent`` (the enclosing :class:`Span` or None)
    and ``depth`` (0 for a root span).
    """

    __slots__ = ("name", "registry", "parent", "depth", "duration", "_start")

    def __init__(self, name: str, registry=None):
        self.name = name
        self.registry = registry if registry is not None else get_registry()
        #: The enclosing span at entry time (None for a root span).
        self.parent: Span | None = None
        #: Nesting depth at entry time (0 == root).
        self.depth = 0
        #: Elapsed seconds, set on exit.
        self.duration: float | None = None
        self._start = 0.0

    @property
    def path(self) -> str:
        """Dot-joined names from the root span down to this one."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}.{self.name}"

    def __enter__(self) -> "Span":
        stack = _span_stack()
        self.parent = stack[-1] if stack else None
        self.depth = len(stack)
        stack.append(self)
        self._start = self.registry.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = self.registry.clock() - self._start
        stack = _span_stack()
        if stack and stack[-1] is self:
            stack.pop()
        self.registry.histogram("repro_span_seconds",
                                help="Traced span durations.",
                                span=self.name).observe(self.duration)
        log_event("repro.trace", "span.end", level=10,  # logging.DEBUG
                  span=self.name, path=self.path, depth=self.depth,
                  duration_s=self.duration,
                  error=exc_type.__name__ if exc_type else None)

    def __repr__(self) -> str:
        state = f"{self.duration:.6f}s" if self.duration is not None else "open"
        return f"<Span {self.path} {state}>"


def span(name: str) -> "Span":
    """A :class:`Span` on the current registry; no-op when disabled."""
    registry = get_registry()
    if not registry.enabled:
        return NULL_INSTRUMENT
    return Span(name, registry=registry)


def current_span() -> Span | None:
    """The innermost span open on this thread, or None."""
    stack = getattr(_stack, "spans", None)
    return stack[-1] if stack else None
