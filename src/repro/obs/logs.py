"""Structured JSON-lines event logging on the ``repro`` logger tree.

Every instrumented layer emits typed events (``link.drop``,
``pool.restart``, ``session.replay`` ...) through :func:`log_event` on a
child of the ``repro`` logger.  Library rules apply: the tree carries a
:class:`logging.NullHandler` by default so an embedding application
hears nothing unless it (or :func:`configure_logging`) attaches a
handler — and the ``isEnabledFor`` gate keeps unconsumed events at
near-zero cost on the hot path.

:func:`configure_logging` installs a :class:`JsonLinesHandler` that
renders each record as one JSON object per line with stable key order:
``ts`` (epoch seconds), ``level``, ``logger``, ``event`` and then the
event's own fields.
"""

from __future__ import annotations

import json
import logging
from typing import IO

__all__ = ["ROOT_LOGGER", "JsonLinesHandler", "configure_logging",
           "reset_logging", "log_event"]

#: The root of the library's logger hierarchy.
ROOT_LOGGER = "repro"

logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


class JsonLinesHandler(logging.StreamHandler):
    """A stream handler emitting one sorted-key JSON object per record."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "repro_fields", None)
        if fields:
            for key in sorted(fields):
                payload.setdefault(key, fields[key])
        return json.dumps(payload, sort_keys=False, default=str)


def configure_logging(stream: IO | None = None,
                      level: int = logging.INFO) -> JsonLinesHandler:
    """Attach a JSON-lines handler to the ``repro`` tree; returns it.

    ``stream`` defaults to stderr (the :class:`logging.StreamHandler`
    default).  Call :func:`reset_logging` (or remove the returned
    handler) to detach.
    """
    handler = JsonLinesHandler(stream)
    handler.setLevel(level)
    logger = logging.getLogger(ROOT_LOGGER)
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler


def reset_logging() -> None:
    """Detach every non-null handler from the ``repro`` logger."""
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in list(logger.handlers):
        if not isinstance(handler, logging.NullHandler):
            logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)


def log_event(logger_name: str, event: str, level: int = logging.INFO,
              **fields) -> None:
    """Emit structured event ``event`` with ``fields`` on ``logger_name``.

    Cheap when nobody listens: one ``isEnabledFor`` check and out.
    Field values must be JSON-able or reasonably ``str()``-able.
    """
    logger = logging.getLogger(logger_name)
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"repro_fields": fields})
