"""repro.obs — zero-dependency observability for the whole stack.

One opt-in switch (:func:`enable`) lights up metrics, tracing and
structured logging across every layer of the reproduction:

* **Metrics** — :class:`Counter` / :class:`Gauge` / :class:`Histogram`
  in a process-wide, swappable :class:`ObsRegistry` with an injectable
  clock; rendered as Prometheus text (:meth:`ObsRegistry.render_prometheus`)
  or a JSON snapshot (:meth:`ObsRegistry.snapshot`).
* **Tracing** — nested :func:`span` context managers feeding the
  ``repro_span_seconds`` histogram (:mod:`repro.obs.trace`).
* **Logging** — typed JSON-lines events on the ``repro`` logger tree,
  silent by default (:mod:`repro.obs.logs`).
* **Exposition** — an opt-in asyncio ``/metrics`` + ``/healthz``
  endpoint (:class:`MetricsEndpoint`, lazily imported so the sans-IO
  core never pulls in asyncio), and the ``repro stats`` CLI.

Disabled is the default and costs ~nothing: every accessor returns a
shared no-op instrument, and instrumented code gates its clock reads on
``registry.enabled``.  Enabling never changes wire bytes — only what is
counted (pinned by a differential test and an overhead-gate bench).

Example::

    import repro.obs as obs

    obs.enable()
    codec.encrypt(b"payload")
    print(obs.get_registry().render_prometheus())
    obs.disable()
"""

from repro.obs.core import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    NullRegistry,
    ObsRegistry,
    counter,
    disable,
    enable,
    gauge,
    get_registry,
    histogram,
    is_enabled,
    set_registry,
    time_block,
)
from repro.obs.logs import configure_logging, log_event, reset_logging
from repro.obs.trace import Span, current_span, span

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "ObsRegistry",
    "NullRegistry",
    "MetricsEndpoint",
    "Span",
    "counter",
    "gauge",
    "histogram",
    "time_block",
    "span",
    "current_span",
    "get_registry",
    "set_registry",
    "enable",
    "disable",
    "is_enabled",
    "configure_logging",
    "reset_logging",
    "log_event",
    "http_get",
]

# The HTTP endpoint imports asyncio; load it only on attribute access so
# `import repro.obs` stays inside the sans-IO import budget.
_LAZY = {"MetricsEndpoint": "repro.obs.http", "http_get": "repro.obs.http"}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(target), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
