"""Instrument primitives and the process-wide observability registry.

The paper's contribution is a *measured* throughput table; this module
is what lets the software reproduction measure itself the same way.  It
provides the three Prometheus-style instrument kinds —

* :class:`Counter` — monotonically increasing event/byte counts;
* :class:`Gauge` — instantaneous levels (active links, queue depth);
* :class:`Histogram` — fixed-bucket latency distributions with
  bucket-interpolated quantile estimates;

— owned by an :class:`ObsRegistry` that is process-wide but swappable
(:func:`get_registry` / :func:`set_registry`), carries an injectable
monotonic clock for deterministic tests, and renders itself as
Prometheus text exposition (:meth:`ObsRegistry.render_prometheus`), a
JSON-able snapshot (:meth:`ObsRegistry.snapshot`) or a human summary
(:meth:`ObsRegistry.render`).

**Disabled by default, no-ops when disabled.**  The default registry is
a :class:`NullRegistry` whose instrument accessors return shared
singletons with empty method bodies, so instrumented hot paths pay one
attribute call and nothing else — no locks, no dict lookups, no clock
reads (``registry.enabled`` gates every timing read).  Call
:func:`enable` to swap in a live :class:`ObsRegistry`;
``benchmarks/bench_obs.py`` gates the enabled-mode overhead at <= 5%
and a differential test pins that wire bytes never change either way.

This module imports no asyncio and no socket module — it sits inside
the import closure of the sans-IO :mod:`repro.link` core (enforced by
``tests/link/test_sans_io.py``); the HTTP endpoint lives separately in
:mod:`repro.obs.http`.
"""

from __future__ import annotations

import re
import threading
import time
from bisect import bisect_left
from typing import Callable

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "ObsRegistry",
    "NullRegistry",
    "get_registry",
    "set_registry",
    "enable",
    "disable",
    "is_enabled",
    "counter",
    "gauge",
    "histogram",
    "time_block",
]

#: Default histogram buckets (seconds): spans cipher ops (~100 us) up to
#: multi-second worker-pool round trips.  Upper bounds are inclusive;
#: one implicit +Inf bucket always follows the last bound.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValueError(
            f"metric name must match {_NAME_RE.pattern!r}, got {name!r}"
        )
    return name


def _check_labels(labels: dict) -> tuple:
    for label in labels:
        if not _LABEL_RE.match(label):
            raise ValueError(
                f"label name must match {_LABEL_RE.pattern!r}, got {label!r}"
            )
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Counter:
    """A monotonically increasing count (events, packets, bytes)."""

    kind = "counter"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        #: Sorted ``(label, value)`` pairs identifying this series.
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        """The current count."""
        return self._value

    def __repr__(self) -> str:
        return f"<Counter {self.name} {dict(self.labels)} = {self._value}>"


class Gauge:
    """An instantaneous level that can go up and down."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        #: Sorted ``(label, value)`` pairs identifying this series.
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value: int | float) -> None:
        """Set the level to ``value``."""
        with self._lock:
            self._value = value

    def inc(self, amount: int | float = 1) -> None:
        """Raise the level by ``amount``."""
        with self._lock:
            self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        """Lower the level by ``amount``."""
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> int | float:
        """The current level."""
        return self._value

    def __repr__(self) -> str:
        return f"<Gauge {self.name} {dict(self.labels)} = {self._value}>"


class Histogram:
    """A fixed-bucket distribution (Prometheus cumulative-bucket model).

    ``buckets`` are ascending inclusive upper bounds; an implicit +Inf
    bucket catches everything beyond the last bound.  Quantiles are
    estimated by linear interpolation inside the bucket holding the
    target rank — exact enough for latency reporting, deterministic for
    tests with an injected clock.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "_counts", "_sum", "_count",
                 "_lock")

    def __init__(self, name: str, labels: tuple = (),
                 buckets: tuple = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"buckets must be non-empty strictly ascending bounds, "
                f"got {buckets!r}"
            )
        self.name = name
        #: Sorted ``(label, value)`` pairs identifying this series.
        self.labels = labels
        #: Ascending inclusive upper bounds (excluding the +Inf bucket).
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total observations recorded."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of every observed value."""
        return self._sum

    @property
    def bucket_counts(self) -> tuple:
        """Per-bucket (non-cumulative) counts; last entry is +Inf."""
        return tuple(self._counts)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1); 0.0 for an empty histogram.

        Linear interpolation within the bucket containing the target
        rank; observations beyond the last finite bound report that
        bound (the histogram cannot resolve further).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self.buckets):
                    return self.buckets[-1]
                low = 0.0 if index == 0 else self.buckets[index - 1]
                high = self.buckets[index]
                fraction = (rank - previous) / bucket_count
                return low + (high - low) * min(max(fraction, 0.0), 1.0)
        return self.buckets[-1]

    def __repr__(self) -> str:
        return (f"<Histogram {self.name} {dict(self.labels)} "
                f"count={self._count} sum={self._sum:.6f}>")


class _Timer:
    """Context manager observing its own wall time into a histogram."""

    __slots__ = ("_clock", "_histogram", "_start", "duration")

    def __init__(self, clock: Callable[[], float], histogram: Histogram):
        self._clock = clock
        self._histogram = histogram
        self._start = 0.0
        #: Elapsed seconds, set on exit.
        self.duration: float | None = None

    def __enter__(self) -> "_Timer":
        self._start = self._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        self.duration = self._clock() - self._start
        self._histogram.observe(self.duration)


class _NullInstrument:
    """Shared do-nothing stand-in for every instrument kind and timer.

    Returned by :class:`NullRegistry` accessors so disabled-mode call
    sites execute one empty method and nothing else.  Also usable as a
    context manager (for ``time_block``/``span`` call sites).
    """

    kind = "null"
    name = ""
    labels = ()
    value = 0
    count = 0
    sum = 0.0
    buckets = ()
    bucket_counts = ()
    duration = 0.0

    def inc(self, amount=1):
        """No-op."""

    def dec(self, amount=1):
        """No-op."""

    def set(self, value):
        """No-op."""

    def observe(self, value):
        """No-op."""

    def quantile(self, q):
        """Always 0.0."""
        return 0.0

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return None

    def __repr__(self) -> str:
        return "<null instrument>"


#: The shared disabled-mode instrument (one object for every kind).
NULL_INSTRUMENT = _NullInstrument()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class ObsRegistry:
    """Process-wide (but swappable) home of every live instrument.

    One registry owns every metric family: instruments are created on
    first access (``registry.counter("repro_x_total", label=...)``) and
    returned on every later access with the same name and labels, so
    call sites never hold registration state.  A family's kind is fixed
    by its first access; re-requesting it as a different kind raises
    :class:`ValueError` (the classic silent-aggregation bug).

    ``clock`` is the monotonic time source used by
    :meth:`time_block` / :meth:`span` timers and by every instrumented
    layer that reads ``registry.clock`` — inject a fake for
    deterministic latency tests.
    """

    #: Real registries record; the :class:`NullRegistry` overrides this.
    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        self._lock = threading.Lock()
        self._instruments: dict[tuple, object] = {}
        #: Family metadata: name -> (kind, help text).
        self._families: dict[str, tuple[str, str]] = {}

    # -- instrument access -------------------------------------------------

    def _get(self, kind: str, name: str, labels: dict, help: str | None,
             **extra):
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        instrument = self._instruments.get(key)
        if instrument is not None:
            if instrument.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {instrument.kind}, "
                    f"requested as a {kind}"
                )
            return instrument
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                _check_name(name)
                label_key = _check_labels(labels)
                family = self._families.get(name)
                if family is not None and family[0] != kind:
                    raise ValueError(
                        f"metric {name!r} is a {family[0]}, "
                        f"requested as a {kind}"
                    )
                if family is None or (help and not family[1]):
                    self._families[name] = (kind, help or "")
                instrument = _KINDS[kind](name, label_key, **extra)
                self._instruments[(name, label_key)] = instrument
        return instrument

    def counter(self, name: str, help: str | None = None, **labels) -> Counter:
        """The :class:`Counter` for ``(name, labels)``, created on first use."""
        return self._get("counter", name, labels, help)

    def gauge(self, name: str, help: str | None = None, **labels) -> Gauge:
        """The :class:`Gauge` for ``(name, labels)``, created on first use."""
        return self._get("gauge", name, labels, help)

    def histogram(self, name: str, help: str | None = None,
                  buckets: tuple = DEFAULT_LATENCY_BUCKETS,
                  **labels) -> Histogram:
        """The :class:`Histogram` for ``(name, labels)``; ``buckets`` only
        apply on first creation of the series."""
        return self._get("histogram", name, labels, help, buckets=buckets)

    def time_block(self, name: str, **labels) -> "_Timer":
        """A context manager timing its body into histogram ``name``."""
        return _Timer(self.clock, self.histogram(name, **labels))

    def span(self, name: str):
        """A tracing :class:`~repro.obs.trace.Span` bound to this registry."""
        from repro.obs.trace import Span

        return Span(name, registry=self)

    # -- introspection / exposition ----------------------------------------

    def _sorted_series(self):
        """Deterministic iteration: by family name, then label tuple."""
        return sorted(self._instruments.items(), key=lambda item: item[0])

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument (stable keys, JSON-able).

        Counters and gauges map ``"name{label=value,...}"`` to their
        value; histograms additionally carry count/sum and interpolated
        p50/p90/p99 estimates.
        """
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for (name, labels), instrument in self._sorted_series():
            series = name
            if labels:
                inner = ",".join(f"{k}={v}" for k, v in labels)
                series = f"{name}{{{inner}}}"
            if instrument.kind == "counter":
                counters[series] = instrument.value
            elif instrument.kind == "gauge":
                gauges[series] = instrument.value
            else:
                histograms[series] = {
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "p50": instrument.quantile(0.5),
                    "p90": instrument.quantile(0.9),
                    "p99": instrument.quantile(0.99),
                }
        return {"enabled": True, "counters": counters, "gauges": gauges,
                "histograms": histograms}

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4)."""
        lines: list[str] = []
        seen_families: set[str] = set()
        for (name, labels), instrument in self._sorted_series():
            if name not in seen_families:
                seen_families.add(name)
                kind, help_text = self._families[name]
                if help_text:
                    lines.append(f"# HELP {name} {_escape_help(help_text)}")
                lines.append(f"# TYPE {name} {kind}")
            if instrument.kind == "histogram":
                cumulative = 0
                for bound, bucket_count in zip(
                        (*instrument.buckets, float("inf")),
                        instrument.bucket_counts):
                    cumulative += bucket_count
                    le = "+Inf" if bound == float("inf") else _format_value(bound)
                    lines.append(
                        f"{name}_bucket{_label_text(labels, ('le', le))} "
                        f"{cumulative}"
                    )
                lines.append(f"{name}_sum{_label_text(labels)} "
                             f"{_format_value(instrument.sum)}")
                lines.append(f"{name}_count{_label_text(labels)} "
                             f"{instrument.count}")
            else:
                lines.append(f"{name}{_label_text(labels)} "
                             f"{_format_value(instrument.value)}")
        return "\n".join(lines) + "\n" if lines else "\n"

    def render(self) -> str:
        """Human-readable one-line-per-series summary (CLI exit stats)."""
        snap = self.snapshot()
        rows = []
        for series, value in snap["counters"].items():
            rows.append(f"  {series:<58} {_format_value(value):>12}")
        for series, value in snap["gauges"].items():
            rows.append(f"  {series:<58} {_format_value(value):>12}")
        for series, stats in snap["histograms"].items():
            rows.append(
                f"  {series:<58} n={stats['count']} "
                f"p50={stats['p50']:.6f}s p99={stats['p99']:.6f}s"
            )
        if not rows:
            return "obs: no instruments recorded"
        return "\n".join(["obs:"] + rows)

    def reset(self) -> None:
        """Drop every instrument (tests and long-lived CLI sessions)."""
        with self._lock:
            self._instruments.clear()
            self._families.clear()


class NullRegistry:
    """The disabled-mode registry: every accessor returns a shared no-op.

    Instrument lookups cost one method call returning a singleton whose
    mutators have empty bodies; ``enabled`` is False so instrumented
    code skips its clock reads entirely.  This is the process default —
    observability is strictly opt-in.
    """

    enabled = False
    clock = staticmethod(time.perf_counter)

    def counter(self, name: str, help: str | None = None, **labels):
        """The shared no-op instrument."""
        return NULL_INSTRUMENT

    def gauge(self, name: str, help: str | None = None, **labels):
        """The shared no-op instrument."""
        return NULL_INSTRUMENT

    def histogram(self, name: str, help: str | None = None,
                  buckets: tuple = DEFAULT_LATENCY_BUCKETS, **labels):
        """The shared no-op instrument."""
        return NULL_INSTRUMENT

    def time_block(self, name: str, **labels):
        """The shared no-op context manager (no clock reads)."""
        return NULL_INSTRUMENT

    def span(self, name: str):
        """The shared no-op context manager (no clock reads)."""
        return NULL_INSTRUMENT

    def snapshot(self) -> dict:
        """An empty snapshot marked disabled."""
        return {"enabled": False, "counters": {}, "gauges": {},
                "histograms": {}}

    def render_prometheus(self) -> str:
        """A single comment line — scrapes of a disabled process parse."""
        return "# repro.obs disabled (call repro.obs.enable())\n"

    def render(self) -> str:
        """One-line disabled marker."""
        return "obs: disabled"

    def reset(self) -> None:
        """No-op (nothing is ever recorded)."""


def _label_text(labels: tuple, extra: tuple | None = None) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{_escape_label(value)}"' for key, value in pairs)
    return f"{{{inner}}}"


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


#: The process-wide disabled default.
_NULL_REGISTRY = NullRegistry()
_registry = _NULL_REGISTRY


def get_registry():
    """The current process-wide registry (a Null one until enabled)."""
    return _registry


def set_registry(registry):
    """Swap the process-wide registry; returns the previous one.

    ``None`` restores the shared disabled :class:`NullRegistry`.  Pass a
    custom :class:`ObsRegistry` (e.g. with an injected clock) for
    deterministic tests, restoring the previous registry afterwards.
    """
    global _registry
    previous = _registry
    _registry = _NULL_REGISTRY if registry is None else registry
    return previous


def enable(registry: ObsRegistry | None = None) -> ObsRegistry:
    """Turn observability on; returns the live registry.

    Installs ``registry`` (or a fresh :class:`ObsRegistry`) as the
    process-wide registry.  Idempotent when already enabled and called
    with no argument.
    """
    global _registry
    if registry is not None:
        _registry = registry
    elif not _registry.enabled:
        _registry = ObsRegistry()
    return _registry


def disable():
    """Turn observability off (restore the no-op registry); returns it."""
    return set_registry(None)


def is_enabled() -> bool:
    """Whether the current process-wide registry records anything."""
    return _registry.enabled


def counter(name: str, **labels):
    """Current-registry :meth:`ObsRegistry.counter` (module convenience)."""
    return _registry.counter(name, **labels)


def gauge(name: str, **labels):
    """Current-registry :meth:`ObsRegistry.gauge` (module convenience)."""
    return _registry.gauge(name, **labels)


def histogram(name: str, **labels):
    """Current-registry :meth:`ObsRegistry.histogram` (module convenience)."""
    return _registry.histogram(name, **labels)


def time_block(name: str, **labels):
    """Current-registry :meth:`ObsRegistry.time_block` (module convenience)."""
    return _registry.time_block(name, **labels)
