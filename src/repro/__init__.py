"""repro — reproduction of Farouk & Saeb, "An Improved FPGA Implementation
of the Modified Hybrid Hiding Encryption Algorithm (MHHEA) for Data
Communication Security", DATE 2005.

The package re-exports the most commonly used entry points; subpackages
carry the full system:

* :mod:`repro.core` — the (M)HHEA cipher family (reference models);
* :mod:`repro.hdl` — gate-level hardware modelling substrate;
* :mod:`repro.rtl` — the paper's micro-architecture (behavioural cycle
  models and the structural gate-level build);
* :mod:`repro.fpga` — a self-contained FPGA CAD flow (LUT mapping,
  packing, placement, routing, timing, reports);
* :mod:`repro.analysis` — throughput / functional-density evaluation
  (Table 1, Figure 9);
* :mod:`repro.security` — the attacks and statistical tests behind the
  paper's security claims;
* :mod:`repro.stego` — steganographic (cover-data) operation;
* :mod:`repro.net` — the async secure-link subsystem (sessions with
  nonce schedules and rekeying, stream framing, server/client peers,
  link metrics); see DESIGN.md sections 4–7;
* :mod:`repro.parallel` — the sharded multi-worker encryption pipeline
  (chunked blobs, resilient process pools); see DESIGN.md section 9;
* :mod:`repro.api` — the unified :class:`~repro.api.Codec` facade over
  all of the above, backed by the pluggable engine registry
  (:mod:`repro.core.engines`); see DESIGN.md section 10 and
  docs/api.md.

The facade is the recommended entry point::

    import repro

    with repro.open_codec(key, engine="fast", workers=4) as codec:
        blob = codec.seal_blob(payload)
        assert codec.open_blob(blob) == payload
"""

from repro.api import Codec, connect, open_codec, serve
from repro.core import (
    EncryptedMessage,
    HheaCipher,
    Key,
    KeyPair,
    MhheaCipher,
    PAPER_PARAMS,
    TraceRecorder,
    UnknownEngineError,
    VectorParams,
    get_engine,
    register_engine,
    registered_engines,
)
from repro.util.lfsr import Lfsr

__version__ = "1.1.0"

__all__ = [
    "Codec",
    "open_codec",
    "connect",
    "serve",
    "get_engine",
    "register_engine",
    "registered_engines",
    "UnknownEngineError",
    "EncryptedMessage",
    "HheaCipher",
    "Key",
    "KeyPair",
    "MhheaCipher",
    "PAPER_PARAMS",
    "TraceRecorder",
    "VectorParams",
    "Lfsr",
    "__version__",
]
