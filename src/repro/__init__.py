"""repro — reproduction of Farouk & Saeb, "An Improved FPGA Implementation
of the Modified Hybrid Hiding Encryption Algorithm (MHHEA) for Data
Communication Security", DATE 2005.

The package re-exports the most commonly used entry points; subpackages
carry the full system:

* :mod:`repro.core` — the (M)HHEA cipher family (reference models);
* :mod:`repro.hdl` — gate-level hardware modelling substrate;
* :mod:`repro.rtl` — the paper's micro-architecture (behavioural cycle
  models and the structural gate-level build);
* :mod:`repro.fpga` — a self-contained FPGA CAD flow (LUT mapping,
  packing, placement, routing, timing, reports);
* :mod:`repro.analysis` — throughput / functional-density evaluation
  (Table 1, Figure 9);
* :mod:`repro.security` — the attacks and statistical tests behind the
  paper's security claims;
* :mod:`repro.stego` — steganographic (cover-data) operation;
* :mod:`repro.net` — the async secure-link subsystem (sessions with
  nonce schedules and rekeying, stream framing, server/client peers,
  link metrics); see DESIGN.md sections 4–7;
* :mod:`repro.parallel` — the sharded multi-worker encryption pipeline
  (chunked blobs, resilient process pools); see DESIGN.md section 9.
"""

from repro.core import (
    EncryptedMessage,
    HheaCipher,
    Key,
    KeyPair,
    MhheaCipher,
    PAPER_PARAMS,
    TraceRecorder,
    VectorParams,
)
from repro.util.lfsr import Lfsr

__version__ = "1.0.0"

__all__ = [
    "EncryptedMessage",
    "HheaCipher",
    "Key",
    "KeyPair",
    "MhheaCipher",
    "PAPER_PARAMS",
    "TraceRecorder",
    "VectorParams",
    "Lfsr",
    "__version__",
]
