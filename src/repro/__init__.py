"""repro — reproduction of Farouk & Saeb, "An Improved FPGA Implementation
of the Modified Hybrid Hiding Encryption Algorithm (MHHEA) for Data
Communication Security", DATE 2005.

The package re-exports the most commonly used entry points; subpackages
carry the full system:

* :mod:`repro.core` — the (M)HHEA cipher family (reference models);
* :mod:`repro.hdl` — gate-level hardware modelling substrate;
* :mod:`repro.rtl` — the paper's micro-architecture (behavioural cycle
  models and the structural gate-level build);
* :mod:`repro.fpga` — a self-contained FPGA CAD flow (LUT mapping,
  packing, placement, routing, timing, reports);
* :mod:`repro.analysis` — throughput / functional-density evaluation
  (Table 1, Figure 9);
* :mod:`repro.security` — the attacks and statistical tests behind the
  paper's security claims;
* :mod:`repro.stego` — steganographic (cover-data) operation;
* :mod:`repro.link` — the sans-IO secure-link protocol core
  (:class:`~repro.link.LinkProtocol` state machine, typed events,
  in-memory / blocking-socket / UDP transports); see docs/net.md;
* :mod:`repro.net` — the asyncio secure-link transport (sessions with
  nonce schedules and rekeying, stream framing, server/client peers,
  link metrics); see DESIGN.md sections 4–7;
* :mod:`repro.parallel` — the sharded multi-worker encryption pipeline
  (chunked blobs, resilient process pools); see DESIGN.md section 9;
* :mod:`repro.scenario` — deterministic load generation and fault
  injection over the sans-IO link: replayable fault schedules, traffic
  mixes, and a scenario runner that reconciles every injected fault
  against the protocol's own drop accounting; see docs/scenarios.md;
* :mod:`repro.obs` — opt-in observability (metrics, spans, structured
  logs, Prometheus / health endpoints); see docs/observability.md;
* :mod:`repro.api` — the unified :class:`~repro.api.Codec` facade over
  all of the above, backed by the pluggable engine registry
  (:mod:`repro.core.engines`); see DESIGN.md section 10 and
  docs/api.md.

Re-exports resolve lazily (PEP 562), so ``import repro`` — and
therefore any submodule import — stays free of asyncio and sockets
until a networked entry point is actually touched; that is what keeps
the :mod:`repro.link` sans-IO core importable on event-loop-free edge
targets (enforced by ``tests/link/test_sans_io.py``).

The facade is the recommended entry point::

    import repro

    with repro.open_codec(key, engine="fast", workers=4) as codec:
        blob = codec.seal_blob(payload)
        assert codec.open_blob(blob) == payload
"""

__version__ = "1.2.0"

__all__ = [
    "Codec",
    "open_codec",
    "connect",
    "serve",
    "relay_serve",
    "get_engine",
    "register_engine",
    "registered_engines",
    "UnknownEngineError",
    "EncryptedMessage",
    "HheaCipher",
    "Key",
    "KeyPair",
    "MhheaCipher",
    "PAPER_PARAMS",
    "TraceRecorder",
    "VectorParams",
    "Lfsr",
    "__version__",
]

#: Where each lazy re-export really lives.
_EXPORTS = {
    "Codec": "repro.api",
    "open_codec": "repro.api",
    "connect": "repro.api",
    "serve": "repro.api",
    "relay_serve": "repro.api",
    "get_engine": "repro.core",
    "register_engine": "repro.core",
    "registered_engines": "repro.core",
    "UnknownEngineError": "repro.core",
    "EncryptedMessage": "repro.core",
    "HheaCipher": "repro.core",
    "Key": "repro.core",
    "KeyPair": "repro.core",
    "MhheaCipher": "repro.core",
    "PAPER_PARAMS": "repro.core",
    "TraceRecorder": "repro.core",
    "VectorParams": "repro.core",
    "Lfsr": "repro.util.lfsr",
}


#: Submodules reachable as ``repro.<name>`` attributes after a bare
#: ``import repro`` — the eager-import era bound (some of) these as a
#: side effect, so the lazy loader keeps every one of them working.
_SUBMODULES = frozenset({
    "analysis", "api", "cli", "core", "fpga", "hdl", "kex", "link",
    "net", "obs", "parallel", "relay", "rtl", "scenario", "security",
    "stego", "util",
})


def __getattr__(name: str):
    """PEP 562 lazy loader: import the defining module on first use."""
    import importlib

    if name in _SUBMODULES:
        # importlib binds the submodule onto this package as it loads.
        return importlib.import_module(f"{__name__}.{name}")
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: later lookups skip __getattr__
    return value


def __dir__() -> list[str]:
    """Advertise the lazy re-exports alongside real module globals."""
    return sorted(set(globals()) | set(__all__) | _SUBMODULES)
