"""Public-surface drift check (the CI ``api-surface`` job).

The facade PR made the public API a deliberate artefact, so it gets the
same treatment as the wire format: a golden snapshot.  This tool renders
the surface — ``repro.__all__``, the full signature set of
:mod:`repro.api` and :mod:`repro.core.engines`, the engine registry and
the error hierarchy — into a stable text form and compares it against
``docs/api_surface.txt``:

* **check mode** (default, CI) — exit 1 with a unified diff when the
  live surface and the snapshot disagree.  Any intentional API change
  must therefore touch ``docs/api_surface.txt`` in the same commit,
  which is exactly the review surface a facade needs.
* **write mode** (``--write``) — regenerate the snapshot from the live
  code.

Usage::

    PYTHONPATH=src python tools/check_api.py            # compare (CI)
    PYTHONPATH=src python tools/check_api.py --write    # regenerate
"""

from __future__ import annotations

import argparse
import difflib
import importlib
import inspect
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

SNAPSHOT = REPO / "docs" / "api_surface.txt"

#: Modules whose full public signature set is part of the snapshot.
SIGNATURE_MODULES = ["repro.api", "repro.core.engines", "repro.link",
                     "repro.obs", "repro.relay", "repro.scenario"]

HEADER = """\
# Public API surface snapshot — the golden record of what the library
# exports.  CI fails when the live surface drifts from this file;
# regenerate deliberately (and review the diff) with:
#
#   PYTHONPATH=src python tools/check_api.py --write
"""


def _signature(obj) -> str:
    """``inspect.signature`` text, or a marker for non-introspectables."""
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):  # pragma: no cover - C callables etc.
        return "(...)"


def _class_lines(name: str, cls: type) -> list[str]:
    """One line per public method/property of an exported class."""
    lines = [f"{name}{_signature(cls)}"]
    for attr in sorted(vars(cls)):
        if attr.startswith("_"):
            continue
        member = inspect.getattr_static(cls, attr)
        if isinstance(member, property):
            lines.append(f"{name}.{attr}  [property]")
        elif isinstance(member, (classmethod, staticmethod)):
            lines.append(f"{name}.{attr}{_signature(member.__func__)}")
        elif inspect.isfunction(member):
            lines.append(f"{name}.{attr}{_signature(member)}")
        elif not callable(member):
            lines.append(f"{name}.{attr}  [attribute]")
    return lines


def render_surface() -> str:
    """The live public surface as deterministic text."""
    import repro
    from repro.core import engines, errors

    lines: list[str] = [HEADER]

    lines.append("[repro.__all__]")
    lines += [f"  {name}" for name in sorted(repro.__all__)]

    for module_name in SIGNATURE_MODULES:
        module = importlib.import_module(module_name)
        lines.append("")
        lines.append(f"[{module_name}]")
        for name in sorted(module.__all__):
            obj = getattr(module, name)
            if inspect.isclass(obj):
                lines += [f"  {line}" for line in _class_lines(name, obj)]
            elif callable(obj):
                lines.append(f"  {name}{_signature(obj)}")
            else:
                lines.append(f"  {name} = {obj!r}")

    lines.append("")
    lines.append("[engine registry]")
    lines += [f"  {name}" for name in engines.registered_engines()]

    lines.append("")
    lines.append("[repro.core.errors.__all__]")
    lines += [f"  {name}" for name in sorted(errors.__all__)]

    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    """Compare (default) or rewrite the snapshot; non-zero on drift."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--write", action="store_true",
                        help="regenerate docs/api_surface.txt from the code")
    args = parser.parse_args(argv)

    surface = render_surface()
    if args.write:
        SNAPSHOT.write_text(surface, encoding="utf-8")
        print(f"wrote {SNAPSHOT.relative_to(REPO)}")
        return 0

    if not SNAPSHOT.exists():
        print(f"missing snapshot {SNAPSHOT.relative_to(REPO)}; "
              f"run with --write to create it")
        return 1
    recorded = SNAPSHOT.read_text(encoding="utf-8")
    if recorded == surface:
        print("api surface OK: live code matches docs/api_surface.txt")
        return 0
    diff = difflib.unified_diff(
        recorded.splitlines(keepends=True), surface.splitlines(keepends=True),
        fromfile="docs/api_surface.txt (recorded)",
        tofile="live public surface",
    )
    sys.stdout.writelines(diff)
    print("\napi surface drift: update intentionally with "
          "`PYTHONPATH=src python tools/check_api.py --write` and review "
          "the diff")
    return 1


if __name__ == "__main__":
    sys.exit(main())
