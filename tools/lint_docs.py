"""Doc-consistency lint (the CI ``docs`` job).

Two checks keep the prose and the code from drifting apart:

1. **Docstring coverage** — every public entry point of the audited
   modules (everything in ``__all__``, plus public methods and
   properties of public classes) must carry a non-empty docstring.
   "Public API" here means: if it is exported, it is documented.

2. **Executable documentation** — fenced ``python`` code blocks in
   README.md and ``docs/*.md`` are executed.  Blocks written as doctest
   sessions (``>>>``) run under :mod:`doctest` and must produce the
   shown output; plain blocks are executed top to bottom in a fresh
   namespace and must not raise.  Blocks tagged ``python no-run``
   (network servers, CLI transcripts) are only compiled.

Usage::

    PYTHONPATH=src python tools/lint_docs.py            # both checks
    PYTHONPATH=src python tools/lint_docs.py --docstrings-only
    PYTHONPATH=src python tools/lint_docs.py --blocks-only

Exit status 0 means the docs match the code.
"""

from __future__ import annotations

import argparse
import doctest
import importlib
import inspect
import pathlib
import re
import sys
import traceback

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

#: Modules whose public surface must be fully docstring-covered.
AUDITED_MODULES = [
    "repro",
    "repro.api",
    "repro.core",
    "repro.core.stream",
    "repro.core.fastpath",
    "repro.core.engine",
    "repro.core.engines",
    "repro.core.errors",
    "repro.core.key",
    "repro.link",
    "repro.link.protocol",
    "repro.link.events",
    "repro.link.memory",
    "repro.link.sync",
    "repro.link.udp",
    "repro.net",
    "repro.net.session",
    "repro.net.framing",
    "repro.net.metrics",
    "repro.obs",
    "repro.obs.core",
    "repro.obs.trace",
    "repro.obs.logs",
    "repro.obs.http",
    "repro.parallel",
    "repro.parallel.pool",
    "repro.parallel.pipeline",
    "repro.scenario",
    "repro.scenario.faults",
    "repro.scenario.traffic",
    "repro.scenario.cover",
    "repro.scenario.runner",
    "repro.scenario.attacks",
    "repro.scenario.tcp",
    "repro.kex",
    "repro.kex.x25519",
    "repro.kex.hkdf",
    "repro.kex.wire",
    "repro.kex.handshake",
    "repro.kex.tickets",
    "repro.kex.keyring",
    "repro.relay",
    "repro.relay.admission",
    "repro.relay.config",
    "repro.relay.core",
    "repro.relay.events",
    "repro.relay.harness",
    "repro.relay.router",
    "repro.relay.server",
    "repro.scenario.relay",
]

#: Markdown files whose ``python`` code blocks must execute.
DOC_FILES = ["README.md", "docs/api.md", "docs/core.md", "docs/kex.md",
             "docs/net.md", "docs/observability.md", "docs/parallel.md",
             "docs/relay.md", "docs/scenarios.md"]

_FENCE = re.compile(r"^```(\w[\w-]*(?: [\w-]+)*)?\s*$")


def _has_doc(obj) -> bool:
    doc = inspect.getdoc(obj)
    return bool(doc and doc.strip())


def check_docstrings() -> list[str]:
    """Return one problem string per missing/empty public docstring."""
    problems: list[str] = []
    for module_name in AUDITED_MODULES:
        module = importlib.import_module(module_name)
        if not _has_doc(module):
            problems.append(f"{module_name}: module docstring missing")
        exported = getattr(module, "__all__", None)
        if exported is None:
            problems.append(f"{module_name}: no __all__")
            continue
        for name in exported:
            obj = getattr(module, name)
            if type(obj).__module__ in ("typing", "collections.abc"):
                continue  # type aliases are documented by `#:` comments
            if not (inspect.isclass(obj) or callable(obj)):
                continue  # re-exported constants document themselves
            if not _has_doc(obj):
                problems.append(f"{module_name}.{name}: docstring missing")
            if inspect.isclass(obj):
                problems.extend(_check_class(module_name, name, obj))
    return problems


def _check_class(module_name: str, class_name: str, cls) -> list[str]:
    problems = []
    for attr, member in vars(cls).items():
        if attr.startswith("_"):
            continue
        target = None
        if inspect.isfunction(member):
            target = member
        elif isinstance(member, property):
            target = member.fget
        elif isinstance(member, (classmethod, staticmethod)):
            target = member.__func__
        if target is not None and not _has_doc(target):
            problems.append(
                f"{module_name}.{class_name}.{attr}: docstring missing"
            )
    return problems


def _code_blocks(path: pathlib.Path):
    """Yield ``(start_line, info_string, source)`` per fenced block."""
    lines = path.read_text(encoding="utf-8").splitlines()
    block: list[str] | None = None
    info = ""
    start = 0
    for lineno, line in enumerate(lines, 1):
        match = _FENCE.match(line.strip())
        if block is None and match and match.group(1):
            block, info, start = [], match.group(1), lineno
        elif block is not None and line.strip() == "```":
            yield start, info, "\n".join(block) + "\n"
            block = None
        elif block is not None:
            block.append(line)


def check_code_blocks() -> list[str]:
    """Execute documentation code blocks; return one string per failure."""
    problems: list[str] = []
    runner = doctest.DocTestRunner(verbose=False,
                                   optionflags=doctest.ELLIPSIS)
    parser = doctest.DocTestParser()
    for rel in DOC_FILES:
        path = REPO / rel
        if not path.exists():
            problems.append(f"{rel}: documented file does not exist")
            continue
        for start, info, source in _code_blocks(path):
            tokens = info.split()
            if tokens[0] != "python":
                continue
            where = f"{rel}:{start}"
            if "no-run" in tokens[1:]:
                try:
                    compile(source, where, "exec")
                except SyntaxError as exc:
                    problems.append(f"{where}: syntax error: {exc}")
                continue
            if ">>>" in source:
                test = parser.get_doctest(source, {}, where, rel, start)
                failures = runner.run(test, clear_globs=True).failed
                if failures:
                    problems.append(f"{where}: {failures} doctest failure(s)")
            else:
                try:
                    exec(compile(source, where, "exec"), {"__name__": where})
                except Exception:
                    problems.append(
                        f"{where}: block raised\n"
                        + traceback.format_exc(limit=2)
                    )
    return problems


def main(argv: list[str] | None = None) -> int:
    """Run the requested checks; print problems; non-zero on any."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--docstrings-only", action="store_true")
    group.add_argument("--blocks-only", action="store_true")
    args = parser.parse_args(argv)

    problems: list[str] = []
    if not args.blocks_only:
        problems += check_docstrings()
    if not args.docstrings_only:
        problems += check_code_blocks()

    if problems:
        print(f"{len(problems)} doc-consistency problem(s):\n")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("docs OK: public API fully docstring-covered, "
          "all documentation code blocks execute")
    return 0


if __name__ == "__main__":
    sys.exit(main())
