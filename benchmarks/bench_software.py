"""Software-model performance: reference cipher and packet layer.

Not a paper artefact, but the numbers a library adopter asks first: how
fast is the pure-Python reference model, and what does the packet layer
add on top.
"""

from repro.analysis.workloads import packet_payloads
from repro.core.mhhea import MhheaCipher
from repro.core.stream import decrypt_packet, encrypt_packet
from repro.util.rng import random_bytes

PAYLOAD = random_bytes(1, 4096)


def test_reference_encrypt_bytes(benchmark, bench_key):
    cipher = MhheaCipher(bench_key)
    result = benchmark(lambda: cipher.encrypt(PAYLOAD, seed=0xACE1))
    assert result.n_bits == len(PAYLOAD) * 8


def test_reference_decrypt_bytes(benchmark, bench_key):
    cipher = MhheaCipher(bench_key)
    message = cipher.encrypt(PAYLOAD, seed=0xACE1)
    recovered = benchmark(lambda: cipher.decrypt(message))
    assert recovered == PAYLOAD


def test_packet_roundtrip_imix(benchmark, bench_key):
    payloads = packet_payloads(8, seed=4)

    def link():
        total = 0
        for i, payload in enumerate(payloads):
            packet = encrypt_packet(payload, bench_key, nonce=i + 1)
            total += len(decrypt_packet(packet, bench_key))
        return total

    total = benchmark(link)
    assert total == sum(len(p) for p in payloads)
