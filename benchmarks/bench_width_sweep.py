"""Experiment E15: the variable hiding-vector-width claim (section VI).

"A design that allows the size of the hiding vector registers to be
varied.  Accordingly, a variable level of data security can be obtained
... it extends the key space with added security."  The sweep quantifies
what each width buys: key space, expected window (throughput), ciphertext
expansion, and cycle-level information rate.
"""

import math

from repro.analysis.throughput import expected_scrambled_window
from repro.analysis.workloads import message_bits
from repro.core.key import MAX_PAIRS, Key
from repro.core.params import VectorParams
from repro.rtl.cycle_model import MhheaCycleModel

WIDTHS = (8, 16, 32, 64)


def test_width_sweep(benchmark, emit):
    bits = message_bits(2048, seed=9)
    rows = [
        f"{'width':>5s} {'key space':>10s} {'E[window]':>10s} "
        f"{'bits/cyc':>9s} {'expansion':>10s}"
    ]
    measured = {}
    for width in WIDTHS:
        params = VectorParams(width)
        key = Key.generate(seed=3, params=params)
        run = MhheaCycleModel(key, params).run(bits, seed=5)
        key_space_bits = 2 * params.key_bits * MAX_PAIRS
        expected = float(expected_scrambled_window(params))
        expansion = len(run.vectors) * width / len(bits)
        measured[width] = {
            "expected": expected,
            "rate": run.bits_per_cycle,
            "expansion": expansion,
        }
        rows.append(
            f"{width:5d} {'2^' + str(key_space_bits):>10s} {expected:10.3f} "
            f"{run.bits_per_cycle:9.3f} {expansion:10.2f}"
        )
    emit("width_sweep", "\n".join(rows))

    # wider vectors: more key space, wider expected windows, higher rate
    expectations = [measured[w]["expected"] for w in WIDTHS]
    assert expectations == sorted(expectations)
    rates = [measured[w]["rate"] for w in WIDTHS]
    assert rates == sorted(rates)
    # expansion stays roughly constant (~width / E[window] * safety): the
    # security knob does not blow up bandwidth unboundedly
    for width in WIDTHS:
        ratio = measured[width]["expansion"] / (
            width / measured[width]["expected"]
        )
        assert math.isclose(ratio, 1.0, rel_tol=0.35)

    params = VectorParams(32)
    key = Key.generate(seed=3, params=params)
    benchmark(lambda: MhheaCycleModel(key, params).run(bits[:512], seed=5))
