"""Shared fixtures for the benchmark harness.

The CAD-flow results are session-scoped because placement dominates the
runtime and several benches (Table 1, Figure 9, design summary, timing
summary, floor plan) read the same three implementations.  Every bench
both *prints* its reproduced artefact and writes it under
``benchmarks/_artifacts/`` so the outputs survive pytest's capture.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.table1 import build_table1
from repro.analysis.throughput import Accounting
from repro.core.key import Key

ARTIFACTS = pathlib.Path(__file__).parent / "_artifacts"

#: Placement effort for the session flows: enough for stable numbers,
#: small enough that the whole bench suite runs in a few minutes.
FLOW_EFFORT = 0.4
FLOW_SEED = 7


@pytest.fixture(scope="session")
def table1_paper_accounting():
    """Table 1 under the paper's max-window accounting (runs the flow)."""
    return build_table1(Accounting.PAPER_MAX_WINDOW, effort=FLOW_EFFORT,
                        seed=FLOW_SEED)


@pytest.fixture(scope="session")
def table1_measured_accounting(table1_paper_accounting):
    """Table 1 under measured-information accounting, reusing timing by
    rebuilding only the cheap accounting layer."""
    return build_table1(Accounting.MEASURED, effort=0.15, seed=FLOW_SEED)


@pytest.fixture(scope="session")
def bench_key():
    """The benchmark key schedule (full 16 pairs)."""
    return Key.generate(seed=2005, n_pairs=16)


@pytest.fixture(scope="session")
def emit():
    """Print an artefact and persist it under benchmarks/_artifacts/."""
    ARTIFACTS.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n===== {name} =====\n{text}\n")
        (ARTIFACTS / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _emit
