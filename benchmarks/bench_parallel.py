"""Sharded pipeline throughput — the point of ``repro.parallel``.

PR 2 made one core ~7x faster; this bench measures what sharding buys
on top.  Two things are asserted unconditionally: the parallel blob is
byte-identical to the inline blob (the DESIGN.md section 9 invariant —
a speedup that changes the wire bytes is a bug, not a feature), and the
pipeline round-trips.  The *scaling* gate — >= 2.5x over the
single-worker fast path with 4 workers on a 1 MiB payload — only means
something when the host actually has cores to scale across, so it is
skipped below :data:`MIN_CPUS` (the unified harness
``benchmarks/run_all.py`` still records the honest curve in
``BENCH_pipeline.json`` either way).
"""

import os

import pytest

from repro.parallel import ParallelCodec

#: The acceptance workload: 1 MiB sharded into 64 KiB chunks.
PAYLOAD = bytes(i % 256 for i in range(1 << 20))
CHUNK = 1 << 16

#: Required advantage of 4 workers over the inline fast path.
MIN_SPEEDUP = 2.5

#: Cores needed before the scaling gate is meaningful.
MIN_CPUS = 4

_NONCE = 0xACE1


def _best_of(fn, repeats: int) -> float:
    import time

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_parallel_blob_byte_identity(bench_key, emit):
    """Wire output must not depend on worker count — ever."""
    inline = ParallelCodec(bench_key, chunk_size=CHUNK)
    expected = inline.encrypt_blob(PAYLOAD, _NONCE)
    with ParallelCodec(bench_key, workers=2, chunk_size=CHUNK) as codec:
        blob = codec.encrypt_blob(PAYLOAD, _NONCE)
        assert blob == expected
        assert codec.decrypt_blob(blob) == PAYLOAD
    emit(
        "parallel_identity",
        f"1 MiB payload, {len(expected)} wire bytes: 2-worker blob is "
        f"byte-identical to inline and round-trips",
    )


@pytest.mark.skipif(os.cpu_count() < MIN_CPUS,
                    reason=f"scaling gate needs >= {MIN_CPUS} CPUs "
                           f"(host has {os.cpu_count()})")
def test_parallel_scaling_gate(bench_key, emit):
    """4 workers must clear 2.5x over the inline fast path on 1 MiB."""
    inline = ParallelCodec(bench_key, chunk_size=CHUNK)
    inline.encrypt_blob(PAYLOAD, _NONCE)  # warm schedule + allocator
    t_inline = _best_of(lambda: inline.encrypt_blob(PAYLOAD, _NONCE), 3)
    with ParallelCodec(bench_key, workers=4, chunk_size=CHUNK) as codec:
        codec.encrypt_blob(PAYLOAD, _NONCE)  # warm worker pool
        t_parallel = _best_of(lambda: codec.encrypt_blob(PAYLOAD, _NONCE), 3)
    speedup = t_inline / t_parallel
    mb = len(PAYLOAD) / 1e6
    emit(
        "parallel_scaling",
        "\n".join([
            f"1 MiB payload, {CHUNK >> 10} KiB chunks, "
            f"{os.cpu_count()} CPUs",
            f"inline fast:  {mb / t_inline:8.2f} MB/s",
            f"4 workers:    {mb / t_parallel:8.2f} MB/s ({speedup:.2f}x)",
        ]),
    )
    assert speedup >= MIN_SPEEDUP
