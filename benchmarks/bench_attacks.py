"""Experiments E13–E14: the security claims, quantified.

E13 — timing side channel: span recovery from output timestamps against
the serial baseline vs the improved design.
E14 — constant chosen-plaintext attack: key-pair recovery against plain
HHEA vs MHHEA.
"""

from repro.analysis.workloads import message_bits
from repro.rtl.cycle_model import MhheaCycleModel
from repro.rtl.serial_model import HheaSerialCycleModel
from repro.security.chosen_plaintext import constant_chosen_plaintext_attack
from repro.security.timing_attack import timing_attack

TRAFFIC = message_bits(4096, seed=11)


def test_timing_attack(benchmark, bench_key, emit):
    """E13: the serial design leaks key spans through throughput."""
    serial_run = HheaSerialCycleModel(bench_key).run(TRAFFIC)
    improved_run = MhheaCycleModel(bench_key).run(TRAFFIC)

    serial_report = timing_attack(serial_run, bench_key)
    improved_report = timing_attack(improved_run, bench_key)

    emit("timing_attack", "\n".join([
        f"serial baseline : {serial_report.accuracy:.0%} spans recovered, "
        f"{serial_report.entropy_reduction_bits():.1f} bits of key entropy removed",
        f"improved MHHEA  : {improved_report.accuracy:.0%} spans recovered "
        f"(chance level)",
        f"true spans      : {serial_report.true_spans}",
        f"serial recovered: {serial_report.recovered_spans}",
    ]))

    assert serial_report.accuracy >= 0.5
    assert serial_report.entropy_reduction_bits() > 20
    assert improved_report.accuracy < serial_report.accuracy

    benchmark(lambda: timing_attack(serial_run, bench_key))


def test_chosen_plaintext_attack(benchmark, bench_key, emit):
    """E14: location+data scrambling defeat the constant-plaintext attack."""
    hhea_report = constant_chosen_plaintext_attack("hhea", bench_key,
                                                   vectors_per_pair=64)
    mhhea_report = constant_chosen_plaintext_attack("mhhea", bench_key,
                                                    vectors_per_pair=64)
    emit("chosen_plaintext", "\n".join([
        f"HHEA  : {hhea_report.accuracy:.0%} of key pairs recovered exactly",
        f"MHHEA : {mhhea_report.accuracy:.0%} of key pairs recovered exactly",
        f"HHEA guesses : {hhea_report.guessed_pairs}",
        f"true pairs   : {hhea_report.true_pairs}",
    ]))
    assert hhea_report.accuracy == 1.0
    assert mhhea_report.accuracy <= 0.2

    benchmark(lambda: constant_chosen_plaintext_attack(
        "hhea", bench_key, vectors_per_pair=16))
