"""Relay hub economics: concurrent-link ramp, fan-out routing, shedding.

The relay's job under load is threefold: *admit* connections cheaply
(resumption tickets keep the ramp ladder-free), *route* payloads to
every group member at a usable aggregate rate, and — past its
configured capacity — *shed* with exact counters instead of wedging.
These benches pin all three:

* the ticket-backed ramp sustains hundreds of concurrent links at a
  rate that stays comfortably interactive;
* fan-out routing (one encrypt per receiver) delivers aggregate
  plaintext throughput, measured end to end through each receiver's
  decrypt;
* the gate: a 500-link ramp against a smaller hub admits exactly to
  capacity, sheds the overflow as ``global-quota``, and keeps routing —
  if overload ever wedges the admission path, this fails on wall-clock
  before it fails on counters.
"""

import time

from repro.relay import ManualClock, MemoryRelayHub, RelayConfig

TENANTS = ("alpha", "beta")


def _ramp(hub, per_tenant: int, channels_per_tenant: int) -> dict:
    """Open ``per_tenant`` ticket-resumed links per tenant; returns the
    ``(tenant, channel) -> [clients]`` groups (admitted links only)."""
    groups = {}
    for tenant in TENANTS:
        for i in range(per_tenant):
            channel = b"bench-%d" % (i % channels_per_tenant)
            client = hub.connect(tenant, channel=channel,
                                 ticket=hub.mint_ticket(tenant))
            if client is not None and client.open:
                groups.setdefault((tenant, channel), []).append(client)
    return groups


def test_relay_ramp_and_fanout_throughput(emit):
    per_tenant, channels, rounds, payload_size = 128, 16, 4, 1024
    hub = MemoryRelayHub(
        config=RelayConfig(max_links=2 * per_tenant,
                           max_links_per_tenant=per_tenant,
                           egress_queue_payloads=rounds + 8),
        clock=ManualClock())

    start = time.perf_counter()
    groups = _ramp(hub, per_tenant, channels)
    ramp_s = time.perf_counter() - start
    links = hub.core.active_links
    assert links == 2 * per_tenant

    payload = bytes(payload_size)
    start = time.perf_counter()
    for _ in range(rounds):
        for members in groups.values():
            members[0].send(payload)
    for members in groups.values():
        for receiver in members[1:]:
            receiver.pump()
    route_s = time.perf_counter() - start
    delivered = hub.core.routed_bytes

    emit("relay_ramp", "\n".join([
        f"ticket ramp      : {links} links in {ramp_s:.3f} s "
        f"({links / ramp_s:8.1f} links/s)",
        f"fan-out routing  : {delivered / 1e6:.2f} MB plaintext delivered "
        f"across {len(groups)} groups in {route_s:.3f} s "
        f"({delivered / route_s / 1e6:8.2f} MB/s aggregate)",
        f"shed ledger      : {hub.shed_by_reason() or '(empty)'}",
    ]))
    assert hub.shed_by_reason() == {}
    assert hub.core.routed_payloads == rounds * len(groups)


def test_relay_500_link_ramp_sheds_not_wedges(emit):
    """The overload gate: 500 connection attempts against a 384-slot
    hub must admit exactly to capacity, shed the rest as global-quota,
    and keep routing for the admitted population — at a ramp rate that
    proves the admission path never wedged."""
    hub = MemoryRelayHub(
        config=RelayConfig(max_links=384, max_links_per_tenant=192,
                           egress_queue_payloads=16),
        clock=ManualClock())

    start = time.perf_counter()
    groups = _ramp(hub, per_tenant=250, channels_per_tenant=25)
    elapsed = time.perf_counter() - start
    attempts = 500
    rate = attempts / elapsed

    admitted = sum(len(members) for members in groups.values())
    assert admitted == 384
    assert hub.core.active_links == 384
    # alpha ramps first and overflows its 192-link tenant cap; beta then
    # fills the hub to 384, so its overflow hits the global quota.
    assert hub.shed_by_reason() == {"tenant-quota": 58, "global-quota": 58}

    # Shedding, not wedging: the survivors still route...
    probe = next(members for members in groups.values() if len(members) >= 2)
    probe[0].send(b"after the ramp")
    probe[1].pump()
    assert probe[1].received[-1] == b"after the ramp"
    # ...and the whole overloaded ramp stayed fast.  Ticket resumption
    # runs ~700 attempts/s in pure Python; 25/s means something in the
    # admission or shed path has gone quadratic or blocking.
    assert rate >= 25.0, (
        f"500-attempt ramp crawled at {rate:.1f} attempts/s "
        f"({elapsed:.1f} s); the overloaded relay is wedging, not shedding"
    )

    emit("relay_overload_gate", "\n".join([
        f"attempts         : {attempts} against 384 slots",
        f"admitted         : {admitted}",
        f"shed             : {hub.shed_by_reason()}",
        f"ramp rate        : {rate:8.1f} attempts/s under overload",
    ]))
