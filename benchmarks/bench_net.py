"""End-to-end secure-link throughput (software peer of Table 1).

The paper's Table 1 reports the hardware core's raw encryption rate;
these benches report what a complete *software link* achieves — cipher,
packet container, framing, sessions and asyncio transport included — so
the two can be compared on the same axis (Mbps).  Also measures the
incremental ``FrameDecoder`` against the all-at-once ``split_packets``
it replaces for streaming use.
"""

import asyncio

from repro.analysis.workloads import packet_payloads
from repro.core.stream import encrypt_packet, split_packets
from repro.net import FrameDecoder, SecureLinkClient, SecureLinkServer
from repro.net.session import Session, SessionConfig

SESSION_ID = b"benchsid"


async def _echo_roundtrip(key, payloads):
    """One full link lifetime; returns the client session metrics."""
    async with SecureLinkServer(key, port=0) as server:
        async with SecureLinkClient(key, port=server.port,
                                    session_id=SESSION_ID) as client:
            replies = await client.send_all(payloads)
            assert replies == payloads
            return client.metrics


def test_link_echo_throughput(benchmark, bench_key, emit):
    payloads = packet_payloads(64, seed=11)
    total = sum(len(p) for p in payloads)

    metrics = benchmark(lambda: asyncio.run(_echo_roundtrip(bench_key, payloads)))

    snapshot = metrics.snapshot()
    emit(
        "net_link_throughput",
        "\n".join([
            f"secure-link echo round trip: {len(payloads)} packets, "
            f"{total} payload bytes each way",
            f"client->server->client goodput: {metrics.mbps('rx'):.3f} Mbps "
            f"(wire {metrics.wire_mbps('rx'):.3f} Mbps)",
            f"wire overhead: {metrics.rx.overhead_ratio:.2f} bytes/byte",
            metrics.render("link"),
        ]),
    )
    assert snapshot["rx_packets"] == len(payloads)
    assert snapshot["rx_mbps"] > 0


def test_session_encrypt_throughput(benchmark, bench_key):
    """Session layer alone (no sockets): nonce schedule + rekey + cipher."""
    payloads = packet_payloads(32, seed=12)

    def run():
        session = Session(bench_key, "initiator", SESSION_ID,
                          SessionConfig(rekey_interval=8))
        return sum(len(session.encrypt(p)) for p in payloads)

    wire_bytes = benchmark(run)
    assert wire_bytes > sum(len(p) for p in payloads)


def test_link_pair_throughput(benchmark, bench_key, emit):
    """The sans-IO protocol alone: no sockets, no loop, no threads.

    The gap between this number and the asyncio echo round trip is the
    transport cost — the protocol/transport split makes it measurable
    for the first time.
    """
    from repro.link import LinkPair, PayloadReceived

    payloads = packet_payloads(64, seed=14)
    total = sum(len(p) for p in payloads)

    def run():
        pair = LinkPair(bench_key, session_id=SESSION_ID)
        pair.handshake()
        for payload in payloads:
            pair.initiator.send_payload(payload)
        _, events = pair.pump()
        replies = []
        for event in events:
            assert isinstance(event, PayloadReceived)
            pair.responder.send_payload(event.payload)
        events, _ = pair.pump()
        replies = [event.payload for event in events]
        assert replies == payloads
        return pair.initiator.session.metrics

    metrics = benchmark(run)
    emit(
        "net_link_pair_throughput",
        f"sans-IO LinkPair echo: {len(payloads)} packets, {total} payload "
        f"bytes each way, no transport\n"
        f"protocol-only goodput: {metrics.mbps('rx'):.3f} Mbps",
    )


def test_link_goodput_gate(bench_key, emit):
    """CI floor for the link-layer hot path (zero-copy + batched decrypt).

    Deliberately free of the pytest-benchmark fixture so the CI
    bench-pipeline job (which installs only pytest) can run it with
    ``-k goodput``.  Two floors, from the PR that closed the 30x
    link-vs-core gap:

    * ``goodput_over_core_ratio >= 0.25`` — machine-independent.  An
      echo round trip costs two encrypts and two decrypts per payload
      byte, so with the fast engine's ~2x decrypt/encrypt asymmetry the
      ceiling is ~1/3; a ratio below 0.25 means framing/protocol
      overhead is eating >25% of the cipher budget again.
    * LinkPair goodput >= 5x the pre-rework baseline (0.0135 MB/s
      measured on the 1-CPU CI-class box that set it).
    """
    import time

    from repro.link import LinkPair, PayloadReceived
    from repro.net.session import SessionConfig

    baseline_mb_s = 0.0135  # pre-zero-copy LinkPair goodput (PR 6)
    payloads = [bytes((i + j) % 256 for j in range(4096)) for i in range(16)]
    total = sum(len(p) for p in payloads)
    fast = SessionConfig(engine="fast")

    def linkpair_echo() -> float:
        pair = LinkPair(bench_key, config=fast, session_id=SESSION_ID)
        pair.handshake()
        start = time.perf_counter()
        for payload in payloads:
            pair.initiator.send_payload(payload)
        replies = []
        while len(replies) < len(payloads):
            initiator_events, responder_events = pair.pump()
            for event in responder_events:
                if isinstance(event, PayloadReceived):
                    pair.responder.send_payload(event.payload)
            for event in initiator_events:
                if isinstance(event, PayloadReceived):
                    replies.append(event.payload)
        elapsed = time.perf_counter() - start
        assert replies == payloads
        return total / elapsed / 1e6

    def core_encrypt() -> float:
        payload = payloads[0]
        encrypt_packet(payload, bench_key, nonce=1, engine="fast")  # warm
        start = time.perf_counter()
        for nonce in range(1, 9):
            encrypt_packet(payload, bench_key, nonce=nonce, engine="fast")
        return len(payload) * 8 / (time.perf_counter() - start) / 1e6

    goodput = max(linkpair_echo() for _ in range(2))  # best-of, warm second
    core = max(core_encrypt() for _ in range(2))
    ratio = goodput / core
    emit(
        "net_link_goodput_gate",
        f"LinkPair goodput {goodput:.4f} MB/s "
        f"({goodput / baseline_mb_s:.1f}x the pre-rework baseline), "
        f"fast-engine encrypt {core:.4f} MB/s, ratio {ratio:.3f}",
    )
    assert goodput >= 5 * baseline_mb_s, (
        f"LinkPair goodput {goodput:.4f} MB/s regressed below 5x the "
        f"pre-rework baseline ({5 * baseline_mb_s:.4f} MB/s)")
    assert ratio >= 0.25, (
        f"goodput_over_core_ratio {ratio:.3f} below the 0.25 floor: the "
        f"link layer is burning cipher budget on overhead again")


def test_frame_decoder_vs_split_packets(benchmark, bench_key, emit):
    """Incremental framing of a 64-packet stream, fed in 1500-byte MTUs."""
    payloads = packet_payloads(64, seed=13)
    stream = b"".join(
        encrypt_packet(p, bench_key, nonce=i + 1)
        for i, p in enumerate(payloads)
    )
    mtu = 1500

    def run():
        decoder = FrameDecoder()
        frames = []
        for offset in range(0, len(stream), mtu):
            frames.extend(decoder.feed(stream[offset:offset + mtu]))
        decoder.finish()
        return frames

    frames = benchmark(run)
    assert [f.raw for f in frames] == split_packets(stream)
    emit(
        "net_frame_decoder",
        f"FrameDecoder: {len(stream)} bytes / {len(frames)} packets "
        f"in {mtu}-byte chunks, matches split_packets byte-exact",
    )
