"""Observability overhead gate — instrumentation must be nearly free.

The :mod:`repro.obs` layer promises that an *enabled* registry costs at
most a few percent on hot paths and that the *disabled* default (the
null registry) costs effectively nothing.  This bench measures both
promises on the two workloads that exercise the instrumentation
densest:

* the :class:`repro.api.Codec` packet path (64 KiB encrypt + decrypt —
  per-op counters and latency histograms in ``repro.core.stream``);
* a memory-transport link echo burst (many small payloads — per-frame
  byte/packet counters in :class:`repro.link.LinkProtocol` and the
  session metrics mirror).

Timing is min-of-N wall clock under symmetric warm-up, enabled and
disabled runs interleaved so slow-machine drift hits both sides alike.
The gate is ``MAX_OVERHEAD`` (1.05 = 5%) plus a small absolute floor so
microsecond-scale jitter on fast machines cannot fail the ratio on a
workload that got too cheap to resolve.

Wire bytes are asserted identical between the enabled and disabled
runs — observability must never touch the data path.
"""

import time

from repro.api import open_codec
from repro.link.memory import MemoryLinkServer
from repro.obs import core as obs

#: The acceptance payload for the codec path: 64 KiB.
PAYLOAD = bytes(range(256)) * 256

#: Link burst: 64 MTU-ish payloads per echo round.
LINK_PAYLOADS = [bytes([i & 0xFF]) * 1024 for i in range(64)]

#: Enabled / disabled wall-clock ratio ceiling (the <=5% promise).
MAX_OVERHEAD = 1.05

#: Absolute slack (seconds) added to the gate: below this scale the
#: timer resolution, not the instrumentation, dominates the ratio.
JITTER_FLOOR = 0.002

_NONCE = 0xBEEF
_REPEATS = 5


def _best_of(fn, repeats: int) -> tuple[float, object]:
    """Minimum wall-clock over ``repeats`` runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _timed_pair(workload, repeats: int = _REPEATS):
    """(disabled_s, enabled_s, disabled_result, enabled_result).

    Runs the workload under the null registry and under a live
    :class:`~repro.obs.core.ObsRegistry`, interleaved per repeat so any
    machine-load drift is shared.  The process-wide registry is always
    restored.
    """
    t_off = t_on = float("inf")
    r_off = r_on = None
    live = obs.ObsRegistry()
    previous = obs.set_registry(None)
    try:
        workload()  # warm caches once, outside both timings
        for _ in range(repeats):
            obs.set_registry(None)
            start = time.perf_counter()
            r_off = workload()
            t_off = min(t_off, time.perf_counter() - start)

            obs.set_registry(live)
            start = time.perf_counter()
            r_on = workload()
            t_on = min(t_on, time.perf_counter() - start)
    finally:
        obs.set_registry(previous)
    return t_off, t_on, r_off, r_on, live


def _gate(name: str, t_off: float, t_on: float) -> str:
    overhead = t_on / t_off if t_off > 0 else 1.0
    line = (f"{name}: disabled {t_off * 1e3:8.3f} ms   "
            f"enabled {t_on * 1e3:8.3f} ms   ({overhead:.3f}x)")
    assert t_on <= t_off * MAX_OVERHEAD + JITTER_FLOOR, (
        f"{name}: obs overhead {overhead:.3f}x exceeds "
        f"{MAX_OVERHEAD:.2f}x gate ({line})"
    )
    return line


def test_obs_overhead_codec(bench_key, emit):
    with open_codec(bench_key) as codec:
        packet = codec.encrypt(PAYLOAD, nonce=_NONCE)

        def workload():
            wire = codec.encrypt(PAYLOAD, nonce=_NONCE)
            assert codec.decrypt(wire) == PAYLOAD
            return wire

        t_off, t_on, wire_off, wire_on, live = _timed_pair(workload)
    # Byte-identity: the instrumented run emitted the exact wire bytes.
    assert wire_off == wire_on == packet
    # The enabled run really recorded the codec/engine series.
    snap = live.snapshot()
    assert any(s.startswith("repro_codec_ops_total") for s in snap["counters"])
    assert any(s.startswith("repro_engine_op_seconds")
               for s in snap["histograms"])
    emit("obs_overhead_codec", _gate("codec 64 KiB round-trip", t_off, t_on))


def test_obs_overhead_link(bench_key, emit):
    with MemoryLinkServer(bench_key) as server:

        def workload():
            with server.connect(session_id=b"benchsid") as client:
                return client.send_all(LINK_PAYLOADS)

        t_off, t_on, replies_off, replies_on, live = _timed_pair(workload)
    assert replies_off == replies_on == LINK_PAYLOADS
    snap = live.snapshot()
    assert any(s.startswith("repro_link_frames_total")
               for s in snap["counters"])
    assert "repro_link_handshake_seconds" in snap["histograms"]
    emit("obs_overhead_link",
         _gate(f"memory link echo x{len(LINK_PAYLOADS)}", t_off, t_on))
