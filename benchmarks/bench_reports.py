"""Experiments E7–E9: the implementation reports of Appendix A.

Design summary (slices / FFs / LUTs / IOBs / TBUFs / gate count), timing
summary (min period / f_max / max net delay) and the floor plan, all from
our own CAD flow on the structural MHHEA netlist, printed next to the
paper's reported values.
"""

from repro.analysis.literature import PAPER_REPORTS
from repro.fpga.techmap import flowmap
from repro.fpga.timing import analyse_timing
from repro.rtl.top import build_mhhea_top


def _mhhea_flow(table1):
    return table1.flows["MHHEA"]


def test_design_summary(benchmark, table1_paper_accounting, emit):
    """E7: the map-report numbers (paper: 337 slices, 205 FFs, 393 LUTs,
    57 IOBs, 206 TBUFs, 5051 gates)."""
    flow = _mhhea_flow(table1_paper_accounting)
    summary = flow.summary
    paper = PAPER_REPORTS
    comparison = "\n".join([
        flow.summary.render(),
        "",
        "paper-vs-measured:",
        f"  slices : paper {paper['n_slices']:>5}  measured {summary.n_slices:>5}",
        f"  FFs    : paper {paper['n_ffs']:>5}  measured {summary.n_ffs:>5}",
        f"  LUTs   : paper {paper['n_luts']:>5}  measured {summary.n_luts:>5}",
        f"  IOBs   : paper {paper['n_iobs']:>5}  measured {summary.n_iobs:>5}",
        f"  TBUFs  : paper {paper['n_tbufs']:>5}  measured {summary.n_tbufs:>5}",
        f"  gates  : paper {paper['equivalent_gates']:>5}  "
        f"measured {summary.equivalent_gates:>5}",
    ])
    emit("design_summary", comparison)

    # shape assertions: every resource within 2x of the paper's count
    assert 0.5 <= summary.n_ffs / paper["n_ffs"] <= 2.0
    assert 0.5 <= summary.n_luts / paper["n_luts"] <= 2.0
    assert 0.5 <= summary.n_tbufs / paper["n_tbufs"] <= 2.0
    assert 0.3 <= summary.n_slices / paper["n_slices"] <= 2.0
    assert 0.5 <= summary.equivalent_gates / paper["equivalent_gates"] <= 2.0

    # time the mapping stage on the full netlist
    circuit = build_mhhea_top().circuit
    benchmark(lambda: flowmap(circuit, k=4))


def test_timing_summary(benchmark, table1_paper_accounting, emit):
    """E8: min period 41.871ns / 23.883MHz / max net 6.770ns (paper)."""
    flow = _mhhea_flow(table1_paper_accounting)
    timing = flow.timing
    paper = PAPER_REPORTS
    comparison = "\n".join([
        flow.timing_report.render(),
        "",
        "paper-vs-measured:",
        f"  min period : paper {paper['min_period_ns']:7.3f}ns  "
        f"measured {timing.min_period_ns:7.3f}ns",
        f"  f_max      : paper {paper['max_frequency_mhz']:7.3f}MHz "
        f"measured {timing.max_frequency_mhz:7.3f}MHz",
        f"  max net    : paper {paper['max_net_delay_ns']:7.3f}ns  "
        f"measured {timing.max_net_delay_ns:7.3f}ns",
        "",
        "critical path:",
        *[f"  {step}" for step in timing.critical_path],
    ])
    emit("timing_summary", comparison)

    # shape: tens of nanoseconds, within ~2.5x of the paper's period
    assert 0.4 <= timing.min_period_ns / paper["min_period_ns"] <= 2.5
    assert 0.3 <= timing.max_net_delay_ns / paper["max_net_delay_ns"] <= 3.0

    benchmark(lambda: analyse_timing(flow.routing))


def test_floorplan(benchmark, table1_paper_accounting, emit):
    """E9: the floor plan of the placed design (paper Fig. 10)."""
    flow = _mhhea_flow(table1_paper_accounting)
    plan = benchmark(flow.floorplan)
    emit("fig10_floorplan", plan)
    assert "Floor plan" in plan
    # the design occupies a contiguous region, not the whole die
    used_rows = [line for line in plan.splitlines()
                 if ("#" in line or "+" in line)]
    assert 3 <= len(used_rows) < flow.device.rows
