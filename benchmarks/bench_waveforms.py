"""Experiments E1–E4: the simulation waveforms of paper Figs 5–8.

Each bench regenerates one figure as an ASCII timing diagram from the
cycle-accurate model, asserts the values the paper annotates, and times
the underlying simulation.
"""

from repro.hdl.wave import render_wave
from repro.rtl import states
from repro.rtl.cycle_model import MhheaCycleModel, ScriptedVectorSource
from repro.core.key import Key
from repro.util.bits import int_to_bits


def _traced(key, bits, source=None, seed=0xACE1):
    return MhheaCycleModel(key).run(bits, seed=seed, source=source,
                                    record_trace=True)


def test_fig5_lmsg_plaintext_loading(benchmark, bench_key, emit):
    """Fig 5: the 32-bit plaintext 0xABCD1234 buffered during LMSG."""
    bits = int_to_bits(0xABCD1234, 32)
    run = benchmark(lambda: _traced(bench_key, bits))
    trace = run.trace
    lmsg = trace.find("state", states.LMSG)
    assert trace.at(lmsg, "plaintext") == 0xABCD1234
    assert trace.at(lmsg + 1, "msg_cache") == 0xABCD1234
    emit("fig5_lmsg", render_wave(
        trace, 0, min(6, len(trace) - 1),
        signals=["state", "go", "plaintext", "msg_cache"],
    ))


def test_fig6_lkey_pair_loading(benchmark, bench_key, emit):
    """Fig 6: key pairs loaded in parallel, one address per cycle."""
    run = benchmark(lambda: _traced(bench_key, [1] * 32))
    trace = run.trace
    start = trace.find("state", states.LKEY)
    for offset, pair in enumerate(bench_key.pairs):
        assert trace.at(start + offset, "key_left") == pair.k1
        assert trace.at(start + offset, "key_right") == pair.k2
    emit("fig6_lkey", render_wave(
        trace, start, start + min(7, len(bench_key) - 1),
        signals=["state", "key_addr", "key_left", "key_right"],
    ))


def test_fig7_lmsgcache_low_half(benchmark, bench_key, emit):
    """Fig 7: the least-significant 16 bits enter the alignment buffer."""
    bits = int_to_bits(0xABCD1234, 32)
    run = benchmark(lambda: _traced(bench_key, bits))
    trace = run.trace
    cycle = trace.find("state", states.LMSGCACHE)
    assert trace.at(cycle + 1, "buffer") == 0x1234
    emit("fig7_lmsgcache", render_wave(
        trace, cycle - 1, cycle + 2,
        signals=["state", "msg_cache", "buffer", "bits_done"],
    ))


def test_fig8_circ_encrypt_worked_example(benchmark, emit):
    """Fig 8: V=0xCA06, K=(0,3) -> KN=(2,5); buffer 0x48D0 -> 0x2341 ->
    cipher 0xCA02 -> buffer 0x048D, Ready pulse."""
    key = Key([(0, 3)])

    def run_example():
        source = ScriptedVectorSource([0xCA06] + [0xFFFF] * 24)
        return _traced(key, int_to_bits(0x48D0, 16), source=source)

    run = benchmark(run_example)
    trace = run.trace
    circ = trace.find("state", states.CIRC)
    assert trace.at(circ, "v") == 0xCA06
    assert (trace.at(circ, "kn_small"), trace.at(circ, "kn_large")) == (2, 5)
    assert trace.at(circ + 1, "buffer") == 0x2341
    assert trace.at(circ + 2, "buffer") == 0x048D
    assert trace.at(circ + 2, "cipher") == 0xCA02
    assert trace.at(circ + 2, "ready") == 1
    emit("fig8_encrypt", render_wave(
        trace, 0, min(10, len(trace) - 1),
        signals=["state", "buffer", "v", "kn_small", "kn_large",
                 "cipher", "ready"],
    ))
