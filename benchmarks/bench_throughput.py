"""Experiment E12: cycle-level throughput and the key-independence claim.

The paper's headline: the improved design emits one vector every two
cycles regardless of the key, and the throughput is "of the order of
10^2 Mbps".  This bench measures cycles/vector and bits/cycle for all
three micro-architectures over the same workload and checks the claimed
independence.
"""

from repro.analysis.workloads import message_bits
from repro.core.key import Key
from repro.rtl.cycle_model import MhheaCycleModel
from repro.rtl.serial_model import HheaSerialCycleModel
from repro.rtl.yaea_like import YaeaLikeCycleModel

WORKLOAD = message_bits(8192, seed=0xC0FFEE)


def test_cycles_per_vector(benchmark, bench_key, emit):
    mhhea_run = MhheaCycleModel(bench_key).run(WORKLOAD)
    serial_run = HheaSerialCycleModel(bench_key).run(WORKLOAD)
    yaea_run = YaeaLikeCycleModel(seed=0x7777).run(WORKLOAD)
    rows = [
        f"{'design':10s} {'cyc/vec':>8s} {'bits/cyc':>9s} {'vectors':>8s} {'cycles':>8s}",
        f"{'MHHEA':10s} {mhhea_run.cycles_per_vector:8.3f} "
        f"{mhhea_run.bits_per_cycle:9.3f} {len(mhhea_run.vectors):8d} "
        f"{mhhea_run.total_cycles:8d}",
        f"{'HHEA-ser':10s} {serial_run.cycles_per_vector:8.3f} "
        f"{serial_run.bits_per_cycle:9.3f} {len(serial_run.vectors):8d} "
        f"{serial_run.total_cycles:8d}",
        f"{'YAEA-like':10s} {yaea_run.cycles_per_vector:8.3f} "
        f"{yaea_run.bits_per_cycle:9.3f} {len(yaea_run.vectors):8d} "
        f"{yaea_run.total_cycles:8d}",
    ]
    emit("throughput_cycle_level", "\n".join(rows))

    # paper claim: ~2 cycles per vector for the improved design
    assert 1.9 <= mhhea_run.cycles_per_vector <= 2.5
    # the serial baseline pays ~1 + mean window per vector
    assert serial_run.cycles_per_vector > mhhea_run.cycles_per_vector
    # end-to-end information rate ordering
    assert (yaea_run.bits_per_cycle > mhhea_run.bits_per_cycle
            > serial_run.bits_per_cycle)

    benchmark(lambda: MhheaCycleModel(bench_key).run(WORKLOAD[:1024]))


def test_per_output_timing_is_key_independent(benchmark, emit):
    """Cycles between Ready pulses must not depend on key spans in the
    improved design — the closed side channel."""
    bits = message_bits(2048, seed=3)

    def measure():
        lines = [f"{'key':14s} {'modal gap (cycles)':>20s}"]
        modal_gaps = set()
        for label, key in (("span-1 pairs", Key([(3, 3), (5, 5)])),
                           ("span-8 pairs", Key([(0, 7), (7, 0)])),
                           ("mixed pairs", Key.generate(seed=2005))):
            run = MhheaCycleModel(key).run(bits)
            gaps = [b - a for a, b in
                    zip(run.ready_cycles, run.ready_cycles[1:])]
            modal = max(set(gaps), key=gaps.count)
            modal_gaps.add(modal)
            lines.append(f"{label:14s} {modal:20d}")
        return lines, modal_gaps

    lines, modal_gaps = benchmark(measure)
    emit("key_independence", "\n".join(lines))
    assert modal_gaps == {2}


def test_serial_timing_is_key_dependent(benchmark, emit):
    """The baseline's modal gap tracks the key span directly."""
    bits = message_bits(2048, seed=3)

    def measure():
        observed = {}
        for span, key in ((1, Key([(3, 3)])), (4, Key([(2, 5)])),
                          (8, Key([(0, 7)]))):
            run = HheaSerialCycleModel(key).run(bits)
            gaps = [b - a for a, b in
                    zip(run.ready_cycles, run.ready_cycles[1:])]
            observed[span] = max(set(gaps), key=gaps.count)
        return observed

    observed = benchmark(measure)
    emit("serial_key_dependence",
         "\n".join(f"span {s}: modal gap {g}" for s, g in observed.items()))
    assert observed[1] < observed[4] < observed[8]
    assert observed[8] == 1 + 8  # setup + one cycle per bit
