"""Experiment E6: Figure 9 — the functional-density figure of merit chart."""

from repro.analysis.density import render_chart
from repro.analysis.literature import LITERATURE_TABLE1


def test_fig9_literature_chart(benchmark, emit):
    """The exact Figure 9: the paper's three published rows."""
    rows = [entry.as_row() for entry in LITERATURE_TABLE1]
    chart = benchmark(lambda: render_chart(rows))
    emit("fig9_literature", chart)
    bars = {line.split()[0]: line.count("#")
            for line in chart.splitlines()[1:]}
    assert bars["YAEA"] > bars["MHHEA"] > bars["HHEA"]


def test_fig9_measured_chart(benchmark, table1_paper_accounting, emit):
    """The same chart over our measured implementations."""
    chart = benchmark(lambda: render_chart(table1_paper_accounting.measured))
    emit("fig9_measured", chart)
    assert "#" in chart
