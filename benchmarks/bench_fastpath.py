"""Fast engine vs reference engine throughput — the point of the split.

The paper's contribution is making MHHEA fast enough for line-rate link
encryption in hardware; :mod:`repro.core.fastpath` is the software
analogue of that speedup.  This bench times both engines end to end
through the packet codec on a 64 KiB payload (the acceptance workload:
the fast engine must clear >= 5x on both directions) and the
:class:`~repro.core.fastpath.BatchCodec` on a burst of link-sized
payloads.  Timing is min-of-N wall clock — the same convention as the
throughput numbers in ``repro.analysis`` — and every artefact lands in
``benchmarks/_artifacts/``.
"""

import time

from repro.core.fastpath import BatchCodec
from repro.core.stream import decrypt_packet, encrypt_packet

#: The acceptance payload: 64 KiB.
PAYLOAD = bytes(range(256)) * 256

#: Required advantage of the fast engine over the reference.
MIN_SPEEDUP = 5.0

_NONCE = 0xBEEF


def _best_of(fn, repeats: int) -> tuple[float, object]:
    """Minimum wall-clock over ``repeats`` runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_fastpath_64k_speedup(bench_key, emit):
    # Warm both engines once (schedule compilation, allocator, caches),
    # then time each as min-of-2 — symmetric conditions keep the gate
    # honest.
    warm = encrypt_packet(PAYLOAD, bench_key, nonce=_NONCE, engine="fast")
    encrypt_packet(PAYLOAD, bench_key, nonce=_NONCE)

    t_enc_ref, packet = _best_of(
        lambda: encrypt_packet(PAYLOAD, bench_key, nonce=_NONCE), 2)
    t_enc_fast, packet_fast = _best_of(
        lambda: encrypt_packet(PAYLOAD, bench_key, nonce=_NONCE,
                               engine="fast"), 2)
    assert packet == packet_fast == warm  # differential guarantee, again

    decrypt_packet(packet, bench_key, engine="fast")  # warm
    decrypt_packet(packet, bench_key)
    t_dec_ref, plain = _best_of(lambda: decrypt_packet(packet, bench_key), 2)
    t_dec_fast, plain_fast = _best_of(
        lambda: decrypt_packet(packet, bench_key, engine="fast"), 2)
    assert plain == plain_fast == PAYLOAD

    enc_speedup = t_enc_ref / t_enc_fast
    dec_speedup = t_dec_ref / t_dec_fast
    mbits = len(PAYLOAD) * 8 / 1e6
    emit(
        "fastpath_speedup",
        "\n".join([
            f"64 KiB payload, {len(packet)} wire bytes",
            f"encrypt: reference {mbits / t_enc_ref:8.2f} Mbps   "
            f"fast {mbits / t_enc_fast:8.2f} Mbps   ({enc_speedup:.1f}x)",
            f"decrypt: reference {mbits / t_dec_ref:8.2f} Mbps   "
            f"fast {mbits / t_dec_fast:8.2f} Mbps   ({dec_speedup:.1f}x)",
        ]),
    )
    assert enc_speedup >= MIN_SPEEDUP
    assert dec_speedup >= MIN_SPEEDUP


def test_batch_codec_burst(bench_key, emit):
    # The secure-link shape: many MTU-ish payloads under one schedule.
    payloads = [bytes([i & 0xFF]) * 1024 for i in range(64)]
    nonces = list(range(1, len(payloads) + 1))
    codec = BatchCodec(bench_key)  # compiles the schedule up front

    t_batch, packets = _best_of(
        lambda: codec.encrypt_many(payloads, nonces), 2)
    t_loose, loose = _best_of(
        lambda: [encrypt_packet(p, bench_key, nonce=n)
                 for p, n in zip(payloads, nonces)], 2)
    assert packets == loose

    t_dec, recovered = _best_of(lambda: codec.decrypt_many(packets), 2)
    assert recovered == payloads

    total_mbits = sum(len(p) for p in payloads) * 8 / 1e6
    emit(
        "fastpath_batch",
        "\n".join([
            f"{len(payloads)} x 1 KiB payloads under one key schedule",
            f"BatchCodec encrypt: {total_mbits / t_batch:8.2f} Mbps "
            f"(reference loop {total_mbits / t_loose:8.2f} Mbps, "
            f"{t_loose / t_batch:.1f}x)",
            f"BatchCodec decrypt: {total_mbits / t_dec:8.2f} Mbps",
        ]),
    )
    assert t_loose / t_batch >= MIN_SPEEDUP
